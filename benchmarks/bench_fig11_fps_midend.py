"""Figure 11 — FPS on the middle-end laptop, including the GAE thermal
collapse (§5.3)."""

from repro.apps.video import UhdVideoApp
from repro.experiments.appbench import run_fig10
from repro.experiments.runner import run_app
from repro.hw.machine import MIDDLE_END_LAPTOP


def test_fig11_fps_middle_end(benchmark, bench_duration, bench_apps_per_category):
    results = benchmark.pedantic(
        run_fig10,
        args=(MIDDLE_END_LAPTOP, bench_duration, bench_apps_per_category),
        kwargs=dict(emulators=("vSoC", "GAE", "QEMU-KVM")),
        rounds=1, iterations=1,
    )
    means = {name: r.mean_fps for name, r in results.items()}
    for name, mean in means.items():
        benchmark.extra_info[f"{name}_fps"] = round(mean, 1)
    # Paper: vSoC ~53 FPS, 188%-1113% better than the rest.
    assert means["vSoC"] > 45.0
    assert means["vSoC"] > 2.0 * means["GAE"]
    assert means["GAE"] > means["QEMU-KVM"]


def test_fig11_gae_thermal_collapse(benchmark):
    """GAE video starts ~30 FPS on the laptop and collapses within a
    minute from CPU thermal throttling of its software decoder (§5.3)."""

    def run_long():
        return run_app(UhdVideoApp(warmup_ms=0.0), "GAE",
                       machine_spec=MIDDLE_END_LAPTOP, duration_ms=90_000.0)

    run = benchmark.pedantic(run_long, rounds=1, iterations=1)
    app_fps = run.result.fps
    benchmark.extra_info["gae_laptop_avg_fps"] = round(app_fps, 1)
    # Average over 90 s blends the healthy start with the throttled tail.
    assert app_fps < 25.0
    # vSoC on the same machine stays smooth (hardware decode, cool CPU).
    vsoc = run_app(UhdVideoApp(warmup_ms=0.0), "vSoC",
                   machine_spec=MIDDLE_END_LAPTOP, duration_ms=90_000.0)
    benchmark.extra_info["vsoc_laptop_fps"] = round(vsoc.result.fps, 1)
    assert vsoc.result.fps > 50.0
