"""§5.2 — prediction accuracy and overheads of the prefetch engine."""

from repro.experiments.microbench import run_svm_microbench
from repro.hw.machine import HIGH_END_DESKTOP
from repro.units import MIB


def test_prediction_statistics(benchmark, bench_duration):
    result = benchmark.pedantic(
        run_svm_microbench, args=("vSoC", HIGH_END_DESKTOP, bench_duration),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["accuracy_pct"] = round(100 * result.prediction_accuracy, 2)
    benchmark.extra_info["overhead_mib"] = round(
        result.framework_overhead_bytes / MIB, 4
    )

    # Paper: device-prediction accuracy 99-100% within stable pipelines.
    assert result.prediction_accuracy >= 0.99
    # Paper: total data-structure overhead at most 3.1 MiB.
    assert result.framework_overhead_bytes <= 3.1 * MIB
    # Paper: prefetch-time predictions have ~0.3 ms std error.
    assert result.prefetch_std_error_ms is None or result.prefetch_std_error_ms < 1.0
    # Paper: the engine's CPU overhead is kept under 1% of a core.
    benchmark.extra_info["cpu_overhead_pct"] = round(
        100 * result.cpu_overhead_fraction, 4
    )
    assert result.cpu_overhead_fraction < 0.01
