"""Figure 13 — motion-to-photon latency on the high-end PC (§5.3)."""

from repro.experiments.appbench import run_fig10
from repro.hw.machine import HIGH_END_DESKTOP


def test_fig13_latency_high_end(benchmark, bench_duration, bench_apps_per_category):
    results = benchmark.pedantic(
        run_fig10,
        args=(HIGH_END_DESKTOP, bench_duration, bench_apps_per_category),
        kwargs=dict(emulators=("vSoC", "GAE", "QEMU-KVM", "LDPlayer", "Bluestacks")),
        rounds=1, iterations=1,
    )
    latencies = {name: r.mean_latency for name, r in results.items() if r.mean_latency}
    for name, value in latencies.items():
        benchmark.extra_info[f"{name}_latency_ms"] = round(value, 1)

    # Paper: vSoC's latency is 35%-62% lower than every other emulator.
    vsoc = latencies["vSoC"]
    for name, value in latencies.items():
        if name == "vSoC":
            continue
        reduction = 1.0 - vsoc / value
        assert reduction > 0.3, f"vSoC should be >=30% lower than {name}"
    # Sub-100 ms motion-to-photon on vSoC (the AR/VR comfort bound, §1).
    assert vsoc < 100.0
