"""Figure 4 — CDF of shared-memory region sizes (§2.3)."""

from repro.experiments.measurement import prevalent_sizes, run_measurement
from repro.units import DISPLAY_BUFFER_BYTES, MIB, UHD_DISPLAY_BUFFER_BYTES, UHD_FRAME_BYTES


def test_fig4_region_sizes(benchmark, bench_duration, bench_apps_per_category):
    result = benchmark.pedantic(
        run_measurement,
        args=("device-proxy",),
        kwargs=dict(duration_ms=bench_duration,
                    apps_per_category=bench_apps_per_category),
        rounds=1, iterations=1,
    )
    assert result.region_sizes, "workloads must allocate shared memory"
    top = prevalent_sizes(result, top=3)
    benchmark.extra_info["prevalent_sizes_mib"] = [round(s / MIB, 1) for s in top]
    # The paper's two spikes: UHD video frames and display buffers. Our
    # evaluation display is UHD (31.6 MiB RGBA) rather than the
    # measurement study's Full-HD+ (9.9 MiB); the frame spike matches.
    assert UHD_FRAME_BYTES in top
    assert UHD_DISPLAY_BUFFER_BYTES in top or DISPLAY_BUFFER_BYTES in top
    large = sum(1 for s in result.region_sizes if s > MIB)
    benchmark.extra_info["fraction_over_1mib"] = round(large / len(result.region_sizes), 2)
    # Paper: 49% of regions are over 1 MiB — the rest are the small
    # CPU-only IPC regions every app allocates.
    assert 0.35 < large / len(result.region_sizes) < 0.65
