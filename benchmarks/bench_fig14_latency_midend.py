"""Figure 14 — motion-to-photon latency on the middle-end laptop (§5.3).

Also checks the paper's camera observation: the laptop's integrated camera
makes camera/AR latency ~10 ms *lower* than on the high-end desktop with
its USB camera.
"""

from repro.experiments.appbench import run_fig10
from repro.hw.machine import HIGH_END_DESKTOP, MIDDLE_END_LAPTOP


def test_fig14_latency_middle_end(benchmark, bench_duration, bench_apps_per_category):
    results = benchmark.pedantic(
        run_fig10,
        args=(MIDDLE_END_LAPTOP, bench_duration, bench_apps_per_category),
        kwargs=dict(emulators=("vSoC", "GAE", "QEMU-KVM")),
        rounds=1, iterations=1,
    )
    latencies = {name: r.mean_latency for name, r in results.items() if r.mean_latency}
    for name, value in latencies.items():
        benchmark.extra_info[f"{name}_latency_ms"] = round(value, 1)
    vsoc = latencies["vSoC"]
    for name, value in latencies.items():
        if name != "vSoC":
            assert vsoc < value  # paper: 33%-61% lower


def test_fig14_integrated_camera_advantage(benchmark, bench_duration,
                                           bench_apps_per_category):
    """Camera-category latency is lower on the laptop despite the weaker
    machine, because its integrated camera's capture path is ~10 ms
    faster than the desktop's USB camera (§5.3)."""

    def run_both_machines():
        high = run_fig10(HIGH_END_DESKTOP, bench_duration, bench_apps_per_category,
                         emulators=("vSoC",))
        mid = run_fig10(MIDDLE_END_LAPTOP, bench_duration, bench_apps_per_category,
                        emulators=("vSoC",))
        return high["vSoC"], mid["vSoC"]

    high, mid = benchmark.pedantic(run_both_machines, rounds=1, iterations=1)
    gap = high.category_latency["Camera"] - mid.category_latency["Camera"]
    benchmark.extra_info["camera_latency_gap_ms"] = round(gap, 1)
    assert 5.0 < gap < 15.0  # paper: ~10 ms (8 ms averaged over camera+AR)
