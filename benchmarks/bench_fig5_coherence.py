"""Figure 5 — coherence time cost of the two baseline emulators (§2.3)."""

from repro.experiments.measurement import run_measurement


def test_fig5_coherence_cdf(benchmark, bench_duration, bench_apps_per_category):
    def run_both():
        return {
            platform: run_measurement(
                platform,
                duration_ms=bench_duration,
                apps_per_category=bench_apps_per_category,
            )
            for platform in ("GAE", "QEMU-KVM")
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    gae = results["GAE"].mean_coherence
    qemu = results["QEMU-KVM"].mean_coherence
    benchmark.extra_info["gae_mean_ms"] = round(gae, 2)
    benchmark.extra_info["qemu_mean_ms"] = round(qemu, 2)
    # Paper: GAE 7.1 ms, QEMU-KVM 6.2 ms — GAE slower. Our app mix
    # includes full-frame AR composition (31.6 MiB maintenances) which
    # lifts the absolute mean above the paper's; the ordering and
    # single-digit-to-low-teens magnitude hold.
    assert gae > qemu
    assert 4.0 < qemu < gae < 15.0
