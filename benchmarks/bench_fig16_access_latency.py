"""Figure 16 — SVM access latency with the prefetch engine off (§5.4)."""

from repro.experiments.breakdown import run_fig16


def test_fig16_write_invalidate_latency(benchmark, bench_duration):
    def run_both():
        return (
            run_fig16(duration_ms=bench_duration, prefetch=False),
            run_fig16(duration_ms=bench_duration, prefetch=True),
        )

    off, on = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["wi_mean_ms"] = round(off.mean, 2)
    benchmark.extra_info["wi_max_ms"] = round(off.maximum, 2)
    benchmark.extra_info["prefetch_mean_ms"] = round(on.mean, 2)

    # Paper: write-invalidate blocks the render thread for up to 40.54 ms,
    # while the prefetch protocol keeps access latency negligible (~0.3 ms).
    assert off.maximum > 10.0
    assert off.mean > 3.0 * on.mean
    assert on.mean < 1.5
