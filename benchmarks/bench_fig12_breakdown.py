"""Figure 12 — FPS breakdown: full vSoC vs no-prefetch vs no-fence (§5.4)."""

from repro.experiments.breakdown import run_fig12


def test_fig12_ablations(benchmark, bench_duration, bench_apps_per_category):
    result = benchmark.pedantic(
        run_fig12,
        kwargs=dict(duration_ms=bench_duration,
                    apps_per_category=bench_apps_per_category),
        rounds=1, iterations=1,
    )
    no_prefetch_drop = result.drop_percent("no-prefetch")
    no_fence_drop = result.drop_percent("no-fence")
    benchmark.extra_info["no_prefetch_drop_pct"] = round(no_prefetch_drop, 1)
    benchmark.extra_info["no_fence_drop_pct"] = round(no_fence_drop, 1)

    # Paper: prefetch off -> -30% average; fence off -> -11%.
    assert 15.0 < no_prefetch_drop < 50.0
    assert 0.0 < no_fence_drop < 20.0
    assert no_prefetch_drop > no_fence_drop

    # Video is hit hardest by the prefetch ablation (paper: -66%).
    video = result.category_fps["UHD Video"]
    video_drop = 100.0 * (1.0 - video["no-prefetch"] / video["vSoC"])
    benchmark.extra_info["video_drop_pct"] = round(video_drop, 1)
    assert video_drop > 35.0
