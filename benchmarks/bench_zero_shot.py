"""§3.3's zero-shot design choice, quantified.

"We record R/W history into coarse-grained data flows instead of
fine-grained SVM regions to achieve zero-shot predictions for new SVM
regions when switching data pipelines." A short-form video app switches
clips (and hence allocates fresh buffer regions) every ~2.5 s; with
flow-level history the engine keeps prefetching through the switches,
with region-level history every new buffer pays cold starts.
"""

from repro.apps import ShortFormVideoApp
from repro.emulators import make_vsoc
from repro.experiments.runner import run_app


def _factory_without_zero_shot(sim, machine, trace=None, rng=None):
    emulator = make_vsoc(sim, machine, trace=trace, rng=rng)
    emulator.engine.zero_shot = False
    return emulator


def test_zero_shot_predictions_survive_pipeline_switches(benchmark, bench_duration):
    def run_both():
        with_zero_shot = run_app(ShortFormVideoApp(), "vSoC",
                                 duration_ms=2 * bench_duration)
        without = run_app(ShortFormVideoApp(), "vSoC",
                          duration_ms=2 * bench_duration,
                          factory=_factory_without_zero_shot)
        return with_zero_shot, without

    with_zs, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    zs_stats = with_zs.emulator.engine.stats
    no_stats = without.emulator.engine.stats

    benchmark.extra_info["cold_starts_with"] = zs_stats.cold_starts
    benchmark.extra_info["cold_starts_without"] = no_stats.cold_starts
    benchmark.extra_info["fps_with"] = round(with_zs.result.fps, 1)
    benchmark.extra_info["fps_without"] = round(without.result.fps, 1)

    # Flow-level history: a handful of cold starts (emulator startup only).
    # Region-level history: cold starts scale with clips x buffers.
    assert no_stats.cold_starts > 3 * max(1, zs_stats.cold_starts)
    assert zs_stats.launched > no_stats.launched
    assert with_zs.result.fps >= without.result.fps
