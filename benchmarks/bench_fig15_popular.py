"""Figure 15 — FPS of the top-25 popular apps on the high-end PC (§5.5)."""

from repro.experiments.popular import pairwise_improvement, run_fig15


def test_fig15_popular_apps(benchmark, bench_duration):
    results = benchmark.pedantic(
        run_fig15, kwargs=dict(duration_ms=bench_duration), rounds=1, iterations=1
    )
    means = {name: r.mean_fps for name, r in results.items()}
    for name, mean in means.items():
        benchmark.extra_info[f"{name}_fps"] = round(mean, 1)

    # Paper Fig 15 shape: vSoC best; GAE among the worst baselines (its
    # runnable set skews heavy); Trinity the best baseline.
    assert means["vSoC"] == max(means.values())
    bottom_two = sorted(means, key=means.get)[:2]
    assert "GAE" in bottom_two
    assert means["Trinity"] == max(v for k, v in means.items() if k != "vSoC")

    # Paper: 12%-49% pairwise improvement band (moderate, unlike the
    # 82%-797% of the emerging apps). Allow a wider but still-moderate band.
    for name in results:
        if name == "vSoC":
            continue
        gain = pairwise_improvement(results, name)
        benchmark.extra_info[f"gain_vs_{name}_pct"] = round(gain, 1)
        assert 5.0 < gain < 70.0

    # Runnable counts (paper: 25/21/17/25/24/24).
    counts = {name: r.runnable for name, r in results.items()}
    benchmark.extra_info["runnable"] = counts
    assert counts == {
        "vSoC": 25, "GAE": 21, "QEMU-KVM": 17,
        "LDPlayer": 25, "Bluestacks": 24, "Trinity": 24,
    }
