"""Chaos benchmark — FPS/latency per fault class, and the acceptance bar.

Runs UHD video on vSoC once per fault class (fault-free, bus flap,
transient copy faults, device stall, transport drops, full chaos) and
asserts the robustness contract: the full scenario completes with no
unhandled exceptions, the coherence ladder demonstrably degrades and
restores, and steady-state FPS after fault clearance lands within 2× of
the fault-free run.
"""

from repro.experiments.chaos import run_fault_classes


def test_chaos_fault_classes(benchmark, bench_duration):
    results = benchmark.pedantic(
        run_fault_classes,
        kwargs=dict(duration_ms=bench_duration, seed=0),
        rounds=1, iterations=1,
    )
    for label, r in results.items():
        benchmark.extra_info[f"{label}_fps"] = round(r.fps, 1)
        benchmark.extra_info[f"{label}_steady_fps"] = round(r.steady_fps, 1)
    chaos = results["full-chaos"]
    baseline = results["fault-free"]

    # The full scenario injected every fault class it promised.
    assert chaos.injected["load_changes"] > 0
    assert chaos.injected["copy_faults"] > 0
    assert chaos.injected["stalls"] == 1
    assert chaos.injected["transport_drops"] > 0

    # The ladder demonstrably entered and exited degraded mode.
    assert chaos.entered_degraded
    assert chaos.exited_degraded
    benchmark.extra_info["degrades"] = chaos.degrades
    benchmark.extra_info["restores"] = chaos.restores
    benchmark.extra_info["time_degraded_ms"] = round(chaos.time_degraded_ms)

    # Acceptance bar: steady-state FPS within 2x of fault-free after the
    # faults clear.
    assert chaos.steady_fps >= baseline.steady_fps / 2.0

    # Single-class runs stay milder than the full storm degrades-wise.
    assert results["fault-free"].degrades == 0
    assert results["fault-free"].retries == 0
