"""Experiment-engine benchmarks: kernel hot path + memoized parallel sweeps."""

from repro.experiments.bench import bench_kernel, bench_suite, validate_bench_schema


def test_kernel_beats_frozen_baseline(benchmark):
    result = benchmark.pedantic(bench_kernel, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = result["speedup"]
    benchmark.extra_info["events"] = result["events"]
    # The optimized kernel must not regress past the frozen pre-PR copy.
    assert result["speedup"] > 1.0


def test_engine_suite_memoizes(benchmark, bench_duration):
    suite = benchmark.pedantic(
        bench_suite,
        kwargs=dict(jobs=2, duration_ms=bench_duration, per_category=1,
                    emulators=("vSoC", "GAE")),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["parallel_speedup"] = suite["parallel_speedup"]
    benchmark.extra_info["warm_cache_hit_rate"] = suite["warm_cache_hit_rate"]
    assert suite["parallel_identical"]
    assert suite["warm_identical"]
    assert suite["warm_cache_hit_rate"] == 1.0
    # Warm rerun must be dominated by cache loads, not simulation.
    assert suite["warm_s"] < suite["serial_s"] / 2


def test_bench_report_schema():
    from repro.experiments.bench import run_bench

    report = run_bench(jobs=2, quick=True)
    assert validate_bench_schema(report) == []
