"""Instance density: emulators per host (the device-farm question, §7)."""

from repro.experiments.density import run_density_comparison


def test_density_vsoc_densest(benchmark, bench_duration):
    results = benchmark.pedantic(
        run_density_comparison,
        kwargs=dict(emulators=("vSoC", "GAE"), instance_counts=(1, 2, 4),
                    duration_ms=bench_duration),
        rounds=1, iterations=1,
    )
    for name, r in results.items():
        benchmark.extra_info[f"{name}_fps_by_n"] = {
            str(n): round(f, 1) for n, f in r.fps_by_instances.items()
        }
    # Per-instance FPS degrades with sharing, and vSoC sustains at least
    # GAE's rate at every density (lower bus traffic -> more headroom).
    for name, r in results.items():
        fps = r.fps_by_instances
        assert fps[1] >= fps[2] >= fps[4]
    for count in (1, 2, 4):
        assert (results["vSoC"].fps_by_instances[count]
                >= results["GAE"].fps_by_instances[count])
