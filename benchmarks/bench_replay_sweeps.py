"""Open-loop replay and bandwidth sensitivity (extension experiments)."""

from repro.apps import UhdVideoApp
from repro.experiments.runner import run_app
from repro.experiments.sweeps import boundary_crossover, sweep_boundary_bandwidth
from repro.workloads import record_workload, replay_workload


def test_open_loop_replay_isolates_architecture(benchmark, bench_duration):
    """Identical access pattern on both architectures: the per-maintenance
    cost ratio matches Table 2 without app-side feedback."""

    def run_replay():
        source = run_app(UhdVideoApp(), "vSoC", duration_ms=bench_duration)
        trace = record_workload(source.stats.trace, name="uhd")
        return (replay_workload(trace, "vSoC"), replay_workload(trace, "GAE"))

    vsoc, gae = benchmark.pedantic(run_replay, rounds=1, iterations=1)
    benchmark.extra_info["vsoc_mean_coherence_ms"] = round(vsoc.mean_coherence_ms, 2)
    benchmark.extra_info["gae_mean_coherence_ms"] = round(gae.mean_coherence_ms, 2)
    ratio = gae.mean_coherence_ms / vsoc.mean_coherence_ms
    benchmark.extra_info["cost_ratio"] = round(ratio, 2)
    assert 2.0 < ratio < 4.5  # paper Table 2: 7.05 / 2.38 ≈ 3.0


def test_boundary_bandwidth_no_crossover(benchmark, bench_duration):
    """Sensitivity: GAE's video FPS saturates below vSoC's even with an
    arbitrarily fast virtualization boundary — its software decoder is the
    second, independent bottleneck."""

    def run_sweep():
        sweep = sweep_boundary_bandwidth((4.6, 18.0, 72.0),
                                         duration_ms=bench_duration)
        crossover = boundary_crossover(duration_ms=bench_duration,
                                       gbps_values=(18.0, 72.0))
        return sweep, crossover

    sweep, crossover = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    benchmark.extra_info["gae_fps_by_boundary_gbps"] = {
        str(k): round(v, 1) for k, v in sweep.items()
    }
    benchmark.extra_info["crossover_gbps"] = crossover
    assert sweep[72.0] >= sweep[4.6]
    assert crossover is None
