"""Shared benchmark configuration.

Each benchmark regenerates one table/figure of the paper with reduced
durations (shapes are preserved; absolute sample counts shrink). The
regenerated headline numbers are attached to ``benchmark.extra_info`` so
``--benchmark-only`` output doubles as a mini experiment report.
"""

import pytest

#: Simulated milliseconds per app run in benchmarks (full runs use 22 s+).
BENCH_DURATION_MS = 6_000.0
#: Apps per Table-1 category in benchmark sweeps (full runs use 10).
BENCH_APPS_PER_CATEGORY = 2


@pytest.fixture
def bench_duration():
    return BENCH_DURATION_MS


@pytest.fixture
def bench_apps_per_category():
    return BENCH_APPS_PER_CATEGORY
