"""Figure 10 — FPS of the emerging apps on the high-end PC (§5.3)."""

from repro.experiments.appbench import run_fig10
from repro.hw.machine import HIGH_END_DESKTOP


def test_fig10_fps_high_end(benchmark, bench_duration, bench_apps_per_category):
    results = benchmark.pedantic(
        run_fig10,
        args=(HIGH_END_DESKTOP, bench_duration, bench_apps_per_category),
        rounds=1, iterations=1,
    )
    means = {name: r.mean_fps for name, r in results.items()}
    for name, mean in means.items():
        benchmark.extra_info[f"{name}_fps"] = round(mean, 1)

    # Shape contract (paper Fig 10): vSoC near full rate, everyone else
    # well below, in this order: vSoC > GAE > QEMU-KVM > LDPlayer >
    # Bluestacks > Trinity(video only).
    assert means["vSoC"] > 50.0
    assert (
        means["vSoC"] > means["GAE"] > means["QEMU-KVM"]
        > means["LDPlayer"] > means["Bluestacks"] > means["Trinity"]
    )
    # Paper: 82%-797% better on average; require at least 1.5x over the
    # best baseline and 4x over Trinity.
    assert means["vSoC"] / means["GAE"] > 1.5
    assert means["vSoC"] / means["Trinity"] > 4.0
    # Trinity runs only the 2 video categories (no camera, no encoder).
    assert set(results["Trinity"].category_fps) == {"UHD Video", "360 Video"}
