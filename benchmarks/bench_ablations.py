"""Design-choice ablations (DESIGN.md §5): the benchmarks behind the
paper's one-line justifications."""

from repro.experiments.ablations import (
    compensation_ablation,
    suspension_ablation,
    sweep_alpha,
    sweep_buffering,
)


def test_alpha_half_is_the_sweet_spot(benchmark):
    """§3.3: 'α is empirically chosen as 0.5 according to our benchmarks'."""
    errors = benchmark.pedantic(sweep_alpha, rounds=1, iterations=1)
    benchmark.extra_info["rms_error_by_alpha"] = {
        str(a): round(e, 3) for a, e in errors.items()
    }
    best = min(errors, key=errors.get)
    assert best == 0.5
    # extremes are clearly worse than the middle
    assert errors[0.1] > errors[0.5]
    assert errors[0.9] > errors[0.5]


def test_compensation_keeps_reads_unblocked(benchmark):
    """Figure 8: with the driver's time-delta blocking, the next SVM
    access never observes the prefetch; without it, reads block."""
    results = benchmark.pedantic(compensation_ablation, rounds=1, iterations=1)
    with_comp = results[True].mean_read_latency_ms
    without = results[False].mean_read_latency_ms
    benchmark.extra_info["read_latency_with_ms"] = round(with_comp, 3)
    benchmark.extra_info["read_latency_without_ms"] = round(without, 3)
    assert with_comp < 0.5
    assert without > 2.0 * with_comp


def test_suspension_avoids_bandwidth_waste(benchmark):
    """§3.3: three consecutive failures suspend prefetch 'to avoid
    bandwidth waste' — measure exactly that waste."""
    results = benchmark.pedantic(suspension_ablation, rounds=1, iterations=1)
    with_policy = results[3]
    without = results[10**9]
    benchmark.extra_info["wasted_with_policy"] = with_policy.wasted_prefetches
    benchmark.extra_info["wasted_without"] = without.wasted_prefetches
    assert with_policy.wasted_prefetches < 0.5 * without.wasted_prefetches


def test_buffering_stretches_slack(benchmark):
    """§2.3 / Figure 6: buffered pipelines show >30 ms slacks, unbuffered
    stay under ~20 ms."""
    slacks = benchmark.pedantic(sweep_buffering, rounds=1, iterations=1)
    benchmark.extra_info["mean_slack_by_depth"] = {
        str(d): round(s, 1) for d, s in slacks.items()
    }
    assert slacks[1] < 30.0
    assert slacks[4] > 30.0
    assert slacks[1] < slacks[2] < slacks[4]
