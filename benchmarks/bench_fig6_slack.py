"""Figure 6 — slack intervals between cross-device SVM accesses (§2.3)."""

from repro.experiments.measurement import run_measurement


def test_fig6_slack_intervals(benchmark, bench_duration, bench_apps_per_category):
    def run_three():
        return {
            platform: run_measurement(
                platform,
                duration_ms=bench_duration,
                apps_per_category=bench_apps_per_category,
            )
            for platform in ("device-proxy", "GAE", "QEMU-KVM")
        }

    results = benchmark.pedantic(run_three, rounds=1, iterations=1)
    for platform, r in results.items():
        assert r.slack_intervals, f"{platform}: no slack samples"
        benchmark.extra_info[f"{platform}_mean_ms"] = round(r.mean_slack, 2)
        # Paper: typically tens of ms (avg 17.2), longer than coherence.
        assert 5.0 < r.mean_slack < 40.0
    # Slack is OS-level (VSync + buffering), so platforms agree (§2.3).
    means = [r.mean_slack for r in results.values()]
    assert max(means) / min(means) < 2.5
