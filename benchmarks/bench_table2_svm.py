"""Table 2 — SVM microbenchmark (access latency / coherence / throughput)."""

from repro.experiments.microbench import run_svm_microbench
from repro.hw.machine import HIGH_END_DESKTOP, MIDDLE_END_LAPTOP


def _check_row(result, paper_access, paper_coherence):
    """The shape contract: within a loose band of the paper's values."""
    assert 0.5 * paper_access <= result.access_latency_ms <= 2.0 * paper_access
    assert 0.7 * paper_coherence <= result.coherence_cost_ms <= 1.4 * paper_coherence


def test_table2_vsoc_high_end(benchmark, bench_duration):
    result = benchmark.pedantic(
        run_svm_microbench, args=("vSoC", HIGH_END_DESKTOP, bench_duration),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["access_latency_ms"] = round(result.access_latency_ms, 3)
    benchmark.extra_info["coherence_cost_ms"] = round(result.coherence_cost_ms, 3)
    benchmark.extra_info["throughput_gbps"] = round(result.throughput_gbps, 3)
    _check_row(result, paper_access=0.34, paper_coherence=2.38)


def test_table2_gae_high_end(benchmark, bench_duration):
    result = benchmark.pedantic(
        run_svm_microbench, args=("GAE", HIGH_END_DESKTOP, bench_duration),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["coherence_cost_ms"] = round(result.coherence_cost_ms, 3)
    _check_row(result, paper_access=0.76, paper_coherence=7.05)


def test_table2_qemu_high_end(benchmark, bench_duration):
    result = benchmark.pedantic(
        run_svm_microbench, args=("QEMU-KVM", HIGH_END_DESKTOP, bench_duration),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["coherence_cost_ms"] = round(result.coherence_cost_ms, 3)
    _check_row(result, paper_access=0.22, paper_coherence=6.15)


def test_table2_vsoc_middle_end(benchmark, bench_duration):
    result = benchmark.pedantic(
        run_svm_microbench, args=("vSoC", MIDDLE_END_LAPTOP, bench_duration),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["coherence_cost_ms"] = round(result.coherence_cost_ms, 3)
    _check_row(result, paper_access=0.38, paper_coherence=3.45)


def test_table2_throughput_ordering(benchmark, bench_duration):
    """vSoC > GAE > QEMU-KVM in SVM throughput (Table 2's ordering)."""

    def run_all():
        return {
            name: run_svm_microbench(name, HIGH_END_DESKTOP, bench_duration)
            for name in ("vSoC", "GAE", "QEMU-KVM")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, r in results.items():
        benchmark.extra_info[f"{name}_gbps"] = round(r.throughput_gbps, 3)
    assert (
        results["vSoC"].throughput_gbps
        > results["GAE"].throughput_gbps
        > results["QEMU-KVM"].throughput_gbps
    )
