"""§5.5 — ablations over the top-25 popular apps.

Paper: with prefetch off, 20 of 25 apps (80%) lose frames, average -6%;
with fences off, 24 of 25 (96%), average -8%.
"""

from repro.experiments.breakdown import run_popular_breakdown


def test_popular_breakdown(benchmark, bench_duration):
    results = benchmark.pedantic(
        run_popular_breakdown, kwargs=dict(duration_ms=bench_duration),
        rounds=1, iterations=1,
    )
    for variant, r in results.items():
        benchmark.extra_info[f"{variant}_apps_with_drops"] = r.apps_with_drops
        benchmark.extra_info[f"{variant}_avg_drop_pct"] = round(r.average_drop_percent, 1)

    # Moderate (single-digit to low-double-digit) average drops, and a
    # non-trivial fraction of apps affected.
    no_prefetch = results["no-prefetch"]
    no_fence = results["no-fence"]
    assert 0.0 <= no_prefetch.average_drop_percent < 25.0
    assert 0.0 <= no_fence.average_drop_percent < 25.0
    assert no_prefetch.apps_with_drops + no_fence.apps_with_drops > 0
