"""§7 — why not a broadcast protocol? Quantifying the bandwidth overhead.

The related-work section rejects classical broadcast coherence for mobile
emulation "because of high access latency or bandwidth overhead". Running
vSoC's unified framework with a broadcast protocol instead of the prefetch
protocol shows the cost directly: every framebuffer write gets pushed
GPU→host although nothing reads it there, roughly doubling PCIe traffic
for the same FPS.
"""

import functools

from repro.apps import UhdVideoApp
from repro.emulators import make_vsoc
from repro.experiments.runner import run_app


def test_broadcast_wastes_bandwidth(benchmark, bench_duration):
    def run_both():
        prefetch = run_app(UhdVideoApp(), "vSoC", duration_ms=bench_duration)
        broadcast = run_app(
            UhdVideoApp(), "vSoC", duration_ms=bench_duration,
            factory=functools.partial(make_vsoc, broadcast=True),
        )
        return prefetch, broadcast

    prefetch, broadcast = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def mib_per_frame(run):
        return (run.emulator.machine.pcie.bytes_moved
                / max(1, run.result.presented) / (1 << 20))

    prefetch_traffic = mib_per_frame(prefetch)
    broadcast_traffic = mib_per_frame(broadcast)
    benchmark.extra_info["prefetch_mib_per_frame"] = round(prefetch_traffic, 1)
    benchmark.extra_info["broadcast_mib_per_frame"] = round(broadcast_traffic, 1)

    # Similar FPS...
    assert broadcast.result.fps > 0.9 * prefetch.result.fps
    # ...at well over 1.5x the bus traffic — the §7 rejection, quantified.
    assert broadcast_traffic > 1.5 * prefetch_traffic
