"""Unit tests for MIMD flow control (repro.core.flowcontrol)."""

import pytest

from repro.core import MimdFlowControl
from repro.errors import ConfigurationError
from repro.sim import Simulator, Timeout


def test_dispatch_within_window_is_immediate():
    sim = Simulator()
    fc = MimdFlowControl(sim, initial_window=4.0)
    assert fc.try_dispatch()
    assert fc.in_flight == 1


def test_window_shrinks_on_rejection():
    sim = Simulator()
    fc = MimdFlowControl(sim, initial_window=2.0)
    assert fc.try_dispatch()
    assert fc.try_dispatch()
    before = fc.window
    assert not fc.try_dispatch()
    assert fc.window == pytest.approx(before * 0.7)
    assert fc.throttle_events == 1


def test_window_grows_on_completion():
    sim = Simulator()
    fc = MimdFlowControl(sim, initial_window=8.0)
    fc.try_dispatch()
    before = fc.window
    fc.complete()
    assert fc.window == pytest.approx(before * 1.05)
    assert fc.in_flight == 0


def test_window_respects_bounds():
    sim = Simulator()
    fc = MimdFlowControl(sim, initial_window=1.0, min_window=1.0, max_window=2.0)
    fc.try_dispatch()
    assert not fc.try_dispatch()
    assert fc.window == 1.0  # cannot shrink below min
    for _ in range(100):
        fc.complete()
        fc.try_dispatch()
    assert fc.window <= 2.0


def test_blocked_dispatch_resumes_after_completion():
    sim = Simulator()
    fc = MimdFlowControl(sim, initial_window=1.0)
    timeline = []

    def guest():
        yield fc.dispatch()
        timeline.append(("first", sim.now))
        yield fc.dispatch()  # blocked: window is 1 (after shrink)
        timeline.append(("second", sim.now))

    def host():
        yield Timeout(10.0)
        fc.complete()

    sim.spawn(guest())
    sim.spawn(host())
    sim.run()
    assert timeline[0] == ("first", 0.0)
    assert timeline[1][1] == pytest.approx(10.0)
    assert fc.backlog == 0


def test_complete_without_dispatch_rejected():
    sim = Simulator()
    fc = MimdFlowControl(sim)
    with pytest.raises(ConfigurationError):
        fc.complete()


def test_invalid_configuration_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        MimdFlowControl(sim, initial_window=0.5, min_window=1.0)
    with pytest.raises(ConfigurationError):
        MimdFlowControl(sim, increase=0.9)
    with pytest.raises(ConfigurationError):
        MimdFlowControl(sim, decrease=1.5)


def test_window_oscillates_around_service_rate():
    """Classic MIMD: sustained over-dispatch keeps the window bounded."""
    sim = Simulator()
    fc = MimdFlowControl(sim, initial_window=64.0)

    def guest():
        for _ in range(200):
            yield fc.dispatch()

    def host():
        # Retire slowly: two per ms.
        for _ in range(200):
            yield Timeout(0.5)
            fc.complete()

    sim.spawn(guest())
    sim.spawn(host())
    sim.run()
    assert fc.in_flight == 0
    assert fc.throttle_events > 0
    assert fc.window <= 256.0


# ---------------------------------------------------------------------------
# snapshot_state / restore_state hardening (live-migration wire path)
# ---------------------------------------------------------------------------

def test_restore_state_round_trips():
    sim = Simulator()
    src = MimdFlowControl(sim, initial_window=8.0)
    assert src.try_dispatch() and src.try_dispatch()
    state = src.snapshot_state()
    dst = MimdFlowControl(sim, initial_window=64.0)
    dst.restore_state(state)
    assert dst.window == pytest.approx(src.window)
    assert dst.in_flight == 2
    assert dst.throttle_events == src.throttle_events


def test_restore_state_rejects_non_dict():
    fc = MimdFlowControl(Simulator(), initial_window=4.0)
    with pytest.raises(ValueError, match="must be a dict"):
        fc.restore_state([("window", 4.0)])


def test_restore_state_names_missing_keys():
    fc = MimdFlowControl(Simulator(), initial_window=4.0)
    with pytest.raises(ValueError, match="missing keys.*in_flight"):
        fc.restore_state({"window": 4.0, "throttle_events": 0})


@pytest.mark.parametrize("window", [float("nan"), float("inf"), -1.0, 0.0,
                                    "4", True, None])
def test_restore_state_rejects_bad_window(window):
    fc = MimdFlowControl(Simulator(), initial_window=4.0)
    with pytest.raises(ValueError, match="window"):
        fc.restore_state({"window": window, "in_flight": 0,
                          "throttle_events": 0})


@pytest.mark.parametrize("key", ["in_flight", "throttle_events"])
@pytest.mark.parametrize("value", [-1, 1.5, True, "3", None])
def test_restore_state_rejects_bad_counters(key, value):
    fc = MimdFlowControl(Simulator(), initial_window=4.0)
    state = {"window": 4.0, "in_flight": 0, "throttle_events": 0, key: value}
    with pytest.raises(ValueError, match=key):
        fc.restore_state(state)


def test_failed_restore_leaves_state_untouched():
    fc = MimdFlowControl(Simulator(), initial_window=4.0)
    assert fc.try_dispatch()
    with pytest.raises(ValueError):
        fc.restore_state({"window": float("nan"), "in_flight": 0,
                          "throttle_events": 0})
    assert fc.window == pytest.approx(4.0)
    assert fc.in_flight == 1
