"""Unit tests for physical device models (repro.hw.device)."""

import pytest

from repro.errors import HardwareError
from repro.hw import Bus, Camera, Cpu, DeviceKind, Gpu, MemoryPool, Nic, PhysicalDevice
from repro.hw.device import OpCost
from repro.sim import Simulator
from repro.units import GIB, MIB, UHD_FRAME_BYTES, gb_per_s


def make_cpu(sim, thermal=None):
    return Cpu(
        sim,
        cores=8,
        memcpy_bandwidth=gb_per_s(10.0),
        sw_decode_bandwidth=gb_per_s(1.5),
        sw_encode_bandwidth=gb_per_s(1.0),
        sw_convert_bandwidth=gb_per_s(3.0),
        thermal=thermal,
    )


def make_gpu(sim):
    vram = MemoryPool("vram", 8 * GIB)
    pcie = Bus(sim, "pcie", gb_per_s(7.0), latency=0.01)
    return Gpu(
        sim,
        vram=vram,
        pcie=pcie,
        render_fixed=0.5,
        render_bandwidth=gb_per_s(40.0),
        hw_decode_fixed=1.2,
        hw_decode_bandwidth=gb_per_s(10.0),
        hw_encode_fixed=2.0,
        hw_encode_bandwidth=gb_per_s(8.0),
        convert_bandwidth=gb_per_s(25.0),
    )


def test_opcost_fixed_plus_linear():
    cost = OpCost(fixed=1.0, bandwidth=100.0)
    assert cost.time(0) == 1.0
    assert cost.time(500) == 6.0


def test_opcost_size_independent():
    cost = OpCost(fixed=2.0, bandwidth=None)
    assert cost.time(10**9) == 2.0


def test_unknown_op_raises():
    sim = Simulator()
    cpu = make_cpu(sim)
    with pytest.raises(HardwareError, match="does not support"):
        cpu.op_time("levitate")


def test_supports():
    sim = Simulator()
    cpu = make_cpu(sim)
    assert cpu.supports("sw_decode")
    assert not cpu.supports("hw_decode")


def test_run_op_advances_clock_and_stats():
    sim = Simulator()
    gpu = make_gpu(sim)
    expected = gpu.op_time("hw_decode", UHD_FRAME_BYTES)

    def proc():
        yield from gpu.run_op("hw_decode", UHD_FRAME_BYTES)

    sim.spawn(proc())
    sim.run()
    assert sim.now == pytest.approx(expected)
    assert gpu.ops_executed == 1
    assert gpu.busy_time == pytest.approx(expected)


def test_ops_on_one_device_serialize():
    sim = Simulator()
    gpu = make_gpu(sim)
    done = []

    def proc(label):
        yield from gpu.run_op("present")  # 0.05 ms fixed
        done.append((label, sim.now))

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run()
    assert done[0][0] == "a"
    assert done[1][1] == pytest.approx(0.10)


def test_gpu_decode_time_in_realistic_band():
    """UHD hw decode should land in the low single-digit ms (NVDEC-like)."""
    sim = Simulator()
    gpu = make_gpu(sim)
    t = gpu.op_time("hw_decode", UHD_FRAME_BYTES)
    assert 1.5 < t < 5.0


def test_cpu_sw_decode_slower_than_gpu_hw_decode():
    sim = Simulator()
    cpu, gpu = make_cpu(sim), make_gpu(sim)
    assert cpu.op_time("sw_decode", UHD_FRAME_BYTES) > gpu.op_time(
        "hw_decode", UHD_FRAME_BYTES
    )


def test_camera_capture_latency():
    sim = Simulator()
    cam = Camera(sim, capture_latency=25.0, frame_interval=16.67)
    assert cam.op_time("capture") == 25.0
    assert cam.kind is DeviceKind.CAMERA


def test_camera_bad_interval_rejected():
    sim = Simulator()
    with pytest.raises(HardwareError):
        Camera(sim, capture_latency=10.0, frame_interval=0.0)


def test_nic_recv_scales_with_size():
    sim = Simulator()
    nic = Nic(sim, bandwidth=gb_per_s(0.125), latency=0.3)
    small = nic.op_time("recv", 1000)
    large = nic.op_time("recv", MIB)
    assert large > small > 0.3


def test_cpu_has_no_local_memory():
    """CPU operates on host memory directly — planner relies on this."""
    sim = Simulator()
    cpu = make_cpu(sim)
    assert cpu.local_memory is None
    assert cpu.link is None


def test_gpu_has_local_memory_and_link():
    sim = Simulator()
    gpu = make_gpu(sim)
    assert gpu.local_memory is not None
    assert gpu.link is not None


def test_zero_core_cpu_rejected():
    sim = Simulator()
    with pytest.raises(HardwareError):
        Cpu(sim, cores=0, memcpy_bandwidth=1.0, sw_decode_bandwidth=1.0,
            sw_encode_bandwidth=1.0, sw_convert_bandwidth=1.0)


def test_generic_device_custom_ops():
    sim = Simulator()
    dev = PhysicalDevice(
        sim, "widget", DeviceKind.ISP, op_costs={"noop": OpCost(fixed=0.0)}
    )

    def proc():
        duration = yield from dev.run_op("noop")
        return duration

    p = sim.spawn(proc())
    sim.run()
    assert p.value == 0.0
