"""Integration tests for the system services (repro.guest.services)."""

import random

from repro.emulators import make_vsoc, make_gae
from repro.guest import BufferQueue, VSyncSource
from repro.guest.services import CameraService, FrameMeta, MediaService, SurfaceFlinger
from repro.hw import build_machine
from repro.metrics.collectors import FpsCollector, LatencyCollector
from repro.sim import Simulator
from repro.units import UHD_DISPLAY_BUFFER_BYTES, UHD_FRAME_BYTES


def build(factory=make_vsoc):
    sim = Simulator()
    machine = build_machine(sim)
    emulator = factory(sim, machine, rng=random.Random(0))
    vsync = VSyncSource(sim)
    fps = FpsCollector()
    return sim, emulator, vsync, fps


def spawn_video(sim, emulator, vsync, fps, latency=None, buffers=4):
    queue = BufferQueue(sim, emulator, buffers, UHD_FRAME_BYTES)
    flinger = SurfaceFlinger(
        sim, emulator, vsync, fps, latency=latency,
        display_bytes=UHD_DISPLAY_BUFFER_BYTES, compose_dirty_fraction=0.5,
    )
    media = MediaService(sim, emulator, queue, flinger, fps,
                         frame_bytes=UHD_FRAME_BYTES)
    sim.spawn(flinger.run(), name="sf")
    sim.spawn(media.run_source(), name="source")
    sim.spawn(media.run_decoder(), name="decoder")
    sim.spawn(media.run_callbacks(), name="callbacks")
    return flinger, media


def test_video_pipeline_reaches_full_rate_on_vsoc():
    sim, emulator, vsync, fps = build()
    spawn_video(sim, emulator, vsync, fps)
    sim.run(until=5_000.0)
    # near-full rate (paper: ~57 FPS — occasional phase-misses are real)
    assert fps.fps(5_000.0, warmup_ms=1_000.0) > 52.0


def test_video_pipeline_halves_on_gae():
    sim, emulator, vsync, fps = build(make_gae)
    spawn_video(sim, emulator, vsync, fps)
    sim.run(until=5_000.0)
    assert 25.0 < fps.fps(5_000.0, warmup_ms=1_000.0) < 40.0


def test_flinger_presents_at_most_once_per_vsync():
    sim, emulator, vsync, fps = build()
    spawn_video(sim, emulator, vsync, fps)
    sim.run(until=3_000.0)
    times = fps.present_times
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert min(deltas) >= 16.0  # one frame per tick, never faster


def test_flinger_supersede_drops_when_backlogged():
    """Two frames pending at one tick: the older is dropped (catch-up)."""
    sim, emulator, vsync, fps = build()
    queue = BufferQueue(sim, emulator, 4, UHD_FRAME_BYTES)
    flinger = SurfaceFlinger(sim, emulator, vsync, fps)
    sim.spawn(flinger.run(), name="sf")
    for sequence in range(3):
        buffer = queue.try_dequeue_free()
        flinger.submit(buffer, queue, FrameMeta(birth=0.0, sequence=sequence))
    sim.run(until=100.0)
    assert fps.dropped.get("superseded", 0) + fps.dropped.get("missed-deadline", 0) == 2
    assert fps.presented >= 1


def test_deadline_discard_counts_missed_frames():
    sim, emulator, vsync, fps = build()
    queue = BufferQueue(sim, emulator, 4, UHD_FRAME_BYTES)
    flinger = SurfaceFlinger(sim, emulator, vsync, fps, honor_deadlines=True)
    sim.spawn(flinger.run(), name="sf")
    stale = FrameMeta(birth=0.0, sequence=0, deadline=1.0)  # long past
    fresh = FrameMeta(birth=0.0, sequence=1)
    for meta in (stale, fresh):
        buffer = queue.try_dequeue_free()
        flinger.submit(buffer, queue, meta)
    sim.run(until=100.0)
    assert fps.dropped.get("missed-deadline") == 1


def test_media_source_drops_on_overrun():
    """A stalled decoder forces source-side frame drops (§5.3 stutter)."""
    sim, emulator, vsync, fps = build()
    queue = BufferQueue(sim, emulator, 1, UHD_FRAME_BYTES)
    flinger = SurfaceFlinger(sim, emulator, vsync, fps)
    media = MediaService(sim, emulator, queue, flinger, fps,
                         frame_bytes=UHD_FRAME_BYTES, jitter_capacity=2)
    # no decoder/callback processes: the jitter queue can only fill up
    sim.spawn(media.run_source(), name="source")
    sim.run(until=2_000.0)
    assert fps.dropped.get("source-overrun", 0) > 50


def test_camera_service_measures_capture_latency():
    sim, emulator, vsync, fps = build()
    latency = LatencyCollector()
    raw = BufferQueue(sim, emulator, 3, UHD_FRAME_BYTES)
    out = BufferQueue(sim, emulator, 3, UHD_FRAME_BYTES)
    flinger = SurfaceFlinger(sim, emulator, vsync, fps, latency=latency,
                             compose_dirty_fraction=0.9, honor_deadlines=False)
    service = CameraService(sim, emulator, raw, out, flinger, fps,
                            frame_bytes=UHD_FRAME_BYTES)
    sim.spawn(flinger.run(), name="sf")
    sim.spawn(service.run_sensor(), name="sensor")
    sim.spawn(service.run_pipeline(), name="pipeline")
    sim.run(until=4_000.0)
    assert latency.samples
    # motion-to-photon must at least include the 25 ms USB capture path
    assert latency.average > 25.0
    assert latency.average < 100.0  # the §1 comfort bound on vSoC


def test_flinger_stop_halts_composition():
    sim, emulator, vsync, fps = build()
    flinger, media = spawn_video(sim, emulator, vsync, fps)
    sim.run(until=1_000.0)
    presented = fps.presented
    flinger.stop()
    media.stop()
    sim.run(until=1_200.0)
    assert fps.presented <= presented + 2  # at most one in-flight frame
