"""Unit tests for VSync and BufferQueue (repro.guest)."""

import random

import pytest

from repro.emulators import make_vsoc
from repro.errors import ConfigurationError
from repro.guest import BufferQueue, VSyncSource
from repro.hw import build_machine
from repro.sim import Simulator, Timeout
from repro.units import MIB, VSYNC_PERIOD_MS


# --- VSyncSource ------------------------------------------------------------

def test_vsync_ticks_at_period():
    sim = Simulator()
    vsync = VSyncSource(sim, period=10.0)
    times = []

    def watcher():
        for _ in range(3):
            t = yield vsync.wait_next()
            times.append(t)

    sim.spawn(watcher())
    sim.run(until=100.0)
    assert times == [10.0, 20.0, 30.0]
    assert vsync.ticks == 10


def test_vsync_default_period_is_60hz():
    sim = Simulator()
    vsync = VSyncSource(sim)
    assert vsync.period == pytest.approx(VSYNC_PERIOD_MS)


def test_wait_after_tick_waits_full_period():
    sim = Simulator()
    vsync = VSyncSource(sim, period=10.0)
    times = []

    def watcher():
        yield vsync.wait_next()
        yield Timeout(3.0)  # miss part of the window
        t = yield vsync.wait_next()
        times.append(t)

    sim.spawn(watcher())
    sim.run(until=50.0)
    assert times == [20.0]


def test_next_tick_time():
    sim = Simulator()
    vsync = VSyncSource(sim, period=10.0)

    def watcher():
        yield Timeout(12.0)
        return vsync.next_tick_time()

    p = sim.spawn(watcher())
    sim.run(until=15.0)
    assert p.value == pytest.approx(20.0)


def test_invalid_period_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        VSyncSource(sim, period=0.0)


# --- BufferQueue -------------------------------------------------------------

@pytest.fixture
def queue_setup():
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))
    return sim, emulator


def test_buffer_queue_allocates_svm_regions(queue_setup):
    sim, emulator = queue_setup
    before = emulator.manager.live_regions
    queue = BufferQueue(sim, emulator, count=3, size=MIB)
    assert emulator.manager.live_regions == before + 3
    assert queue.free_depth == 3
    queue.destroy()
    assert emulator.manager.live_regions == before


def test_buffer_rotation(queue_setup):
    sim, emulator = queue_setup
    queue = BufferQueue(sim, emulator, count=2, size=MIB)
    seen = []

    def producer():
        for pts in (1.0, 2.0, 3.0):
            buffer = yield queue.dequeue_free()
            yield queue.queue_filled(buffer, pts=pts)

    def consumer():
        for _ in range(3):
            buffer = yield queue.acquire_filled()
            seen.append(buffer.pts)
            queue.release(buffer)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_dequeue_blocks_when_all_in_flight(queue_setup):
    sim, emulator = queue_setup
    queue = BufferQueue(sim, emulator, count=1, size=MIB)
    order = []

    def producer():
        first = yield queue.dequeue_free()
        yield queue.queue_filled(first)
        order.append(("got-first", sim.now))
        second = yield queue.dequeue_free()  # blocked until release
        order.append(("got-second", sim.now))
        yield queue.queue_filled(second)

    def consumer():
        yield Timeout(5.0)
        buffer = yield queue.acquire_filled()
        queue.release(buffer)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert order[0] == ("got-first", 0.0)
    assert order[1][1] >= 5.0


def test_try_dequeue_free_nonblocking(queue_setup):
    sim, emulator = queue_setup
    queue = BufferQueue(sim, emulator, count=1, size=MIB)
    first = queue.try_dequeue_free()
    assert first is not None
    assert queue.try_dequeue_free() is None
    queue.release(first)
    assert queue.try_dequeue_free() is not None


def test_release_clears_frame_state(queue_setup):
    sim, emulator = queue_setup
    queue = BufferQueue(sim, emulator, count=1, size=MIB)
    buffer = queue.try_dequeue_free()
    buffer.pts = 42.0
    buffer.payload = "frame"
    queue.release(buffer)
    fresh = queue.try_dequeue_free()
    assert fresh.pts is None
    assert fresh.payload is None


def test_invalid_queue_params_rejected(queue_setup):
    sim, emulator = queue_setup
    with pytest.raises(ConfigurationError):
        BufferQueue(sim, emulator, count=0, size=MIB)
    with pytest.raises(ConfigurationError):
        BufferQueue(sim, emulator, count=2, size=0)
