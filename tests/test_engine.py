"""Tests for the parallel memoized experiment engine."""

import pickle

import pytest

from repro.apps.catalog import build_app, emerging_app_params
from repro.experiments import engine
from repro.experiments.engine import (
    PointSpec,
    RunCache,
    RunSpec,
    StatsSummary,
    cache_key,
    canonical_spec,
    run_many,
    source_fingerprint,
    specs_for_apps,
)
from repro.experiments.runner import run_app, run_category

EMULATORS = ("vSoC", "GAE", "QEMU-KVM")


def _grid_specs(duration_ms=2_000.0):
    """3 emulators x 2 apps — the determinism-test grid."""
    params = emerging_app_params(seed=0, per_category=1)[:2]
    specs = []
    for name in EMULATORS:
        specs.extend(specs_for_apps(params, name, duration_ms=duration_ms))
    return specs


# ---------------------------------------------------------------------------
# Spec hygiene
# ---------------------------------------------------------------------------

def test_specs_are_picklable_and_hashable():
    spec = _grid_specs()[0]
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert canonical_spec(spec) == canonical_spec(pickle.loads(pickle.dumps(spec)))


def test_canonical_spec_is_order_insensitive():
    a = RunSpec(app_factory="repro.apps.video:UhdVideoApp",
                app_kwargs={"buffers": 3, "name": "x"}, emulator="vSoC")
    b = RunSpec(app_factory="repro.apps.video:UhdVideoApp",
                app_kwargs={"name": "x", "buffers": 3}, emulator="vSoC")
    assert canonical_spec(a) == canonical_spec(b)


def test_different_specs_key_differently():
    base = _grid_specs()[0]
    import dataclasses

    other = dataclasses.replace(base, seed=1)
    fp = "f" * 64
    assert cache_key(base, fp) != cache_key(other, fp)


def test_non_plain_data_spec_rejected():
    spec = PointSpec(fn="x:y", kwargs={"bad": object()})
    with pytest.raises(TypeError):
        canonical_spec(spec)


# ---------------------------------------------------------------------------
# Parallel determinism (the engine's core promise)
# ---------------------------------------------------------------------------

def test_parallel_bit_identical_to_serial(monkeypatch):
    # Force a real pool even on a 1-CPU host: the point is cross-process
    # determinism, not scheduling efficiency.
    monkeypatch.setenv("REPRO_ENGINE_OVERSUBSCRIBE", "1")
    specs = _grid_specs()
    serial = run_many(specs, jobs=1, cache=False)
    parallel = run_many(specs, jobs=3, cache=False)
    assert serial.executed == parallel.executed == len(specs)
    assert serial.results == parallel.results
    # And both match the direct in-process runner, app by app.
    for spec, run in zip(specs, serial.results):
        direct = run_app(build_app((spec.app_factory, dict(spec.app_kwargs))),
                         spec.emulator, duration_ms=spec.duration_ms,
                         seed=spec.seed)
        assert run.result == direct.result


def test_engine_path_matches_legacy_app_instances():
    params = emerging_app_params(seed=0, per_category=1)[:2]
    legacy = run_category([build_app(p) for p in params], "vSoC",
                          duration_ms=2_000.0)
    engine_backed = run_category(params, "vSoC", duration_ms=2_000.0,
                                 cache=False)
    assert [r.result for r in legacy] == [r.result for r in engine_backed]


# ---------------------------------------------------------------------------
# Memoization
# ---------------------------------------------------------------------------

def test_warm_cache_rerun_executes_nothing(tmp_path, monkeypatch):
    specs = _grid_specs()
    store = RunCache(tmp_path / "cache")
    cold = run_many(specs, jobs=1, cache=store)
    assert cold.cache_hits == 0 and cold.executed == len(specs)

    def bomb(_spec):
        raise AssertionError("warm rerun must not simulate anything")

    monkeypatch.setattr(engine, "execute_spec", bomb)
    warm = run_many(specs, jobs=1, cache=store)
    assert warm.executed == 0
    assert warm.cache_hits == len(specs)
    assert warm.hit_rate == 1.0
    assert warm.results == cold.results


def test_stats_summary_round_trips_with_read_api(tmp_path):
    spec = _grid_specs()[0]
    run = run_many([spec], jobs=1, cache=RunCache(tmp_path)).results[0]
    stats = run.stats
    assert isinstance(stats, StatsSummary)
    assert stats.access_latencies() == list(stats.access_latency_samples)
    if stats.access_latency_samples:
        assert stats.average_access_latency() > 0
    assert stats.throughput_bytes_per_ms() >= 0


def test_cache_disabled_always_executes(tmp_path):
    specs = _grid_specs()[:1]
    first = run_many(specs, jobs=1, cache=False, cache_dir=tmp_path)
    second = run_many(specs, jobs=1, cache=False, cache_dir=tmp_path)
    assert first.executed == second.executed == 1
    assert not list(tmp_path.iterdir())  # nothing written


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------

def test_fingerprint_changes_when_sources_change(tmp_path):
    tree = tmp_path / "srcs"
    tree.mkdir()
    (tree / "mod.py").write_text("X = 1\n")
    source_fingerprint.cache_clear()
    before = source_fingerprint(str(tree))
    (tree / "mod.py").write_text("X = 2\n")
    source_fingerprint.cache_clear()
    after = source_fingerprint(str(tree))
    assert before != after

    spec = _grid_specs()[0]
    assert cache_key(spec, before) != cache_key(spec, after)


def test_fingerprint_covers_file_names_not_just_contents(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir(), b.mkdir()
    (a / "one.py").write_text("X = 1\n")
    (b / "two.py").write_text("X = 1\n")
    source_fingerprint.cache_clear()
    assert source_fingerprint(str(a)) != source_fingerprint(str(b))


def test_fingerprint_shift_forces_resimulation(tmp_path):
    spec = _grid_specs()[0]
    store = RunCache(tmp_path)
    old_key = cache_key(spec, "0" * 64)
    new_key = cache_key(spec, "1" * 64)
    store.store(old_key, "stale")
    assert store.load(new_key) is None  # different fingerprint: miss


def test_corrupt_cache_entry_discarded_and_reexecuted(tmp_path):
    spec = _grid_specs()[0]
    store = RunCache(tmp_path)
    cold = run_many([spec], jobs=1, cache=store)
    key = cache_key(spec)
    path = store._path(key)
    assert path.exists()

    # Truncate the pickle mid-stream.
    path.write_bytes(path.read_bytes()[:20])
    assert store.load(key) is None
    assert not path.exists()  # bad entry removed, not retried forever

    again = run_many([spec], jobs=1, cache=store)
    assert again.executed == 1
    assert again.results == cold.results


def test_wrong_key_payload_rejected(tmp_path):
    store = RunCache(tmp_path)
    store.store("a" * 64, {"v": 1})
    # Copy the valid entry to a different address: key check must reject it.
    (tmp_path / ("b" * 64 + ".pkl")).write_bytes(
        (tmp_path / ("a" * 64 + ".pkl")).read_bytes()
    )
    assert store.load("b" * 64) is None
    assert store.load("a" * 64) == {"v": 1}


# ---------------------------------------------------------------------------
# PointSpec escape hatch
# ---------------------------------------------------------------------------

def test_point_spec_runs_module_function(tmp_path):
    from repro.experiments.density import density_point

    spec = PointSpec(
        fn="repro.experiments.density:density_point",
        kwargs=dict(emulator_name="vSoC", count=1, duration_ms=2_000.0, seed=0),
    )
    via_engine = run_many([spec], jobs=1, cache=RunCache(tmp_path)).results[0]
    direct = density_point("vSoC", 1, duration_ms=2_000.0, seed=0)
    assert via_engine == direct


# ---------------------------------------------------------------------------
# Worker-count clamping (honest parallel bench numbers)
# ---------------------------------------------------------------------------

def test_jobs_clamped_to_available_cpus(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_OVERSUBSCRIBE", raising=False)
    from repro.experiments.engine import default_jobs

    specs = _grid_specs(duration_ms=1_000.0)[:2]
    report = run_many(specs, jobs=32, cache=False)
    assert report.jobs == 32  # the request is preserved for the record
    assert report.effective_jobs == min(32, default_jobs())
    assert report.effective_jobs >= 1


def test_oversubscribe_env_lifts_clamp(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_OVERSUBSCRIBE", "1")
    specs = _grid_specs(duration_ms=1_000.0)[:2]
    report = run_many(specs, jobs=3, cache=False)
    assert report.jobs == 3
    assert report.effective_jobs == 3


def test_serial_run_reports_single_effective_job():
    specs = _grid_specs(duration_ms=1_000.0)[:1]
    report = run_many(specs, jobs=1, cache=False)
    assert report.jobs == 1
    assert report.effective_jobs == 1


def test_parallel_mode_records_how_misses_actually_ran(monkeypatch, tmp_path):
    # "parallel_speedup: 0.956" on a 1-CPU host confused a reader into
    # hunting pool overhead that was never there: the run was inline both
    # times. The report now says which path executed the misses.
    specs = _grid_specs(duration_ms=1_000.0)[:2]
    monkeypatch.delenv("REPRO_ENGINE_OVERSUBSCRIBE", raising=False)
    inline = run_many(specs, jobs=1, cache=False)
    assert inline.parallel_mode == "inline"

    monkeypatch.setenv("REPRO_ENGINE_OVERSUBSCRIBE", "1")
    pooled = run_many(specs, jobs=2, cache=RunCache(tmp_path))
    assert pooled.parallel_mode == "pool"
    assert pooled.results == inline.results

    # A fully-warm rerun executes nothing — no pool spins up, and the
    # report must not pretend one did.
    warm = run_many(specs, jobs=2, cache=RunCache(tmp_path))
    assert warm.executed == 0
    assert warm.parallel_mode == "inline"
