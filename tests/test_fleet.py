"""Tests for fleet telemetry: snapshots, aggregation, sentinel, dashboard."""

import json
import pickle

import pytest

from repro.apps.ar import ArApp
from repro.apps.video import UhdVideoApp
from repro.experiments.dashboard import fleet_specs
from repro.experiments.engine import run_many
from repro.experiments.runner import run_app
from repro.obs.baseline import (
    HISTORY_SCHEMA,
    MetricSpec,
    RegressionSentinel,
    extract_metric,
)
from repro.obs.dashboard import render_dashboard
from repro.obs.fleet import (
    FleetAggregator,
    HistogramSample,
    TelemetrySnapshot,
    aggregate_results,
    validate_fleet_snapshot,
)


def _snapshot(app_cls=UhdVideoApp, emulator="vSoC", duration_ms=1_200.0,
              seed=0):
    run = run_app(app_cls(), emulator, duration_ms=duration_ms, seed=seed,
                  telemetry=True)
    assert run.telemetry is not None
    return run.telemetry


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

def test_snapshot_pickles_and_compares_structurally():
    snap = _snapshot()
    clone = pickle.loads(pickle.dumps(snap))
    assert clone == snap
    assert clone.group_key == "vSoC/uhd-video"
    assert json.dumps(clone.to_dict(), sort_keys=True) == \
        json.dumps(snap.to_dict(), sort_keys=True)


def test_snapshot_capture_is_deterministic():
    assert _snapshot() == _snapshot()


def test_telemetry_off_by_default():
    run = run_app(UhdVideoApp(), "vSoC", duration_ms=1_200.0)
    assert run.telemetry is None


def test_telemetry_does_not_change_results():
    plain = run_app(UhdVideoApp(), "vSoC", duration_ms=1_200.0)
    observed = run_app(UhdVideoApp(), "vSoC", duration_ms=1_200.0,
                       telemetry=True)
    assert plain.result == observed.result


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def test_aggregate_is_order_independent():
    snaps = [_snapshot(UhdVideoApp, "vSoC"), _snapshot(ArApp, "vSoC"),
             _snapshot(UhdVideoApp, "GAE")]
    forward = FleetAggregator()
    forward.add_all(snaps)
    backward = FleetAggregator()
    backward.add_all(reversed(snaps))
    assert forward.aggregate_json() == backward.aggregate_json()


def test_aggregate_validates_clean():
    agg = FleetAggregator()
    agg.add(_snapshot())
    data = agg.aggregate()
    assert validate_fleet_snapshot(data) == []
    assert data["runs"] == 1
    assert "vSoC/uhd-video" in data["groups"]


def test_histogram_merge_is_exact():
    a = HistogramSample("m", (), count=3, sum=6.0, min=1.0, max=3.0,
                        samples=(1.0, 2.0, 3.0))
    b = HistogramSample("m", (), count=2, sum=9.0, min=4.0, max=5.0,
                        samples=(4.0, 5.0))
    agg = FleetAggregator()
    agg.add(TelemetrySnapshot(meta=(("app", "x"), ("emulator", "e")),
                              histograms=(a,)))
    agg.add(TelemetrySnapshot(meta=(("app", "x"), ("emulator", "e")),
                              histograms=(b,)))
    merged = agg.aggregate()["fleet"]["histograms"][0]
    assert merged["count"] == 5
    assert merged["sum"] == 15.0
    assert merged["min"] == 1.0 and merged["max"] == 5.0
    assert merged["samples"] == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_validator_flags_broken_aggregates():
    assert validate_fleet_snapshot([]) != []
    assert any("schema" in p for p in validate_fleet_snapshot({"runs": 1}))
    agg = FleetAggregator()
    agg.add(_snapshot())
    data = agg.aggregate()
    data["fleet"]["histograms"][0]["samples"] = [0.0] * 10_000
    data["fleet"]["histograms"][0]["count"] = 1
    assert any("exceed count" in p for p in validate_fleet_snapshot(data))


# ---------------------------------------------------------------------------
# The acceptance criterion: parallel == serial == warm, byte for byte
# ---------------------------------------------------------------------------

def test_fleet_aggregate_parallel_serial_warm_identical(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_OVERSUBSCRIBE", "1")
    specs = fleet_specs(duration_ms=1_200.0)
    assert len(specs) == 6  # 3 emulators x 2 apps

    serial = run_many(specs, jobs=1, cache=False)
    parallel = run_many(specs, jobs=4, cache=False)
    serial_json = json.dumps(aggregate_results(serial.results),
                             sort_keys=True, separators=(",", ":"))
    parallel_json = json.dumps(aggregate_results(parallel.results),
                               sort_keys=True, separators=(",", ":"))
    assert serial_json == parallel_json

    from repro.experiments.engine import RunCache

    store = RunCache(tmp_path / "cache")
    cold = run_many(specs, jobs=1, cache=store)
    warm = run_many(specs, jobs=1, cache=store)
    assert warm.executed == 0 and warm.cache_hits == len(specs)
    warm_json = json.dumps(aggregate_results(warm.results),
                           sort_keys=True, separators=(",", ":"))
    cold_json = json.dumps(aggregate_results(cold.results),
                           sort_keys=True, separators=(",", ":"))
    assert warm_json == cold_json == serial_json


# ---------------------------------------------------------------------------
# Regression sentinel
# ---------------------------------------------------------------------------

def _sample_report(speedup=3.0, wall=0.5):
    return {"kernel": {"speedup": speedup, "optimized_s": 1.0 / speedup},
            "single_run": {"wall_s": wall}}


def test_sentinel_soft_passes_on_empty_history(tmp_path):
    sentinel = RegressionSentinel(str(tmp_path / "hist.jsonl"))
    verdict = sentinel.check(_sample_report())
    assert verdict.ok
    assert all(v.status == "insufficient-history" for v in verdict.verdicts)


def test_sentinel_flags_regression_and_improvement(tmp_path):
    sentinel = RegressionSentinel(str(tmp_path / "hist.jsonl"), tolerance=0.25)
    for _ in range(4):
        sentinel.append(_sample_report(speedup=3.0, wall=0.5))
    bad = sentinel.check(_sample_report(speedup=1.0, wall=2.0))
    assert not bad.ok
    assert {v.metric for v in bad.regressions} >= {"kernel.speedup",
                                                   "single_run.wall_s"}
    good = sentinel.check(_sample_report(speedup=6.0, wall=0.1))
    assert good.ok
    assert any(v.status == "improved" for v in good.verdicts)
    steady = sentinel.check(_sample_report(speedup=3.1, wall=0.51))
    assert steady.ok


def test_sentinel_skips_corrupt_and_alien_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    sentinel = RegressionSentinel(str(path))
    sentinel.append(_sample_report())
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
        fh.write('{"schema": "other-schema", "metrics": {}}\n')
        fh.write('{"schema": "%s"}\n' % HISTORY_SCHEMA)  # no metrics
        fh.write("\n")
    sentinel.append(_sample_report())
    assert len(sentinel.load()) == 2


def test_sentinel_ewma_matches_paper_predictor(tmp_path):
    from repro.core.smoothing import ExponentialSmoothing

    sentinel = RegressionSentinel(str(tmp_path / "h.jsonl"), min_history=1)
    values = [3.0, 2.0, 4.0, 3.5]
    for v in values:
        sentinel.append(_sample_report(speedup=v))
    ewma = ExponentialSmoothing(alpha=0.5)
    for v in values:
        ewma.update(v)
    level, std, seen = sentinel.baselines()["kernel.speedup"]
    assert level == ewma.predict()
    assert std == ewma.std_error
    assert seen == len(values)


def test_extract_metric_nested_and_flat():
    assert extract_metric({"a": {"b": 2}}, "a.b") == 2.0
    assert extract_metric({"a.b": 2}, "a.b") == 2.0
    assert extract_metric({"a": {"b": True}}, "a.b") is None
    assert extract_metric({}, "a.b") is None


def test_sentinel_honors_custom_metrics(tmp_path):
    sentinel = RegressionSentinel(
        str(tmp_path / "h.jsonl"), min_history=1, tolerance=0.1,
        metrics=(MetricSpec("fps", higher_is_better=True),),
    )
    sentinel.append({"fps": 60.0})
    verdict = sentinel.check({"fps": 30.0})
    assert [v.metric for v in verdict.regressions] == ["fps"]


# ---------------------------------------------------------------------------
# Dashboard
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_aggregate():
    agg = FleetAggregator()
    agg.add(_snapshot(UhdVideoApp, "vSoC"))
    agg.add(_snapshot(ArApp, "GAE"))
    return agg.aggregate()


def test_dashboard_is_single_small_self_contained_file(small_aggregate):
    html = render_dashboard(small_aggregate)
    assert len(html.encode("utf-8")) < 2 * 1024 * 1024
    for marker in ("http://", "https://", "src=", "href=", "@import"):
        assert marker not in html
    assert html.startswith("<!DOCTYPE html>")
    assert "</html>" in html


def test_dashboard_embeds_machine_readable_aggregate(small_aggregate):
    import re

    html = render_dashboard(small_aggregate)
    match = re.search(
        r'<script type="application/json" id="fleet-aggregate">\n(.*)\n</script>',
        html, re.S)
    assert match is not None
    payload = json.loads(match.group(1).replace("<\\/", "</"))
    assert payload == json.loads(
        json.dumps(small_aggregate, sort_keys=True, separators=(",", ":")))


def test_dashboard_renders_history_and_verdicts(small_aggregate, tmp_path):
    sentinel = RegressionSentinel(str(tmp_path / "h.jsonl"))
    for sp in (3.0, 3.1, 2.9, 3.2):
        sentinel.append(_sample_report(speedup=sp))
    history = sentinel.load()
    verdict = sentinel.check(_sample_report(speedup=1.0)).to_dict()
    html = render_dashboard(small_aggregate, history=history,
                            sentinel=verdict)
    assert "kernel.speedup" in html
    assert "regression" in html
    assert "EWMA" in html


def test_dashboard_tolerates_empty_aggregate():
    empty = FleetAggregator().aggregate()
    html = render_dashboard(empty)
    assert "no bench history yet" in html
    assert "</html>" in html


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------

def test_cmd_dashboard_writes_report(tmp_path, monkeypatch):
    from repro.experiments.dashboard import cmd_dashboard

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "report.html"
    snap = tmp_path / "fleet.json"
    rc = cmd_dashboard(out_path=str(out), snapshot_path=str(snap),
                       history_path=str(tmp_path / "h.jsonl"),
                       quick=True, jobs=1, cache=False)
    assert rc == 0
    assert out.stat().st_size < 2 * 1024 * 1024
    data = json.loads(snap.read_text())
    assert validate_fleet_snapshot(data) == []
    assert data["runs"] == 6


# ---------------------------------------------------------------------------
# Partial / truncated snapshot merging (fleet service streaming)
# ---------------------------------------------------------------------------

def _session_snap(worker, session, frames, partial=False, app="ar"):
    """A hand-built per-session snapshot like the fleet service streams."""
    from repro.obs.fleet import CounterSample, GaugeSample, _labels_key

    meta = {"emulator": worker, "app": app, "session": session}
    if partial:
        meta["partial"] = "true"
    labels = _labels_key({"app": app})
    return TelemetrySnapshot(
        meta=_labels_key(meta),
        counters=(CounterSample("session.frames", labels, float(frames)),),
        gauges=(GaugeSample("session.fps", labels, 60.0),),
    )


def test_partial_snapshots_are_flagged_not_absorbed():
    agg = FleetAggregator()
    agg.add(_session_snap("w0", "s0", 100))
    agg.add(_session_snap("w0", "s1", 40, partial=True))
    agg.add(_session_snap("w1", "s2", 7, partial=True))
    out = agg.aggregate()
    assert out["runs"] == 3
    assert out["partial_runs"] == 2
    # The partial contributions still count into the merged totals.
    total = sum(
        c["value"]
        for g in out["groups"].values()
        for c in g["counters"]
        if c["name"] == "session.frames"
    )
    assert total == pytest.approx(147.0)


def test_truncated_snapshot_with_no_instruments_merges_cleanly():
    agg = FleetAggregator()
    agg.add(_session_snap("w0", "s0", 50))
    agg.add(TelemetrySnapshot(meta=(("app", "ar"), ("emulator", "w0"),
                                    ("partial", "true"))))
    out = agg.aggregate()
    assert out["runs"] == 2
    assert out["partial_runs"] == 1


def test_partial_merge_is_order_independent():
    snaps = [
        _session_snap("w0", "s0", 100),
        _session_snap("w0", "s1", 40, partial=True),
        _session_snap("w1", "s2", 7, partial=True),
        _session_snap("w1", "s3", 33),
    ]
    forward, backward = FleetAggregator(), FleetAggregator()
    for snap in snaps:
        forward.add(snap)
    for snap in reversed(snaps):
        backward.add(snap)
    assert forward.aggregate_json() == backward.aggregate_json()


def test_streamed_and_added_partials_compose():
    streamed = FleetAggregator()
    for i in range(4):
        streamed.stream(_session_snap("w0", f"s{i}", 10 * i, partial=i % 2 == 0))
    streamed.add(_session_snap("w1", "late", 5, partial=True))
    out = streamed.aggregate()
    assert len(streamed) == 5
    assert out["runs"] == 5
    assert out["partial_runs"] == 3
    # aggregate() must not consume the live stream state.
    assert streamed.aggregate_json() == streamed.aggregate_json()


def test_stream_interleaves_partial_and_final_snapshots_of_one_run():
    # A session can contribute twice: a partial mid-stream reading when
    # its worker dies, then (if re-run elsewhere) a final — interleaved
    # with other sessions' snapshots. Flags must track each contribution.
    agg = FleetAggregator()
    agg.stream(_session_snap("w0", "s0", 30, partial=True))
    agg.stream(_session_snap("w1", "s1", 50))
    agg.stream(_session_snap("w1", "s0", 80))
    out = agg.aggregate()
    assert out["runs"] == 3
    assert out["partial_runs"] == 1
    assert out["groups"]["w0/ar"]["partial_runs"] == 1
    assert out["groups"]["w1/ar"]["partial_runs"] == 0
    # Both of s0's contributions count into their own group's totals.
    frames_w0 = sum(c["value"] for c in out["groups"]["w0/ar"]["counters"]
                    if c["name"] == "session.frames")
    frames_w1 = sum(c["value"] for c in out["groups"]["w1/ar"]["counters"]
                    if c["name"] == "session.frames")
    assert frames_w0 == pytest.approx(30.0)
    assert frames_w1 == pytest.approx(130.0)


def test_stream_interleaving_is_order_independent_below_meta_cap():
    import itertools

    snaps = [
        _session_snap("w0", "s0", 30, partial=True),
        _session_snap("w1", "s0", 80),
        _session_snap("w0", "s1", 10),
        _session_snap("w1", "s2", 7, partial=True),
    ]
    outputs = set()
    for perm in itertools.permutations(snaps):
        agg = FleetAggregator()
        for snap in perm:
            agg.stream(snap)
        outputs.add(agg.aggregate_json())
    assert len(outputs) == 1


def test_stream_matches_add_for_interleaved_partial_and_final():
    snaps = [
        _session_snap("w0", "s0", 30, partial=True),
        _session_snap("w1", "s1", 50),
        _session_snap("w1", "s0", 80),
        _session_snap("w0", "s2", 12, partial=True),
    ]
    streamed = FleetAggregator()
    for snap in snaps:
        streamed.stream(snap)
    batch = FleetAggregator()
    batch.add_all(snaps)
    assert streamed.aggregate_json() == batch.aggregate_json()


def test_streaming_caps_retained_metas():
    from repro.obs.fleet import STREAM_META_CAP

    agg = FleetAggregator()
    n = STREAM_META_CAP + 9
    for i in range(n):
        agg.stream(_session_snap("w0", f"s{i:03d}", i))
    out = agg.aggregate()
    (group,) = out["groups"].values()
    assert group["runs"] == n
    assert len(group["meta"]) == STREAM_META_CAP
    assert group["meta_dropped"] == 9
    # Totals are unaffected by meta truncation.
    (frames,) = [c for c in group["counters"] if c["name"] == "session.frames"]
    assert frames["value"] == pytest.approx(sum(range(n)))
