"""The public API surface imports cleanly and exposes what the docs promise."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.hw",
    "repro.guest",
    "repro.core",
    "repro.emulators",
    "repro.apps",
    "repro.metrics",
    "repro.workloads",
    "repro.experiments",
    "repro.experiments.export",
    "repro.experiments.ablations",
    "repro.experiments.sweeps",
    "repro.experiments.density",
    "repro.experiments.validate",
    "repro.metrics.breakdown",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", [
    "repro.sim", "repro.hw", "repro.core", "repro.emulators", "repro.apps",
    "repro.metrics", "repro.workloads", "repro.experiments",
])
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


def test_readme_quickstart_names_exist():
    """Every symbol the README's quickstart uses must exist."""
    from repro.emulators import make_vsoc  # noqa: F401
    from repro.hw import HIGH_END_DESKTOP, build_machine  # noqa: F401
    from repro.sim import Simulator, Timeout  # noqa: F401
    from repro.units import UHD_FRAME_BYTES  # noqa: F401
