"""Unit tests for the twin hypergraphs (repro.core.twin)."""

import pytest

from repro.core import TwinHypergraphs
from repro.errors import UnknownRegionError
from repro.units import MIB, UHD_FRAME_BYTES

VDEVS = ("codec", "gpu", "display", "camera", "isp")
LOCS = ("host", "gpu")


def make_twin():
    return TwinHypergraphs(VDEVS, LOCS)


def run_cycles(twin, region_id, cycles, slack=17.0):
    """Drive `cycles` write→read generations of a codec→gpu pipeline."""
    for _ in range(cycles):
        twin.on_write(region_id, "codec", "gpu", UHD_FRAME_BYTES)
        twin.on_read(region_id, "gpu", "gpu", slack)


def test_register_and_drop_region():
    twin = make_twin()
    twin.register_region(1)
    assert twin.tracked_regions == 1
    twin.drop_region(1)
    assert twin.tracked_regions == 0
    twin.drop_region(1)  # idempotent


def test_unknown_region_raises():
    twin = make_twin()
    with pytest.raises(UnknownRegionError):
        twin.on_write(99, "codec", "gpu", MIB)


def test_no_edge_before_first_generation_completes():
    twin = make_twin()
    twin.register_region(1)
    twin.on_write(1, "codec", "gpu", MIB)
    twin.on_read(1, "gpu", "gpu", 17.0)
    # Generation still open: edge appears at the *next* write.
    assert len(twin.virtual) == 0
    twin.on_write(1, "codec", "gpu", MIB)
    assert len(twin.virtual) == 1


def test_edge_binding_enables_prediction():
    twin = make_twin()
    twin.register_region(1)
    run_cycles(twin, 1, 3)
    predicted = twin.predict_readers(1, "codec")
    assert predicted is not None
    assert predicted.reader_vdevs == frozenset({"gpu"})


def test_prediction_cold_start_returns_none():
    twin = make_twin()
    twin.register_region(1)
    assert twin.predict_readers(1, "codec") is None


def test_zero_shot_prediction_for_new_region():
    """A new region inherits the flow history of its writer vdev (§3.3)."""
    twin = make_twin()
    twin.register_region(1)
    run_cycles(twin, 1, 5)
    twin.register_region(2)  # fresh region, same pipeline
    predicted = twin.predict_readers(2, "codec")
    assert predicted is not None
    assert predicted.reader_vdevs == frozenset({"gpu"})


def test_zero_shot_prefers_busiest_flow():
    twin = make_twin()
    twin.register_region(1)
    twin.register_region(2)
    run_cycles(twin, 1, 10)  # codec -> gpu, busy
    # codec -> display, rare
    twin.on_write(2, "codec", "host", MIB)
    twin.on_read(2, "display", "gpu", 5.0)
    twin.on_write(2, "codec", "host", MIB)
    twin.register_region(3)
    predicted = twin.predict_readers(3, "codec")
    assert predicted.reader_vdevs == frozenset({"gpu"})


def test_multi_reader_hyperedge():
    """camera write followed by isp+gpu reads forms one hyperedge."""
    twin = make_twin()
    twin.register_region(1)
    for _ in range(3):
        twin.on_write(1, "camera", "host", MIB)
        twin.on_read(1, "isp", "gpu", 10.0)
        twin.on_read(1, "gpu", "gpu", None)
    twin.on_write(1, "camera", "host", MIB)
    edges = twin.virtual.edges_from("camera")
    assert len(edges) == 1
    assert edges[0].destinations == frozenset({"isp", "gpu"})


def test_slack_prediction_warms_up():
    twin = make_twin()
    twin.register_region(1)
    run_cycles(twin, 1, 6, slack=17.2)
    predicted = twin.predict_readers(1, "codec")
    slack = twin.predict_slack(predicted.vedge)
    assert slack == pytest.approx(17.2)


def test_prefetch_time_prediction():
    twin = make_twin()
    twin.register_region(1)
    run_cycles(twin, 1, 3)
    predicted = twin.predict_readers(1, "codec")
    assert predicted.pedge is not None
    assert twin.predict_prefetch_time(predicted.pedge) is None
    twin.note_prefetch_duration(predicted.pedge, 2.4)
    twin.note_prefetch_duration(predicted.pedge, 2.6)
    assert twin.predict_prefetch_time(predicted.pedge) == pytest.approx(2.5)


def test_flow_change_rebinds_edge():
    twin = make_twin()
    twin.register_region(1)
    run_cycles(twin, 1, 4)
    # Pipeline changes: now display reads instead of gpu.
    twin.on_write(1, "codec", "host", MIB)
    twin.on_read(1, "display", "gpu", 8.0)
    twin.on_write(1, "codec", "host", MIB)
    predicted = twin.predict_readers(1, "codec")
    assert predicted.reader_vdevs == frozenset({"display"})


def test_regions_share_edges():
    """Buffer chains: multiple regions, one flow, one hyperedge (§3.2)."""
    twin = make_twin()
    for rid in (1, 2, 3):
        twin.register_region(rid)
        run_cycles(twin, rid, 3)
    assert len(twin.virtual.edges_from("codec")) == 1
    edge = twin.virtual.edges_from("codec")[0]
    assert edge.observations >= 6


def test_memory_overhead_is_small():
    """§5.2: framework data structures stay within ~3.1 MiB."""
    twin = make_twin()
    for rid in range(500):
        twin.register_region(rid)
        run_cycles(twin, rid, 2)
    assert twin.memory_overhead_bytes() < int(3.1 * MIB)


def test_slack_none_is_ignored():
    twin = make_twin()
    twin.register_region(1)
    twin.on_write(1, "codec", "gpu", MIB)
    twin.on_read(1, "gpu", "gpu", None)
    twin.on_write(1, "codec", "gpu", MIB)
    predicted = twin.predict_readers(1, "codec")
    assert twin.predict_slack(predicted.vedge) is None
