"""Unit tests for memory pools (repro.hw.memory)."""

import pytest

from repro.errors import HardwareError
from repro.hw import MemoryPool
from repro.units import MIB


def test_allocate_and_free_accounting():
    pool = MemoryPool("test", 10 * MIB)
    region = pool.allocate(4 * MIB, tag="frame")
    assert pool.in_use == 4 * MIB
    assert pool.live_regions == 1
    region.free()
    assert pool.in_use == 0
    assert pool.live_regions == 0


def test_peak_tracks_high_water_mark():
    pool = MemoryPool("test", 10 * MIB)
    a = pool.allocate(3 * MIB)
    b = pool.allocate(5 * MIB)
    a.free()
    assert pool.peak == 8 * MIB
    assert pool.in_use == 5 * MIB
    b.free()
    assert pool.peak == 8 * MIB


def test_exhaustion_raises():
    pool = MemoryPool("small", 1 * MIB)
    pool.allocate(MIB // 2)
    with pytest.raises(HardwareError, match="exhausted"):
        pool.allocate(MIB)


def test_double_free_raises():
    pool = MemoryPool("test", MIB)
    region = pool.allocate(100)
    region.free()
    with pytest.raises(HardwareError, match="double free"):
        region.free()


def test_cross_pool_free_rejected():
    pool_a = MemoryPool("a", MIB)
    pool_b = MemoryPool("b", MIB)
    region = pool_a.allocate(100)
    with pytest.raises(HardwareError, match="belongs to"):
        pool_b.free(region)


def test_zero_size_allocation_rejected():
    pool = MemoryPool("test", MIB)
    with pytest.raises(HardwareError):
        pool.allocate(0)


def test_nonpositive_capacity_rejected():
    with pytest.raises(HardwareError):
        MemoryPool("bad", 0)


def test_free_bytes():
    pool = MemoryPool("test", 100)
    pool.allocate(30)
    assert pool.free_bytes == 70


def test_region_ids_unique():
    pool = MemoryPool("test", MIB)
    ids = {pool.allocate(16).region_id for _ in range(50)}
    assert len(ids) == 50
