"""Edge-case tests for the simulation kernel and primitives."""

import pytest

from repro.sim import AllOf, FifoQueue, SimEvent, Simulator, Timeout


def test_allof_propagates_child_exception():
    sim = Simulator()
    good = SimEvent(sim)
    bad = SimEvent(sim)
    outcome = {}

    def waiter():
        try:
            yield AllOf(sim, [good, bad])
        except RuntimeError as err:
            outcome["error"] = str(err)

    sim.spawn(waiter())
    sim.schedule(1.0, good.fire, "ok")
    sim.schedule(2.0, bad.fail, RuntimeError("child died"))
    sim.run()
    assert outcome["error"] == "child died"


def test_allof_waits_for_all_even_after_failure():
    """The failure is only delivered once every child completed."""
    sim = Simulator()
    slow = SimEvent(sim)
    bad = SimEvent(sim)
    times = {}

    def waiter():
        try:
            yield AllOf(sim, [slow, bad])
        except RuntimeError:
            times["delivered"] = sim.now

    sim.spawn(waiter())
    sim.schedule(1.0, bad.fail, RuntimeError("early failure"))
    sim.schedule(9.0, slow.fire)
    sim.run()
    assert times["delivered"] == pytest.approx(9.0)


def test_process_join_chain():
    """A joins B joins C: return values flow back up the chain."""
    sim = Simulator()

    def c():
        yield Timeout(1.0)
        return 1

    def b():
        value = yield sim.spawn(c(), name="c")
        return value + 1

    def a():
        value = yield sim.spawn(b(), name="b")
        return value + 1

    p = sim.spawn(a(), name="a")
    sim.run()
    assert p.value == 3


def test_generator_cleanup_on_exception_mid_yield_from():
    """An exception inside a nested `yield from` unwinds cleanly."""
    sim = Simulator()
    cleaned = []

    def inner():
        try:
            yield Timeout(10.0)
        finally:
            cleaned.append("inner")

    def outer():
        try:
            yield from inner()
        except RuntimeError:
            cleaned.append("caught")

    proc = sim.spawn(outer(), name="outer")

    def failer():
        yield Timeout(1.0)
        proc._gen.throw(RuntimeError("injected"))

    # directly throwing into a suspended generator is not public API, but
    # the kernel must not corrupt its state when user code does it
    sim.spawn(failer(), name="failer")
    with pytest.raises(Exception):
        sim.run()
    assert "inner" in cleaned


def test_many_waiters_on_one_event_scale():
    sim = Simulator()
    event = SimEvent(sim)
    done = []

    def waiter(i):
        yield event
        done.append(i)

    for i in range(500):
        sim.spawn(waiter(i))
    sim.schedule(1.0, event.fire)
    sim.run()
    assert len(done) == 500
    assert done == sorted(done)  # FIFO wake order


def test_queue_put_to_waiting_getter_bypasses_buffer():
    sim = Simulator()
    queue = FifoQueue(sim, capacity=1)
    got = []

    def consumer():
        item = yield queue.get()
        got.append(item)

    sim.spawn(consumer())

    def producer():
        yield Timeout(1.0)
        yield queue.put("direct")

    sim.spawn(producer())
    sim.run()
    assert got == ["direct"]
    assert len(queue) == 0


def test_simultaneous_timeouts_preserve_spawn_order():
    sim = Simulator()
    order = []

    def worker(i):
        yield Timeout(5.0)
        order.append(i)

    for i in range(20):
        sim.spawn(worker(i))
    sim.run()
    assert order == list(range(20))


def test_schedule_zero_delay_runs_after_current_event():
    sim = Simulator()
    order = []

    def first():
        sim.schedule(0.0, order.append, "scheduled")
        order.append("inline")
        yield Timeout(0.0)
        order.append("resumed")

    sim.spawn(first())
    sim.run()
    assert order == ["inline", "scheduled", "resumed"]
