"""Shared test fixtures.

The experiment engine memoizes runs under ``.repro-cache/`` by default;
tests must never leave artifacts in the working tree, so the whole session
is pointed at a throwaway directory. Within-session memoization still
works (repeated points across tests hit the temp cache).
"""

import os

import pytest

from repro.experiments.engine import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache(tmp_path_factory):
    path = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(path)
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous
