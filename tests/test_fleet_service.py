"""Tests for the fleet session service (repro.fleet).

Covers the virtual clock's determinism contract, quantum-aligned session
advancement, live migration with restore-at-T bit-identity, supervisor
drain-on-crash with zero loss, bounded restarts, admission control and
shedding, and the end-to-end ``fleetserve`` acceptance bars.
"""

import asyncio
import json

import pytest

from repro.errors import (
    ConfigurationError,
    FleetError,
    SnapshotCorruptError,
)
from repro.faults.plan import FaultPlan
from repro.fleet import (
    FleetService,
    QUANTUM_MS,
    SessionSpec,
    SimWorker,
    VirtualClock,
    WorkerSupervisor,
    capture_session,
    crash_storm_plan,
    generate_trace,
    migrate_session,
    restore_session,
)
from repro.fleet.arrivals import FlashCrowd
from repro.fleet.worker import SessionSim
from repro.obs.fleet import FleetAggregator, snapshot_is_partial
from repro.sim.resilience import Deadline, RetryPolicy


def _spec(session_id="sX", app="ar", duration_ms=5_000.0, priority=1,
          seed=12345, load=1.4):
    return SessionSpec(
        session_id=session_id, app=app, arrival_ms=0.0,
        duration_ms=duration_ms, priority=priority, frame_interval_ms=16.7,
        load=load, target_fps=45.0, seed=seed,
    )


# ---------------------------------------------------------------------------
# VirtualClock
# ---------------------------------------------------------------------------

def _clock_trace():
    events = []

    async def main():
        clock = VirtualClock()

        async def ticker(label, period):
            for i in range(3):
                await clock.sleep(period)
                events.append((clock.now, label, i))

        clock.spawn(ticker("a", 10.0), name="a")
        clock.spawn(ticker("b", 15.0), name="b")
        clock.schedule(22.0, lambda: events.append((clock.now, "timer")))
        await clock.run_until(50.0)
        clock.raise_task_failures()

    asyncio.run(main())
    return events


def test_virtual_clock_is_deterministic():
    assert _clock_trace() == _clock_trace()
    times = [e[0] for e in _clock_trace()]
    assert times == sorted(times)


def test_virtual_clock_rejects_past_schedule():
    clock = VirtualClock()
    with pytest.raises(FleetError):
        clock.schedule(-1.0, lambda: None)


def test_virtual_clock_collects_task_failures():
    async def main():
        clock = VirtualClock()

        async def boom():
            await clock.sleep(5.0)
            raise RuntimeError("kaput")

        clock.spawn(boom(), name="boom")
        await clock.run_until(10.0)
        with pytest.raises(FleetError, match="boom"):
            clock.raise_task_failures()

    asyncio.run(main())


def test_sim_deadline_works_on_virtual_clock():
    async def main():
        clock = VirtualClock()
        deadline = Deadline(clock, 12.5, label="drain")
        cancelled = Deadline(clock, 20.0, label="cancelled")
        cancelled.cancel()
        await clock.run_until(30.0)
        assert deadline.expired
        assert not cancelled.expired

    asyncio.run(main())


# ---------------------------------------------------------------------------
# SessionSim: quantum-aligned advancement
# ---------------------------------------------------------------------------

def test_session_advance_is_slice_invariant():
    one = SessionSim(_spec(), started_at=0.0)
    one.advance(5_000.0)
    many = SessionSim(_spec(), started_at=0.0)
    t = 0.0
    while t < 5_000.0:
        t += 73.0
        many.advance(min(t, 5_000.0))
    assert one.snapshot_state() == many.snapshot_state()
    assert one.done and many.done
    assert one.presented > 0


def test_session_fps_near_profile_rate():
    session = SessionSim(_spec(), started_at=100.0)
    session.advance(5_100.0)
    # 16.7 ms frame interval with ±5% jitter ⇒ ~60 FPS.
    assert session.fps() == pytest.approx(1_000.0 / 16.7, rel=0.05)
    assert session.meets_slo()


def test_session_partial_quantum_only_processed_at_completion():
    session = SessionSim(_spec(duration_ms=2 * QUANTUM_MS + 50.0), started_at=0.0)
    session.advance(2 * QUANTUM_MS + 10.0)  # tail not yet reachable
    assert session.quanta == 2 and not session.done
    frames_before = session.presented
    session.advance(2 * QUANTUM_MS + 50.0)
    assert session.done
    assert session.presented >= frames_before


def test_session_restore_rejects_bad_state():
    session = SessionSim(_spec(), started_at=0.0)
    good = session.snapshot_state()
    with pytest.raises(ConfigurationError, match="missing keys"):
        session.restore_state({k: v for k, v in good.items() if k != "progress"})
    with pytest.raises(ConfigurationError, match="cannot restore"):
        session.restore_state(dict(good, session_id="other"))
    with pytest.raises(ConfigurationError, match="finite"):
        session.restore_state(dict(good, progress=float("nan")))


def test_session_telemetry_partial_flag():
    session = SessionSim(_spec(), started_at=0.0)
    session.advance(1_000.0)
    assert snapshot_is_partial(session.telemetry("w0", partial=True))
    assert not snapshot_is_partial(session.telemetry("w0"))


# ---------------------------------------------------------------------------
# Live migration: restore-at-T bit-identity across the worker boundary
# ---------------------------------------------------------------------------

def _pair():
    clock = VirtualClock()
    wa = SimWorker(clock, "a", capacity=100.0)
    wb = SimWorker(clock, "b", capacity=100.0)
    return clock, wa, wb


def test_migrated_session_is_bit_identical_to_unmigrated():
    _clock, wa, wb = _pair()
    migrated = wa.start_session(_spec())
    migrated.advance(1_300.0)  # deliberately mid-quantum
    record = migrate_session("sX", wa, wb, reason="test")
    assert record.source == "a" and record.target == "b"
    assert "sX" not in wa.sessions and wa.load == 0.0
    wb.sessions["sX"].advance(5_000.0)

    _clock2, wc, _wd = _pair()
    control = wc.start_session(_spec())
    control.advance(1_300.0)
    control.advance(5_000.0)

    assert wb.sessions["sX"].snapshot_state() == control.snapshot_state()
    moved = wb.sessions["sX"].telemetry("b")
    stayed = control.telemetry("c")
    # Telemetry content (counters + gauges) bit-matches; only the meta
    # (placement) differs.
    assert moved.counters == stayed.counters
    assert moved.gauges == stayed.gauges


def test_corrupt_wire_image_rejected_and_source_keeps_session():
    _clock, wa, wb = _pair()
    session = wa.start_session(_spec())
    session.advance(1_000.0)
    good = capture_session(session).to_json().encode("utf-8")
    corrupt = good.replace(b'"progress"', b'"progresz"', 1)
    with pytest.raises(SnapshotCorruptError):
        migrate_session("sX", wa, wb, wire=corrupt)
    assert "sX" in wa.sessions and "sX" not in wb.sessions


def test_restore_session_rejects_foreign_snapshot():
    from repro.recovery.snapshot import Snapshot

    with pytest.raises(FleetError, match="not a fleet session"):
        restore_session(Snapshot({"x": 1}, recipe={"kind": "emulator"}))


def test_migration_rolls_back_when_target_cannot_adopt():
    _clock, wa, wb = _pair()
    wa.start_session(_spec())
    wb.start_session(_spec())  # same id already on the target
    with pytest.raises(FleetError):
        migrate_session("sX", wa, wb)
    assert "sX" in wa.sessions  # rolled back, still exactly one owner


def test_migration_to_dead_worker_rejected():
    _clock, wa, wb = _pair()
    wa.start_session(_spec())
    wb.crash()
    with pytest.raises(FleetError, match="crashed"):
        migrate_session("sX", wa, wb)


# ---------------------------------------------------------------------------
# Supervisor: drain-on-crash, bounded restarts
# ---------------------------------------------------------------------------

def _mini_fleet(n_workers=3, capacity=60.0):
    clock = VirtualClock()
    completed = []
    workers = {}

    def on_complete(_worker, session):
        completed.append(session.spec.session_id)

    for i in range(n_workers):
        worker = SimWorker(clock, f"w{i}", capacity=capacity,
                           on_complete=on_complete)
        workers[worker.name] = worker
    supervisor = WorkerSupervisor(clock)

    def place(_session, source):
        alive = [w for name, w in sorted(workers.items())
                 if w.alive and name != source]
        if not alive:
            return None
        return min(alive, key=lambda w: (w.load_factor(), w.name))

    supervisor.place_evacuee = place
    for worker in workers.values():
        supervisor.register(worker)
    return clock, workers, supervisor, completed


def _drive(clock, workers, supervisor, until):
    async def main():
        for name in sorted(workers):
            clock.spawn(workers[name].run(), name=f"worker.{name}")
        clock.spawn(supervisor.monitor(), name="supervisor")
        await clock.run_until(until)
        supervisor.stop()
        clock.raise_task_failures()

    asyncio.run(main())


def test_drain_on_crash_loses_nothing():
    clock, workers, supervisor, completed = _mini_fleet()
    for i in range(10):
        workers["w0"].start_session(
            _spec(session_id=f"s{i:02d}", duration_ms=6_000.0, seed=i)
        )
    clock.schedule(1_000.0, workers["w0"].crash)
    _drive(clock, workers, supervisor, 12_000.0)
    stats = supervisor.stats
    assert stats.crashes == 1
    assert stats.drains == 1
    assert stats.evacuated_sessions == 10
    assert stats.lost_sessions == 0
    assert stats.worker_restarts == 1
    assert sorted(completed) == [f"s{i:02d}" for i in range(10)]
    assert workers["w0"].state == "running"  # revived


def test_drain_with_no_targets_counts_losses_and_streams_partials():
    clock, workers, supervisor, completed = _mini_fleet(n_workers=1)
    aggregator = FleetAggregator()
    supervisor.on_partial_telemetry = aggregator.stream
    lost = []
    supervisor.on_lost = lambda session, worker: lost.append(
        session.spec.session_id
    )
    for i in range(4):
        workers["w0"].start_session(
            _spec(session_id=f"s{i}", duration_ms=8_000.0, seed=i)
        )
    clock.schedule(500.0, workers["w0"].crash)
    _drive(clock, workers, supervisor, 6_000.0)
    assert supervisor.stats.lost_sessions == 4
    assert sorted(lost) == ["s0", "s1", "s2", "s3"]
    assert completed == []
    # Truncated contributions are flagged, not absorbed or crashed on.
    assert aggregator.aggregate()["partial_runs"] == 4


def test_restart_retires_worker_when_policy_exhausted():
    clock, workers, supervisor, _completed = _mini_fleet()
    supervisor.restart_policy = RetryPolicy(
        max_attempts=3, base_delay_ms=100.0, multiplier=2.0, max_delay_ms=400.0
    )
    supervisor.mark_down("w0", 1e9)  # never comes back
    clock.schedule(500.0, workers["w0"].crash)
    _drive(clock, workers, supervisor, 10_000.0)
    assert supervisor.stats.retired_workers == 1
    assert supervisor.stats.worker_restarts == 0
    assert workers["w0"].state == "retired"


def test_slow_heartbeat_below_threshold_is_not_declared_dead():
    clock, workers, supervisor, _completed = _mini_fleet()
    clock.schedule(500.0, workers["w0"].slow_beats, 5_000.0, 2.5)
    _drive(clock, workers, supervisor, 8_000.0)
    assert supervisor.stats.crashes == 0


def test_long_hang_is_declared_dead_and_drained():
    clock, workers, supervisor, completed = _mini_fleet()
    for i in range(3):
        workers["w0"].start_session(
            _spec(session_id=f"s{i}", duration_ms=6_000.0, seed=i)
        )
    clock.schedule(500.0, workers["w0"].hang, 4_000.0)
    _drive(clock, workers, supervisor, 12_000.0)
    assert supervisor.stats.crashes == 1
    assert supervisor.stats.evacuated_sessions == 3
    assert supervisor.stats.lost_sessions == 0
    assert len(completed) == 3


# ---------------------------------------------------------------------------
# Arrival traces and crash storms
# ---------------------------------------------------------------------------

def test_generate_trace_is_deterministic_and_ordered():
    a = generate_trace(seed=11, horizon_ms=5_000.0, base_rate_per_s=40.0)
    b = generate_trace(seed=11, horizon_ms=5_000.0, base_rate_per_s=40.0)
    assert a.sessions == b.sessions
    assert a.sessions != generate_trace(
        seed=12, horizon_ms=5_000.0, base_rate_per_s=40.0
    ).sessions
    arrivals = [s.arrival_ms for s in a.sessions]
    assert arrivals == sorted(arrivals)
    assert len({s.session_id for s in a.sessions}) == len(a)
    assert a.peak_concurrency() > 0


def test_flash_crowd_raises_arrival_rate():
    quiet = generate_trace(seed=5, horizon_ms=8_000.0, base_rate_per_s=30.0)
    crowd = generate_trace(
        seed=5, horizon_ms=8_000.0, base_rate_per_s=30.0,
        flash_crowds=(FlashCrowd(peak_ms=4_000.0, amplitude=3.0,
                                 sigma_ms=800.0),),
    )
    assert len(crowd) > len(quiet)


def test_session_spec_recipe_round_trips():
    spec = _spec()
    assert SessionSpec.from_recipe(spec.recipe()) == spec
    with pytest.raises(ConfigurationError, match="missing keys"):
        SessionSpec.from_recipe({"session_id": "x"})


def test_crash_storm_plan_validates_and_rotates():
    plan = crash_storm_plan(
        ["w0", "w1", "w2"], start_ms=1_000.0, crashes=5,
        include_hang=True, include_slow_heartbeat=True,
    )
    assert len(plan.worker_faults) == 7
    kinds = {f.kind for f in plan.worker_faults}
    assert kinds == {"crash", "hang", "slow-heartbeat"}
    plan.validate()  # idempotent — no overlap per worker


def test_generate_trace_rejects_bad_config():
    with pytest.raises(ConfigurationError):
        generate_trace(horizon_ms=-1.0)
    with pytest.raises(ConfigurationError):
        generate_trace(diurnal_amplitude=1.5)


# ---------------------------------------------------------------------------
# FleetService end to end
# ---------------------------------------------------------------------------

def _small_run(seed=7, plan=None, **kwargs):
    trace = generate_trace(seed=seed, horizon_ms=8_000.0,
                           base_rate_per_s=25.0, mean_session_ms=3_000.0)
    service = FleetService(n_workers=4, worker_capacity=120.0, **kwargs)
    summary = service.serve(trace, plan=plan)
    return service, summary


def test_service_run_is_deterministic():
    def run():
        service, _summary = _small_run()
        return json.dumps(service.report(), sort_keys=True)

    assert run() == run()


def test_service_serves_everything_without_faults():
    _service, summary = _small_run()
    stats = summary["stats"]
    assert stats["offered"] > 0
    assert stats["admitted"] == stats["offered"]
    assert stats["completed"] == stats["admitted"]
    assert stats["lost"] == 0
    assert summary["balanced"]


def test_service_crash_mid_run_completes_with_zero_loss():
    plan = FaultPlan().crash_worker(2_500.0, "w01", downtime_ms=800.0)
    service, summary = _small_run(plan=plan)
    stats, recovery = summary["stats"], summary["recovery"]
    assert recovery["crashes"] == 1
    assert recovery["drains"] == 1  # the drain is recorded in RecoveryStats
    assert recovery["evacuated_sessions"] > 0
    assert recovery["lost_sessions"] == 0
    assert recovery["worker_restarts"] == 1
    assert stats["lost"] == 0
    assert stats["completed"] == stats["admitted"]
    assert service.workers["w01"].state == "running"


def test_service_applies_every_worker_fault_kind():
    plan = (
        FaultPlan()
        .crash_worker(2_000.0, "w00", downtime_ms=600.0)
        .hang_worker(2_000.0, "w01", duration_ms=400.0)
        .slow_heartbeat(2_000.0, "w02", duration_ms=2_000.0, factor=2.5)
    )
    _service, summary = _small_run(plan=plan)
    recovery = summary["recovery"]
    # Short hang and sub-threshold slow-beats recover on their own; only
    # the real crash is declared dead.
    assert recovery["crashes"] == 1
    assert recovery["lost_sessions"] == 0
    assert summary["stats"]["completed"] == summary["stats"]["admitted"]


def test_service_rejects_fault_for_unknown_worker():
    plan = FaultPlan().crash_worker(1_000.0, "w99", downtime_ms=500.0)
    trace = generate_trace(seed=1, horizon_ms=3_000.0, base_rate_per_s=5.0)
    service = FleetService(n_workers=2, worker_capacity=50.0)
    with pytest.raises(FleetError, match="w99"):
        service.serve(trace, plan=plan)


def test_admission_sheds_under_capacity_pressure():
    trace = generate_trace(seed=3, horizon_ms=8_000.0, base_rate_per_s=40.0,
                           mean_session_ms=6_000.0)
    service = FleetService(n_workers=1, worker_capacity=20.0,
                           initial_window=16.0)
    summary = service.serve(trace)
    stats = summary["stats"]
    assert stats["shed"] > 0
    assert stats["offered"] == stats["admitted"] + stats["shed"]
    assert summary["balanced"]
    # Pressure must have pushed the degradation ladder off level 0 at
    # some point — sheds report as failures.
    assert summary["degradation"]["failures_total"] > 0


def test_priority_zero_overloads_rather_than_sheds():
    service = FleetService(n_workers=1, worker_capacity=2.0)
    worker = service.workers["w00"]
    for i in range(3):
        assert service.offer(_spec(session_id=f"p0-{i}", priority=0, seed=i))
    assert worker.load > worker.capacity  # overloaded, not refused
    assert not service.offer(_spec(session_id="p2", priority=2, seed=9))
    assert service.stats.shed_capacity == 1


def test_rebalance_moves_session_off_overloaded_worker():
    service = FleetService(n_workers=2, worker_capacity=4.0,
                           rebalance_gap=0.25)
    hot = service.workers["w00"]
    for i in range(6):
        hot.start_session(_spec(session_id=f"s{i}", load=1.0, seed=i,
                                app="video"))
    assert hot.load_factor() > 1.0
    service._rebalance()
    assert service.stats.rebalances == 1
    assert len(service.workers["w01"].sessions) == 1


def test_report_before_serve_raises():
    with pytest.raises(FleetError, match="nothing has run"):
        FleetService(n_workers=1).report()


# ---------------------------------------------------------------------------
# The fleetserve demo (scaled down — the CI smoke shape)
# ---------------------------------------------------------------------------

def test_fleetserve_quick_passes_acceptance_bars():
    from repro.experiments.fleetserve import check_fleetserve, run_fleetserve

    report = run_fleetserve(seed=0, quick=True)
    assert check_fleetserve(report) == []
    summary = report["summary"]
    assert summary["recovery"]["crashes"] >= 1  # the injected worker crash
    assert summary["recovery"]["lost_sessions"] == 0
    assert summary["stats"]["peak_concurrent"] >= report["shape"]["min_peak"]


def test_fleetserve_scales_to_thousands_of_sessions():
    trace = generate_trace(seed=2, horizon_ms=12_000.0, base_rate_per_s=300.0,
                           mean_session_ms=8_000.0)
    service = FleetService(n_workers=12, worker_capacity=300.0,
                           initial_window=1_024.0, max_window=16_384.0)
    plan = crash_storm_plan([f"w{i:02d}" for i in range(12)],
                            start_ms=4_000.0, crashes=2)
    summary = service.serve(trace, plan=plan)
    stats = summary["stats"]
    assert stats["peak_concurrent"] >= 1_500
    assert stats["lost"] == 0
    assert summary["recovery"]["crashes"] == 2
    assert summary["recovery"]["lost_sessions"] == 0
    assert stats["completed"] + summary["active_at_end"] == stats["admitted"]
