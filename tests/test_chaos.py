"""End-to-end chaos tests: the acceptance scenario for the fault framework.

These run the real vSoC emulator + UHD video app under injected faults and
assert the robustness contract end to end: no unhandled exceptions, the
degradation ladder demonstrably enters and exits degraded mode, steady-state
FPS recovers after fault clearance, and the whole run is deterministic
per (plan, seed).
"""

import pytest

from repro.core.degradation import LEVEL_GUEST_ROUNDTRIP, LEVEL_PREFETCHED
from repro.experiments.chaos import run_chaos
from repro.faults import FaultPlan
from repro.metrics.collectors import ResilienceStats

DURATION_MS = 6_000.0


@pytest.fixture(scope="module")
def chaos_run():
    """One full default-scenario run, shared by the assertions below."""
    return run_chaos(duration_ms=DURATION_MS, seed=0, keep_trace=True)


@pytest.fixture(scope="module")
def baseline_run():
    return run_chaos(duration_ms=DURATION_MS, seed=0, plan=FaultPlan())


def test_default_scenario_completes_without_unhandled_exceptions(chaos_run):
    # run_chaos raising would have failed the fixture; check it did real work.
    assert chaos_run.presented > 0
    assert chaos_run.injected["copy_faults"] > 0
    assert chaos_run.injected["load_changes"] > 0
    assert chaos_run.injected["stalls"] == 1
    assert chaos_run.injected["transport_drops"] > 0


def test_default_scenario_enters_and_exits_degraded_mode(chaos_run):
    assert chaos_run.entered_degraded
    assert chaos_run.exited_degraded
    assert 0.0 < chaos_run.time_degraded_ms < DURATION_MS
    trace = chaos_run.trace
    degrades = trace.of_kind("coherence.degrade")
    restores = trace.of_kind("coherence.restore")
    assert degrades and restores
    assert degrades[0].time < restores[-1].time
    # The last restore lands back on the fully optimized path.
    assert restores[-1]["level"] == LEVEL_PREFETCHED


def test_steady_state_fps_recovers_after_clearance(chaos_run, baseline_run):
    assert baseline_run.degrades == 0
    assert baseline_run.retries == 0
    assert chaos_run.steady_after_ms < DURATION_MS
    assert chaos_run.steady_fps >= baseline_run.steady_fps / 2.0


def test_faults_trigger_retries_and_failures(chaos_run):
    assert chaos_run.retries > 0
    assert chaos_run.copy_failures > 0
    assert chaos_run.transport_drops > 0


def _trace_tuples(result):
    return [
        (r.time, r.kind, tuple(sorted(r.fields.items()))) for r in result.trace
    ]


def test_chaos_run_is_deterministic_per_seed():
    a = run_chaos(duration_ms=3_000.0, seed=3, keep_trace=True)
    b = run_chaos(duration_ms=3_000.0, seed=3, keep_trace=True)
    assert a.presented == b.presented
    assert a.fps == b.fps
    assert _trace_tuples(a) == _trace_tuples(b)


def test_chaos_runs_diverge_across_seeds():
    a = run_chaos(duration_ms=3_000.0, seed=1, keep_trace=True)
    b = run_chaos(duration_ms=3_000.0, seed=2, keep_trace=True)
    assert _trace_tuples(a) != _trace_tuples(b)


def test_relentless_copy_faults_escalate_to_guest_roundtrip():
    """With every PCIe copy failing, the ladder must hit level 2 and survive
    on the 4-copy guest round-trip path, then climb back out afterwards."""
    plan = FaultPlan().copy_faults(1_000.0, 3_500.0, probability=1.0, bus="pcie")
    result = run_chaos(duration_ms=DURATION_MS, seed=0, plan=plan, keep_trace=True)
    trace = result.trace
    degrade_levels = [r["level"] for r in trace.of_kind("coherence.degrade")]
    assert LEVEL_GUEST_ROUNDTRIP in degrade_levels
    # Maintenance demonstrably ran on the degraded round-trip path.
    degraded_paths = [
        r for r in trace.of_kind("coherence.maintenance")
        if str(r["path"]).endswith("-degraded")
    ]
    assert degraded_paths
    # After the window clears, probes restore the optimized path.
    restores = trace.of_kind("coherence.restore")
    assert restores and restores[-1]["level"] == LEVEL_PREFETCHED
    assert result.presented > 0


# -- device-crash recovery (ISSUE 4) -----------------------------------------

def _crash_plan() -> FaultPlan:
    """A codec crash and a GPU crash, both mid-run, both recoverable."""
    return (
        FaultPlan()
        .crash_device(1_500.0, "codec", downtime_ms=400.0)
        .crash_device(3_000.0, "gpu", downtime_ms=300.0)
    )


@pytest.fixture(scope="module")
def crash_run():
    return run_chaos(
        duration_ms=5_000.0, seed=0, plan=_crash_plan(), keep_trace=True, audit=True
    )


def test_device_crash_run_completes_and_readmits_every_device(crash_run):
    # The sim reaching the full duration with frames still presenting after
    # the second crash is the no-deadlock property: every waiter of the
    # dead devices' fences saw signalled-or-poisoned.
    assert crash_run.crashes == 2
    assert crash_run.recoveries == 2
    assert crash_run.presented > 0
    # Frames keep presenting after the last recovery completes.
    assert crash_run.steady_fps > 0
    readmits = crash_run.trace.of_kind("recovery.readmit")
    assert len(readmits) == 2
    # Re-admission happens no earlier than crash time + downtime.
    assert readmits[0].time >= 1_500.0 + 400.0
    assert readmits[1].time >= 3_000.0 + 300.0


def test_device_crash_frame_drop_is_bounded(crash_run, baseline_run):
    # Losing two devices for ~700 ms combined must not halve the run's FPS.
    assert crash_run.fps >= baseline_run.fps / 2.0


def test_device_crash_counters_flow_into_resilience_stats(crash_run):
    stats = ResilienceStats(crash_run.trace)
    summary = stats.summary()
    assert summary["crashes"] == 2
    assert summary["recoveries"] == 2
    assert stats.fault_counts().get("fault.device_crash") == 2
    # The recovery state machine demonstrably ran end to end.
    assert crash_run.trace.count("recovery.crash") == 2
    assert crash_run.trace.count("recovery.readmit") == 2


def test_device_crash_run_stays_invariant_clean(crash_run):
    assert crash_run.audit_violations == 0


def test_device_crash_run_is_deterministic():
    a = run_chaos(duration_ms=4_000.0, seed=5, plan=_crash_plan(), keep_trace=True)
    b = run_chaos(duration_ms=4_000.0, seed=5, plan=_crash_plan(), keep_trace=True)
    assert _trace_tuples(a) == _trace_tuples(b)
    assert a.fps == b.fps
