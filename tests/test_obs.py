"""Tests for repro.obs: tracing, metrics, profiling, exporters, observe CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.emulators import EMULATOR_FACTORIES
from repro.errors import ConfigurationError
from repro.hw.machine import HIGH_END_DESKTOP, build_machine
from repro.metrics.stats import percentile
from repro.obs import (
    DISABLED,
    NULL_REGISTRY,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
    chrome_trace,
    connected_flows,
    metrics_json,
    validate_chrome_trace,
)
from repro.obs.profile import SelfProfiler
from repro.obs.registry import _DecimatingSampler
from repro.sim import Simulator, Timeout
from repro.sim.tracing import TraceLog


# -- tracer -------------------------------------------------------------------

def test_tracer_spans_and_flows():
    sim = Simulator()
    tracer = Tracer(sim)
    flow = tracer.new_flow()

    def proc():
        span = tracer.begin("stage:decode", "codec", cat="stage", flow=flow)
        yield Timeout(5.0)
        tracer.end(span, duration=5.0)
        tracer.instant("frame.presented", "display", flow=flow, sequence=0)

    sim.spawn(proc())
    sim.run(until=10.0)
    assert len(tracer.spans) == 1
    assert len(tracer.instants) == 1
    span = tracer.spans[0]
    assert span.start == 0.0 and span.end == 5.0 and span.duration == 5.0
    assert span.args["duration"] == 5.0
    chain = tracer.spans_of_flow(flow)
    assert [s.name for s in chain] == ["stage:decode", "frame.presented"]
    assert tracer.flows() == [flow]


def test_tracer_requires_sim_when_enabled():
    with pytest.raises(ValueError):
        Tracer()


def test_disabled_tracer_records_nothing():
    tracer = NULL_TRACER
    assert tracer.new_flow() == 0
    span = tracer.begin("anything", "track", flow=7, data=1)
    assert span is NULL_SPAN
    tracer.end(span, more=2)
    tracer.instant("evt", "track")
    assert len(tracer) == 0
    assert tracer.flows() == []


def test_span_context_manager():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        with tracer.span("critical", "host"):
            pass
        yield Timeout(1.0)

    sim.spawn(proc())
    sim.run(until=2.0)
    assert tracer.spans[0].finished


# -- metrics registry ---------------------------------------------------------

def test_registry_counter_gauge_histogram():
    registry = MetricsRegistry()
    registry.counter("bytes", link="pcie").inc(100)
    registry.counter("bytes", link="pcie").inc(50)
    registry.gauge("util", link="pcie").set(0.5, time=10.0)
    for v in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("lat").observe(v)

    assert registry.value("bytes", link="pcie") == 150
    assert registry.value("util", link="pcie") == 0.5
    hist = registry.find("lat")
    assert hist.count == 4 and hist.mean == 2.5
    assert hist.min == 1.0 and hist.max == 4.0
    assert hist.percentile(50) == 2.5
    assert len(registry) == 3


def test_registry_counter_rejects_decrease():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)


def test_registry_kind_conflict():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_disabled_registry_registers_nothing():
    registry = NULL_REGISTRY
    registry.counter("c").inc(5)
    registry.gauge("g").set(1.0, time=0.0)
    registry.histogram("h").observe(3.0)
    assert len(registry) == 0
    assert registry.find("c") is None
    assert registry.to_dict() == {"metrics": []}


def test_decimating_sampler_bounded_and_deterministic():
    def fill(n):
        sampler = _DecimatingSampler(capacity=8)
        for i in range(n):
            sampler.offer(i)
        return sampler.samples

    samples = fill(1000)
    assert len(samples) < 8
    assert samples == fill(1000)  # rerun retains identical samples
    assert samples == sorted(samples)


def test_gauge_timeline_export():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    for t in range(5):
        gauge.set(float(t), time=float(t))
    exported = gauge.to_dict()
    assert exported["value"] == 4.0
    assert exported["timeline"][0] == [0.0, 0.0]


# -- percentile edge cases (metrics.stats satellite) --------------------------

def test_percentile_empty_with_default():
    assert percentile([], 50, default=None) is None
    assert percentile([], 99, default=-1.0) == -1.0
    with pytest.raises(ConfigurationError):
        percentile([], 50)


def test_percentile_single_sample_and_extremes():
    assert percentile([7.0], 0) == 7.0
    assert percentile([7.0], 50) == 7.0
    assert percentile([7.0], 100) == 7.0
    assert percentile([1.0, 2.0], 0) == 1.0
    assert percentile([1.0, 2.0], 100) == 2.0


def test_percentile_rejects_nan_q():
    with pytest.raises(ConfigurationError):
        percentile([1.0], float("nan"))


# -- self-profiler ------------------------------------------------------------

def test_self_profiler_attributes_sim_time():
    sim = Simulator()
    profiler = SelfProfiler(vdev_to_device={"gpu": "rtx4090"})
    sim.add_hook(profiler)

    def exec_proc():
        yield Timeout(4.0)

    def prefetch_proc():
        yield Timeout(2.0)

    sim.spawn(exec_proc(), name="exec:gpu")
    sim.spawn(prefetch_proc(), name="prefetch:r1")
    sim.run(until=10.0)

    table = profiler.table()
    assert table["subsystem_ms"]["exec:gpu"] == 4.0
    assert table["subsystem_ms"]["prefetch"] == 2.0
    assert table["device_ms"]["rtx4090"] == 4.0
    assert table["timeouts_attributed"] == 2
    assert table["events_dispatched"] > 0


def test_profiler_hook_removal():
    sim = Simulator()
    profiler = SelfProfiler()
    sim.add_hook(profiler)
    sim.remove_hook(profiler)

    def proc():
        yield Timeout(1.0)

    sim.spawn(proc(), name="exec:gpu")
    sim.run(until=2.0)
    assert profiler.timeouts_attributed == 0


# -- exporters ----------------------------------------------------------------

def _traced_run():
    sim = Simulator()
    tracer = Tracer(sim)
    flow = tracer.new_flow()

    def proc():
        outer = tracer.begin("svm.begin_access", "gpu", cat="svm", flow=flow)
        yield Timeout(2.0)
        inner = tracer.begin("coherence.copy", "coherence", cat="coherence", flow=flow)
        yield Timeout(3.0)
        tracer.end(inner)
        tracer.end(outer)
        tracer.instant("frame.presented", "display", cat="frame", flow=flow)

    sim.spawn(proc())
    sim.run(until=10.0)
    return sim, tracer, flow


def test_chrome_trace_structure_and_validation():
    sim, tracer, flow = _traced_run()
    trace = chrome_trace(
        tracer, track_groups={"gpu": "rtx4090"}, end_time=sim.now
    )
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    phases = [e["ph"] for e in events]
    assert "X" in phases and "i" in phases and "M" in phases
    # gpu track got its own process; coherence/display default to host
    process_names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert process_names == {"rtx4090", "host"}
    # flow chain is s ... f in event order
    chain = [e["ph"] for e in events if e["ph"] in ("s", "t", "f")]
    assert chain[0] == "s" and chain[-1] == "f"
    # timestamps are in microseconds
    copy_event = next(e for e in events if e.get("name") == "coherence.copy")
    assert copy_event["ts"] == 2000.0 and copy_event["dur"] == 3000.0


def test_chrome_trace_clamps_open_spans():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        tracer.begin("never.closed", "host")
        yield Timeout(1.0)

    sim.spawn(proc())
    sim.run(until=5.0)
    trace = chrome_trace(tracer, end_time=sim.now)
    event = next(e for e in trace["traceEvents"] if e["ph"] == "X")
    assert event["dur"] == 5000.0
    assert validate_chrome_trace(trace) == []


def test_validate_chrome_trace_catches_malformed():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    bad_phase = {"traceEvents": [{"ph": "?", "pid": 1, "tid": 1, "ts": 0}]}
    assert any("phase" in e for e in validate_chrome_trace(bad_phase))
    bad_dur = {"traceEvents": [
        {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
    ]}
    assert any("dur" in e for e in validate_chrome_trace(bad_dur))
    bad_flow = {"traceEvents": [
        {"ph": "t", "pid": 1, "tid": 1, "ts": 0, "id": 9},
    ]}
    assert any("flow 9" in e for e in validate_chrome_trace(bad_flow))


def test_connected_flows_matches_by_prefix():
    _, tracer, flow = _traced_run()
    assert connected_flows(
        tracer, ("svm.begin_access", "coherence", "frame.presented")
    ) == [flow]
    assert connected_flows(tracer, ("svm.begin_access", "prefetch")) == []


def test_tracelog_digestion_into_trace():
    sim, tracer, _ = _traced_run()
    log = TraceLog()
    log.record(1.0, "host.op_retired", vdev="gpu", op="render")
    trace = chrome_trace(tracer, tracelog=log, end_time=sim.now)
    assert validate_chrome_trace(trace) == []
    digested = [e for e in trace["traceEvents"] if e.get("cat") == "tracelog"]
    assert len(digested) == 1
    assert digested[0]["name"] == "host.op_retired"


def test_metrics_json_bundles_profile_and_extra():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    out = metrics_json(registry, profile={"device_ms": {"gpu": 1.0}},
                       extra={"fps": 60.0})
    assert out["metrics"][0]["value"] == 3.0
    assert out["profile"]["device_ms"]["gpu"] == 1.0
    assert out["fps"] == 60.0
    json.dumps(out)  # round-trips


# -- Observability bundle -----------------------------------------------------

def test_observability_disabled_is_inert():
    assert not DISABLED.enabled
    assert DISABLED.tracer is NULL_TRACER
    assert DISABLED.registry is NULL_REGISTRY
    assert DISABLED.profiler is None
    DISABLED.map_devices({"gpu": "x"})  # no-op, no crash


def test_observability_enabled_installs_hook():
    sim = Simulator()
    obs = Observability(sim)
    assert obs.enabled and obs.profiler is not None

    def proc():
        yield Timeout(2.0)

    sim.spawn(proc(), name="exec:gpu")
    sim.run(until=3.0)
    obs.map_devices({"gpu": "dev0"})
    metrics = obs.export_metrics()
    assert metrics["profile"]["timeouts_attributed"] == 1


# -- TraceLog satellites: per-kind index + ring mode --------------------------

def test_tracelog_index_consistency():
    log = TraceLog()
    for i in range(10):
        log.record(float(i), "a", v=i)
        log.record(float(i), "b", v=i * 2)
    assert log.count("a") == 10 and log.count("b") == 10
    assert log.values("a", "v") == list(range(10))
    assert [r.kind for r in log.of_kind("b")] == ["b"] * 10
    assert log.kind_counts() == {"a": 10, "b": 10}
    assert log.recorded_total == 20


def test_tracelog_ring_mode_evicts_oldest():
    log = TraceLog(max_records=5)
    for i in range(12):
        log.record(float(i), "k", v=i)
    assert len(log) == 5
    assert log.dropped_records == 7
    assert log.recorded_total == 12
    assert log.values("k", "v") == [7, 8, 9, 10, 11]
    assert log.count("k") == 5


def test_tracelog_ring_mode_keeps_index_in_sync_across_kinds():
    log = TraceLog(max_records=3)
    log.record(0.0, "a")
    log.record(1.0, "b")
    log.record(2.0, "a")
    log.record(3.0, "c")  # evicts the t=0 "a"
    log.record(4.0, "c")  # evicts the t=1 "b"
    assert log.kind_counts() == {"a": 1, "c": 2}
    assert log.count("b") == 0
    assert log.of_kind("b") == []
    assert [r.time for r in log.of_kind("a")] == [2.0]


def test_tracelog_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        TraceLog(max_records=0)


# -- end-to-end: observed emulator runs ---------------------------------------

def _run_video(obs=None, duration_ms=1_500.0):
    from repro.apps.video import UhdVideoApp

    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    trace = TraceLog()
    emulator = EMULATOR_FACTORIES["vSoC"](
        sim, machine, trace=trace, rng=random.Random(0), obs=obs
    )
    app = UhdVideoApp()
    assert app.install(sim, emulator)
    sim.run(until=duration_ms)
    return sim, emulator, app


def test_observed_run_is_bit_identical_and_connected():
    # baseline: no observability
    _, _, plain = _run_video(obs=None)

    # observed: full tracing + metrics + profiling on its own sim
    from repro.apps.video import UhdVideoApp

    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    obs = Observability(sim)
    emulator = EMULATOR_FACTORIES["vSoC"](
        sim, machine, trace=TraceLog(), rng=random.Random(0), obs=obs
    )
    app = UhdVideoApp()
    app.fps.attach_registry(obs.registry)
    assert app.install(sim, emulator)
    sim.run(until=1_500.0)

    # observability never perturbs the simulation: identical frame times
    assert app.fps.present_times == plain.fps.present_times
    assert app.fps.dropped == plain.fps.dropped

    # the trace exports clean and at least one frame flow is connected
    trace = obs.export_trace(track_groups=emulator.track_groups())
    assert validate_chrome_trace(trace) == []
    connected = set(connected_flows(
        obs.tracer, ("svm.begin_access", "coherence.copy", "frame.presented")
    )) | set(connected_flows(
        obs.tracer, ("svm.begin_access", "prefetch", "frame.presented")
    ))
    assert connected

    # metrics carry the acceptance instruments
    metrics = obs.export_metrics()
    names = {m["name"] for m in metrics["metrics"]}
    assert "prefetch.mispredict_rate" in names
    assert "bus.utilization" in names
    assert "frames.presented" in names
    assert metrics["profile"]["device_ms"]  # per-device attribution
    # frame counters mirror the authoritative collector
    presented = next(
        m for m in metrics["metrics"] if m["name"] == "frames.presented"
    )
    assert presented["value"] == float(app.fps.presented)


def test_disabled_observability_adds_zero_records():
    sim, emulator, _ = _run_video(obs=None)
    assert emulator.obs is DISABLED
    assert len(DISABLED.tracer) == 0
    assert len(DISABLED.registry) == 0


# -- observe CLI --------------------------------------------------------------

def test_observe_cli_writes_artifacts(tmp_path):
    from repro.experiments.__main__ import main

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    code = main([
        "observe", "--app", "video", "--duration", "1500",
        "--export", str(trace_path), "--metrics", str(metrics_path),
    ])
    assert code == 0
    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    metrics = json.loads(metrics_path.read_text())
    assert metrics["app"] == "uhd-video"
    assert any(m["name"] == "bus.utilization" for m in metrics["metrics"])
    assert "profile" in metrics


def test_observe_cli_rejects_unknown_app():
    from repro.experiments.observe import run_observe

    with pytest.raises(ValueError):
        run_observe(app="nope")
    with pytest.raises(ValueError):
        run_observe(emulator="nope")


# -- reservoir overrides -------------------------------------------------------

def test_registry_reservoir_override():
    from repro.obs.registry import DEFAULT_RESERVOIR, MetricsRegistry

    small = MetricsRegistry(reservoir=8)
    hist = small.histogram("h")
    gauge = small.gauge("g")
    for i in range(1_000):
        hist.observe(float(i))
        gauge.set(float(i), time=float(i))
    assert len(hist.samples()) <= 8
    assert len(gauge.timeline()) <= 8

    mixed = MetricsRegistry()
    wide = mixed.histogram("wide", reservoir=2_048)
    narrow = mixed.histogram("narrow", reservoir=4)
    default = mixed.histogram("default")
    for i in range(5_000):
        wide.observe(float(i))
        narrow.observe(float(i))
        default.observe(float(i))
    assert len(narrow.samples()) <= 4
    assert len(default.samples()) <= DEFAULT_RESERVOIR
    assert len(wide.samples()) > DEFAULT_RESERVOIR


def test_observe_reservoir_threads_through():
    from repro.experiments.observe import run_observe

    run = run_observe(app="video", duration_ms=1_500.0, reservoir=16)
    for metric in run.metrics["metrics"]:
        samples = metric.get("samples") or metric.get("timeline") or []
        assert len(samples) <= 16, metric["name"]


# -- bind_id flow validation ---------------------------------------------------

def _bind_event(ph="X", bind_id=7, **flags):
    event = {"ph": ph, "name": "e", "cat": "c", "ts": 1.0, "dur": 1.0,
             "pid": 1, "tid": 1, "bind_id": bind_id}
    event.update(flags)
    return event


def test_validator_flags_unpaired_bind_ids():
    # flow_out with no flow_in: the arrow starts and never lands.
    out_only = {"traceEvents": [_bind_event(flow_out=True)]}
    errors = validate_chrome_trace(out_only)
    assert any("no 'flow_in'" in e for e in errors)

    # flow_in with no flow_out: the arrow lands but never starts.
    in_only = {"traceEvents": [_bind_event(flow_in=True)]}
    errors = validate_chrome_trace(in_only)
    assert any("no 'flow_out'" in e for e in errors)

    # bind_id with neither flag can never pair at all.
    neither = {"traceEvents": [_bind_event()]}
    errors = validate_chrome_trace(neither)
    assert any("can never pair" in e for e in errors)

    # a bad bind_id type is reported rather than crashing the validator
    bad_type = {"traceEvents": [_bind_event(bind_id=[1], flow_out=True)]}
    errors = validate_chrome_trace(bad_type)
    assert any("must be an int or string" in e for e in errors)


def test_validator_accepts_paired_bind_ids():
    paired = {"traceEvents": [
        _bind_event(flow_out=True),
        _bind_event(flow_in=True),
    ]}
    assert validate_chrome_trace(paired) == []
    # one event carrying both directions pairs with itself (a relay hop)
    relay = {"traceEvents": [_bind_event(flow_out=True, flow_in=True)]}
    assert validate_chrome_trace(relay) == []
    # string bind ids are legal in the format
    strings = {"traceEvents": [
        _bind_event(bind_id="0xcafe", flow_out=True),
        _bind_event(bind_id="0xcafe", flow_in=True),
    ]}
    assert validate_chrome_trace(strings) == []
