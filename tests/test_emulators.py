"""Integration tests for emulator assemblies (repro.emulators)."""

import random

import pytest

from repro.core.ordering import OrderingMode
from repro.emulators import (
    EMULATOR_FACTORIES,
    make_gae,
    make_qemu_kvm,
    make_trinity,
    make_vsoc,
)
from repro.errors import CapabilityError, ConfigurationError
from repro.hw import build_machine
from repro.sim import Simulator, Timeout
from repro.units import MIB, UHD_FRAME_BYTES


def make(factory, **kwargs):
    sim = Simulator()
    machine = build_machine(sim)
    return sim, factory(sim, machine, rng=random.Random(0), **kwargs)


# --- construction & capabilities ----------------------------------------------

def test_every_factory_builds():
    for name, factory in EMULATOR_FACTORIES.items():
        _sim, emulator = make(factory)
        assert emulator.name.startswith(name.split("(")[0])


def test_vsoc_uses_unified_prefetch_protocol():
    _sim, emulator = make(make_vsoc)
    assert emulator.protocol.name == "unified-prefetch"
    assert emulator.engine is not None
    assert emulator.config.ordering is OrderingMode.FENCES


def test_baselines_use_guest_memory_protocol():
    for factory in (make_gae, make_qemu_kvm, make_trinity):
        _sim, emulator = make(factory)
        assert emulator.protocol.name == "guest-memory-write-invalidate"
        assert emulator.engine is None


def test_ablation_flags():
    _sim, no_prefetch = make(make_vsoc, prefetch=False)
    assert no_prefetch.protocol.name == "unified-write-invalidate"
    assert no_prefetch.config.atomic_svm_stages
    _sim, no_fence = make(make_vsoc, fences=False)
    assert no_fence.config.ordering is OrderingMode.ATOMIC
    assert no_fence.engine is not None


def test_prefetch_without_unified_svm_rejected():
    from repro.emulators.base import Emulator, EmulatorConfig

    sim = Simulator()
    machine = build_machine(sim)
    config = EmulatorConfig(name="broken", unified_svm=False, prefetch_enabled=True)
    with pytest.raises(ConfigurationError):
        Emulator(sim, machine, config)


def test_trinity_lacks_camera_and_encoder():
    _sim, trinity = make(make_trinity)
    assert not trinity.has_vdev("camera")
    assert not trinity.supports_encoding()
    with pytest.raises(CapabilityError):
        trinity.physical_for("camera")
    with pytest.raises(CapabilityError):
        trinity.encode_op()


def test_codec_data_lives_in_host_memory():
    """libavcodec output buffers are host-resident even with hw decode."""
    _sim, vsoc = make(make_vsoc)
    assert vsoc.vdev_location("codec") == "host"
    assert vsoc.vdev_location("gpu") == "gpu"
    assert vsoc.vdev_location("display") == "gpu"  # GPU-managed window


def test_decode_op_selection():
    _sim, vsoc = make(make_vsoc)
    assert vsoc.decode_op() == "hw_decode"
    _sim, gae = make(make_gae)
    assert gae.decode_op() == "sw_decode"


# --- stage machinery -----------------------------------------------------------

def run_write_read(sim, emulator, nbytes=UHD_FRAME_BYTES, slack=12.0, cycles=1):
    """Decode-write → render-read cycles; returns the last (write, read).

    Multiple cycles warm the twin hypergraphs: the paper notes predictions
    fail during startup when no history exists (§5.2), so steady-state
    assertions should skip the first generation.
    """
    outcome = {}

    def app():
        rid = emulator.svm_alloc(nbytes)
        for _ in range(cycles):
            write = yield from emulator.stage(
                "codec", emulator.decode_op(), nbytes, writes=[rid]
            )
            yield write.done
            yield Timeout(slack)
            read = yield from emulator.stage("gpu", "render", nbytes, reads=[rid])
            yield read.done
            outcome["write"], outcome["read"] = write, read

    sim.spawn(app(), name="app")
    sim.run(until=10_000.0)
    return outcome["write"], outcome["read"]


def test_fences_mode_write_returns_before_host_completion():
    sim, vsoc = make(make_vsoc)
    times = {}

    def app():
        rid = vsoc.svm_alloc(UHD_FRAME_BYTES)
        write = yield from vsoc.stage("codec", "hw_decode", UHD_FRAME_BYTES, writes=[rid])
        times["returned"] = sim.now
        done_at = yield write.done
        times["retired"] = done_at

    sim.spawn(app())
    sim.run()
    # the driver returned well before the ~9 ms decode retired on the host
    assert times["returned"] < 1.0
    assert times["retired"] > 8.0


def test_atomic_mode_write_blocks_until_host_completion():
    sim, gae = make(make_gae)
    times = {}

    def app():
        rid = gae.svm_alloc(UHD_FRAME_BYTES)
        write = yield from gae.stage("codec", "sw_decode", UHD_FRAME_BYTES, writes=[rid])
        times["returned"] = sim.now
        assert write.done.fired

    sim.spawn(app())
    sim.run()
    # software decode ~26 ms + flush ~3.5 ms, all on the caller's back
    assert times["returned"] > 25.0


def test_fence_orders_cross_device_read_after_write():
    """Figure 9c: the read op must observe the completed write."""
    sim, vsoc = make(make_vsoc)
    write, read = run_write_read(sim, vsoc, slack=0.0)
    write_retired = write.done.value
    read_retired = read.done.value
    assert read_retired > write_retired


def test_vsoc_cross_device_read_is_cheap_after_slack():
    sim, vsoc = make(make_vsoc)
    _write, read = run_write_read(sim, vsoc, slack=14.0, cycles=3)
    # prefetch (host->gpu, ~2.4 ms) hid under the 14 ms slack
    assert read.access_latency < 1.0
    assert vsoc.engine.stats.launched >= 1


def test_write_invalidate_read_blocks():
    sim, ablated = make(make_vsoc, prefetch=False)
    _write, read = run_write_read(sim, ablated, slack=14.0)
    assert read.access_latency > 2.0  # synchronous maintenance at begin_access


def test_baseline_coherence_via_guest_memory():
    sim, gae = make(make_gae)
    run_write_read(sim, gae, slack=14.0)
    maintenances = gae.trace.of_kind("coherence.maintenance")
    assert len(maintenances) == 1
    assert maintenances[0]["path"] == "guest-memory"
    assert maintenances[0]["duration"] > 6.0  # two boundary crossings


def test_flow_control_completes_per_stage():
    sim, vsoc = make(make_vsoc)

    def app():
        rid = vsoc.svm_alloc(MIB)
        for _ in range(20):
            result = yield from vsoc.stage("gpu", "render", MIB, writes=[rid])
            yield result.done

    sim.spawn(app())
    sim.run()
    gpu = vsoc._vdevs["gpu"]
    assert gpu.flow.in_flight == 0


def test_multi_region_stage_isp_style():
    """An ISP-style op reading one region and writing another."""
    sim, vsoc = make(make_vsoc)
    outcome = {}

    def app():
        src = vsoc.svm_alloc(UHD_FRAME_BYTES)
        dst = vsoc.svm_alloc(UHD_FRAME_BYTES)
        deliver = yield from vsoc.stage("camera", "deliver", UHD_FRAME_BYTES, writes=[src])
        yield deliver.done
        convert = yield from vsoc.stage(
            "isp", "convert", UHD_FRAME_BYTES, reads=[src], writes=[dst]
        )
        yield convert.done
        outcome["src"] = vsoc.manager.get(src)
        outcome["dst"] = vsoc.manager.get(dst)

    sim.spawn(app())
    sim.run()
    assert outcome["dst"].last_writer_vdev == "isp"
    assert outcome["src"].reader_vdevs == {"isp"}


def test_compute_stage_without_regions():
    sim, vsoc = make(make_vsoc)

    def app():
        result = yield from vsoc.compute("gpu", "render", 100 * MIB)
        yield result.done

    p = sim.spawn(app())
    sim.run()
    assert not p.alive
    assert vsoc.machine.gpu.ops_executed == 1


def test_stall_injector_freezes_codec_paths():
    from repro.emulators.commercial import make_bluestacks

    sim, bluestacks = make(make_bluestacks)
    stage_times = []

    def app():
        rid = bluestacks.svm_alloc(MIB)
        while sim.now < 20_000.0:
            start = sim.now
            result = yield from bluestacks.stage(
                "codec", "sw_decode", MIB, writes=[rid]
            )
            yield result.done
            stage_times.append(sim.now - start)
            yield Timeout(16.7)

    sim.spawn(app())
    sim.run(until=20_000.0)
    # at least one stage caught a multi-second freeze
    assert max(stage_times) > 1_000.0
