"""Unit tests for simulation primitives (repro.sim.primitives)."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, FifoQueue, Mutex, Semaphore, SimEvent, Simulator, Timeout


# --- SimEvent --------------------------------------------------------------

def test_event_wakes_waiter_with_value():
    sim = Simulator()
    event = SimEvent(sim, name="ev")
    results = []

    def waiter():
        got = yield event
        results.append(got)

    sim.spawn(waiter())
    sim.schedule(4.0, event.fire, "hello")
    sim.run()
    assert results == ["hello"]
    assert sim.now == 4.0


def test_event_wakes_multiple_waiters():
    sim = Simulator()
    event = SimEvent(sim)
    results = []

    def waiter(label):
        got = yield event
        results.append((label, got))

    for label in "abc":
        sim.spawn(waiter(label))
    sim.schedule(1.0, event.fire, 7)
    sim.run()
    assert results == [("a", 7), ("b", 7), ("c", 7)]


def test_late_waiter_on_fired_event():
    sim = Simulator()
    event = SimEvent(sim)
    event.fire("done")
    results = []

    def waiter():
        got = yield event
        results.append(got)

    sim.spawn(waiter())
    sim.run()
    assert results == ["done"]


def test_event_double_fire_rejected():
    sim = Simulator()
    event = SimEvent(sim)
    event.fire()
    with pytest.raises(SimulationError):
        event.fire()


def test_event_fail_propagates_exception():
    sim = Simulator()
    event = SimEvent(sim)
    results = []

    def waiter():
        try:
            yield event
        except RuntimeError as err:
            results.append(str(err))

    sim.spawn(waiter())
    sim.schedule(1.0, event.fail, RuntimeError("device error"))
    sim.run()
    assert results == ["device error"]


# --- AllOf -----------------------------------------------------------------

def test_allof_waits_for_all_children():
    sim = Simulator()
    e1, e2 = SimEvent(sim), SimEvent(sim)
    results = []

    def waiter():
        values = yield AllOf(sim, [e1, e2])
        results.append((sim.now, values))

    sim.spawn(waiter())
    sim.schedule(2.0, e1.fire, "one")
    sim.schedule(5.0, e2.fire, "two")
    sim.run()
    assert results == [(5.0, ["one", "two"])]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    results = []

    def waiter():
        values = yield AllOf(sim, [])
        results.append(values)

    sim.spawn(waiter())
    sim.run()
    assert results == [[]]


def test_allof_preserves_child_order_not_completion_order():
    sim = Simulator()
    e1, e2 = SimEvent(sim), SimEvent(sim)
    results = []

    def waiter():
        values = yield AllOf(sim, [e1, e2])
        results.append(values)

    sim.spawn(waiter())
    sim.schedule(5.0, e1.fire, "first-child")
    sim.schedule(1.0, e2.fire, "second-child")
    sim.run()
    assert results == [["first-child", "second-child"]]


# --- Semaphore / Mutex -------------------------------------------------------

def test_semaphore_allows_up_to_capacity():
    sim = Simulator()
    sem = Semaphore(sim, permits=2)
    inside = []

    def worker(label):
        yield sem.acquire()
        inside.append(label)
        yield Timeout(10.0)
        sem.release()

    for label in "abc":
        sim.spawn(worker(label))
    sim.run(until=5.0)
    assert inside == ["a", "b"]
    sim.run()
    assert inside == ["a", "b", "c"]


def test_semaphore_fifo_wakeup():
    sim = Simulator()
    sem = Semaphore(sim, permits=1)
    order = []

    def worker(label):
        yield sem.acquire()
        order.append(label)
        yield Timeout(1.0)
        sem.release()

    for label in ("w1", "w2", "w3"):
        sim.spawn(worker(label))
    sim.run()
    assert order == ["w1", "w2", "w3"]


def test_try_acquire():
    sim = Simulator()
    sem = Semaphore(sim, permits=1)
    assert sem.try_acquire() is True
    assert sem.try_acquire() is False
    sem.release()
    assert sem.available == 1


def test_release_without_waiters_increments_permits():
    sim = Simulator()
    sem = Semaphore(sim, permits=0)
    sem.release()
    assert sem.available == 1


def test_mutex_is_binary():
    sim = Simulator()
    mutex = Mutex(sim)
    assert mutex.available == 1


def test_negative_permits_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Semaphore(sim, permits=-1)


# --- FifoQueue ---------------------------------------------------------------

def test_queue_put_then_get():
    sim = Simulator()
    q = FifoQueue(sim)
    results = []

    def consumer():
        item = yield q.get()
        results.append(item)

    sim.spawn(consumer())
    q.put("cmd")
    sim.run()
    assert results == ["cmd"]


def test_queue_get_blocks_until_put():
    sim = Simulator()
    q = FifoQueue(sim)
    results = []

    def consumer():
        item = yield q.get()
        results.append((sim.now, item))

    def producer():
        yield Timeout(9.0)
        yield q.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert results == [(9.0, "late")]


def test_queue_fifo_order():
    sim = Simulator()
    q = FifoQueue(sim)
    for item in (1, 2, 3):
        q.put(item)
    results = []

    def consumer():
        for _ in range(3):
            item = yield q.get()
            results.append(item)

    sim.spawn(consumer())
    sim.run()
    assert results == [1, 2, 3]


def test_bounded_queue_blocks_producer():
    sim = Simulator()
    q = FifoQueue(sim, capacity=1)
    timeline = []

    def producer():
        yield q.put("a")
        timeline.append(("put-a", sim.now))
        yield q.put("b")
        timeline.append(("put-b", sim.now))

    def consumer():
        yield Timeout(5.0)
        item = yield q.get()
        timeline.append(("got", item, sim.now))
        yield Timeout(0.0)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("put-a", 0.0) in timeline
    put_b = next(t for t in timeline if t[0] == "put-b")
    assert put_b[1] >= 5.0  # blocked until the consumer drained one item


def test_try_put_respects_capacity():
    sim = Simulator()
    q = FifoQueue(sim, capacity=2)
    assert q.try_put(1) is True
    assert q.try_put(2) is True
    assert q.try_put(3) is False
    assert len(q) == 2


def test_try_put_hands_off_to_waiting_getter():
    sim = Simulator()
    q = FifoQueue(sim, capacity=1)
    results = []

    def consumer():
        item = yield q.get()
        results.append(item)

    sim.spawn(consumer())
    sim.run()  # consumer is now parked on get()
    assert q.try_put("direct") is True
    sim.run()
    assert results == ["direct"]


def test_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        FifoQueue(sim, capacity=0)


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-0.5)
