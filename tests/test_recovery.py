"""Recovery-stack tests (ISSUE 4): snapshots, crash recovery, and auditing.

Covers the robustness contract end to end:

* fence poisoning releases waiters, and poisoned indices are only recycled
  after the recovery coordinator acknowledges the poison;
* fault plans reject overlapping windows and out-of-order timelines at
  build/validate time;
* snapshots round-trip losslessly, reject corruption, and — the property
  that makes them crash-consistent — restoring at any cut point and running
  on produces a bit-identical trace tail;
* the invariant auditor is clean on healthy runs, observation-transparent,
  and actually fires on deliberately broken state;
* the kernel primitives recovery is built on (``Process.kill``,
  ``FifoQueue.reset``) honour their contracts.
"""

import random

import pytest

from repro.core.fence import POISONED_STATUS, VirtualFenceTable
from repro.errors import (
    ConfigurationError,
    FenceError,
    InvariantViolation,
    SnapshotCorruptError,
)
from repro.experiments.chaos import crash_chaos_plan, crash_with_faults_plan
from repro.experiments.recover import (
    build_harness,
    capture_at,
    restore_and_continue,
    snapshot_roundtrip_check,
    trace_tuples,
)
from repro.faults import FaultPlan
from repro.recovery import Snapshot, install_auditor
from repro.sim import Simulator
from repro.sim.primitives import FifoQueue, Timeout


# -- fence poisoning and recycle gating (satellite 1) ------------------------

def test_poisoned_fence_releases_waiters_and_ignores_zombie_signal():
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=8)
    fence = table.allocate()
    fence.owner = "codec"
    observed = []

    def waiter():
        status = yield fence.wait()
        observed.append(status)

    sim.spawn(waiter(), name="waiter")
    sim.run(until=1.0)
    assert observed == []  # fence still pending, waiter parked

    assert table.poison_owned("codec") == [fence]
    sim.run(until=2.0)
    assert observed == [POISONED_STATUS]

    # The crashed device's signal command may still arrive through the
    # reset queue — the zombie echo must be a silent no-op.
    fence.signal()
    assert fence.poisoned
    assert fence.poison() is True  # idempotent


def test_poison_ack_gates_fence_index_recycling():
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=2)
    poisoned = table.allocate()
    poisoned.owner = "codec"
    signaled = table.allocate()
    signaled.signal()
    table.poison_owned("codec")

    # Free list is empty: the next allocate recycles — but only the
    # signalled slot; the un-acked poisoned slot stays pinned.
    reused = table.allocate()
    assert reused.index == signaled.index
    assert table._slots[poisoned.index] is poisoned

    reused.signal()
    second = table.allocate()
    assert second.index == reused.index
    assert table._slots[poisoned.index] is poisoned  # still pinned

    # After acknowledgement the slot finally becomes reclaimable.
    table.acknowledge_poison(poisoned.index)
    second.signal()
    table.allocate()
    assert poisoned.index not in table._slots


def test_acknowledging_a_non_poisoned_fence_is_an_error():
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=4)
    fence = table.allocate()
    with pytest.raises(FenceError):
        table.acknowledge_poison(fence.index)
    fence.signal()
    with pytest.raises(FenceError):
        table.acknowledge_poison(fence.index)


# -- fault-plan build-time validation (satellite 2) ---------------------------

def test_overlapping_copy_fault_windows_rejected():
    plan = (
        FaultPlan()
        .copy_faults(1_000.0, 3_000.0, probability=0.5, bus="pcie")
        .copy_faults(2_500.0, 4_000.0, probability=0.1, bus="pcie")
    )
    with pytest.raises(ConfigurationError):
        plan.validate()


def test_wildcard_copy_window_overlap_with_named_bus_rejected():
    plan = (
        FaultPlan()
        .copy_faults(1_000.0, 3_000.0, probability=0.5, bus="pcie")
        .copy_faults(2_000.0, 5_000.0, probability=0.5)  # every bus
    )
    with pytest.raises(ConfigurationError):
        plan.validate()


def test_out_of_order_events_for_one_target_rejected():
    plan = (
        FaultPlan()
        .crash_device(5_000.0, "gpu", downtime_ms=300.0)
        .crash_device(2_000.0, "gpu", downtime_ms=300.0)
    )
    with pytest.raises(ConfigurationError):
        plan.validate()


def test_crash_inside_prior_recovery_downtime_rejected():
    plan = (
        FaultPlan()
        .crash_device(2_000.0, "codec", downtime_ms=500.0)
        .crash_device(2_300.0, "codec", downtime_ms=100.0)
    )
    with pytest.raises(ConfigurationError):
        plan.validate()


def test_overlapping_stall_and_reset_on_one_device_rejected():
    plan = (
        FaultPlan()
        .stall_device(1_000.0, "gpu", duration_ms=500.0)
        .reset_device(1_200.0, "gpu", downtime_ms=100.0)
    )
    with pytest.raises(ConfigurationError):
        plan.validate()


def test_shipped_crash_plans_pass_validation():
    crash_chaos_plan().validate()
    crash_with_faults_plan().validate()


# -- snapshot round-trip and corruption rejection ----------------------------

def test_snapshot_roundtrip_and_corruption_rejection():
    result = snapshot_roundtrip_check(cut_ms=1_500.0)
    assert result == {
        "serialization_lossless": True,
        "roundtrip_digest_identical": True,
        "corruption_rejected": True,
        "truncation_rejected": True,
    }


def test_snapshot_file_save_load_and_checksum(tmp_path):
    snapshot = capture_at("vSoC", "video", 0, 1_200.0)
    path = tmp_path / "snapshot.json"
    snapshot.save(path)
    loaded = Snapshot.load(path)
    assert loaded.digest() == snapshot.digest()
    assert loaded.recipe == snapshot.recipe

    # One flipped byte inside the state payload must fail the checksum.
    path.write_text(path.read_text().replace('"sim_now"', '"sim_noW"', 1))
    with pytest.raises(SnapshotCorruptError):
        Snapshot.load(path)


def test_snapshot_from_garbage_rejected():
    with pytest.raises(SnapshotCorruptError):
        Snapshot.from_json("not json at all")
    with pytest.raises(SnapshotCorruptError):
        Snapshot.from_json("{}")


# -- checkpoint/restore determinism (satellite 3) -----------------------------

@pytest.mark.parametrize("emulator_name", ["vSoC", "GAE"])
@pytest.mark.parametrize("app_name", ["video", "camera"])
def test_restore_then_run_bit_matches_uninterrupted(emulator_name, app_name):
    """Restore at T, run to T+Δ: the trace tail must be bit-identical."""
    total_ms = 3_000.0
    rng = random.Random(f"{emulator_name}/{app_name}")
    cuts = sorted(round(rng.uniform(400.0, 2_400.0), 1) for _ in range(5))

    reference = build_harness(emulator_name, app_name, seed=0)
    reference.sim.run(until=total_ms)
    ref_tuples = trace_tuples(reference.trace)

    for cut_ms in cuts:
        snapshot = capture_at(emulator_name, app_name, 0, cut_ms)
        # Round-trip through the serialized form so the comparison covers
        # the on-disk format too.
        snapshot = Snapshot.from_json(snapshot.to_json())
        resumed = restore_and_continue(snapshot, total_ms)
        resumed_tail = [t for t in trace_tuples(resumed.trace) if t[0] >= cut_ms]
        reference_tail = [t for t in ref_tuples if t[0] >= cut_ms]
        assert resumed_tail == reference_tail, f"diverged after restore at {cut_ms}"


# -- the invariant auditor ----------------------------------------------------

def test_auditor_clean_on_healthy_run():
    harness = build_harness("vSoC", "video", seed=0)
    auditor = install_auditor(harness.emulator)
    harness.sim.run(until=3_000.0)
    auditor.sweep()
    report = auditor.report()
    assert report["clean"]
    assert report["audits"] > 0
    assert report["checks"] > 0
    assert report["violations_by_invariant"] == {}


def test_auditor_is_observation_transparent():
    plain = build_harness("vSoC", "video", seed=0)
    plain.sim.run(until=2_500.0)
    audited = build_harness("vSoC", "video", seed=0)
    install_auditor(audited.emulator)
    audited.sim.run(until=2_500.0)
    assert trace_tuples(plain.trace) == trace_tuples(audited.trace)


def test_auditor_flags_broken_region_bijection():
    harness = build_harness("vSoC", "video", seed=0)
    harness.sim.run(until=1_000.0)
    auditor = install_auditor(harness.emulator)
    manager = harness.emulator.manager
    region_id = next(iter(manager._regions))
    stolen = manager._regions.pop(region_id)
    try:
        assert auditor.sweep() > 0
        assert any(
            v["invariant"] == "hashtable-bijection" for v in auditor.violations
        )
    finally:
        manager._regions[region_id] = stolen


def test_auditor_strict_mode_raises_on_writer_visibility_breach():
    harness = build_harness("vSoC", "video", seed=0)
    harness.sim.run(until=1_000.0)
    auditor = install_auditor(harness.emulator, raise_on_violation=True)
    manager = harness.emulator.manager
    region = manager._regions[next(iter(manager._regions))]
    region.write_in_flight = False
    region.valid_locations = {"host-memory"}
    region.last_writer_location = "gpu-local"
    with pytest.raises(InvariantViolation) as excinfo:
        auditor.sweep()
    assert excinfo.value.invariant == "writer-visibility"


# -- kernel primitives the recovery path depends on ---------------------------

def test_process_kill_runs_finally_cleanup_and_is_idempotent():
    sim = Simulator()
    log = []

    def worker():
        try:
            yield Timeout(100.0)
            log.append("finished")
        finally:
            log.append("cleanup")

    proc = sim.spawn(worker(), name="worker")
    sim.run(until=1.0)
    assert proc.alive
    proc.kill()
    assert not proc.alive
    assert log == ["cleanup"]  # finally ran, body never completed
    proc.kill()  # idempotent
    sim.run(until=200.0)  # the stale timeout callback must be a no-op
    assert log == ["cleanup"]


def test_fifo_queue_reset_returns_lost_items_and_wakes_parked_putters():
    sim = Simulator()
    queue = FifoQueue(sim, capacity=1, name="cmdq")
    assert queue.try_put("a")
    parked = []

    def producer():
        yield queue.put("b")  # blocks: queue is full
        parked.append("admitted")

    def consumer_after_reset():
        item = yield queue.get()
        parked.append(("got", item))

    sim.spawn(producer(), name="producer")
    sim.run(until=1.0)
    assert parked == []

    lost = queue.reset()
    assert lost == ["a", "b"]  # queued item + parked putter's item
    sim.run(until=2.0)
    assert parked == ["admitted"]  # parked putter woken, not deadlocked

    # Getters registered before the reset were dropped; fresh gets see
    # fresh items only.
    sim.spawn(consumer_after_reset(), name="consumer")
    queue.try_put("fresh")
    sim.run(until=3.0)
    assert parked == ["admitted", ("got", "fresh")]
