"""Tests for result export, trace analysis, density, and DOT rendering."""

import io
import json

import pytest

from repro.apps import UhdVideoApp
from repro.experiments import export
from repro.experiments.density import run_density, run_density_comparison
from repro.experiments.microbench import run_svm_microbench
from repro.experiments.runner import run_app
from repro.hw.machine import HIGH_END_DESKTOP
from repro.metrics.breakdown import format_report, frame_budget_report


# --- export ----------------------------------------------------------------

def test_microbench_result_round_trips_through_json():
    result = run_svm_microbench("vSoC", HIGH_END_DESKTOP, duration_ms=3_000.0)
    stream = io.StringIO()
    export.dump_json(result, stream)
    data = json.loads(stream.getvalue())
    assert data["emulator"] == "vSoC"
    assert data["coherence_cost_ms"] == pytest.approx(result.coherence_cost_ms)


def test_appbench_export_shape():
    from repro.experiments.appbench import run_appbench

    result = run_appbench("vSoC", duration_ms=4_000.0, apps_per_category=1)
    data = export.appbench_to_dict(result)
    assert set(data["category_fps"]) == {
        "UHD Video", "360 Video", "Camera", "AR", "Livestream",
    }
    assert data["runnable"] == 5
    assert json.dumps(data)  # fully serializable


def test_measurement_export_contains_cdfs():
    from repro.experiments.measurement import run_measurement

    result = run_measurement("device-proxy", duration_ms=3_000.0,
                             apps_per_category=1)
    data = export.measurement_to_dict(result)
    assert data["region_size_cdf"]
    assert data["slack_cdf"]
    assert json.dumps(data)


def test_dump_json_to_path(tmp_path):
    result = run_svm_microbench("vSoC", HIGH_END_DESKTOP, duration_ms=2_000.0)
    path = tmp_path / "table2.json"
    export.dump_json(result, str(path))
    assert json.loads(path.read_text())["machine"] == "high-end-desktop"


def test_to_plain_handles_nested_structures():
    data = export.to_plain({"a": [1, (2.0, None)], "b": {"c": True}})
    assert data == {"a": [1, [2.0, None]], "b": {"c": True}}


# --- frame budget report --------------------------------------------------------

def test_frame_budget_report_from_real_run():
    run = run_app(UhdVideoApp(), "vSoC", duration_ms=5_000.0)
    report = frame_budget_report(run.stats.trace, 5_000.0)
    ops = {(o.vdev, o.op) for o in report.ops}
    assert ("codec", "hw_decode") in ops
    assert ("gpu", "render") in ops
    assert report.coherence_summary is not None
    assert report.coherence_by_path.get("prefetch", 0) > 100
    assert report.access_latency_summary["mean"] < 1.0
    text = format_report(report)
    assert "hw_decode" in text and "coherence" in text


def test_frame_budget_report_empty_trace():
    from repro.sim.tracing import TraceLog

    report = frame_budget_report(TraceLog(), 1_000.0)
    assert report.ops == []
    assert report.coherence_summary is None
    assert "Frame-budget" in format_report(report)


# --- density ----------------------------------------------------------------------

def test_density_declines_with_instances():
    result = run_density("vSoC", instance_counts=(1, 2), duration_ms=5_000.0)
    assert result.fps_by_instances[1] > result.fps_by_instances[2]
    assert result.max_instances_at(50.0) == 1


def test_density_vsoc_at_least_matches_gae():
    results = run_density_comparison(("vSoC", "GAE"), instance_counts=(1, 2),
                                     duration_ms=5_000.0)
    for count in (1, 2):
        assert (results["vSoC"].fps_by_instances[count]
                >= results["GAE"].fps_by_instances[count])


# --- twin DOT export ------------------------------------------------------------

def test_twin_to_dot_renders_flows():
    run = run_app(UhdVideoApp(), "vSoC", duration_ms=3_000.0)
    dot = run.emulator.twin.to_dot()
    assert dot.startswith("digraph")
    assert '"virtual:codec"' in dot
    assert "virtual layer" in dot and "physical layer" in dot
    assert "->" in dot


def test_zero_shot_flag_controls_fallback():
    from repro.core.twin import TwinHypergraphs

    twin = TwinHypergraphs(["codec", "gpu"], ["host", "gpu"])
    twin.register_region(1)
    for _ in range(3):
        twin.on_write(1, "codec", "host", 100)
        twin.on_read(1, "gpu", "gpu", 10.0)
    twin.register_region(2)  # fresh region
    assert twin.predict_readers(2, "codec") is not None
    assert twin.predict_readers(2, "codec", allow_zero_shot=False) is None
