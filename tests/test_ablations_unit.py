"""Fast unit tests for the ablation experiments (heavy paths live in
benchmarks/bench_ablations.py)."""

from repro.experiments.ablations import sweep_alpha


def test_alpha_sweep_deterministic():
    assert sweep_alpha(seed=3) == sweep_alpha(seed=3)


def test_alpha_sweep_minimum_near_half():
    """§3.3's choice: α=0.5 minimizes slack forecast error on pipeline-like
    series (stable level + noise + occasional rebuffering shifts)."""
    errors = sweep_alpha()
    best = min(errors, key=errors.get)
    assert best == 0.5
    assert errors[0.1] > errors[0.5] < errors[0.9]


def test_alpha_sweep_custom_grid():
    errors = sweep_alpha(alphas=(0.25, 0.75), samples=100)
    assert set(errors) == {0.25, 0.75}
    assert all(e > 0 for e in errors.values())


def test_command_reprs():
    from repro.core.ordering import ExecCommand, SignalFenceCommand, WaitFenceCommand
    from repro.core.fence import VirtualFenceTable
    from repro.core.region import SvmRegion
    from repro.sim import Simulator

    sim = Simulator()
    region = SvmRegion(7, 1024)
    cmd = ExecCommand(sim, "render", 1024, writes=[region])
    assert "render" in repr(cmd) and "#7" in repr(cmd)
    fence = VirtualFenceTable(sim, capacity=4).allocate()
    SignalFenceCommand(fence)
    WaitFenceCommand(fence)
    assert cmd.dirty_window(region) == 1024


def test_dirty_window_clamps():
    from repro.core.ordering import ExecCommand
    from repro.core.region import SvmRegion
    from repro.sim import Simulator

    sim = Simulator()
    region = SvmRegion(1, 1000)
    oversized = ExecCommand(sim, "render", 5000, writes=[region])
    assert oversized.dirty_window(region) == 1000
    windowed = ExecCommand(sim, "render", 5000, writes=[region], dirty_bytes=500)
    assert windowed.dirty_window(region) == 500
