"""Property-based tests on core invariants (hypothesis).

These check structural invariants that must hold for *any* access pattern,
not just the pipelines the apps produce.
"""

from hypothesis import given, settings, strategies as st

from repro.core.fence import VirtualFenceTable
from repro.core.flowcontrol import MimdFlowControl
from repro.core.region import HOST_LOCATION, SvmRegion
from repro.core.twin import TwinHypergraphs
from repro.sim import FifoQueue, Simulator
from repro.units import MIB

LOCATIONS = st.sampled_from([HOST_LOCATION, "gpu", "guest"])
VDEVS = st.sampled_from(["codec", "gpu", "display", "camera", "isp", "cpu"])


# --- SvmRegion coherence invariants ---------------------------------------------

@given(st.lists(st.tuples(st.booleans(), VDEVS, LOCATIONS),
                min_size=1, max_size=60))
def test_region_writer_location_always_valid(ops):
    """Invariant: after any op sequence, the last writer's location holds a
    valid copy — a reader can always find the data *somewhere*."""
    region = SvmRegion(1, MIB)
    for is_write, vdev, location in ops:
        if is_write:
            region.note_write(vdev, location, MIB)
        else:
            region.note_copy(location)
    if region.last_writer_location is not None:
        assert region.is_valid_at(region.last_writer_location)


@given(st.lists(st.tuples(VDEVS, LOCATIONS), min_size=1, max_size=60))
def test_copies_never_shrink_valid_set(copies):
    region = SvmRegion(1, MIB)
    region.note_write("codec", HOST_LOCATION, MIB)
    previous = set(region.valid_locations)
    for _vdev, location in copies:
        region.note_copy(location)
        assert previous <= region.valid_locations
        previous = set(region.valid_locations)


# --- Twin hypergraphs --------------------------------------------------------------

@given(st.lists(st.tuples(st.booleans(), VDEVS, LOCATIONS), min_size=1, max_size=80))
def test_twin_never_crashes_and_stays_bounded(events):
    """Arbitrary interleavings of reads/writes must neither crash the twin
    bookkeeping nor grow edges beyond the flows actually seen."""
    twin = TwinHypergraphs(
        ["codec", "gpu", "display", "camera", "isp", "cpu"],
        [HOST_LOCATION, "gpu", "guest"],
    )
    twin.register_region(1)
    distinct_flows = set()
    writer = None
    readers = set()
    for is_write, vdev, location in events:
        if is_write:
            if writer is not None and readers:
                distinct_flows.add((writer, frozenset(readers)))
            writer, readers = vdev, set()
            twin.on_write(1, vdev, location, MIB)
        else:
            readers.add(vdev)
            twin.on_read(1, vdev, location, 10.0)
    assert len(twin.virtual) <= max(1, len(distinct_flows))


@given(st.integers(min_value=1, max_value=50))
def test_twin_overhead_linear_in_regions(n):
    twin = TwinHypergraphs(["a", "b"], ["host"])
    for rid in range(n):
        twin.register_region(rid)
    assert twin.tracked_regions == n
    assert twin.memory_overhead_bytes() < 4096 + n * 256


# --- Virtual fence table --------------------------------------------------------------

@given(st.lists(st.booleans(), min_size=1, max_size=400))
@settings(max_examples=50)
def test_fence_table_never_leaks_indices(signal_pattern):
    """Allocate/signal in arbitrary order: live + free slots == capacity."""
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=32)
    live = []
    for should_signal in signal_pattern:
        if should_signal and live:
            fence = live.pop(0)
            if not fence.signaled:
                fence.signal()
        else:
            try:
                live.append(table.allocate())
            except Exception:
                # table full of pending fences — legal back-pressure state
                pass
    assert table.live_fences + len(table._free) == table.capacity
    indices = set(table._slots) | set(table._free)
    assert len(indices) == table.capacity  # no index lost or duplicated


# --- MIMD flow control ---------------------------------------------------------------

@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_mimd_in_flight_never_negative_or_above_max(ops):
    sim = Simulator()
    fc = MimdFlowControl(sim, initial_window=4.0, max_window=16.0)
    for dispatch in ops:
        if dispatch:
            fc.try_dispatch()
        elif fc.in_flight > 0:
            fc.complete()
        assert 0 <= fc.in_flight
        assert fc.min_window <= fc.window <= fc.max_window


# --- FifoQueue conservation ------------------------------------------------------------

@given(st.lists(st.one_of(st.integers(min_value=0, max_value=1000), st.none()),
                min_size=1, max_size=200))
def test_fifo_queue_conserves_items(ops):
    """Items out (in order) + items in queue == items put."""
    sim = Simulator()
    queue = FifoQueue(sim, capacity=None)
    put_items = []
    got_items = []
    for op in ops:
        if op is None:
            item = queue.try_get()
            if item is not None:
                got_items.append(item)
        else:
            queue.try_put(op)
            put_items.append(op)
    assert got_items == put_items[: len(got_items)]  # FIFO order
    assert len(got_items) + len(queue) == len(put_items)


# --- RetryPolicy backoff ladder -------------------------------------------------

@given(
    base=st.floats(min_value=1e-3, max_value=50.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    cap=st.floats(min_value=1e-3, max_value=500.0),
    tries=st.integers(min_value=2, max_value=40),
)
@settings(max_examples=100)
def test_retry_delay_monotone_capped_and_repeatable(base, multiplier, cap,
                                                    tries):
    """The backoff ladder never shrinks, never exceeds the cap, and is a
    pure function of its inputs (same policy, same answers)."""
    from repro.sim.resilience import RetryPolicy

    policy = RetryPolicy(max_attempts=None, base_delay_ms=base,
                         multiplier=multiplier, max_delay_ms=cap)
    delays = [policy.delay_before_retry(n) for n in range(1, tries + 1)]
    assert all(later >= earlier
               for earlier, later in zip(delays, delays[1:]))
    assert all(0.0 <= delay <= cap for delay in delays)
    assert delays == [policy.delay_before_retry(n)
                      for n in range(1, tries + 1)]


def test_retry_delay_deterministic_across_process_boundary():
    """A restart ladder computed in a fresh interpreter is bit-identical —
    the supervisor's restart schedule survives checkpoint/restore."""
    import os
    import subprocess
    import sys

    code = (
        "from repro.sim.resilience import RetryPolicy\n"
        "p = RetryPolicy(max_attempts=None, base_delay_ms=0.07,"
        " multiplier=1.7, max_delay_ms=123.4)\n"
        "print(repr([p.delay_before_retry(n) for n in range(1, 30)]))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    outputs = [
        subprocess.run([sys.executable, "-c", code], capture_output=True,
                       text=True, env=env, check=True).stdout.strip()
        for _ in range(2)
    ]
    from repro.sim.resilience import RetryPolicy

    local = RetryPolicy(max_attempts=None, base_delay_ms=0.07,
                        multiplier=1.7, max_delay_ms=123.4)
    expected = repr([local.delay_before_retry(n) for n in range(1, 30)])
    assert outputs[0] == outputs[1] == expected
