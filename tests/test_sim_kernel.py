"""Unit tests for the discrete-event kernel (repro.sim.kernel)."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_callback_at_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_schedule_with_args():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b"]


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in ("first", "second", "third"):
        sim.schedule(3.0, seen.append, label)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancel_prevents_callback():
    sim = Simulator()
    seen = []
    call = sim.schedule(1.0, seen.append, "x")
    call.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    call = sim.schedule(1.0, lambda: None)
    call.cancel()
    call.cancel()
    sim.run()


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == []
    assert sim.now == 5.0
    sim.run()
    assert seen == ["late"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_process_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield Timeout(7.5)
        return "done"

    p = sim.spawn(proc())
    sim.run()
    assert not p.alive
    assert p.value == "done"
    assert sim.now == 7.5


def test_timeout_returns_value_at_yield():
    sim = Simulator()
    results = []

    def proc():
        got = yield Timeout(1.0, "payload")
        results.append(got)

    sim.spawn(proc())
    sim.run()
    assert results == ["payload"]


def test_process_join_receives_return_value():
    sim = Simulator()

    def child():
        yield Timeout(3.0)
        return 99

    def parent():
        result = yield sim.spawn(child(), name="child")
        return result * 2

    p = sim.spawn(parent(), name="parent")
    sim.run()
    assert p.value == 198


def test_join_on_already_finished_process():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        return "early"

    child_proc = sim.spawn(child())
    sim.run()

    def parent():
        result = yield child_proc
        return result

    p = sim.spawn(parent())
    sim.run()
    assert p.value == "early"


def test_unhandled_process_exception_raises_from_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    sim.spawn(bad(), name="bad")
    with pytest.raises(SimulationError) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_joined_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.spawn(bad(), name="bad")
        except ValueError:
            return "caught"
        return "missed"

    p = sim.spawn(parent(), name="parent")
    sim.run()
    assert p.value == "caught"


def test_yielding_garbage_fails_the_process():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad(), name="bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_nested_spawn_ordering_is_deterministic():
    sim = Simulator()
    seen = []

    def worker(label, delay):
        yield Timeout(delay)
        seen.append(label)

    def parent():
        sim.spawn(worker("b", 2.0))
        sim.spawn(worker("a", 1.0))
        sim.spawn(worker("c", 2.0))
        yield Timeout(0.0)

    sim.spawn(parent())
    sim.run()
    assert seen == ["a", "b", "c"]


def test_deadlock_detection():
    sim = Simulator()
    from repro.sim import SimEvent

    never = SimEvent(sim, name="never")

    def stuck():
        yield never

    sim.spawn(stuck(), name="stuck")
    with pytest.raises(DeadlockError):
        sim.run(check_deadlock=True)


def test_live_processes_and_pending_events():
    sim = Simulator()

    def proc():
        yield Timeout(5.0)

    sim.spawn(proc(), name="p1")
    assert sim.pending_events() == 1
    sim.run()
    assert list(sim.live_processes) == []


def test_step_returns_false_on_empty_heap():
    sim = Simulator()
    assert sim.step() is False


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        order = []

        def worker(label, delay):
            yield Timeout(delay)
            order.append((label, sim.now))

        for i in range(20):
            sim.spawn(worker(i, (i * 7) % 5 + 0.5))
        sim.run()
        return order

    assert build() == build()


def test_finished_processes_are_pruned():
    sim = Simulator()

    def quick():
        yield Timeout(1.0)

    for i in range(10):
        sim.spawn(quick(), name=f"q{i}")
    assert len(sim._processes) == 10
    sim.run()
    # The kernel must not accumulate finished processes across a long run.
    assert len(sim._processes) == 0
    assert list(sim.live_processes) == []


def test_deadlock_report_names_survive_pruning():
    sim = Simulator()
    from repro.sim import SimEvent

    never = SimEvent(sim, name="never")

    def done():
        yield Timeout(1.0)

    def stuck():
        yield never

    sim.spawn(done(), name="finisher")
    sim.spawn(stuck(), name="blocked")
    with pytest.raises(DeadlockError) as excinfo:
        sim.run(check_deadlock=True)
    # Pruning removes the finished process but the stuck one is still named.
    assert "blocked" in str(excinfo.value)
    assert "finisher" not in str(excinfo.value)


def test_pending_events_counts_cancellations():
    sim = Simulator()
    calls = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending_events() == 5
    calls[0].cancel()
    calls[3].cancel()
    assert sim.pending_events() == 3
    calls[3].cancel()  # idempotent: no double decrement
    assert sim.pending_events() == 3
    sim.run()
    assert sim.pending_events() == 0


def test_pending_events_tracks_dispatch():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        yield Timeout(1.0)

    sim.spawn(proc(), name="p")
    counts = []
    while sim.step():
        counts.append(sim.pending_events())
    assert counts[-1] == 0
    # Each dispatched event left the live count consistent with the heap.
    assert all(c >= 0 for c in counts)
