"""Tests for the broadcast-protocol extension and custom machine topologies."""

import functools
import random

import pytest

from repro.apps import UhdVideoApp
from repro.emulators import make_vsoc
from repro.emulators.base import Emulator, EmulatorConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import run_app
from repro.hw import HwCodec, IspEngine, build_machine
from repro.hw.bus import Bus
from repro.hw.memory import MemoryPool
from repro.sim import Simulator
from repro.units import GIB, UHD_FRAME_BYTES, gb_per_s


# --- broadcast protocol ---------------------------------------------------------

def test_broadcast_factory_flag():
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0), broadcast=True)
    assert emulator.protocol.name == "unified-broadcast"
    assert emulator.engine is None
    assert emulator.name == "vSoC(broadcast)"


def test_broadcast_requires_unified_framework():
    sim = Simulator()
    machine = build_machine(sim)
    config = EmulatorConfig(name="x", unified_svm=False, broadcast_coherence=True)
    with pytest.raises(ConfigurationError):
        Emulator(sim, machine, config)


def test_broadcast_pushes_writes_everywhere():
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0), broadcast=True)

    def app():
        rid = emulator.svm_alloc(UHD_FRAME_BYTES)
        write = yield from emulator.stage(
            "codec", "hw_decode", UHD_FRAME_BYTES, writes=[rid]
        )
        yield write.done
        return rid

    p = sim.spawn(app())
    sim.run()
    region = emulator.manager.get(p.value)
    # written at host, broadcast to the GPU although nobody asked
    assert region.is_valid_at("host")
    assert region.is_valid_at("gpu")


def test_broadcast_moves_more_bus_bytes_than_prefetch():
    """The §7 rejection, quantified: similar FPS, ~2x the PCIe traffic."""
    prefetch = run_app(UhdVideoApp(), "vSoC", duration_ms=5_000.0)
    broadcast = run_app(
        UhdVideoApp(), "vSoC", duration_ms=5_000.0,
        factory=functools.partial(make_vsoc, broadcast=True),
    )
    assert broadcast.result.fps > 0.9 * prefetch.result.fps
    assert (broadcast.emulator.machine.pcie.bytes_moved
            > 1.5 * prefetch.emulator.machine.pcie.bytes_moved)


# --- custom topology: discrete codec/ISP engines ---------------------------------

def test_discrete_engine_topology():
    """HwCodec/IspEngine as standalone physical devices with local memory:
    the copy planner routes device→device copies over both links."""
    sim = Simulator()
    machine = build_machine(sim)
    codec_mem = MemoryPool("codec-mem", GIB)
    codec_link = Bus(sim, "codec-link", gb_per_s(5.0), latency=0.02)
    codec = HwCodec(sim, link=codec_link, decode_fixed=1.0,
                    decode_bandwidth=gb_per_s(3.0), encode_fixed=2.0,
                    encode_bandwidth=gb_per_s(2.0), local_memory=codec_mem)
    machine.add_device(codec)
    isp_link = Bus(sim, "isp-link", gb_per_s(4.0), latency=0.02)
    isp = IspEngine(sim, link=isp_link, convert_bandwidth=gb_per_s(6.0),
                    local_memory=MemoryPool("isp-mem", GIB))
    machine.add_device(isp)

    from repro.core.coherence import CopyPlanner

    planner = CopyPlanner(sim, machine)
    legs = planner.unified_legs("hwcodec", "isp")
    assert legs == [codec_link, isp_link]
    # two-leg copy cost = both transfers
    expected = (codec_link.transfer_time(UHD_FRAME_BYTES)
                + isp_link.transfer_time(UHD_FRAME_BYTES))
    assert planner.estimate_unified("hwcodec", "isp", UHD_FRAME_BYTES) == pytest.approx(expected)


def test_cpu_overhead_fraction_small():
    """§5.2: engine bookkeeping stays below 1% of one core."""
    run = run_app(UhdVideoApp(), "vSoC", duration_ms=5_000.0)
    fraction = run.emulator.engine.stats.cpu_overhead_fraction(5_000.0)
    assert 0.0 < fraction < 0.01
