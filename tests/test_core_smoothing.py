"""Unit tests + property tests for exponential smoothing (repro.core.smoothing)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ExponentialSmoothing
from repro.errors import ConfigurationError


def test_cold_start_predicts_none():
    s = ExponentialSmoothing()
    assert s.predict() is None
    assert not s.warmed_up
    assert s.predict_or(42.0) == 42.0


def test_first_observation_becomes_level():
    s = ExponentialSmoothing()
    s.update(10.0)
    assert s.predict() == 10.0
    assert s.warmed_up


def test_alpha_half_recurrence():
    """With α=0.5 the level is the midpoint of observation and old level."""
    s = ExponentialSmoothing(alpha=0.5)
    s.update(10.0)
    s.update(20.0)
    assert s.predict() == pytest.approx(15.0)
    s.update(5.0)
    assert s.predict() == pytest.approx(10.0)


def test_alpha_one_tracks_last_value():
    s = ExponentialSmoothing(alpha=1.0)
    for x in (3.0, 7.0, 1.0):
        s.update(x)
    assert s.predict() == 1.0


def test_constant_series_zero_error():
    s = ExponentialSmoothing()
    for _ in range(10):
        s.update(17.2)
    assert s.predict() == pytest.approx(17.2)
    assert s.std_error == pytest.approx(0.0)


def test_std_error_none_before_second_sample():
    s = ExponentialSmoothing()
    assert s.std_error is None
    s.update(1.0)
    assert s.std_error is None
    s.update(2.0)
    assert s.std_error == pytest.approx(1.0)


def test_invalid_alpha_rejected():
    with pytest.raises(ConfigurationError):
        ExponentialSmoothing(alpha=0.0)
    with pytest.raises(ConfigurationError):
        ExponentialSmoothing(alpha=1.5)


@given(st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_subnormal=False),
    min_size=1, max_size=200,
))
def test_prediction_within_observed_range(values):
    """Property: the smoothed level never escapes [min, max] of the data."""
    s = ExponentialSmoothing()
    for v in values:
        s.update(v)
    assert min(values) <= s.predict() <= max(values)


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100),
)
def test_sample_count_tracks_updates(alpha, values):
    s = ExponentialSmoothing(alpha=alpha)
    for v in values:
        s.update(v)
    assert s.n == len(values)


@given(st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=5, max_size=50))
def test_convergence_to_constant_tail(values):
    """Property: a long constant tail pulls the forecast to that constant."""
    s = ExponentialSmoothing(alpha=0.5)
    for v in values:
        s.update(v)
    for _ in range(60):
        s.update(55.5)
    assert s.predict() == pytest.approx(55.5, abs=1e-6)
