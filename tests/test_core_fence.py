"""Unit tests for virtual command fences (repro.core.fence)."""

import pytest

from repro.core import FenceState, PhysicalFenceTable, VirtualFenceTable
from repro.core.fence import FENCE_TABLE_CAPACITY
from repro.errors import FenceError, FenceTableFullError
from repro.sim import SimEvent, Simulator, Timeout
from repro.units import PAGE_SIZE


def test_table_fits_in_one_page():
    sim = Simulator()
    table = VirtualFenceTable(sim)
    assert table.shared_bytes <= PAGE_SIZE
    assert table.capacity == FENCE_TABLE_CAPACITY == 512


def test_signal_wakes_waiter():
    sim = Simulator()
    table = VirtualFenceTable(sim)
    fence = table.allocate()
    order = []

    def gpu_side():
        yield fence.wait()
        order.append(("read", sim.now))

    def codec_side():
        yield Timeout(5.0)
        fence.signal()
        order.append(("signalled", sim.now))

    sim.spawn(gpu_side())
    sim.spawn(codec_side())
    sim.run()
    assert order == [("signalled", 5.0), ("read", 5.0)]


def test_multiple_waits_on_one_signal_allowed():
    sim = Simulator()
    table = VirtualFenceTable(sim)
    fence = table.allocate()
    woken = []

    def waiter(label):
        yield fence.wait()
        woken.append(label)

    for label in "abc":
        sim.spawn(waiter(label))
    sim.schedule(1.0, fence.signal)
    sim.run()
    assert sorted(woken) == ["a", "b", "c"]
    assert fence.waiters == 3


def test_wait_after_signal_fires_immediately():
    sim = Simulator()
    table = VirtualFenceTable(sim)
    fence = table.allocate()
    fence.signal()
    seen = []

    def late():
        yield fence.wait()
        seen.append(sim.now)

    sim.spawn(late())
    sim.run()
    assert seen == [0.0]


def test_double_signal_rejected():
    sim = Simulator()
    fence = VirtualFenceTable(sim).allocate()
    fence.signal()
    with pytest.raises(FenceError):
        fence.signal()


def test_indices_unique_while_live():
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=8)
    fences = [table.allocate() for _ in range(6)]
    assert len({f.index for f in fences}) == 6


def test_recycling_reclaims_signalled_slots():
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=8)
    fences = [table.allocate() for _ in range(7)]
    for f in fences:
        f.signal()
    # Free supply is low (1 of 8): next allocation triggers recycling.
    extra = table.allocate()
    assert table.recycled_total >= 1
    assert extra.state is FenceState.PENDING
    assert fences[0].state is FenceState.RECYCLED


def test_table_full_when_all_pending():
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=4)
    for _ in range(4):
        table.allocate()
    with pytest.raises(FenceTableFullError):
        table.allocate()


def test_wait_on_recycled_fence_fires_immediately():
    """Recycled implies signalled: a stale waiter must not block (§4)."""
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=4)
    fences = [table.allocate() for _ in range(4)]
    for f in fences:
        f.signal()
    table.allocate()  # forces recycling
    recycled = next(f for f in fences if f.state is FenceState.RECYCLED)
    seen = []

    def waiter():
        yield recycled.wait()
        seen.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert seen == [0.0]


def test_get_by_index():
    sim = Simulator()
    table = VirtualFenceTable(sim, capacity=4)
    fence = table.allocate()
    assert table.get(fence.index) is fence
    with pytest.raises(FenceError):
        table.get(99)


def test_physical_table_tracks_primitives():
    sim = Simulator()
    table = PhysicalFenceTable("gpu")
    ev = SimEvent(sim)
    slot = table.insert(ev)
    assert not table.is_complete(slot)
    ev.fire()
    assert table.is_complete(slot)
    assert table.reap() == 1
    assert table.outstanding == 0
    with pytest.raises(FenceError):
        table.is_complete(slot)


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(FenceError):
        VirtualFenceTable(sim, capacity=0)
