"""Unit tests for buses and DMA (repro.hw.bus)."""

import pytest

from repro.errors import HardwareError
from repro.hw import Bus, DmaEngine
from repro.sim import Simulator, Timeout
from repro.units import MIB, gb_per_s


def test_transfer_time_formula():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=gb_per_s(1.0), latency=0.5)
    # 1 GB/s = 1e6 bytes/ms; 1 MiB / 1e6 B/ms ≈ 1.048576 ms, plus latency.
    assert bus.transfer_time(MIB) == pytest.approx(0.5 + MIB / 1e6)


def test_zero_byte_transfer_is_free():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=gb_per_s(1.0), latency=0.5)
    assert bus.transfer_time(0) == 0.0


def test_transfer_advances_clock_and_returns_duration():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=1000.0, latency=1.0)  # 1000 B/ms
    results = []

    def proc():
        elapsed = yield from bus.transfer(5000)
        results.append((sim.now, elapsed))

    sim.spawn(proc())
    sim.run()
    assert results == [(6.0, 6.0)]  # 1 ms latency + 5000/1000 ms


def test_contending_transfers_serialize_fifo():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=1000.0, latency=0.0)
    done = []

    def proc(label):
        yield from bus.transfer(1000)
        done.append((label, sim.now))

    for label in ("a", "b"):
        sim.spawn(proc(label))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_statistics_accumulate():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=1000.0, latency=0.0)

    def proc():
        yield from bus.transfer(500)
        yield from bus.transfer(1500)

    sim.spawn(proc())
    sim.run()
    assert bus.bytes_moved == 2000
    assert bus.transfer_count == 2
    assert bus.observed_bandwidth() == pytest.approx(1000.0)


def test_load_reduces_effective_bandwidth():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=1000.0)
    bus.set_load(0.5)
    assert bus.effective_bandwidth == 500.0
    assert bus.transfer_time(1000) == pytest.approx(2.0)


def test_invalid_load_rejected():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=1000.0)
    with pytest.raises(HardwareError):
        bus.set_load(1.0)
    with pytest.raises(HardwareError):
        bus.set_load(-0.1)


def test_invalid_bandwidth_rejected():
    sim = Simulator()
    with pytest.raises(HardwareError):
        Bus(sim, "bad", bandwidth=0.0)


def test_negative_transfer_rejected():
    sim = Simulator()
    bus = Bus(sim, "b", bandwidth=1000.0)
    with pytest.raises(HardwareError):
        bus.transfer_time(-1)


def test_dma_runs_in_background():
    sim = Simulator()
    bus = Bus(sim, "pcie", bandwidth=1000.0)
    dma = DmaEngine(sim, bus)
    timeline = []

    def proc():
        xfer = dma.start(10_000)  # 10 ms in the background
        yield Timeout(1.0)
        timeline.append(("still-working", sim.now))
        yield xfer  # join
        timeline.append(("joined", sim.now))

    sim.spawn(proc())
    sim.run()
    assert timeline == [("still-working", 1.0), ("joined", 10.0)]


def test_dma_counts_transfers():
    sim = Simulator()
    bus = Bus(sim, "pcie", bandwidth=1000.0)
    dma = DmaEngine(sim, bus)

    def proc():
        yield dma.start(100)
        yield dma.start(200)

    sim.spawn(proc())
    sim.run()
    assert dma.transfers_started == 2
    assert bus.bytes_moved == 300


def test_constructor_rejects_non_finite_and_non_positive_parameters():
    sim = Simulator()
    for bad_bw in (0.0, -1.0, float("nan"), float("inf")):
        with pytest.raises(HardwareError, match="bandwidth must be finite and positive"):
            Bus(sim, "b", bandwidth=bad_bw)
    for bad_lat in (-0.1, float("nan"), float("inf")):
        with pytest.raises(HardwareError, match="latency must be finite"):
            Bus(sim, "b", bandwidth=1000.0, latency=bad_lat)


def test_set_load_rejects_invalid_values():
    sim = Simulator()
    bus = Bus(sim, "pcie", bandwidth=1000.0)
    for bad in (-0.1, 1.0, 1.5, float("nan"), float("inf")):
        with pytest.raises(HardwareError, match=r"load must be finite and in \[0, 1\)"):
            bus.set_load(bad)
    # The message names the offending bus and value for debuggability.
    with pytest.raises(HardwareError, match=r"bus 'pcie' load .* got nan"):
        bus.set_load(float("nan"))
    assert bus.effective_bandwidth == 1000.0  # state unchanged by rejections
