"""Tests for trace record/replay (repro.workloads) and sensitivity sweeps."""

import pytest

from repro.apps import UhdVideoApp
from repro.errors import ConfigurationError
from repro.experiments.runner import run_app
from repro.workloads import (
    TraceEvent,
    WorkloadTrace,
    record_workload,
    replay_workload,
)
from repro.units import MIB


def recorded_trace(duration_ms=4_000.0):
    run = run_app(UhdVideoApp(), "vSoC", duration_ms=duration_ms)
    return record_workload(run.stats.trace, name="uhd")


# --- TraceEvent / WorkloadTrace ---------------------------------------------

def test_event_validation():
    with pytest.raises(ConfigurationError):
        TraceEvent(1.0, "teleport", 1).validate()
    with pytest.raises(ConfigurationError):
        TraceEvent(-1.0, "alloc", 1, nbytes=10).validate()
    with pytest.raises(ConfigurationError):
        TraceEvent(1.0, "write", 1, nbytes=0).validate()
    TraceEvent(0.0, "free", 1).validate()  # frees carry no size


def test_trace_requires_time_order():
    events = [
        TraceEvent(5.0, "alloc", 1, nbytes=MIB),
        TraceEvent(1.0, "write", 1, vdev="cpu", nbytes=MIB),
    ]
    with pytest.raises(ConfigurationError):
        WorkloadTrace(name="bad", events=events)


def test_record_produces_cyclic_pattern():
    trace = recorded_trace()
    kinds = [e.kind for e in trace.events]
    assert "alloc" in kinds and "write" in kinds and "read" in kinds
    writes = sum(1 for k in kinds if k == "write")
    reads = sum(1 for k in kinds if k == "read")
    # the §2.3 cyclic W/R pattern: roughly one read per write
    assert 0.5 < reads / writes < 2.0


def test_trace_round_trips_through_json(tmp_path):
    trace = recorded_trace(duration_ms=2_000.0)
    path = tmp_path / "trace.json"
    trace.dump(str(path))
    loaded = WorkloadTrace.load(str(path))
    assert loaded.name == trace.name
    assert loaded.events == trace.events


# --- replay --------------------------------------------------------------------

def test_replay_on_recording_emulator_matches_costs():
    trace = recorded_trace()
    result = replay_workload(trace, "vSoC")
    assert result.events_replayed == len(trace.events)
    assert result.mean_coherence_ms == pytest.approx(2.38, abs=0.15)


def test_replay_isolates_architecture_cost():
    """Identical access pattern, different architectures: the guest-memory
    emulators pay ~3x per maintenance (Fig 5 vs Table 2, open loop)."""
    trace = recorded_trace()
    vsoc = replay_workload(trace, "vSoC")
    gae = replay_workload(trace, "GAE")
    assert gae.mean_coherence_ms > 2.5 * vsoc.mean_coherence_ms
    assert gae.total_coherence_ms > vsoc.total_coherence_ms


def test_replay_skips_unknown_devices_gracefully():
    events = [
        TraceEvent(0.0, "alloc", 1, nbytes=MIB),
        TraceEvent(1.0, "write", 1, vdev="camera", nbytes=MIB),
        TraceEvent(10.0, "read", 1, vdev="gpu", nbytes=MIB),
        TraceEvent(20.0, "free", 1),
    ]
    trace = WorkloadTrace(name="tiny", events=events)
    # Trinity has no camera vdev: the write falls back to the CPU.
    result = replay_workload(trace, "Trinity")
    assert result.events_replayed == 4


# --- sweeps ----------------------------------------------------------------------

def test_boundary_sweep_monotone_until_decode_bound():
    from repro.experiments.sweeps import sweep_boundary_bandwidth

    sweep = sweep_boundary_bandwidth((2.0, 4.6, 18.0), duration_ms=5_000.0)
    assert sweep[2.0] < sweep[4.6] <= sweep[18.0]


def test_gae_never_catches_vsoc_on_video():
    """Even an infinitely fast boundary cannot fix GAE's software decoder:
    no crossover exists — memory architecture is necessary, not sufficient."""
    from repro.experiments.sweeps import boundary_crossover

    assert boundary_crossover(duration_ms=5_000.0) is None


def test_pcie_sweep_degrades_vsoc_when_slow():
    from repro.experiments.sweeps import sweep_pcie_bandwidth

    sweep = sweep_pcie_bandwidth((2.0, 7.0, 14.0), duration_ms=5_000.0)
    assert sweep[14.0] >= sweep[7.0] > sweep[2.0]
    assert sweep[2.0] > 35.0  # degraded, not collapsed (compensation works)
