"""Unit tests for the trace log (repro.sim.tracing)."""

from repro.sim.tracing import TraceLog, TraceRecord


def test_record_and_filter_by_kind():
    log = TraceLog()
    log.record(1.0, "a", x=1)
    log.record(2.0, "b", x=2)
    log.record(3.0, "a", x=3)
    assert len(log) == 3
    assert [r["x"] for r in log.of_kind("a")] == [1, 3]


def test_values_extraction():
    log = TraceLog()
    for i in range(5):
        log.record(float(i), "svm.slack", slack=i * 2.0)
    assert log.values("svm.slack", "slack") == [0.0, 2.0, 4.0, 6.0, 8.0]


def test_where_predicate():
    log = TraceLog()
    for i in range(10):
        log.record(float(i), "tick", n=i)
    big = log.where(lambda r: r["n"] >= 7)
    assert len(big) == 3


def test_disabled_log_records_nothing():
    log = TraceLog(enabled=False)
    log.record(1.0, "a")
    assert len(log) == 0


def test_kind_filter():
    log = TraceLog(kinds=["keep"])
    log.record(1.0, "keep", v=1)
    log.record(2.0, "drop", v=2)
    assert len(log) == 1
    assert log.of_kind("drop") == []


def test_clear():
    log = TraceLog()
    log.record(1.0, "a")
    log.clear()
    assert len(log) == 0
    log.record(2.0, "a")  # still enabled after clear
    assert len(log) == 1


def test_record_get_default():
    record = TraceRecord(1.0, "a", {"x": 1})
    assert record.get("x") == 1
    assert record.get("missing", 42) == 42
    assert record["x"] == 1


def test_iteration_in_time_order():
    log = TraceLog()
    for t in (1.0, 2.0, 3.0):
        log.record(t, "evt")
    assert [r.time for r in log] == [1.0, 2.0, 3.0]
