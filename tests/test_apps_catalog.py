"""Tests for workloads and the compatibility catalog (repro.apps)."""

import pytest

from repro.apps import (
    ArApp,
    CameraApp,
    LivestreamApp,
    UhdVideoApp,
    Video360App,
    can_run,
    emerging_apps,
    heavy_3d_apps,
    popular_apps,
)
from repro.apps.catalog import (
    EMERGING_CATEGORIES,
    EMERGING_INCOMPATIBLE,
    POPULAR_INCOMPATIBLE,
    apps_of_category,
)
from repro.units import UHD_FRAME_BYTES


def test_catalog_has_fifty_emerging_apps():
    apps = emerging_apps()
    assert len(apps) == 50
    for category in EMERGING_CATEGORIES:
        assert sum(1 for a in apps if a.category == category) == 10


def test_catalog_names_unique():
    names = [a.name for a in emerging_apps()] + [a.name for a in popular_apps()]
    assert len(names) == len(set(names))


def test_catalog_is_deterministic():
    first = [(a.name, a.category) for a in emerging_apps(seed=7)]
    second = [(a.name, a.category) for a in emerging_apps(seed=7)]
    assert first == second


def test_catalog_returns_fresh_instances():
    a = emerging_apps()[0]
    b = emerging_apps()[0]
    assert a is not b  # collectors must not be shared between runs


def test_popular_catalog_has_25_apps():
    assert len(popular_apps()) == 25


def test_heavy_3d_catalog():
    games = heavy_3d_apps(count=5)
    assert len(games) == 5
    assert all(g.category == "Heavy3D" for g in games)


def test_apps_of_category():
    cams = apps_of_category("Camera")
    assert len(cams) == 10
    assert all(isinstance(a, CameraApp) for a in cams)
    with pytest.raises(ValueError):
        apps_of_category("Spreadsheets")


def test_emerging_runnable_counts_match_paper():
    """§5.3: vSoC/GAE/QEMU/LD/BS run 48/47/42/43/44 of 50; Trinity runs
    20 (it structurally lacks camera + encoder, so Camera/AR/Livestream
    are excluded by capability, not by this table)."""
    apps = emerging_apps()
    expected = {"vSoC": 48, "GAE": 47, "QEMU-KVM": 42, "LDPlayer": 43, "Bluestacks": 44}
    for emulator, count in expected.items():
        runnable = sum(1 for a in apps if can_run(a.name, emulator))
        assert runnable == count, emulator
    # Trinity's table lists no extra failures; capability gates do the rest.
    trinity_capable = [
        a for a in apps
        if a.category in ("UHD Video", "360 Video") and can_run(a.name, "Trinity")
    ]
    assert len(trinity_capable) == 20


def test_popular_runnable_counts_match_paper():
    """§5.5: 25/21/17/25/24/24 of the top-25 popular apps."""
    apps = popular_apps()
    expected = {"vSoC": 25, "GAE": 21, "QEMU-KVM": 17,
                "LDPlayer": 25, "Bluestacks": 24, "Trinity": 24}
    for emulator, count in expected.items():
        runnable = sum(1 for a in apps if can_run(a.name, emulator))
        assert runnable == count, emulator


def test_incompatible_names_exist_in_catalog():
    emerging_names = {a.name for a in emerging_apps()}
    for names in EMERGING_INCOMPATIBLE.values():
        assert set(names) <= emerging_names
    popular_names = {a.name for a in popular_apps()}
    for names in POPULAR_INCOMPATIBLE.values():
        assert set(names) <= popular_names


def test_video_apps_use_uhd_frames():
    """Fig 4's 15.8 MiB spike: video buffers are UHD frames."""
    for app in apps_of_category("UHD Video"):
        assert app.frame_bytes == UHD_FRAME_BYTES


def test_360_apps_render_heavier_than_flat_video():
    flat = UhdVideoApp()
    sphere = Video360App()
    assert sphere.projection_extra_bytes() > flat.projection_extra_bytes()


def test_latency_measurement_flags():
    """§5.3: latency only measured on AR, camera, and livestream apps."""
    assert not UhdVideoApp.measures_latency
    assert not Video360App.measures_latency
    assert CameraApp.measures_latency
    assert ArApp.measures_latency
    assert LivestreamApp.measures_latency
