"""Scenario compiler + fuzzer acceptance tests (ISSUE 9).

Covers the tentpole contract end to end: schema validation with precise
error paths, bit-identity of compiled catalog scenarios against the
hand-written apps, document round-trips (dict → compile → re-serialize →
compile), FaultPlan serialization properties under the fuzzer's raw
sampler, shrinker convergence on an injected invariant violation, and
the fuzz CLI (campaign + reproducer replay).
"""

import json
import random

import pytest

from repro.errors import ConfigurationError, InvariantViolation
from repro.experiments.runner import run_app
from repro.faults.plan import FaultPlan
from repro.scenario import (
    canonical_json,
    compile_scenario,
    load_reproducer,
    run_fuzz,
    run_scenario,
    sample_scenario,
    scenario_digest,
    scenario_document,
    scenario_point,
    shrink_scenario,
    validate_scenario,
)
from repro.scenario.fuzz import sample_fault_plan_dict
from repro.scenario.runner import app_digest


def minimal_doc(**overrides):
    doc = {
        "name": "t",
        "emulator": "vSoC",
        "duration_ms": 2_000.0,
        "apps": [{"name": "a", "pipeline": "ar"}],
    }
    doc.update(overrides)
    return doc


# ---------------------------------------------------------------------------
# Schema validation: precise error paths
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.pop("emulator"), "missing required key 'emulator'"),
    (lambda d: d.update(emulator="NotAnEmulator"), "scenario.emulator"),
    (lambda d: d.update(duration_ms=-1.0), "scenario.duration_ms"),
    (lambda d: d.update(apps=[]), "scenario.apps"),
    (lambda d: d["apps"][0].update(pipeline="nope"), "apps[0].pipeline"),
    (lambda d: d["apps"][0].update(buffers=0),
     "apps[0].buffers"),
    (lambda d: d.update(environment={"bus_load": [
        {"time_ms": 1.0, "bus": "warp", "load": 0.1}]}),
     "environment.bus_load[0].bus"),
    (lambda d: d.update(environment={"faults": {"stalls": [
        {"time_ms": 1.0, "device": "gpu", "duration_ms": -5.0}]}}),
     "environment.faults"),
    (lambda d: d.update(audit={"interval_ms": 0.0}), "audit.interval_ms"),
])
def test_validation_error_paths(mutate, fragment):
    doc = minimal_doc()
    if fragment == "apps[0].buffers":
        doc["apps"][0]["pipeline"] = "video"
    mutate(doc)
    with pytest.raises(ConfigurationError) as err:
        validate_scenario(doc)
    assert fragment in str(err.value)


def test_duplicate_app_names_rejected():
    doc = minimal_doc(apps=[{"name": "a", "pipeline": "ar"},
                            {"name": "a", "pipeline": "video"}])
    with pytest.raises(ConfigurationError, match="apps\\[1\\].name"):
        validate_scenario(doc)


def test_graph_stage_op_must_match_device():
    doc = minimal_doc(apps=[{
        "name": "g", "pipeline": "graph",
        "stages": [{"device": "gpu", "op": "track", "bytes": 1024}],
    }])
    with pytest.raises(ConfigurationError, match="stages\\[0\\].op"):
        validate_scenario(doc)


def test_validate_returns_normalized_copy():
    doc = {"name": "t", "emulator": "vSoC",
           "apps": [{"name": "a", "pipeline": "ar"}]}
    out = validate_scenario(doc)
    assert out["machine"] == "high-end-desktop"
    assert out["duration_ms"] > 0
    assert "machine" not in doc  # the input is never mutated
    assert scenario_digest(doc) == scenario_digest(out)


# ---------------------------------------------------------------------------
# Compiler: bit-identity with the hand-written catalog apps
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("path, factory_path", [
    ("scenarios/ar.json", "repro.apps.ar:ArApp"),
    ("scenarios/video.json", "repro.apps.video:UhdVideoApp"),
])
def test_catalog_scenarios_bit_identical(path, factory_path):
    import importlib

    module_name, _, class_name = factory_path.partition(":")
    factory = getattr(importlib.import_module(module_name), class_name)
    doc = json.load(open(path))
    result = run_scenario(doc, duration_ms=3_500.0)
    reference = run_app(factory(), "vSoC", duration_ms=3_500.0, seed=0,
                        fast_forward=False).result
    assert result.digest == app_digest([reference])
    assert result.apps[0].fps == reference.fps
    assert result.apps[0].presented == reference.presented


def test_roundtrip_document_compiles_to_identical_digest():
    doc = json.load(open("scenarios/mixed-chaos.json"))
    compiled = compile_scenario(doc)
    rebuilt = scenario_document(compiled)
    first = run_scenario(compiled, duration_ms=2_500.0)
    second = run_scenario(rebuilt, duration_ms=2_500.0)
    assert first.digest == second.digest
    # And the re-serialized document is a fixpoint.
    again = scenario_document(compile_scenario(rebuilt))
    assert canonical_json(again) == canonical_json(rebuilt)


def test_mixed_chaos_scenario_recovers():
    doc = json.load(open("scenarios/mixed-chaos.json"))
    result = run_scenario(doc, strict_audit=True)
    assert result.crashes == 1
    assert result.recoveries == 1
    assert all(app.ran for app in result.apps)


# ---------------------------------------------------------------------------
# FaultPlan serialization properties
# ---------------------------------------------------------------------------

def test_raw_plan_documents_validate_or_raise_configuration_error():
    valid = 0
    for seed in range(150):
        doc = sample_fault_plan_dict(seed)
        try:
            plan = FaultPlan.from_dict(doc)
        except ConfigurationError:
            continue
        valid += 1
        # A plan that loaded must round-trip losslessly.
        assert FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()
    assert valid > 0  # the sampler does produce some valid plans


def test_plan_roundtrip_behavior_identical_under_injector():
    from repro.experiments.chaos import default_chaos_plan, run_chaos

    plan = default_chaos_plan().crash_device(4_000.0, "codec",
                                             downtime_ms=300.0)
    rebuilt = FaultPlan.from_dict(plan.to_dict())
    first = run_chaos(plan=plan, duration_ms=5_000.0, seed=3)
    second = run_chaos(plan=rebuilt, duration_ms=5_000.0, seed=3)
    assert first.fps == second.fps
    assert first.presented == second.presented
    assert first.injected == second.injected
    assert (first.crashes, first.recoveries) == (second.crashes,
                                                 second.recoveries)


# ---------------------------------------------------------------------------
# Fuzzer: sampling, campaign, shrinking, replay
# ---------------------------------------------------------------------------

def test_sampled_scenarios_are_valid_and_deterministic():
    for seed in range(20):
        doc = sample_scenario(seed, quick=True)
        assert validate_scenario(doc) == doc
        assert canonical_json(sample_scenario(seed, quick=True)) == \
            canonical_json(doc)


def test_fuzz_campaign_runs_clean(tmp_path):
    report = run_fuzz(max_samples=8, seed=0, out_dir=str(tmp_path),
                      quick=True, jobs=1)
    assert report["samples"] == 8
    assert report["findings"] == []
    assert report["ok"] == 8


BROKEN = {
    "name": "broken", "emulator": "vSoC", "duration_ms": 2_500.0,
    "apps": [{"name": "a", "pipeline": "ar"},
             {"name": "b", "pipeline": "video", "buffers": 6}],
    "environment": {"bus_load": [
        {"time_ms": 500.0, "bus": "pcie", "load": 0.2}]},
    # Test-injected violation: no real fence resolves in a microsecond.
    "audit": {"fence_wait_deadline_ms": 0.001},
}


def test_strict_audit_raises_on_injected_violation():
    with pytest.raises(InvariantViolation) as err:
        run_scenario(BROKEN, strict_audit=True)
    assert err.value.invariant == "fence-liveness"
    outcome = scenario_point(canonical_json(validate_scenario(BROKEN)))
    assert outcome["status"] == "violation"
    assert outcome["invariant"] == "fence-liveness"
    assert outcome["scenario_sha256"] == scenario_digest(BROKEN)


def test_shrinker_converges_to_minimal_same_violation_reproducer():
    doc = validate_scenario(BROKEN)

    def still_fails(candidate):
        probe = scenario_point(canonical_json(candidate))
        return (probe["status"], probe.get("invariant")) == \
            ("violation", "fence-liveness")

    shrunk, checks = shrink_scenario(doc, still_fails, max_checks=120)
    assert checks <= 120
    # The reproducer still triggers the same invariant...
    probe = scenario_point(canonical_json(shrunk))
    assert (probe["status"], probe["invariant"]) == \
        ("violation", "fence-liveness")
    # ...and is strictly smaller: one app, no environment, and the
    # injected audit knob is the only audit setting left.
    assert len(shrunk["apps"]) == 1
    assert "environment" not in shrunk
    assert shrunk["audit"] == {"fence_wait_deadline_ms": 0.001}


def test_fuzz_finds_shrinks_and_replays_injected_violation(tmp_path):
    report = run_fuzz(documents=[BROKEN], out_dir=str(tmp_path), jobs=1,
                      max_shrink_checks=120)
    assert len(report["findings"]) == 1
    finding = report["findings"][0]
    assert finding["outcome"]["invariant"] == "fence-liveness"
    # The reproducer file replays to the same violation.
    doc, stored = load_reproducer(finding["reproducer"])
    assert stored["invariant"] == "fence-liveness"
    assert scenario_digest(doc) == finding["scenario_sha256"]
    probe = scenario_point(canonical_json(doc))
    assert (probe["status"], probe["invariant"]) == \
        ("violation", "fence-liveness")


def test_fuzz_cli_campaign_and_replay(tmp_path, capsys):
    from repro.experiments.__main__ import main

    # A bounded clean campaign exits 0.
    rc = main(["fuzz", "--max-samples", "3", "--seed", "11", "--quick",
               "--no-cache", "--fuzz-dir", str(tmp_path / "out")])
    assert rc == 0
    # Replaying an injected-violation reproducer exits 1 and prints a
    # REPRODUCE line carrying the scenario sha256.
    broken_path = tmp_path / "broken.json"
    broken_path.write_text(json.dumps(BROKEN))
    rc = main(["fuzz", "--replay", str(broken_path), "--no-cache",
               "--fuzz-dir", str(tmp_path / "out2")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "fence-liveness" in out
    assert "REPRODUCE: python -m repro.experiments fuzz --replay" in out
    assert scenario_digest(BROKEN)[:12] in out


# ---------------------------------------------------------------------------
# CLI strict-audit plumbing + fleet integration
# ---------------------------------------------------------------------------

def test_run_chaos_strict_audit_clean_baseline():
    from repro.experiments.chaos import run_chaos

    result = run_chaos(plan=FaultPlan(), duration_ms=2_000.0,
                       strict_audit=True)
    assert result.audit_violations == 0
    assert result.presented > 0


def test_recover_reproduce_line_convention():
    from repro.experiments.recover import _recover_reproduce_line

    line = _recover_reproduce_line(quick=True, seed=4, strict_audit=True)
    assert line == ("REPRODUCE: python -m repro.experiments recover "
                    "--seed 4 --quick --strict-audit")


def test_trace_from_scenario_feeds_fleet_service():
    from repro.fleet import FleetService, trace_from_scenario

    doc = minimal_doc(apps=[{"name": "v", "pipeline": "video"},
                            {"name": "a", "pipeline": "ar", "priority": 0}])
    trace = trace_from_scenario(doc, cohorts=2, spacing_ms=1_500.0)
    assert len(trace) == 4
    assert trace == trace_from_scenario(doc, cohorts=2, spacing_ms=1_500.0)
    priorities = {s.session_id: s.priority for s in trace.sessions}
    assert priorities["t-c00-a"] == 0 and priorities["t-c00-v"] == 1
    summary = FleetService(n_workers=2).serve(trace)
    assert summary["stats"]["offered"] == 4
    assert summary["stats"]["completed"] == 4
