"""Fast-forward soundness tests (repro.sim.fastforward).

The headline property: a fast-forwarded run is *bit-identical* to the
event-by-event run — same trace records (times, kinds, fields), same
counters, same final clock. The steady bench workload provides a cycle
the detector provably engages on; the safety tests prove every refusal
path (global flag, veto, fault injection, off-grid periods, telemetry).
"""

import random

import pytest

from repro.experiments.bench import (
    STEADY_PERIOD_MS,
    _SteadyWorker,
    _trace_digest,
    kernel_steady,
)
from repro.sim import Simulator, Timeout
from repro.sim.fastforward import (
    GRID,
    SAME,
    Delta,
    FastForwardController,
    TraceChannel,
    advance,
    advance_n,
    enabled_default,
    on_grid,
    set_enabled,
    stride_of,
)
from repro.sim.tracing import TraceLog


@pytest.fixture(autouse=True)
def _restore_global_default():
    # Pin a known state (order-independence) and restore on the way out.
    prev = enabled_default()
    set_enabled(True)
    yield
    set_enabled(prev)


def _ns():
    """The live kernel namespace, shaped like bench's SimpleNamespace."""
    from types import SimpleNamespace

    return SimpleNamespace(Simulator=Simulator, Timeout=Timeout, TraceLog=TraceLog)


# ---------------------------------------------------------------------------
# Grid and stride algebra
# ---------------------------------------------------------------------------

def test_on_grid_accepts_dyadics_and_rejects_the_rest():
    assert on_grid(16.0)
    assert on_grid(0.25)
    assert on_grid(GRID)
    assert on_grid(-3.75)
    assert on_grid(7)
    assert not on_grid(1000.0 / 60.0)  # real vsync period
    assert not on_grid(0.1)
    assert not on_grid(2.0 ** 40)  # out of span
    assert not on_grid("16.0")


def test_stride_of_basic_shapes():
    assert stride_of(5, 5) is SAME
    assert stride_of(5, 8) == Delta(3)
    assert stride_of(1.5, 2.25) == Delta(0.75)
    assert stride_of((1, "a"), (3, "a")) == (Delta(2), SAME)
    assert stride_of(0.1, 0.2) is None  # off-grid floats
    assert stride_of("a", "b") is None  # unequal strings never stride
    assert stride_of((1, 2), (1, 2, 3)) is None  # shape mismatch
    assert stride_of(1, 1.0) is None  # type mismatch


@pytest.mark.parametrize("seed", range(3))
def test_advance_n_is_bit_identical_to_iterated_advance(seed):
    rng = random.Random(seed)
    for _ in range(50):
        value = rng.randrange(-(2 ** 20), 2 ** 20) * GRID
        delta = rng.randrange(-(2 ** 12), 2 ** 12) * GRID
        stride = Delta(delta)
        n = rng.randrange(1, 5000)
        iterated = value
        for _ in range(n):
            iterated = advance(iterated, stride)
        assert advance_n(value, stride, n) == iterated


# ---------------------------------------------------------------------------
# Bit-identity on the steady workload (the acceptance property)
# ---------------------------------------------------------------------------

def _steady_pair(**kwargs):
    plain = kernel_steady(_ns(), fast_forward=False, **kwargs)
    ffwd = kernel_steady(_ns(), fast_forward=True, **kwargs)
    return plain, ffwd


def test_fast_forwarded_steady_run_is_bit_identical():
    plain, ffwd = _steady_pair(workers=4, frames=240)
    assert len(plain._records) == len(ffwd._records) == 4 * 240
    assert _trace_digest(plain) == _trace_digest(ffwd)


def test_sparse_record_cadence_is_bit_identical():
    # frame % record_every *branches* recording, so it is fingerprinted;
    # without that watch the detector would lock onto a quiet window and
    # under-replay (the regression this test pins).
    plain, ffwd = _steady_pair(workers=4, frames=320, record_every=8)
    assert len(plain._records) == len(ffwd._records) == 4 * 320 // 8
    assert _trace_digest(plain) == _trace_digest(ffwd)


def test_substeps_scale_events_not_records():
    plain, ffwd = _steady_pair(workers=2, frames=240, record_every=4,
                               substeps=2)
    assert len(plain._records) == len(ffwd._records)
    assert _trace_digest(plain) == _trace_digest(ffwd)


def test_multi_anchor_cycle_replays_absolute_counters_from_last_row():
    # record_every=4 forces a 4-anchor cycle. CounterChannel journals the
    # *absolute* frame value once per anchor — replay must take the last
    # row of the group, not the first, or every worker's counter lands
    # m-1 cycles behind after the jump (a bug this test pins).
    frames, workers, every = 320, 3, 4
    sim = Simulator()
    trace = TraceLog()
    pool = [_SteadyWorker(sim, trace, Timeout, i, every) for i in range(workers)]
    for worker in pool:
        sim.spawn(worker.run(), name=f"steady-{worker.index}")
    horizon = frames * STEADY_PERIOD_MS + 4.0
    ctl = FastForwardController(sim, period=STEADY_PERIOD_MS, horizon=horizon)
    ctl.add_channel(TraceChannel(trace))
    for worker in pool:
        ctl.track_counter(worker, "frame")
        ctl.watch(lambda w=worker: w.frame % w.record_every)
    ctl.install()
    sim.run(until=horizon)

    assert ctl.engaged == 1
    assert ctl.cycle_multiple == every
    assert ctl.skipped_cycles > 0
    assert ctl.skipped_ms > 0
    assert ctl.disabled_reason == "engaged"

    reference = kernel_steady(_ns(), workers=workers, frames=frames,
                              record_every=every, fast_forward=False)
    assert _trace_digest(trace) == _trace_digest(reference)
    assert all(worker.frame == frames for worker in pool)

    stats = ctl.stats()
    assert stats["engaged"] == 1
    assert stats["cycle_multiple"] == every
    assert stats["skipped_ms"] == ctl.skipped_ms


def test_fast_forward_advances_the_clock_and_skips_dispatch():
    # The whole point: far fewer dispatched events, same final state.
    counting = Simulator()
    trace = TraceLog()
    worker = _SteadyWorker(counting, trace, Timeout, 0, 1)
    counting.spawn(worker.run(), name="steady-0")
    horizon = 2000 * STEADY_PERIOD_MS + 4.0
    ctl = FastForwardController(counting, period=STEADY_PERIOD_MS,
                                horizon=horizon)
    ctl.add_channel(TraceChannel(trace))
    ctl.track_counter(worker, "frame")
    ctl.watch(lambda: worker.frame % worker.record_every)
    ctl.install()
    counting.run(until=horizon)
    assert ctl.engaged == 1
    assert worker.frame == 2000
    assert len(trace._records) == 2000
    # Dispatched events ~ (frames - skipped) * stages; skipping must have
    # removed the overwhelming majority of the run.
    assert ctl.skipped_cycles > 1900


# ---------------------------------------------------------------------------
# Refusal paths: every way the controller must NOT engage
# ---------------------------------------------------------------------------

def _controller(sim, period=STEADY_PERIOD_MS, horizon=1000.0, **kwargs):
    return FastForwardController(sim, period=period, horizon=horizon, **kwargs)


def test_global_disable_refuses_install():
    set_enabled(False)
    ctl = _controller(Simulator()).install()
    assert ctl.disabled_reason == "globally-disabled"
    assert ctl.engaged == 0


def test_veto_refuses_install():
    sim = Simulator()
    sim.veto_fast_forward("fault-injection")
    ctl = _controller(sim).install()
    assert ctl.disabled_reason == "vetoed: fault-injection"


def test_veto_placed_mid_run_disarms_at_next_anchor():
    sim = Simulator()
    trace = TraceLog()
    worker = _SteadyWorker(sim, trace, Timeout, 0, 1)
    sim.spawn(worker.run(), name="steady-0")
    ctl = _controller(sim, horizon=400 * STEADY_PERIOD_MS)
    ctl.add_channel(TraceChannel(trace))
    ctl.track_counter(worker, "frame")
    ctl.install()
    sim.schedule(3 * STEADY_PERIOD_MS, sim.veto_fast_forward, "late-veto")
    sim.run(until=400 * STEADY_PERIOD_MS)
    assert ctl.disabled_reason == "vetoed: late-veto"
    assert ctl.engaged == 0
    # The run still completed event-by-event, bit-identical by definition.
    assert worker.frame == 400


def test_off_grid_period_refuses_install():
    ctl = _controller(Simulator(), period=1000.0 / 60.0).install()
    assert ctl.disabled_reason is not None
    assert "off-grid anchor period" in ctl.disabled_reason


def test_off_grid_horizon_refuses_install():
    ctl = _controller(Simulator(), horizon=3333.3).install()
    assert ctl.disabled_reason is not None
    assert "off-grid horizon" in ctl.disabled_reason


def test_aperiodic_run_goes_dormant_after_max_anchors():
    sim = Simulator()

    def jittery():
        rng = random.Random(0)
        while True:
            # Off-grid offsets: signatures are ineligible every anchor.
            yield Timeout(rng.uniform(3.0, 5.0))

    sim.spawn(jittery(), name="jitter")
    ctl = _controller(sim, horizon=200 * STEADY_PERIOD_MS, max_anchors=16)
    ctl.install()
    sim.run(until=200 * STEADY_PERIOD_MS)
    assert ctl.engaged == 0
    assert ctl.disabled_reason == "no fixed point within 16 anchors"
    assert ctl.anchors_seen == 16


def test_fault_injector_vetoes_fast_forward():
    # Satellite 6: a FaultPlan run must never enter fast-forward.
    from repro.emulators import EMULATOR_FACTORIES
    from repro.experiments.chaos import default_chaos_plan
    from repro.faults import FaultInjector
    from repro.hw.machine import HIGH_END_DESKTOP, build_machine

    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    trace = TraceLog()
    emulator = EMULATOR_FACTORIES["vSoC"](
        sim, machine, trace=trace, rng=random.Random(0)
    )
    FaultInjector(sim, default_chaos_plan(), seed=0, trace=trace).install(emulator)
    assert "fault-injection" in sim.fast_forward_vetoes
    ctl = _controller(sim).install()
    assert ctl.disabled_reason == "vetoed: fault-injection"
    assert ctl.engaged == 0


# ---------------------------------------------------------------------------
# run_app plumbing
# ---------------------------------------------------------------------------

def test_run_app_surfaces_stats_and_stays_bit_identical():
    from repro.apps.video import UhdVideoApp
    from repro.experiments.runner import run_app

    on = run_app(UhdVideoApp(), "vSoC", duration_ms=1_500.0,
                 fast_forward=True)
    off = run_app(UhdVideoApp(), "vSoC", duration_ms=1_500.0,
                  fast_forward=False)
    # Real vsync (1000/60 ms) is off the dyadic grid, so the controller
    # refuses up front — and the run must be identical either way.
    assert on.fast_forward is not None
    assert on.fast_forward["engaged"] == 0
    assert "off-grid" in on.fast_forward["disabled_reason"]
    assert off.fast_forward is None
    assert on.result == off.result


def test_run_app_respects_process_default():
    from repro.apps.video import UhdVideoApp
    from repro.experiments.runner import run_app

    set_enabled(False)
    run = run_app(UhdVideoApp(), "vSoC", duration_ms=1_000.0)
    assert run.fast_forward is None


def test_telemetry_run_skips_the_controller():
    from repro.apps.video import UhdVideoApp
    from repro.experiments.runner import run_app

    run = run_app(UhdVideoApp(), "vSoC", duration_ms=1_000.0,
                  telemetry=True, fast_forward=True)
    assert run.fast_forward is None
    assert run.telemetry is not None
