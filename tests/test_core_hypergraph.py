"""Unit tests for directed hypergraphs (repro.core.hypergraph)."""

import pytest

from repro.core import DirectedHypergraph
from repro.core.hypergraph import Hyperedge, edge_key
from repro.errors import ConfigurationError


def make_graph():
    g = DirectedHypergraph("test")
    for node in ("camera", "isp", "gpu", "codec"):
        g.add_node(node)
    return g


def test_edge_key_is_order_insensitive():
    assert edge_key(["a"], ["b", "c"]) == edge_key(["a"], ["c", "b"])


def test_edge_creation_and_lookup():
    g = make_graph()
    edge = g.edge(["camera"], ["isp", "gpu"])
    assert edge.sources == frozenset({"camera"})
    assert edge.destinations == frozenset({"isp", "gpu"})
    assert g.edge(["camera"], ["gpu", "isp"]) is edge
    assert len(g) == 1


def test_edge_with_unknown_node_rejected():
    g = make_graph()
    with pytest.raises(ConfigurationError, match="no node"):
        g.edge(["camera"], ["teleporter"])


def test_hyperedge_requires_endpoints():
    with pytest.raises(ConfigurationError):
        Hyperedge(frozenset(), frozenset({"gpu"}))
    with pytest.raises(ConfigurationError):
        Hyperedge(frozenset({"gpu"}), frozenset())


def test_edges_from_filters_by_source():
    g = make_graph()
    g.edge(["camera"], ["isp"])
    g.edge(["camera"], ["gpu"])
    g.edge(["codec"], ["gpu"])
    assert len(g.edges_from("camera")) == 2
    assert len(g.edges_from("codec")) == 1
    assert g.edges_from("gpu") == []


def test_touch_counts_observations():
    g = make_graph()
    edge = g.edge(["codec"], ["gpu"])
    for _ in range(5):
        edge.touch()
    assert edge.observations == 5


def test_stats_payload_is_per_edge():
    g = make_graph()
    a = g.edge(["codec"], ["gpu"])
    b = g.edge(["camera"], ["isp"])
    a.stats["x"] = 1
    assert "x" not in b.stats


def test_nodes_frozen_view():
    g = make_graph()
    assert "camera" in g.nodes
    assert g.has_node("gpu")
    assert not g.has_node("nope")


def test_iteration_yields_edges():
    g = make_graph()
    g.edge(["codec"], ["gpu"])
    g.edge(["camera"], ["isp"])
    assert {e.key for e in g} == {
        edge_key(["codec"], ["gpu"]),
        edge_key(["camera"], ["isp"]),
    }


def test_get_edge_by_key():
    g = make_graph()
    edge = g.edge(["codec"], ["gpu"])
    assert g.get_edge(edge_key(["codec"], ["gpu"])) is edge
    assert g.get_edge(edge_key(["isp"], ["gpu"])) is None
