"""Property and unit tests for the EventQueue backends (repro.sim.eventq).

The heap is the reference implementation; the timing wheel (and the
adaptive promotion path) must dispatch every schedule/cancel/timeout
sequence in exactly the same order — that equivalence is what lets the
kernel swap backends without touching any bit-identity guarantee.
"""

import random

import pytest

from repro.sim import Simulator, Timeout
from repro.sim.eventq import (
    ADAPTIVE_PROMOTE_AT,
    HeapEventQueue,
    TimingWheelEventQueue,
    make_event_queue,
    wheel_from_heap,
)


class _Obj:
    """Minimal queue-entry payload (the ScheduledCall protocol)."""

    __slots__ = ("time", "cancelled", "tag")

    def __init__(self, time, tag):
        self.time = time
        self.cancelled = False
        self.tag = tag


def _drain(queue, limit=None):
    out = []
    while True:
        entry = queue.pop_due(limit)
        if entry is None:
            return out
        out.append((entry[0], entry[1], entry[2].tag))


# ---------------------------------------------------------------------------
# Randomized equivalence: heap vs wheel vs adaptive promotion
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(8))
def test_random_schedule_cancel_sequences_dispatch_identically(seed):
    rng = random.Random(seed)
    heap = HeapEventQueue()
    wheel = TimingWheelEventQueue()
    entries = []
    now = 0.0
    script = []  # (op, payload) log, replayed identically into both queues
    for step in range(600):
        op = rng.random()
        if op < 0.70 or not entries:
            # Mix of near (in-window), far (overflow), and past-ish times.
            bucket = rng.random()
            if bucket < 0.5:
                t = now + rng.uniform(0.0, 0.9)
            elif bucket < 0.8:
                t = now + rng.uniform(0.9, 5.0)
            else:
                t = now + rng.uniform(5.0, 600.0)
            script.append(("push", t, step))
            entries.append(step)
        elif op < 0.85:
            script.append(("cancel", rng.choice(entries)))
        else:
            now += rng.uniform(0.1, 3.0)
            script.append(("pop", now))

    def run(queue):
        made = {}
        out = []
        for item in script:
            if item[0] == "push":
                _op, t, tag = item
                obj = _Obj(t, tag)
                made[tag] = obj
                queue.push(t, obj)
            elif item[0] == "cancel":
                obj = made.get(item[1])
                if obj is not None:
                    obj.cancelled = True
            else:
                out.extend(_drain(queue, item[1]))
        out.extend(_drain(queue, None))
        return out

    assert run(heap) == run(wheel)


@pytest.mark.parametrize("seed", range(4))
def test_equal_timestamps_dispatch_fifo_on_both_backends(seed):
    rng = random.Random(1000 + seed)
    heap = HeapEventQueue()
    wheel = TimingWheelEventQueue()
    times = [rng.choice((1.0, 2.0, 2.0, 2.0, 7.5, 120.0)) for _ in range(200)]
    for queue in (heap, wheel):
        for i, t in enumerate(times):
            queue.push(t, _Obj(t, i))
    a, b = _drain(heap), _drain(wheel)
    assert a == b
    # Within one timestamp, tags (insertion order) must be ascending.
    for t in set(times):
        tags = [tag for tt, _seq, tag in a if tt == t]
        assert tags == sorted(tags)


def test_wheel_from_heap_preserves_pending_set_and_order():
    rng = random.Random(7)
    heap = HeapEventQueue()
    objs = []
    for i in range(300):
        t = rng.uniform(0.0, 400.0)
        obj = _Obj(t, i)
        objs.append(obj)
        heap.push(t, obj)
    for obj in rng.sample(objs, 40):
        obj.cancelled = True
    reference = HeapEventQueue()
    for t, seq, obj in heap.iter_pending():
        reference._heap.append((t, seq, obj))
    import heapq

    heapq.heapify(reference._heap)
    wheel = wheel_from_heap(heap)
    assert _drain(wheel) == _drain(reference)


# ---------------------------------------------------------------------------
# Wheel internals
# ---------------------------------------------------------------------------

def test_wheel_overflow_refiles_into_window():
    wheel = TimingWheelEventQueue()
    near = _Obj(0.5, "near")
    far = _Obj(900.0, "far")  # way past the ~1 s window
    wheel.push(0.5, near)
    wheel.push(900.0, far)
    assert len(wheel) == 2
    out = _drain(wheel)
    assert [tag for _t, _s, tag in out] == ["near", "far"]


def test_wheel_jumps_empty_window_straight_to_overflow():
    wheel = TimingWheelEventQueue()
    wheel.push(5000.0, _Obj(5000.0, "lonely"))
    entry = wheel.pop_due(None)
    assert entry is not None and entry[2].tag == "lonely"
    assert wheel.pop_due(None) is None


def test_wheel_shift_all_preserves_relative_order():
    wheel = TimingWheelEventQueue()
    for i, t in enumerate((1.0, 1.0, 3.0, 250.0)):
        wheel.push(t, _Obj(t, i))
    wheel.shift_all(1000.0)
    out = _drain(wheel)
    assert [round(t, 6) for t, _s, _tag in out] == [1001.0, 1001.0, 1003.0, 1250.0]
    assert [tag for _t, _s, tag in out] == [0, 1, 2, 3]


def test_heap_shift_all_drops_cancelled_and_keeps_order():
    heap = HeapEventQueue()
    objs = [_Obj(t, i) for i, t in enumerate((2.0, 2.0, 5.0))]
    for obj in objs:
        heap.push(obj.time, obj)
    objs[0].cancelled = True
    heap.shift_all(10.0)
    out = _drain(heap)
    assert [tag for _t, _s, tag in out] == [1, 2]
    assert [t for t, _s, _tag in out] == [12.0, 15.0]


def test_pop_due_respects_limit():
    for queue in (HeapEventQueue(), TimingWheelEventQueue()):
        queue.push(1.0, _Obj(1.0, "a"))
        queue.push(10.0, _Obj(10.0, "b"))
        entry = queue.pop_due(5.0)
        assert entry is not None and entry[2].tag == "a"
        assert queue.pop_due(5.0) is None
        assert len(queue) == 1


def test_make_event_queue_specs():
    assert isinstance(make_event_queue("heap"), HeapEventQueue)
    assert isinstance(make_event_queue("adaptive"), HeapEventQueue)
    assert isinstance(make_event_queue("wheel"), TimingWheelEventQueue)
    wheel = TimingWheelEventQueue()
    assert make_event_queue(wheel) is wheel
    with pytest.raises(Exception):
        make_event_queue("nonsense")


# ---------------------------------------------------------------------------
# Kernel-level equivalence (full Simulator runs)
# ---------------------------------------------------------------------------

def _workload(sim):
    seen = []

    def proc(i):
        period = 0.7 + 0.31 * i
        for tick in range(40):
            yield Timeout(period)
            seen.append((round(sim.now, 9), i, tick))
            if tick % 5 == 0:
                call = sim.schedule(period * 3, seen.append, ("never", i))
                call.cancel()

    for i in range(12):
        sim.spawn(proc(i), name=f"p{i}")
    return seen


@pytest.mark.parametrize("spec", ["heap", "wheel", "adaptive"])
def test_simulator_runs_identically_on_every_backend(spec):
    reference = Simulator(queue="heap")
    ref_seen = _workload(reference)
    reference.run(until=200.0)

    sim = Simulator(queue=spec)
    seen = _workload(sim)
    sim.run(until=200.0)
    assert seen == ref_seen
    assert sim.now == reference.now


def test_adaptive_promotes_to_wheel_mid_run_without_reordering():
    sim = Simulator(queue="adaptive")
    assert sim.queue_kind == "heap"
    seen = []

    def burst():
        # Push the pending count over the promotion threshold.
        for i in range(ADAPTIVE_PROMOTE_AT + 64):
            sim.schedule(1.0 + (i % 97) * 0.013, seen.append, i)
        yield Timeout(50.0)

    sim.spawn(burst(), name="burst")
    sim.run(until=100.0)
    assert sim.queue_kind == "wheel"

    reference = Simulator(queue="heap")
    ref_seen = []

    def ref_burst():
        for i in range(ADAPTIVE_PROMOTE_AT + 64):
            reference.schedule(1.0 + (i % 97) * 0.013, ref_seen.append, i)
        yield Timeout(50.0)

    reference.spawn(ref_burst(), name="burst")
    reference.run(until=100.0)
    assert seen == ref_seen
