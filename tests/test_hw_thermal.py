"""Unit tests for the thermal throttling model (repro.hw.thermal)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import ThermalModel
from repro.sim import Simulator, Timeout


def make_model(sim, **overrides):
    params = dict(
        heat_per_busy_ms=1.0,
        cool_per_ms=0.25,
        throttle_at=100.0,
        recover_at=50.0,
        throttled_factor=0.35,
    )
    params.update(overrides)
    return ThermalModel(sim, **params)


def test_starts_cool_and_full_speed():
    sim = Simulator()
    model = make_model(sim)
    assert model.speed_factor() == 1.0
    assert model.heat == 0.0
    assert not model.throttled


def test_heat_accumulates_with_busy_time():
    sim = Simulator()
    model = make_model(sim)
    model.note_busy(40.0)
    assert model.heat == pytest.approx(40.0)


def test_throttles_above_threshold():
    sim = Simulator()
    model = make_model(sim)
    model.note_busy(120.0)
    assert model.throttled
    assert model.speed_factor() == 0.35
    assert model.throttle_events == 1


def test_cooling_over_idle_time():
    sim = Simulator()
    model = make_model(sim)
    model.note_busy(40.0)

    def idle():
        yield Timeout(80.0)  # cools 80 * 0.25 = 20 units

    sim.spawn(idle())
    sim.run()
    assert model.heat == pytest.approx(20.0)


def test_hysteresis_recovery():
    sim = Simulator()
    model = make_model(sim)
    model.note_busy(120.0)
    assert model.throttled

    def idle():
        # Needs to cool from 120 to 50 => 70 units / 0.25 per ms = 280 ms.
        yield Timeout(279.0)

    sim.spawn(idle())
    sim.run()
    assert model.throttled  # 120 - 69.75 = 50.25, still above recover_at

    def idle_more():
        yield Timeout(2.0)

    sim.spawn(idle_more())
    sim.run()
    assert not model.throttled
    assert model.speed_factor() == 1.0


def test_heat_never_negative():
    sim = Simulator()
    model = make_model(sim)
    model.note_busy(10.0)

    def long_idle():
        yield Timeout(10_000.0)

    sim.spawn(long_idle())
    sim.run()
    assert model.heat == 0.0


def test_sustained_load_stays_throttled():
    sim = Simulator()
    model = make_model(sim)

    def hammer():
        for _ in range(100):
            model.note_busy(5.0)
            yield Timeout(5.0)

    sim.spawn(hammer())
    sim.run()
    assert model.throttled


def test_invalid_configs_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        make_model(sim, throttled_factor=0.0)
    with pytest.raises(ConfigurationError):
        make_model(sim, recover_at=100.0)  # == throttle_at
    with pytest.raises(ConfigurationError):
        make_model(sim, cool_per_ms=1.0)  # >= heating rate
    model = make_model(sim)
    with pytest.raises(ConfigurationError):
        model.note_busy(-1.0)


def test_rejects_non_finite_parameters():
    sim = Simulator()
    for key in ("heat_per_busy_ms", "cool_per_ms", "throttle_at", "recover_at"):
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ConfigurationError, match="must be finite"):
                make_model(sim, **{key: bad})


def test_note_busy_rejects_non_finite_values():
    sim = Simulator()
    model = make_model(sim)
    with pytest.raises(ConfigurationError, match="busy time must be finite"):
        model.note_busy(float("nan"))
    with pytest.raises(ConfigurationError, match="got inf"):
        model.note_busy(float("inf"))


def test_reset_clears_heat_and_throttle():
    sim = Simulator()
    model = make_model(sim)
    model.note_busy(150.0)  # past throttle_at=100
    assert model.throttled
    model.reset()
    assert model.heat == 0.0
    assert not model.throttled
    assert model.speed_factor() == 1.0
