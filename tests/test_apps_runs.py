"""End-to-end app runs: each Table-1 category on vSoC and one baseline.

These are the integration tests behind the Figure 10 benchmarks —
deliberately short runs asserting the coarse behaviours, not exact FPS.
"""

import pytest

from repro.apps import (
    ArApp,
    CameraApp,
    Heavy3dApp,
    LivestreamApp,
    PopularApp,
    UhdVideoApp,
    Video360App,
)
from repro.experiments.runner import run_app
from repro.hw.machine import MIDDLE_END_LAPTOP

DURATION = 6_000.0


@pytest.mark.parametrize("app_cls", [UhdVideoApp, Video360App, CameraApp, ArApp,
                                     LivestreamApp, PopularApp, Heavy3dApp])
def test_every_category_runs_smoothly_on_vsoc(app_cls):
    run = run_app(app_cls(), "vSoC", duration_ms=DURATION)
    assert run.result.ran
    assert run.result.fps > 45.0, app_cls.__name__


@pytest.mark.parametrize("app_cls", [UhdVideoApp, CameraApp, LivestreamApp])
def test_gae_runs_but_stutters(app_cls):
    run = run_app(app_cls(), "GAE", duration_ms=DURATION)
    assert run.result.ran
    assert 15.0 < run.result.fps < 45.0, app_cls.__name__


def test_trinity_cannot_run_camera_apps():
    run = run_app(CameraApp(), "Trinity", duration_ms=DURATION)
    assert not run.result.ran
    assert "camera" in run.result.fail_reason.lower()


def test_trinity_cannot_run_livestream_apps():
    run = run_app(LivestreamApp(), "Trinity", duration_ms=DURATION)
    assert not run.result.ran
    assert "encoder" in run.result.fail_reason.lower()


def test_incompatible_app_reported_not_run():
    from repro.apps.catalog import emerging_apps

    ar_07 = next(a for a in emerging_apps() if a.name == "ar-07")
    run = run_app(ar_07, "vSoC", duration_ms=DURATION)
    assert not run.result.ran
    assert "incompatible" in run.result.fail_reason


def test_latency_only_on_interactive_categories():
    video = run_app(UhdVideoApp(), "vSoC", duration_ms=DURATION)
    camera = run_app(CameraApp(), "vSoC", duration_ms=DURATION)
    assert video.result.latency_avg is None
    assert camera.result.latency_avg is not None


def test_vsoc_latency_beats_gae():
    vsoc = run_app(CameraApp(), "vSoC", duration_ms=DURATION)
    gae = run_app(CameraApp(), "GAE", duration_ms=DURATION)
    assert vsoc.result.latency_avg < 0.7 * gae.result.latency_avg


def test_gae_thermal_collapse_on_laptop():
    """§5.3: ~30 FPS at first, ~10 FPS after throttling kicks in."""
    app = UhdVideoApp(warmup_ms=0.0)
    run = run_app(app, "GAE", machine_spec=MIDDLE_END_LAPTOP, duration_ms=80_000.0)
    timeline = app.fps.fps_timeline(80_000.0, bucket_ms=10_000.0)
    early, late = timeline[0], timeline[-1]
    assert early > 25.0
    assert late < 0.6 * early


def test_vsoc_stays_cool_on_laptop():
    """Hardware decode keeps the CPU idle: no thermal collapse."""
    run = run_app(UhdVideoApp(), "vSoC", machine_spec=MIDDLE_END_LAPTOP,
                  duration_ms=80_000.0)
    assert run.result.fps > 50.0
    assert not run.emulator.machine.cpu.thermal.throttled


def test_prefetch_accuracy_at_least_99_percent_in_apps():
    """§5.2: device-prediction accuracy 99-100% on real pipelines."""
    for app_cls in (UhdVideoApp, CameraApp):
        run = run_app(app_cls(), "vSoC", duration_ms=DURATION)
        stats = run.emulator.engine.stats
        assert stats.accuracy is not None
        assert stats.accuracy >= 0.99, app_cls.__name__


def test_deterministic_app_runs():
    a = run_app(UhdVideoApp(), "vSoC", duration_ms=4_000.0, seed=3)
    b = run_app(UhdVideoApp(), "vSoC", duration_ms=4_000.0, seed=3)
    assert a.result.fps == b.result.fps
    assert a.result.presented == b.result.presented
