"""Tests for §6's porting path: registering new virtual devices."""

import random

import pytest

from repro.emulators import make_vsoc
from repro.errors import ConfigurationError
from repro.hw import build_machine
from repro.hw.bus import Bus
from repro.hw.device import DeviceKind, OpCost, PhysicalDevice
from repro.hw.memory import MemoryPool
from repro.sim import Simulator, Timeout
from repro.units import GIB, UHD_FRAME_BYTES, gb_per_s


@pytest.fixture
def ported():
    sim = Simulator()
    machine = build_machine(sim)
    npu_memory = MemoryPool("npu-mem", 4 * GIB)
    npu_link = Bus(sim, "npu-pcie", gb_per_s(6.0), latency=0.01)
    npu = PhysicalDevice(
        sim, "npu", DeviceKind.ISP,
        local_memory=npu_memory, link=npu_link,
        op_costs={"infer": OpCost(fixed=3.0, bandwidth=gb_per_s(8.0))},
    )
    machine.add_device(npu)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))
    emulator.register_vdev("npu", npu)
    return sim, machine, emulator


def test_registered_vdev_is_usable(ported):
    sim, _machine, emulator = ported
    assert emulator.has_vdev("npu")
    assert emulator.vdev_location("npu") == "npu"
    assert emulator.physical_for("npu").name == "npu"


def test_duplicate_registration_rejected(ported):
    sim, machine, emulator = ported
    with pytest.raises(ConfigurationError):
        emulator.register_vdev("npu", machine.device("npu"))


def test_ported_device_joins_the_hypergraphs(ported):
    sim, _machine, emulator = ported
    assert emulator.twin.virtual.has_node("npu")
    assert emulator.twin.physical.has_node("npu")


def test_prefetch_covers_the_ported_device(ported):
    """The paper's §6 payoff: once ported, the new device's flows are
    predicted and prefetched like any built-in one."""
    sim, _machine, emulator = ported
    latencies = []

    def pipeline():
        region = emulator.svm_alloc(UHD_FRAME_BYTES)
        for _ in range(10):
            write = yield from emulator.stage(
                "camera", "deliver", UHD_FRAME_BYTES, writes=[region]
            )
            yield write.done
            yield Timeout(12.0)
            read = yield from emulator.stage(
                "npu", "infer", UHD_FRAME_BYTES, reads=[region]
            )
            latencies.append(read.access_latency)
            yield read.done

    sim.spawn(pipeline())
    sim.run(until=2_000.0)
    assert latencies[0] > 1.0  # cold miss pays the host->npu copy
    assert latencies[-1] < 0.5  # steady state: prefetched ahead of time
    assert emulator.engine.stats.launched >= 8


def test_data_location_override(ported):
    sim, machine, emulator = ported
    soft = PhysicalDevice(sim, "dsp", DeviceKind.ISP,
                          op_costs={"filter": OpCost(fixed=1.0)})
    machine.add_device(soft)
    emulator.register_vdev("dsp", soft, data_location="host")
    assert emulator.vdev_location("dsp") == "host"
