"""Tests for latency attribution: conservation, critical path, diff, SLO,
the regression sentinel's triage, and the ``explain`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer
from repro.obs.critical import (
    BUDGET_CATEGORIES,
    CONSERVATION_TOL,
    LatencyBudget,
    TruncatedTraceError,
    analyze_tracer,
    budget_from_snapshot,
)
from repro.obs.diff import diff_budgets
from repro.obs.slo import SloSpec, evaluate_frames, fleet_burn
from repro.sim import Simulator

APPS = ("video", "camera", "ar", "livestream")
EMULATORS = ("vSoC", "GAE", "QEMU-KVM")

DURATION_MS = 1_500.0


def _attributed_run(app_name: str, emulator: str, seed: int = 0):
    from repro.experiments.observe import APPS as APP_FACTORIES
    from repro.experiments.runner import run_app

    return run_app(
        APP_FACTORIES[app_name](), emulator,
        duration_ms=DURATION_MS, seed=seed, attribution=True,
    )


# -- the conservation property (catalog apps × emulators) ---------------------

@pytest.mark.parametrize("emulator", EMULATORS)
@pytest.mark.parametrize("app_name", APPS)
def test_budget_conserves_measured_latency(app_name, emulator):
    run = _attributed_run(app_name, emulator)
    if not run.result.ran:
        pytest.skip(f"{app_name} cannot run on {emulator}")
    budget = budget_from_snapshot(run.telemetry)
    assert budget is not None
    assert budget.frames, "an attributed run must attribute its frames"
    # The invariant: per frame, category × device cells sum to the
    # measured frame latency within float tolerance.
    assert budget.conservation_errors() == []
    for frame in budget.frames:
        assert frame.conservation_error() <= CONSERVATION_TOL
        for cell in frame.cells:
            assert cell.ms >= 0.0
            assert cell.category in BUDGET_CATEGORIES
    # Aggregate views are consistent with each other.
    totals = budget.totals(scaled=False)
    assert abs(sum(totals.values()) - budget.total_latency_ms(scaled=False)) \
        <= CONSERVATION_TOL * max(1, len(budget.frames))


def test_attribution_rides_the_snapshot_dict():
    run = _attributed_run("video", "vSoC")
    budget = budget_from_snapshot(run.telemetry)
    as_dict = run.telemetry.to_dict()
    assert "attribution" in as_dict
    revived = budget_from_snapshot(as_dict)
    assert revived == budget  # dict path reproduces the live object


# -- zero perturbation --------------------------------------------------------

def test_attribution_digest_is_bit_identical_on_and_off():
    from repro.experiments.observe import APPS as APP_FACTORIES
    from repro.experiments.runner import run_app
    from repro.scenario.runner import app_digest

    plain = run_app(APP_FACTORIES["video"](), "vSoC",
                    duration_ms=DURATION_MS, seed=0)
    attributed = run_app(APP_FACTORIES["video"](), "vSoC",
                         duration_ms=DURATION_MS, seed=0, attribution=True)
    assert app_digest([plain.result]) == app_digest([attributed.result])
    assert repr(float(plain.result.fps)) == repr(float(attributed.result.fps))


def test_scenario_digest_is_bit_identical_with_attribution():
    from repro.scenario.runner import run_scenario

    doc = {
        "name": "attr-identity",
        "emulator": "vSoC",
        "machine": "high-end-desktop",
        "duration_ms": 1_500.0,
        "seed": 7,
        "apps": [{"name": "v", "pipeline": "video"}],
    }
    plain = run_scenario(doc)
    observed = run_scenario(doc, attribution=True)
    assert plain.digest == observed.digest
    assert observed.budget is not None
    assert observed.budget.frames
    assert observed.budget.conservation_errors() == []
    assert plain.budget is None


# -- analyzer mechanics -------------------------------------------------------

def _synthetic_tracer(max_spans=None):
    sim = Simulator()
    tracer = Tracer(sim, max_spans=max_spans)
    flow = tracer.new_flow()
    stage = tracer.begin("stage:decode", "codec", cat="stage", flow=flow)
    kick = tracer.begin("transport.kick", "transport", cat="transport", flow=flow)
    sim._now = 1.0  # advance the observed clock deterministically
    tracer.end(kick)
    execute = tracer.begin("exec:decode", "codec/exec", cat="exec", flow=flow)
    sim._now = 4.0
    tracer.end(execute)
    sim._now = 6.0
    tracer.end(stage)
    tracer.instant("frame.presented", "display", cat="frame", flow=flow,
                   sequence=0, latency=6.0)
    return tracer


def test_analyzer_refuses_truncated_ring_traces():
    tracer = _synthetic_tracer(max_spans=2)
    assert tracer.dropped_spans > 0
    with pytest.raises(TruncatedTraceError) as err:
        analyze_tracer(tracer)
    assert "max_spans" in str(err.value)


def test_synthetic_frame_budget_and_critical_path():
    tracer = _synthetic_tracer()
    budget = analyze_tracer(tracer)
    assert len(budget.frames) == 1
    frame = budget.frames[0]
    assert frame.latency_ms == 6.0
    by_category = frame.category_ms()
    # 1 ms bus kick, 3 ms device compute, 2 ms uncovered slack.
    assert by_category["bus_transfer"] == pytest.approx(1.0)
    assert by_category["device_compute"] == pytest.approx(3.0)
    assert by_category["sched_slack"] == pytest.approx(2.0)
    assert frame.conservation_error() <= CONSERVATION_TOL
    # Critical path: kick → exec → presented (stage containers excluded).
    names = [step.name for step in budget.critical_path]
    assert names == ["transport.kick", "exec:decode", "frame.presented"]
    # Steps never overlap and end at the present.
    for before, after in zip(budget.critical_path, budget.critical_path[1:]):
        assert before.end_ms <= after.start_ms
    assert budget.critical_path[-1].end_ms == frame.present_ms


def test_analyzer_is_deterministic():
    budgets = [analyze_tracer(_synthetic_tracer()) for _ in range(2)]
    assert budgets[0] == budgets[1]
    real = [budget_from_snapshot(_attributed_run("ar", "vSoC").telemetry)
            for _ in range(2)]
    assert real[0] == real[1]


def test_budget_round_trips_through_json():
    budget = budget_from_snapshot(_attributed_run("video", "vSoC").telemetry)
    revived = LatencyBudget.from_dict(
        json.loads(json.dumps(budget.to_dict()))
    )
    assert revived == budget


def test_fast_forward_scaling_scales_aggregates_only():
    budget = analyze_tracer(_synthetic_tracer())
    scaled = budget.scaled_for_fast_forward(
        {"skipped_cycles": 3, "cycle_multiple": 2}
    )
    assert scaled.ff_skipped_frames == 6
    assert scaled.ff_multiplier == pytest.approx((1 + 6) / 1)
    for key, ms in budget.totals(scaled=False).items():
        assert scaled.totals()[key] == pytest.approx(ms * scaled.ff_multiplier)
    # Per-frame budgets (and conservation) are untouched by scaling.
    assert scaled.frames == budget.frames
    assert scaled.conservation_errors() == []
    assert budget.scaled_for_fast_forward(None) == budget
    assert budget.scaled_for_fast_forward({"skipped_cycles": 0}) == budget


# -- differential triage ------------------------------------------------------

def test_diff_budgets_localizes_the_regression():
    base = budget_from_snapshot(_attributed_run("ar", "vSoC").telemetry)
    cand = budget_from_snapshot(_attributed_run("ar", "QEMU-KVM").telemetry)
    diff = diff_budgets(base, cand, seed=0)
    assert diff["frames_matched"] > 0
    assert diff["dominant"] is not None
    assert diff["dominant"]["category"] in BUDGET_CATEGORIES
    assert 0.0 < diff["dominant"]["share"] <= 1.0
    assert diff["dominant"]["category"] in diff["headline"]
    assert f"on {diff['dominant']['device']}" in diff["headline"]
    # Seeded bootstrap: identical inputs triage identically.
    assert diff == diff_budgets(base, cand, seed=0)
    p = diff["bootstrap"]["p_value"]
    assert p is not None and 0.0 <= p <= 1.0


def test_diff_budgets_on_identical_runs_finds_nothing():
    base = budget_from_snapshot(_attributed_run("video", "vSoC").telemetry)
    diff = diff_budgets(base, base, seed=0)
    assert diff["frames_matched"] == len(base.frames)
    assert diff["dominant"] is None
    assert diff["latency"]["p99"]["delta_ms"] == 0.0


# -- SLO burn rate ------------------------------------------------------------

def test_slo_windowed_burn_math():
    spec = SloSpec(deadline_ms=10.0, target=0.9, window_frames=4)
    # Window 1: 2/4 miss (burn 5.0); window 2 (partial): 0/2 miss.
    report = evaluate_frames([5.0, 15.0, 12.0, 8.0, 9.0, 7.0], spec)
    assert report.frames == 6 and report.misses == 2
    assert report.burn_rates == pytest.approx((5.0, 0.0))
    assert report.peak_burn == pytest.approx(5.0)
    assert report.overall_burn == pytest.approx((2 / 6) / 0.1)
    assert not report.met
    assert evaluate_frames([1.0] * 8, spec).met


def test_fleet_burn_surfaces_the_worst_session():
    spec = SloSpec(deadline_ms=10.0, target=0.9, window_frames=4)
    rollup = fleet_burn(
        {"good": [1.0] * 8, "bad": [20.0] * 4 + [1.0] * 4}, spec
    )
    assert rollup["fleet"]["worst_session"] == "bad"
    assert rollup["fleet"]["misses"] == 4
    assert rollup["sessions"]["bad"]["met"] is False
    assert rollup["sessions"]["good"]["met"] is True
    assert rollup["fleet"]["miss_rate"] == pytest.approx(4 / 16)


def test_slo_spec_validation():
    with pytest.raises(ValueError):
        SloSpec(target=1.0)
    with pytest.raises(ValueError):
        SloSpec(deadline_ms=0.0)


# -- the regression sentinel's triage -----------------------------------------

def test_sentinel_attribution_diff_names_the_category(tmp_path):
    from repro.obs.baseline import HISTORY_SCHEMA, RegressionSentinel

    sentinel = RegressionSentinel(path=str(tmp_path / "history.jsonl"))
    history = [
        {"schema": HISTORY_SCHEMA, "kind": "bench",
         "metrics": {"budget.bus_transfer_ms": 10.0,
                     "budget.device_compute_ms": 30.0}}
        for _ in range(4)
    ]
    triage = sentinel.attribution_diff(
        {"budget.bus_transfer_ms": 22.0, "budget.device_compute_ms": 30.5},
        history=history,
    )
    assert triage["schema"] == "repro-sentinel-attribution-v1"
    assert triage["dominant"]["category"] == "bus_transfer"
    assert triage["dominant"]["delta_ms"] == pytest.approx(12.0)
    assert "bus_transfer" in triage["headline"]
    no_shift = sentinel.attribution_diff(
        {"budget.bus_transfer_ms": 10.0}, history=history
    )
    assert no_shift["dominant"] is None


def test_sentinel_skips_history_with_mismatched_parallel_mode(tmp_path):
    from repro.obs.baseline import RegressionSentinel

    sentinel = RegressionSentinel(path=str(tmp_path / "history.jsonl"),
                                  min_history=1)
    inline_report = {
        "kernel": {"speedup": 2.0, "optimized_s": 1.0},
        "suites": {"emerging": {"parallel_mode": "inline", "serial_s": 1.0}},
    }
    for _ in range(4):
        sentinel.append(inline_report)
    pool_report = {
        "kernel": {"speedup": 2.0, "optimized_s": 1.0},
        "suites": {"emerging": {"parallel_mode": "pool", "serial_s": 1.0}},
    }
    verdict = sentinel.check(pool_report)
    assert verdict.parallel_mode == "pool"
    assert verdict.skipped_mismatched == 4
    assert verdict.history_len == 0  # nothing comparable survives
    same_mode = sentinel.check(inline_report)
    assert same_mode.skipped_mismatched == 0
    assert same_mode.history_len == 4
    record = sentinel.append(inline_report)
    assert record["parallel_mode"] == "inline"
    assert "cpu_count" in record["host"]


def test_budget_history_metrics_flatten():
    from repro.obs.baseline import budget_history_metrics

    budget = analyze_tracer(_synthetic_tracer())
    metrics = budget_history_metrics(budget)
    assert metrics["budget.bus_transfer_ms"] == pytest.approx(1.0)
    assert metrics["budget.device_compute_ms"] == pytest.approx(3.0)
    assert set(metrics) == {f"budget.{c}_ms" for c in BUDGET_CATEGORIES}


# -- ring-cap surfacing and fast-forward annotations --------------------------

def test_chrome_trace_carries_retention_metadata():
    from repro.obs import chrome_trace

    tracer = _synthetic_tracer(max_spans=2)
    trace = chrome_trace(tracer)
    other = trace["otherData"]
    assert other["span_retention"] == "ring:2"
    assert other["dropped_spans"] == tracer.dropped_spans > 0
    full = chrome_trace(_synthetic_tracer())
    assert full["otherData"]["span_retention"] == "all"
    assert full["otherData"]["dropped_spans"] == 0


def test_chrome_trace_annotates_fast_forward_jumps():
    from repro.obs import chrome_trace, validate_chrome_trace

    tracer = _synthetic_tracer()
    stats = {"skipped_cycles": 5, "skipped_ms": 400.0, "cycle_multiple": 2,
             "jump_at": 100.0, "jump_to": 500.0}
    trace = chrome_trace(tracer, fast_forward=stats)
    assert validate_chrome_trace(trace) == []
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "i"}
    assert "fastforward.jump" in names and "fastforward.land" in names
    jump = next(e for e in trace["traceEvents"]
                if e["name"] == "fastforward.jump")
    assert jump["args"]["skipped_cycles"] == 5
    plain = chrome_trace(tracer, fast_forward={"skipped_cycles": 0})
    assert not any(e["name"].startswith("fastforward.")
                   for e in plain["traceEvents"])
