"""Tests for the experiments CLI (repro.experiments.__main__)."""

import pytest

from repro.experiments.__main__ import COMMANDS, main


def test_every_documented_command_exists():
    expected = {"table2", "fig4", "fig5", "fig6", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "popular-breakdown",
                "pred", "ablations", "density", "sweeps", "validate"}
    assert expected <= set(COMMANDS)


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_quick_flag_parses():
    # `pred` is the fastest command; run it end to end.
    assert main(["pred", "--quick"]) == 0


def test_table2_quick_prints_paper_references(capsys):
    main(["table2", "--quick"])
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "(2.38)" in out  # paper reference value printed beside measured
    assert "vSoC" in out and "QEMU-KVM" in out


def test_package_metadata():
    import repro

    assert repro.__version__
    assert "SOSP 2024" in repro.__paper__


# ---------------------------------------------------------------------------
# fleetserve + chaos reproducer lines
# ---------------------------------------------------------------------------

def test_fleetserve_quick_cli(tmp_path, capsys):
    out = tmp_path / "fleet.html"
    report = tmp_path / "fleet.json"
    rc = main(["fleetserve", "--quick", "--seed", "0",
               "--out", str(out), "--report", str(report)])
    captured = capsys.readouterr().out
    assert rc == 0
    assert "PASS: zero lost sessions" in captured
    assert "REPRODUCE" not in captured
    assert out.stat().st_size > 0

    import json

    data = json.loads(report.read_text())
    assert data["summary"]["recovery"]["lost_sessions"] == 0
    assert data["summary"]["balanced"]


def test_fleetserve_failure_prints_seeded_reproducer(capsys):
    # An impossible concurrency bar forces a failure deterministically.
    from repro.experiments.fleetserve import QUICK_SHAPE, cmd_fleetserve

    bar = QUICK_SHAPE["min_peak"]
    try:
        QUICK_SHAPE["min_peak"] = 10**9
        rc = cmd_fleetserve(quick=True, seed=3)
    finally:
        QUICK_SHAPE["min_peak"] = bar
    captured = capsys.readouterr().out
    assert rc == 1
    assert ("REPRODUCE: python -m repro.experiments fleetserve "
            "--seed 3 --quick") in captured


def test_chaos_fault_class_filter(capsys):
    rc = main(["chaos", "--quick", "--fault-class", "device-stall"])
    captured = capsys.readouterr().out
    assert rc == 0
    assert "device-stall" in captured
    assert "bus-flap" not in captured  # filtered out
    with pytest.raises(ValueError, match="unknown fault class"):
        main(["chaos", "--quick", "--fault-class", "nope"])


def test_chaos_failure_prints_seeded_reproducer(capsys, monkeypatch):
    import repro.experiments.chaos as chaos_mod
    from repro.experiments.__main__ import cmd_chaos

    real = chaos_mod.run_fault_classes

    def sabotaged(**kwargs):
        results = real(**kwargs)
        broken = dict(results)
        label = "device-stall"
        broken[label] = chaos_mod.ChaosResult(
            emulator="vSoC", seed=kwargs.get("seed", 0),
            duration_ms=results[label].duration_ms,
            fps=0.0, steady_fps=0.0,
            steady_after_ms=results[label].steady_after_ms,
            presented=0, degrades=0, restores=0, time_degraded_ms=0.0,
        )
        return broken

    monkeypatch.setattr(chaos_mod, "run_fault_classes", sabotaged)
    rc = cmd_chaos(quick=True, seed=7, fault_class="device-stall")
    captured = capsys.readouterr().out
    assert rc == 1
    assert "FAIL device-stall" in captured
    assert ("REPRODUCE: python -m repro.experiments chaos "
            "--seed 7 --fault-class device-stall --quick") in captured
