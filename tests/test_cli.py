"""Tests for the experiments CLI (repro.experiments.__main__)."""

import pytest

from repro.experiments.__main__ import COMMANDS, main


def test_every_documented_command_exists():
    expected = {"table2", "fig4", "fig5", "fig6", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "popular-breakdown",
                "pred", "ablations", "density", "sweeps", "validate"}
    assert expected <= set(COMMANDS)


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_quick_flag_parses():
    # `pred` is the fastest command; run it end to end.
    assert main(["pred", "--quick"]) == 0


def test_table2_quick_prints_paper_references(capsys):
    main(["table2", "--quick"])
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "(2.38)" in out  # paper reference value printed beside measured
    assert "vSoC" in out and "QEMU-KVM" in out


def test_package_metadata():
    import repro

    assert repro.__version__
    assert "SOSP 2024" in repro.__paper__
