"""Invariants across the emulator configurations (calibration sanity)."""

from repro.emulators.base import EmulatorConfig
from repro.emulators.commercial import bluestacks_config, ldplayer_config
from repro.emulators.gae import gae_config
from repro.emulators.qemu_kvm import qemu_kvm_config
from repro.emulators.trinity import trinity_config
from repro.emulators.vsoc import vsoc_config

ALL_CONFIGS = {
    "vSoC": vsoc_config(),
    "GAE": gae_config(),
    "QEMU-KVM": qemu_kvm_config(),
    "LDPlayer": ldplayer_config(),
    "Bluestacks": bluestacks_config(),
    "Trinity": trinity_config(),
}


def test_only_vsoc_has_unified_svm():
    assert ALL_CONFIGS["vSoC"].unified_svm
    for name, config in ALL_CONFIGS.items():
        if name != "vSoC":
            assert not config.unified_svm, name


def test_only_vsoc_uses_fences():
    from repro.core.ordering import OrderingMode

    assert ALL_CONFIGS["vSoC"].ordering is OrderingMode.FENCES
    for name, config in ALL_CONFIGS.items():
        if name != "vSoC":
            assert config.ordering is OrderingMode.ATOMIC, name


def test_only_vsoc_has_hardware_codecs():
    """§5.3: the baselines decode in software (the thermal story depends
    on it); vSoC uses the GPU's decode engine."""
    assert ALL_CONFIGS["vSoC"].hw_decode
    for name, config in ALL_CONFIGS.items():
        if name != "vSoC":
            assert not config.hw_decode, name


def test_decode_efficiency_ordering():
    """GAE has the best software decoder, Trinity (Android-x86) the worst."""
    scales = {name: c.decode_scale for name, c in ALL_CONFIGS.items()}
    assert scales["GAE"] <= scales["QEMU-KVM"] <= scales["LDPlayer"]
    assert scales["LDPlayer"] <= scales["Bluestacks"] < scales["Trinity"]


def test_trinity_has_best_baseline_gpu():
    render = {name: c.render_scale for name, c in ALL_CONFIGS.items()}
    assert render["Trinity"] == min(render.values())
    assert render["QEMU-KVM"] == max(render.values())  # virgl overhead


def test_qemu_boundary_faster_than_gae():
    """Table 2: QEMU's coherence (6.15 ms) beats GAE's (7.05 ms)."""
    assert (ALL_CONFIGS["QEMU-KVM"].coherence_bandwidth_scale
            > ALL_CONFIGS["GAE"].coherence_bandwidth_scale == 1.0)


def test_commercial_emulators_stall():
    for name in ("LDPlayer", "Bluestacks"):
        assert ALL_CONFIGS[name].stall_period_ms > 0, name
    assert (ALL_CONFIGS["Bluestacks"].stall_duration_ms
            > ALL_CONFIGS["LDPlayer"].stall_duration_ms)


def test_access_overhead_matches_table2():
    """GAE's extra per-access cost lifts it to ~0.76 ms over the 0.22 floor."""
    assert ALL_CONFIGS["QEMU-KVM"].extra_access_overhead_ms == 0.0
    assert 0.4 < ALL_CONFIGS["GAE"].extra_access_overhead_ms < 0.6


def test_config_defaults_are_sane():
    config = EmulatorConfig(name="x", unified_svm=True)
    assert config.command_queue_depth > 0
    assert config.flow_control_window >= 1.0
    assert 0 < config.gpu_context_switch_ms < 2.0
    assert config.dispatch_cost_ms >= 0.0


def test_display_device_class():
    """The Display physical device (custom topologies) presents cheaply."""
    from repro.hw.device import Display
    from repro.sim import Simulator

    sim = Simulator()
    display = Display(sim, present_cost=0.05)
    assert display.op_time("present") == 0.05
    assert display.local_memory is None
