"""Unit tests for coherence protocols and the copy planner (repro.core.coherence)."""

import pytest

from repro.core.coherence import (
    CopyPlanner,
    GuestMemoryWriteInvalidate,
    UnifiedWriteInvalidate,
)
from repro.core.region import GUEST_LOCATION, HOST_LOCATION, SvmRegion
from repro.errors import ConfigurationError
from repro.hw import build_machine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog
from repro.units import UHD_FRAME_BYTES


@pytest.fixture
def setup():
    sim = Simulator()
    machine = build_machine(sim)
    planner = CopyPlanner(sim, machine)
    trace = TraceLog()
    return sim, machine, planner, trace


# --- CopyPlanner -------------------------------------------------------------

def test_same_location_needs_no_legs(setup):
    _sim, _m, planner, _t = setup
    assert planner.unified_legs("gpu", "gpu") == []
    assert planner.unified_legs(HOST_LOCATION, HOST_LOCATION) == []


def test_host_to_gpu_is_one_pcie_leg(setup):
    sim, machine, planner, _t = setup
    legs = planner.unified_legs(HOST_LOCATION, "gpu")
    assert legs == [machine.pcie]


def test_gpu_to_host_is_one_pcie_leg(setup):
    sim, machine, planner, _t = setup
    assert planner.unified_legs("gpu", HOST_LOCATION) == [machine.pcie]


def test_unknown_location_rejected(setup):
    _sim, _m, planner, _t = setup
    with pytest.raises(ConfigurationError):
        planner.unified_legs("fpga", HOST_LOCATION)


def test_estimate_matches_execution(setup):
    sim, _m, planner, _t = setup
    estimate = planner.estimate_unified(HOST_LOCATION, "gpu", UHD_FRAME_BYTES)

    def proc():
        return (yield from planner.copy_unified(HOST_LOCATION, "gpu", UHD_FRAME_BYTES))

    p = sim.spawn(proc())
    sim.run()
    assert p.value == pytest.approx(estimate)


def test_zero_copy_takes_zero_time(setup):
    sim, _m, planner, _t = setup

    def proc():
        return (yield from planner.copy_unified("gpu", "gpu", UHD_FRAME_BYTES))

    p = sim.spawn(proc())
    sim.run()
    assert p.value == 0.0


def test_boundary_copy_uses_boundary_bus(setup):
    sim, machine, planner, _t = setup

    def proc():
        return (yield from planner.copy_via_boundary(UHD_FRAME_BYTES))

    p = sim.spawn(proc())
    sim.run()
    assert p.value == pytest.approx(machine.boundary.transfer_time(UHD_FRAME_BYTES))


def test_vsoc_direct_path_beats_guest_memory_path(setup):
    """The architectural claim of §3.2: direct < double boundary crossing."""
    _sim, _m, planner, _t = setup
    direct = planner.estimate_unified(HOST_LOCATION, "gpu", UHD_FRAME_BYTES)
    guest_path = 2 * planner.estimate_boundary(UHD_FRAME_BYTES)
    assert direct < 0.5 * guest_path


# --- UnifiedWriteInvalidate ---------------------------------------------------

def test_write_invalidate_copies_at_read(setup):
    sim, _m, planner, trace = setup
    protocol = UnifiedWriteInvalidate(sim, planner, trace)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)

    def read():
        return (yield from protocol.begin_access_read(region, "gpu", "gpu"))

    p = sim.spawn(read())
    sim.run()
    assert p.value > 2.0  # blocked for the pcie copy
    assert region.is_valid_at("gpu")
    assert len(trace.of_kind("coherence.maintenance")) == 1


def test_write_invalidate_free_when_valid(setup):
    sim, _m, planner, trace = setup
    protocol = UnifiedWriteInvalidate(sim, planner, trace)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("gpu", "gpu", UHD_FRAME_BYTES)

    def read():
        return (yield from protocol.begin_access_read(region, "display", "gpu"))

    p = sim.spawn(read())
    sim.run()
    assert p.value == 0.0
    assert len(trace.of_kind("coherence.maintenance")) == 0


# --- GuestMemoryWriteInvalidate ----------------------------------------------

def run_guest_memory_cycle(sim, protocol, region, writer, reader, reader_loc):
    def cycle():
        yield from protocol.executor_after_write(region, writer, HOST_LOCATION)
        yield from protocol.executor_before_read(region, reader, reader_loc)

    proc = sim.spawn(cycle())
    sim.run()
    return proc


def test_guest_memory_two_crossings(setup):
    sim, machine, planner, trace = setup
    protocol = GuestMemoryWriteInvalidate(sim, planner, trace)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    run_guest_memory_cycle(sim, protocol, region, "codec", "gpu", "gpu")
    maintenances = trace.of_kind("coherence.maintenance")
    assert len(maintenances) == 1
    # flush + fetch: two boundary crossings of the frame (§2.2).
    expected = 2 * planner.estimate_boundary(UHD_FRAME_BYTES)
    assert maintenances[0]["duration"] == pytest.approx(expected, rel=0.05)


def test_guest_memory_isolates_virtual_devices(setup):
    """Same physical device, different virtual devices: still two
    crossings — the waste the unified framework eliminates (§3.2)."""
    sim, _m, planner, trace = setup
    protocol = GuestMemoryWriteInvalidate(sim, planner, trace)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("gpu", "gpu", UHD_FRAME_BYTES)
    # display shares the physical GPU but is a distinct virtual device
    run_guest_memory_cycle(sim, protocol, region, "gpu", "display", "gpu")
    assert len(trace.of_kind("coherence.maintenance")) == 1


def test_guest_memory_same_vdev_rereads_free(setup):
    sim, _m, planner, trace = setup
    protocol = GuestMemoryWriteInvalidate(sim, planner, trace)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("gpu", "gpu", UHD_FRAME_BYTES)

    def cycle():
        yield from protocol.executor_after_write(region, "gpu", "gpu")
        yield from protocol.executor_before_read(region, "gpu", "gpu")
        yield from protocol.executor_before_read(region, "gpu", "gpu")

    sim.spawn(cycle())
    sim.run()
    assert len(trace.of_kind("coherence.maintenance")) == 0  # writer rereads own data


def test_guest_memory_cpu_flush_is_free(setup):
    """Guest CPU writes land in guest memory directly — no crossing."""
    sim, _m, planner, trace = setup
    protocol = GuestMemoryWriteInvalidate(sim, planner, trace)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("cpu", HOST_LOCATION, UHD_FRAME_BYTES)

    def cycle():
        yield from protocol.executor_after_write(region, "cpu", HOST_LOCATION)

    sim.spawn(cycle())
    sim.run()
    assert sim.now == 0.0
    assert region.is_valid_at(GUEST_LOCATION)


def test_guest_memory_cpu_read_is_free(setup):
    sim, _m, planner, trace = setup
    protocol = GuestMemoryWriteInvalidate(sim, planner, trace)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)

    def cycle():
        yield from protocol.executor_after_write(region, "codec", HOST_LOCATION)
        at_flush = sim.now
        yield from protocol.executor_before_read(region, "cpu", HOST_LOCATION)
        return sim.now - at_flush

    p = sim.spawn(cycle())
    sim.run()
    assert p.value == 0.0
