"""Unit tests for metrics collectors and statistics (repro.metrics)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.metrics import FpsCollector, LatencyCollector, cdf_points, mean, percentile, summarize
from repro.metrics.collectors import SvmStats
from repro.sim.tracing import TraceLog


# --- stats helpers -------------------------------------------------------------

def test_mean_and_empty_rejection():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ConfigurationError):
        mean([])


def test_percentile_interpolation():
    values = [0.0, 10.0]
    assert percentile(values, 0) == 0.0
    assert percentile(values, 50) == 5.0
    assert percentile(values, 100) == 10.0


def test_percentile_bounds_check():
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)
    with pytest.raises(ConfigurationError):
        percentile([], 50)


def test_cdf_points_monotone():
    points = cdf_points([3.0, 1.0, 2.0])
    assert [v for v, _p in points] == [1.0, 2.0, 3.0]
    assert [p for _v, p in points] == pytest.approx([1 / 3, 2 / 3, 1.0])
    assert cdf_points([]) == []


def test_summarize_keys():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert set(summary) == {"n", "mean", "p50", "p95", "p99", "min", "max"}
    assert summary["n"] == 4.0


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=100))
def test_percentile_within_range(values):
    for q in (0, 25, 50, 75, 100):
        assert min(values) <= percentile(values, q) <= max(values)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
def test_cdf_probabilities_valid(values):
    points = cdf_points(values)
    probabilities = [p for _v, p in points]
    assert probabilities == sorted(probabilities)
    assert probabilities[-1] == pytest.approx(1.0)


# --- FpsCollector -------------------------------------------------------------

def test_fps_over_window():
    fps = FpsCollector()
    for i in range(120):
        fps.note_presented(i * 16.67)
    assert fps.fps(2_000.0) == pytest.approx(60.0, rel=0.02)


def test_fps_warmup_exclusion():
    fps = FpsCollector()
    for i in range(60):
        fps.note_presented(1_000.0 + i * 16.67)  # nothing in the first second
    assert fps.fps(2_000.0, warmup_ms=1_000.0) == pytest.approx(60.0, rel=0.02)
    assert fps.fps(2_000.0) == pytest.approx(30.0, rel=0.02)


def test_fps_timeline_buckets():
    fps = FpsCollector()
    for i in range(30):
        fps.note_presented(i * 16.67)  # first half second only
    timeline = fps.fps_timeline(2_000.0, bucket_ms=1_000.0)
    assert len(timeline) == 2
    assert timeline[0] == pytest.approx(30.0)
    assert timeline[1] == 0.0


def test_dropped_reasons_accumulate():
    fps = FpsCollector()
    fps.note_dropped("superseded")
    fps.note_dropped("superseded")
    fps.note_dropped("source-overrun")
    assert fps.dropped == {"superseded": 2, "source-overrun": 1}
    assert fps.dropped_total == 3


def test_fps_zero_window():
    fps = FpsCollector()
    assert fps.fps(1_000.0, warmup_ms=1_000.0) == 0.0


# --- LatencyCollector -----------------------------------------------------------

def test_latency_collector():
    collector = LatencyCollector()
    assert collector.average is None
    assert collector.p95() is None
    for v in (10.0, 20.0, 30.0):
        collector.note(v)
    assert collector.average == 20.0
    assert collector.p95() == pytest.approx(29.0)


# --- SvmStats -------------------------------------------------------------------

def test_svm_stats_from_trace():
    trace = TraceLog()
    trace.record(1.0, "svm.access_latency", latency=0.3, bytes=1000)
    trace.record(2.0, "svm.access_latency", latency=0.5, bytes=3000)
    trace.record(3.0, "coherence.maintenance", duration=2.4)
    trace.record(4.0, "svm.slack", slack=17.2)
    stats = SvmStats(trace, duration_ms=10.0)
    assert stats.average_access_latency() == pytest.approx(0.4)
    assert stats.average_coherence_cost() == pytest.approx(2.4)
    assert stats.slack_intervals() == [17.2]
    assert stats.throughput_bytes_per_ms() == pytest.approx(400.0)


def test_svm_stats_empty_trace():
    stats = SvmStats(TraceLog(), duration_ms=10.0)
    assert stats.average_access_latency() is None
    assert stats.average_coherence_cost() is None
    assert stats.throughput_bytes_per_ms() == 0.0
