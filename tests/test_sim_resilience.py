"""Unit tests for the resilience primitives (repro.sim.resilience)."""

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    TransientCopyError,
)
from repro.sim import (
    Deadline,
    RetryPolicy,
    Simulator,
    Timeout,
    retrying,
    with_deadline,
)
from repro.sim.tracing import TraceLog


def run_to_result(sim, gen, name="test"):
    proc = sim.spawn(gen, name=name)
    outcome = {}

    def on_done(value, exc):
        outcome["value"] = value
        outcome["exc"] = exc

    proc.add_callback(on_done)
    sim.run()
    return outcome


# -- RetryPolicy -------------------------------------------------------------

def test_retry_policy_backoff_schedule():
    policy = RetryPolicy(max_attempts=5, base_delay_ms=1.0, multiplier=2.0, max_delay_ms=5.0)
    assert policy.delay_before_retry(1) == 1.0
    assert policy.delay_before_retry(2) == 2.0
    assert policy.delay_before_retry(3) == 4.0
    assert policy.delay_before_retry(4) == 5.0  # capped


def test_retry_policy_exhaustion():
    policy = RetryPolicy(max_attempts=3)
    assert not policy.exhausted(2)
    assert policy.exhausted(3)
    unbounded = RetryPolicy(max_attempts=None)
    assert not unbounded.exhausted(10_000)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(max_attempts=0),
        dict(base_delay_ms=-1.0),
        dict(base_delay_ms=float("nan")),
        dict(multiplier=0.5),
        dict(max_delay_ms=float("inf")),
    ],
)
def test_retry_policy_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


# -- retrying() --------------------------------------------------------------

def _flaky(sim, failures_before_success, cost=1.0):
    """Generator factory that fails N times, then returns sim.now."""
    state = {"left": failures_before_success}

    def factory():
        yield Timeout(cost)
        if state["left"] > 0:
            state["left"] -= 1
            raise TransientCopyError("injected")
        return sim.now

    return factory


def test_retrying_transparent_on_success():
    sim = Simulator()
    policy = RetryPolicy(max_attempts=3, base_delay_ms=1.0)
    outcome = run_to_result(
        sim, retrying(sim, _flaky(sim, 0), policy, (TransientCopyError,))
    )
    assert outcome["exc"] is None
    assert outcome["value"] == pytest.approx(1.0)  # just the op cost


def test_retrying_retries_with_backoff():
    sim = Simulator()
    policy = RetryPolicy(max_attempts=5, base_delay_ms=1.0, multiplier=2.0, max_delay_ms=10.0)
    outcome = run_to_result(
        sim, retrying(sim, _flaky(sim, 2), policy, (TransientCopyError,))
    )
    # 1 (fail) + 1 backoff + 1 (fail) + 2 backoff + 1 (success) = 6 ms
    assert outcome["exc"] is None
    assert outcome["value"] == pytest.approx(6.0)


def test_retrying_exhausts_and_reraises():
    sim = Simulator()
    policy = RetryPolicy(max_attempts=2, base_delay_ms=1.0)
    outcome = run_to_result(
        sim, retrying(sim, _flaky(sim, 5), policy, (TransientCopyError,))
    )
    assert isinstance(outcome["exc"], TransientCopyError)


def test_retrying_propagates_unlisted_exceptions():
    sim = Simulator()

    def factory():
        yield Timeout(1.0)
        raise ValueError("not retryable")

    outcome = run_to_result(
        sim, retrying(sim, factory, RetryPolicy(), (TransientCopyError,))
    )
    assert isinstance(outcome["exc"], ValueError)


def test_retrying_traces_and_counts_retries():
    sim = Simulator()
    trace = TraceLog()
    seen = []
    policy = RetryPolicy(max_attempts=4, base_delay_ms=0.5)
    outcome = run_to_result(
        sim,
        retrying(
            sim, _flaky(sim, 2), policy, (TransientCopyError,),
            name="copy:test", trace=trace,
            on_retry=lambda n, exc: seen.append((n, type(exc).__name__)),
        ),
    )
    assert outcome["exc"] is None
    records = trace.of_kind("retry.backoff")
    assert [r["attempt"] for r in records] == [1, 2]
    assert all(r["op"] == "copy:test" for r in records)
    assert seen == [(1, "TransientCopyError"), (2, "TransientCopyError")]


def test_retrying_unbounded_policy_keeps_going():
    sim = Simulator()
    policy = RetryPolicy(max_attempts=None, base_delay_ms=0.1, max_delay_ms=0.5)
    outcome = run_to_result(
        sim, retrying(sim, _flaky(sim, 25), policy, (TransientCopyError,))
    )
    assert outcome["exc"] is None


# -- Deadline ----------------------------------------------------------------

def test_deadline_fails_waiter_at_expiry():
    sim = Simulator()

    def waiter():
        yield Deadline(sim, 5.0, label="op")

    outcome = run_to_result(sim, waiter())
    assert isinstance(outcome["exc"], DeadlineExceededError)
    assert "5.000 ms" in str(outcome["exc"])
    assert sim.now == pytest.approx(5.0)


def test_deadline_cancel_disarms():
    sim = Simulator()
    deadline = Deadline(sim, 5.0)
    deadline.cancel()
    sim.run()
    assert not deadline.expired


def test_deadline_rejects_bad_delay():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Deadline(sim, 0.0)
    with pytest.raises(ConfigurationError):
        Deadline(sim, float("nan"))


# -- with_deadline -----------------------------------------------------------

def test_with_deadline_passes_through_fast_ops():
    sim = Simulator()

    def op():
        yield Timeout(2.0)
        return "done"

    def runner():
        value = yield from with_deadline(sim, op(), 10.0, name="fast")
        return value

    outcome = run_to_result(sim, runner())
    assert outcome["value"] == "done"
    assert sim.now == pytest.approx(2.0)


def test_with_deadline_fails_slow_ops_at_the_deadline():
    sim = Simulator()

    def op():
        yield Timeout(50.0)
        return "late"

    def runner():
        return (yield from with_deadline(sim, op(), 10.0, name="slow"))

    outcome = run_to_result(sim, runner())
    assert isinstance(outcome["exc"], DeadlineExceededError)
    # The caller was released at the deadline, not at op completion...
    assert "10.000 ms" in str(outcome["exc"])


def test_with_deadline_orphan_keeps_running():
    """A timed-out op still completes in the background (like a real DMA)."""
    sim = Simulator()
    finished = []

    def op():
        yield Timeout(50.0)
        finished.append(sim.now)
        return "late"

    def runner():
        try:
            yield from with_deadline(sim, op(), 10.0)
        except DeadlineExceededError:
            pass
        return "recovered"

    outcome = run_to_result(sim, runner())
    assert outcome["value"] == "recovered"
    assert finished == [pytest.approx(50.0)]  # orphan drained to completion


def test_with_deadline_propagates_inner_failure():
    sim = Simulator()

    def op():
        yield Timeout(1.0)
        raise TransientCopyError("inner")

    def runner():
        return (yield from with_deadline(sim, op(), 10.0))

    outcome = run_to_result(sim, runner())
    assert isinstance(outcome["exc"], TransientCopyError)


def test_with_deadline_rejects_bad_deadline():
    sim = Simulator()

    def op():
        yield Timeout(1.0)

    gen = with_deadline(sim, op(), -1.0)
    with pytest.raises(ConfigurationError):
        next(gen)
