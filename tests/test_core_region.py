"""Unit tests for SVM regions (repro.core.region)."""

import pytest

from repro.core import AccessUsage, SvmRegion, location_of
from repro.core.region import GUEST_LOCATION, HOST_LOCATION
from repro.errors import AccessStateError, SvmError
from repro.hw import MemoryPool
from repro.units import MIB


def test_usage_flags():
    assert AccessUsage.READ.reads and not AccessUsage.READ.writes
    assert AccessUsage.WRITE.writes and not AccessUsage.WRITE.reads
    assert AccessUsage.READ_WRITE.reads and AccessUsage.READ_WRITE.writes


def test_new_region_is_coherent_everywhere():
    region = SvmRegion(1, MIB)
    assert region.is_valid_at("gpu")
    assert region.is_valid_at(HOST_LOCATION)


def test_write_invalidates_other_locations():
    region = SvmRegion(1, MIB)
    region.note_copy("gpu")
    region.note_write("codec", HOST_LOCATION, MIB)
    assert region.is_valid_at(HOST_LOCATION)
    assert not region.is_valid_at("gpu")
    assert region.last_writer_vdev == "codec"
    assert region.dirty_bytes == MIB


def test_copy_extends_valid_set():
    region = SvmRegion(1, MIB)
    region.note_write("codec", HOST_LOCATION, MIB)
    region.note_copy("gpu")
    assert region.is_valid_at("gpu")
    assert region.is_valid_at(HOST_LOCATION)


def test_write_clears_prefetch_state():
    region = SvmRegion(1, MIB)
    region.prefetch_targets = {"gpu"}
    region.pending_compensation = 2.0
    region.note_write("codec", HOST_LOCATION, MIB)
    assert region.prefetch_targets == set()
    assert region.pending_compensation == 0.0
    assert region.pending_prefetch is None


def test_access_bracket_pairing():
    region = SvmRegion(1, MIB)
    region.open_access("gpu", AccessUsage.READ, MIB, now=0.0)
    assert region.open_accessors == {"gpu"}
    opened = region.close_access("gpu")
    assert opened.usage is AccessUsage.READ
    assert region.open_accessors == set()


def test_double_begin_access_rejected():
    region = SvmRegion(1, MIB)
    region.open_access("gpu", AccessUsage.READ, MIB, now=0.0)
    with pytest.raises(AccessStateError):
        region.open_access("gpu", AccessUsage.READ, MIB, now=1.0)


def test_end_access_without_begin_rejected():
    region = SvmRegion(1, MIB)
    with pytest.raises(AccessStateError):
        region.close_access("gpu")


def test_oversized_window_rejected():
    region = SvmRegion(1, MIB)
    with pytest.raises(SvmError):
        region.open_access("gpu", AccessUsage.READ, 2 * MIB, now=0.0)


def test_access_to_freed_region_rejected():
    region = SvmRegion(1, MIB)
    region.freed = True
    with pytest.raises(SvmError):
        region.open_access("gpu", AccessUsage.READ, MIB, now=0.0)


def test_zero_size_region_rejected():
    with pytest.raises(SvmError):
        SvmRegion(1, 0)


def test_reader_writer_vdev_tracking():
    region = SvmRegion(1, MIB)
    region.open_access("codec", AccessUsage.WRITE, MIB, now=0.0)
    region.close_access("codec")
    region.open_access("gpu", AccessUsage.READ, MIB, now=1.0)
    region.close_access("gpu")
    assert region.writer_vdevs == {"codec"}
    assert region.reader_vdevs == {"gpu"}
    assert region.total_accesses == 2


def test_release_backing_frees_pools():
    pool = MemoryPool("vram", 4 * MIB)
    region = SvmRegion(1, MIB)
    region.backing["gpu"] = pool.allocate(MIB)
    region.release_backing()
    assert pool.in_use == 0
    assert region.backing == {}


def test_location_of_uses_local_memory():
    class FakeDev:
        def __init__(self, name, local):
            self.name = name
            self.local_memory = local

    assert location_of(FakeDev("gpu", object())) == "gpu"
    assert location_of(FakeDev("cpu", None)) == HOST_LOCATION


def test_guest_location_distinct():
    assert GUEST_LOCATION != HOST_LOCATION
