"""Unit tests for the fault-injection framework (repro.faults)."""

import pytest

from repro.errors import (
    ConfigurationError,
    TransientCopyError,
    TransportDropError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.guest.transport import VirtioTransport
from repro.hw import MIDDLE_END_LAPTOP, build_machine
from repro.sim import Simulator, Timeout
from repro.sim.tracing import TraceLog
from repro.units import MIB


# -- FaultPlan validation ----------------------------------------------------

def test_plan_builders_chain():
    plan = (
        FaultPlan()
        .set_bus_load(100.0, "pcie", 0.5)
        .flap_bus("pcie", start_ms=200.0, period_ms=100.0, cycles=2, high_load=0.8)
        .copy_faults(0.0, 500.0, probability=0.3)
        .stall_device(50.0, "gpu", duration_ms=10.0)
        .reset_device(60.0, "cpu", downtime_ms=5.0)
        .transport_faults(0.0, 100.0, drop_probability=0.1)
    )
    assert len(plan.bus_loads) == 1 + 4  # one explicit + 2 cycles x 2 edges
    assert not plan.is_empty()
    assert plan.last_fault_time() == 500.0
    assert FaultPlan().is_empty()


def test_flap_bus_schedule_alternates():
    plan = FaultPlan().flap_bus(
        "pcie", start_ms=1000.0, period_ms=200.0, cycles=2, high_load=0.9, low_load=0.1
    )
    events = [(e.time_ms, e.load) for e in plan.bus_loads]
    assert events == [
        (1000.0, 0.9), (1100.0, 0.1),
        (1200.0, 0.9), (1300.0, 0.1),
    ]


@pytest.mark.parametrize(
    "build",
    [
        lambda p: p.set_bus_load(-1.0, "pcie", 0.5),
        lambda p: p.set_bus_load(0.0, "pcie", 1.0),
        lambda p: p.set_bus_load(0.0, "pcie", float("nan")),
        lambda p: p.flap_bus("pcie", 0.0, 0.0, 1, 0.5),
        lambda p: p.flap_bus("pcie", 0.0, 100.0, 0, 0.5),
        lambda p: p.copy_faults(100.0, 100.0, 0.5),
        lambda p: p.copy_faults(0.0, 100.0, 1.5),
        lambda p: p.copy_faults(0.0, 100.0, float("nan")),
        lambda p: p.stall_device(0.0, "gpu", 0.0),
        lambda p: p.reset_device(0.0, "gpu", -5.0),
        lambda p: p.transport_faults(100.0, 50.0, 0.5),
        lambda p: p.transport_faults(0.0, 100.0, delay_probability=0.5, delay_ms=0.0),
    ],
)
def test_plan_rejects_invalid_parameters(build):
    with pytest.raises(ConfigurationError):
        build(FaultPlan())


# -- bus fault hook ----------------------------------------------------------

def test_copy_fault_window_fails_transfers():
    sim = Simulator()
    machine = build_machine(sim)
    plan = FaultPlan().copy_faults(0.0, 1_000.0, probability=1.0, bus="pcie")
    injector = FaultInjector(sim, plan, seed=7, trace=TraceLog())
    injector.install_buses([machine.pcie])

    outcome = {}

    def xfer():
        try:
            yield from machine.pcie.transfer(4 * MIB)
        except TransientCopyError as err:
            outcome["error"] = err

    sim.spawn(xfer(), name="xfer")
    sim.run()
    assert "error" in outcome
    assert machine.pcie.transfer_failures == 1
    assert machine.pcie.transfer_count == 0
    assert injector.stats.copy_faults == 1
    # The failed transfer burned wire time (fraction of the full duration).
    assert 0.0 <= machine.pcie.busy_time <= machine.pcie.transfer_time(4 * MIB)


def test_copy_faults_outside_window_do_nothing():
    sim = Simulator()
    machine = build_machine(sim)
    plan = FaultPlan().copy_faults(5_000.0, 6_000.0, probability=1.0, bus="pcie")
    injector = FaultInjector(sim, plan, seed=7)
    injector.install_buses([machine.pcie])

    def xfer():
        yield from machine.pcie.transfer(4 * MIB)

    sim.spawn(xfer(), name="xfer")
    sim.run(until=100.0)
    assert machine.pcie.transfer_count == 1
    assert machine.pcie.transfer_failures == 0


def test_copy_faults_filter_by_bus_name():
    sim = Simulator()
    machine = build_machine(sim)
    plan = FaultPlan().copy_faults(0.0, 1_000.0, probability=1.0, bus="memctl")
    injector = FaultInjector(sim, plan, seed=7)
    injector.install_buses([machine.pcie, machine.memctl])
    assert machine.pcie.fault_hook is None
    assert machine.memctl.fault_hook is not None


def test_bus_load_events_fire_on_schedule():
    sim = Simulator()
    machine = build_machine(sim)
    trace = TraceLog()
    plan = FaultPlan().set_bus_load(50.0, "pcie", 0.75)
    FaultInjector(sim, plan, trace=trace).install_buses([machine.pcie])
    sim.run(until=100.0)
    assert machine.pcie.effective_bandwidth == pytest.approx(machine.pcie.bandwidth * 0.25)
    records = trace.of_kind("fault.bus_load")
    assert len(records) == 1 and records[0].time == pytest.approx(50.0)


def test_unknown_bus_raises():
    sim = Simulator()
    machine = build_machine(sim)
    plan = FaultPlan().set_bus_load(0.0, "no-such-bus", 0.5)
    with pytest.raises(ConfigurationError):
        FaultInjector(sim, plan).install_buses([machine.pcie])


# -- device stalls and resets -------------------------------------------------

def test_device_stall_blocks_queued_ops():
    sim = Simulator()
    machine = build_machine(sim)
    plan = FaultPlan().stall_device(0.0, "gpu", duration_ms=40.0)
    injector = FaultInjector(sim, plan, trace=TraceLog())
    injector.install_devices(machine.devices)

    done = {}

    def op():
        yield Timeout(1.0)  # submit after the stall has wedged the engine
        yield from machine.gpu.run_op("present")
        done["at"] = sim.now

    sim.spawn(op(), name="op")
    sim.run()
    assert injector.stats.stalls == 1
    assert done["at"] >= 40.0  # the op waited out the stall


def test_device_reset_clears_thermal_state():
    sim = Simulator()
    machine = build_machine(sim, MIDDLE_END_LAPTOP)  # laptop CPU has thermal
    cpu = machine.cpu
    assert cpu.thermal is not None
    cpu.thermal._heat = cpu.thermal.throttle_at + 1.0
    assert cpu.thermal.throttled
    plan = FaultPlan().reset_device(0.0, "cpu", downtime_ms=10.0)
    injector = FaultInjector(sim, plan)
    injector.install_devices(machine.devices)
    sim.run()
    assert injector.stats.resets == 1
    assert cpu.resets == 1
    assert not cpu.thermal.throttled


def test_unknown_device_raises():
    sim = Simulator()
    machine = build_machine(sim)
    plan = FaultPlan().stall_device(0.0, "tpu", 5.0)
    with pytest.raises(ConfigurationError):
        FaultInjector(sim, plan).install_devices(machine.devices)


# -- transport faults ----------------------------------------------------------

def test_transport_drop_raises_and_counts():
    sim = Simulator()
    transport = VirtioTransport(sim)
    plan = FaultPlan().transport_faults(0.0, 100.0, drop_probability=1.0)
    injector = FaultInjector(sim, plan, trace=TraceLog())
    injector.install_transport(transport)

    outcome = {}

    def kick():
        try:
            yield from transport.kick(2)
        except TransportDropError as err:
            outcome["error"] = err

    sim.spawn(kick(), name="kick")
    sim.run()
    assert "error" in outcome
    assert transport.kicks_dropped == 1
    assert transport.kicks == 0  # successes only
    assert transport.kick_attempts == 1
    assert injector.stats.transport_drops == 1


def test_transport_delay_stretches_dispatch():
    sim = Simulator()
    transport = VirtioTransport(sim, kick_cost=0.02, per_command_cost=0.005)
    plan = FaultPlan().transport_faults(
        0.0, 100.0, delay_probability=1.0, delay_ms=3.0
    )
    FaultInjector(sim, plan).install_transport(transport)

    result = {}

    def kick():
        result["cost"] = yield from transport.kick(1)

    sim.spawn(kick(), name="kick")
    sim.run()
    assert result["cost"] == pytest.approx(0.025 + 3.0)
    assert transport.kicks_delayed == 1
    assert transport.delay_total_ms == pytest.approx(3.0)


def test_kick_reliable_survives_a_drop_window():
    sim = Simulator()
    transport = VirtioTransport(sim)
    # Window closes at 0.5 ms; an unbounded retry loop must get through.
    plan = FaultPlan().transport_faults(0.0, 0.5, drop_probability=1.0)
    FaultInjector(sim, plan).install_transport(transport)

    result = {}

    def kick():
        result["cost"] = yield from transport.kick_reliable(1)

    sim.spawn(kick(), name="kick")
    sim.run()
    assert "cost" in result
    assert transport.kicks == 1
    assert transport.kicks_dropped >= 1


# -- determinism ----------------------------------------------------------------

def _chaos_machine_run(seed):
    """A mixed bus/transport workload under a probabilistic plan."""
    sim = Simulator()
    machine = build_machine(sim)
    trace = TraceLog()
    transport = VirtioTransport(sim)
    plan = (
        FaultPlan()
        .flap_bus("pcie", start_ms=10.0, period_ms=20.0, cycles=3, high_load=0.7)
        .copy_faults(0.0, 200.0, probability=0.4, bus="pcie")
        .transport_faults(0.0, 200.0, drop_probability=0.3)
    )
    injector = FaultInjector(sim, plan, seed=seed, trace=trace)
    injector.install_buses([machine.pcie])
    injector.install_transport(transport)

    def traffic():
        for _ in range(40):
            try:
                yield from machine.pcie.transfer(2 * MIB)
            except TransientCopyError:
                pass
            try:
                yield from transport.kick(1)
            except TransportDropError:
                pass

    sim.spawn(traffic(), name="traffic")
    sim.run()
    return [(r.time, r.kind, tuple(sorted(r.fields.items()))) for r in trace]


def test_same_plan_and_seed_give_identical_traces():
    assert _chaos_machine_run(seed=42) == _chaos_machine_run(seed=42)


def test_different_seeds_diverge():
    assert _chaos_machine_run(seed=1) != _chaos_machine_run(seed=2)


def test_injector_installs_only_once():
    sim = Simulator()
    injector = FaultInjector(sim, FaultPlan())

    class _Planner:
        boundary = None

    class _Emu:  # minimal stand-in for an emulator
        def __init__(self):
            self.machine = build_machine(sim)
            self.planner = _Planner()
            self.transport = VirtioTransport(sim)

    injector.install(_Emu())
    with pytest.raises(ConfigurationError):
        injector.install(_Emu())


# ---------------------------------------------------------------------------
# Worker faults (fleet target)
# ---------------------------------------------------------------------------

def test_worker_fault_builders_chain_and_record():
    plan = (
        FaultPlan()
        .crash_worker(1_000.0, "w0", downtime_ms=500.0)
        .hang_worker(2_000.0, "w1", duration_ms=300.0)
        .slow_heartbeat(3_000.0, "w2", duration_ms=800.0, factor=2.5)
    )
    assert [f.kind for f in plan.worker_faults] == [
        "crash", "hang", "slow-heartbeat"
    ]
    assert plan.worker_faults[2].factor == 2.5
    assert not plan.is_empty()
    # duration counts toward the last-fault clearance time
    assert plan.last_fault_time() == 3_800.0
    plan.validate()


def test_worker_fault_rejects_bad_arguments():
    with pytest.raises(ConfigurationError, match="kind"):
        FaultPlan()._worker_fault(1_000.0, "w0", "explode", 100.0)
    with pytest.raises(ConfigurationError, match="duration"):
        FaultPlan().hang_worker(1_000.0, "w0", duration_ms=0.0)
    with pytest.raises(ConfigurationError, match="factor"):
        FaultPlan().slow_heartbeat(1_000.0, "w0", duration_ms=100.0, factor=0.5)
    with pytest.raises(ConfigurationError, match="time"):
        FaultPlan().crash_worker(-5.0, "w0", downtime_ms=100.0)


def test_overlapping_worker_faults_rejected():
    plan = (
        FaultPlan()
        .crash_worker(1_000.0, "w0", downtime_ms=800.0)
        .hang_worker(1_500.0, "w0", duration_ms=200.0)
    )
    with pytest.raises(ConfigurationError, match="one fault at a time"):
        plan.validate()
    # Same window on a different worker is fine.
    (
        FaultPlan()
        .crash_worker(1_000.0, "w0", downtime_ms=800.0)
        .hang_worker(1_500.0, "w1", duration_ms=200.0)
    ).validate()


def test_worker_faults_invisible_to_emulator_injector():
    """The injector targets emulator internals and skips worker faults."""
    sim = Simulator()
    plan = FaultPlan().crash_worker(1_000.0, "w0", downtime_ms=500.0)
    injector = FaultInjector(sim, plan, seed=0, trace=TraceLog())

    class _Planner:
        boundary = None

    class _Emu:
        def __init__(self):
            self.machine = build_machine(sim)
            self.planner = _Planner()
            self.transport = VirtioTransport(sim)

    injector.install(_Emu())
    sim.run(until=5_000.0)
    assert injector.stats.as_dict().get("worker_faults", 0) == 0
