"""Advanced scenarios: multi-target prefetch, dynamic congestion, RW usage."""

import random

from repro.emulators import make_vsoc
from repro.hw import build_machine
from repro.hw.bus import Bus
from repro.hw.device import DeviceKind, OpCost, PhysicalDevice
from repro.hw.memory import MemoryPool
from repro.sim import Simulator, Timeout
from repro.units import GIB, MIB, UHD_FRAME_BYTES, gb_per_s


def vsoc_with_npu(seed=0):
    """A vSoC instance with a ported NPU (second device-local location)."""
    sim = Simulator()
    machine = build_machine(sim)
    npu = PhysicalDevice(
        sim, "npu", DeviceKind.ISP,
        local_memory=MemoryPool("npu-mem", 4 * GIB),
        link=Bus(sim, "npu-link", gb_per_s(6.0), latency=0.01),
        op_costs={"infer": OpCost(fixed=2.0, bandwidth=gb_per_s(8.0))},
    )
    machine.add_device(npu)
    emulator = make_vsoc(sim, machine, rng=random.Random(seed))
    emulator.register_vdev("npu", npu)
    return sim, machine, emulator


def test_multi_target_prefetch_covers_both_readers():
    """A camera frame read by both the GPU and the NPU: the hyperedge has
    two destinations and the engine launches copies to both locations."""
    sim, machine, emulator = vsoc_with_npu()
    latencies = []

    def pipeline():
        region = emulator.svm_alloc(UHD_FRAME_BYTES)
        for _ in range(8):
            write = yield from emulator.stage(
                "camera", "deliver", UHD_FRAME_BYTES, writes=[region]
            )
            yield write.done
            yield Timeout(12.0)
            render = yield from emulator.stage(
                "gpu", "render", UHD_FRAME_BYTES, reads=[region]
            )
            infer = yield from emulator.stage(
                "npu", "infer", UHD_FRAME_BYTES, reads=[region]
            )
            latencies.append((render.access_latency, infer.access_latency))
            yield render.done
            yield infer.done

    sim.spawn(pipeline(), name="fanout")
    sim.run(until=3_000.0)

    region_edge = [e for e in emulator.twin.virtual.edges_from("camera")]
    assert any(e.destinations == frozenset({"gpu", "npu"}) for e in region_edge)
    # after warm-up both readers find their copies resident
    steady = latencies[3:]
    assert all(r < 1.0 and n < 1.0 for r, n in steady)
    assert emulator.engine.stats.accuracy == 1.0


def test_prefetch_suspends_and_resumes_under_congestion():
    """Mid-run PCIe congestion triggers the 50%-bandwidth rule; prefetch
    resumes once the bus recovers."""
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))
    phases = {"congested": None, "recovered": None}

    def pipeline():
        region = emulator.svm_alloc(UHD_FRAME_BYTES)
        for frame in range(40):
            if frame == 12:
                machine.pcie.set_load(0.6)  # available drops below 50% max
            if frame == 26:
                machine.pcie.set_load(0.0)
                phases["congested"] = emulator.engine.stats.bandwidth_skips
            write = yield from emulator.stage(
                "camera", "deliver", UHD_FRAME_BYTES, writes=[region]
            )
            yield write.done
            yield Timeout(12.0)
            read = yield from emulator.stage(
                "gpu", "render", UHD_FRAME_BYTES, reads=[region]
            )
            yield read.done
        phases["recovered"] = emulator.engine.stats.launched

    sim.spawn(pipeline(), name="congestion")
    sim.run(until=10_000.0)
    stats = emulator.engine.stats
    assert phases["congested"] and phases["congested"] >= 10
    assert stats.bandwidth_skips == phases["congested"]  # no skips after recovery
    assert stats.launched > 20  # prefetching resumed


def test_read_write_usage_invalidates_and_reads():
    """An RW access both requires coherence (read side) and becomes the
    new source of truth (write side)."""
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))
    state = {}

    def pipeline():
        region = emulator.svm_alloc(4 * MIB)
        write = yield from emulator.stage("camera", "deliver", 4 * MIB, writes=[region])
        yield write.done
        # in-place ISP processing: reads and writes the same region
        inplace = yield from emulator.stage(
            "isp", "convert", 4 * MIB, reads=[region], writes=[region]
        )
        yield inplace.done
        state["region"] = emulator.manager.get(region)

    sim.spawn(pipeline(), name="rw")
    sim.run()
    region = state["region"]
    assert region.last_writer_vdev == "isp"
    assert region.valid_locations == {"gpu"}  # ISP runs in-GPU on vSoC
    assert "isp" in region.writer_vdevs and "isp" in region.reader_vdevs


def test_window_narrowing_reduces_coherence_bytes():
    """A small dirty window keeps the coherence copy small (§7: emulators
    segment SVM by the API's dirty-region size)."""
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))

    def pipeline():
        region = emulator.svm_alloc(16 * MIB)
        for _ in range(4):  # warm the flow with small updates
            write = yield from emulator.stage(
                "camera", "deliver", MIB, writes=[region], dirty_bytes=MIB
            )
            yield write.done
            yield Timeout(12.0)
            read = yield from emulator.stage("gpu", "render", MIB, reads=[region])
            yield read.done

    sim.spawn(pipeline(), name="windowed")
    sim.run(until=1_000.0)
    copies = emulator.trace.of_kind("coherence.maintenance")
    assert copies
    assert all(c["bytes"] == MIB for c in copies)
    assert all(c["duration"] < 0.5 for c in copies)  # 1 MiB, not 16
