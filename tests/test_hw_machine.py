"""Unit tests for host machine assembly and presets (repro.hw.machine)."""

import pytest

from repro.errors import HardwareError
from repro.hw import (
    HIGH_END_DESKTOP,
    MIDDLE_END_LAPTOP,
    DeviceKind,
    IspEngine,
    build_machine,
)
from repro.sim import Simulator
from repro.units import UHD_FRAME_BYTES, gb_per_s, to_gb_per_s


def test_presets_have_expected_names():
    assert HIGH_END_DESKTOP.name == "high-end-desktop"
    assert MIDDLE_END_LAPTOP.name == "middle-end-laptop"


def test_high_end_has_no_thermal_model():
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    assert machine.cpu.thermal is None


def test_middle_end_has_thermal_model():
    sim = Simulator()
    machine = build_machine(sim, MIDDLE_END_LAPTOP)
    assert machine.cpu.thermal is not None


def test_devices_registered():
    sim = Simulator()
    machine = build_machine(sim)
    names = set(machine.devices)
    assert {"cpu", "gpu", "camera", "nic"} <= names
    assert machine.device("gpu").kind is DeviceKind.GPU


def test_unknown_device_raises():
    sim = Simulator()
    machine = build_machine(sim)
    with pytest.raises(HardwareError):
        machine.device("quantum-accelerator")


def test_add_custom_device():
    sim = Simulator()
    machine = build_machine(sim)
    isp = IspEngine(sim, link=machine.pcie, convert_bandwidth=gb_per_s(5.0))
    machine.add_device(isp)
    assert machine.device("isp") is isp
    with pytest.raises(HardwareError, match="duplicate"):
        machine.add_device(isp)


def test_vsoc_coherence_calibration_high_end():
    """One host→GPU DMA of a UHD frame ≈ 2.4 ms (paper Table 2: 2.38 ms)."""
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    t = machine.pcie.transfer_time(UHD_FRAME_BYTES)
    assert 2.0 < t < 2.8


def test_gae_coherence_calibration_high_end():
    """Two boundary crossings of a UHD frame ≈ 7.2 ms (paper: 7.05 ms)."""
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    t = 2 * machine.boundary.transfer_time(UHD_FRAME_BYTES)
    assert 6.5 < t < 8.0


def test_vsoc_coherence_calibration_middle_end():
    """Laptop PCIe DMA of a UHD frame ≈ 3.45 ms (paper Table 2)."""
    sim = Simulator()
    machine = build_machine(sim, MIDDLE_END_LAPTOP)
    t = machine.pcie.transfer_time(UHD_FRAME_BYTES)
    assert 3.0 < t < 4.0


def test_gae_coherence_calibration_middle_end():
    """Two laptop boundary crossings ≈ 11.4 ms (paper: 11.27 ms)."""
    sim = Simulator()
    machine = build_machine(sim, MIDDLE_END_LAPTOP)
    t = 2 * machine.boundary.transfer_time(UHD_FRAME_BYTES)
    assert 10.5 < t < 12.5


def test_camera_latency_gap_between_machines():
    """Laptop's integrated camera is ~10 ms faster than the USB camera (§5.3)."""
    gap = HIGH_END_DESKTOP.camera_capture_latency_ms - MIDDLE_END_LAPTOP.camera_capture_latency_ms
    assert gap == pytest.approx(10.0)


def test_bus_bandwidth_roundtrip():
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    assert to_gb_per_s(machine.pcie.bandwidth) == pytest.approx(7.0)


def test_guest_memory_pool_exists():
    sim = Simulator()
    machine = build_machine(sim)
    assert machine.guest_memory.capacity > 0
    assert machine.guest_memory is not machine.host_memory
