"""Unit tests for units and conversions (repro.units)."""

import pytest

from repro import units


def test_time_constants():
    assert units.MS == 1.0
    assert units.SECOND == 1000.0
    assert units.MINUTE == 60_000.0
    assert units.US == pytest.approx(0.001)


def test_paper_buffer_sizes():
    """Fig 4's callouts: 9.9 MiB display buffers, 15.8 MiB UHD frames."""
    assert units.DISPLAY_BUFFER_BYTES / units.MIB == pytest.approx(9.9, abs=0.05)
    assert units.UHD_FRAME_BYTES / units.MIB == pytest.approx(15.8, abs=0.05)
    assert units.UHD_DISPLAY_BUFFER_BYTES == 2 * units.UHD_FRAME_BYTES


def test_vsync_budget():
    """§2.4: only 16.7 ms per frame at 60 FPS."""
    assert units.VSYNC_PERIOD_MS == pytest.approx(16.667, abs=0.01)


def test_bandwidth_roundtrip():
    bw = units.gb_per_s(7.0)
    assert units.to_gb_per_s(bw) == pytest.approx(7.0)


def test_transfer_time():
    # 15.8 MiB at 7 GB/s ≈ 2.37 ms — the Table 2 coherence figure.
    t = units.transfer_time_ms(units.UHD_FRAME_BYTES, units.gb_per_s(7.0))
    assert t == pytest.approx(2.37, abs=0.02)
    with pytest.raises(ValueError):
        units.transfer_time_ms(100, 0.0)


def test_mib_helper():
    assert units.mib(1.5) == int(1.5 * 1024 * 1024)


def test_page_size():
    assert units.PAGE_SIZE == 4096
