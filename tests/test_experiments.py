"""Tests for the experiment harness (repro.experiments)."""

from repro.experiments.appbench import (
    pairwise_comparison,
    run_fig10,
    runnable_counts,
)
from repro.experiments.breakdown import run_fig12, run_fig16
from repro.experiments.measurement import prevalent_sizes, run_measurement
from repro.experiments.microbench import run_svm_microbench
from repro.experiments.popular import pairwise_improvement, run_fig15
from repro.experiments.report import fmt, format_cdf_summary, format_table
from repro.experiments.runner import mean_fps, mean_latency, run_app
from repro.apps import UhdVideoApp
from repro.hw.machine import HIGH_END_DESKTOP
from repro.units import UHD_FRAME_BYTES

QUICK = dict(duration_ms=5_000.0, apps_per_category=1)


def test_runner_returns_stats():
    run = run_app(UhdVideoApp(), "vSoC", duration_ms=5_000.0)
    assert run.result.ran
    assert run.stats is not None
    assert run.stats.access_latencies()


def test_runner_mean_helpers():
    runs = [run_app(UhdVideoApp(), "vSoC", duration_ms=4_000.0)]
    assert mean_fps(runs) > 0
    assert mean_latency(runs) is None  # video has no MTP samples
    assert mean_fps([]) is None


def test_microbench_coherence_ordering():
    results = {
        name: run_svm_microbench(name, HIGH_END_DESKTOP, duration_ms=5_000.0)
        for name in ("vSoC", "GAE", "QEMU-KVM")
    }
    # Table 2's orderings: vSoC < QEMU < GAE on coherence cost;
    # QEMU < vSoC < GAE on access latency.
    assert (results["vSoC"].coherence_cost_ms
            < results["QEMU-KVM"].coherence_cost_ms
            < results["GAE"].coherence_cost_ms)
    assert (results["QEMU-KVM"].access_latency_ms
            < results["vSoC"].access_latency_ms
            < results["GAE"].access_latency_ms)


def test_measurement_finds_uhd_frame_spike():
    result = run_measurement("device-proxy", duration_ms=5_000.0,
                             apps_per_category=1)
    assert UHD_FRAME_BYTES in prevalent_sizes(result, top=3)
    assert result.api_calls_per_second > 50.0  # paper: 261-323 per app


def test_measurement_section23_observations():
    """The §2.3 prose: hardware services dominate SVM use, regions serve
    1-2 accessors (99%), and pipeline regions cycle W/R (96%)."""
    result = run_measurement("device-proxy", duration_ms=5_000.0,
                             apps_per_category=2)
    shares = result.access_share_by_service()
    hardware = (shares.get("media service", 0) + shares.get("SurfaceFlinger", 0)
                + shares.get("camera service", 0))
    assert hardware > 0.6  # paper: 28+23+19 = 70%
    assert result.few_accessor_fraction() > 0.9  # paper: 99%
    assert result.cyclic_fraction is not None
    assert result.cyclic_fraction > 0.75  # paper: 96%


def test_fig10_quick_shape():
    results = run_fig10(HIGH_END_DESKTOP, emulators=("vSoC", "GAE"), **QUICK)
    assert results["vSoC"].mean_fps > results["GAE"].mean_fps
    counts = runnable_counts(results)
    assert counts["vSoC"] == 5  # one app per category, all compatible
    ratio = pairwise_comparison(results, "GAE")
    assert ratio > 1.3


def test_fig12_prefetch_hurts_video_most():
    result = run_fig12(duration_ms=5_000.0, apps_per_category=1)
    video = result.category_fps["UHD Video"]
    camera = result.category_fps["Camera"]
    video_drop = 1.0 - video["no-prefetch"] / video["vSoC"]
    camera_drop = 1.0 - camera["no-prefetch"] / camera["vSoC"]
    assert video_drop > camera_drop  # paper: video -66%, average -30%


def test_fig16_write_invalidate_tail():
    off = run_fig16(duration_ms=6_000.0, prefetch=False)
    on = run_fig16(duration_ms=6_000.0, prefetch=True)
    assert off.maximum > 10.0  # paper: up to 40.54 ms
    assert on.mean < off.mean


def test_fig15_runnable_counts():
    results = run_fig15(duration_ms=4_000.0, emulators=("vSoC", "QEMU-KVM"))
    assert results["vSoC"].runnable == 25
    assert results["QEMU-KVM"].runnable == 17
    assert pairwise_improvement(results, "QEMU-KVM") > 0


# --- report formatting ---------------------------------------------------------

def test_format_table_alignment():
    table = format_table(["A", "Bee"], [["1", "2"], ["333", "4"]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("A")
    assert "333" in lines[3]


def test_fmt_handles_none():
    assert fmt(None) == "--"
    assert fmt(1.2345, 2) == "1.23"


def test_cdf_summary():
    points = [(float(i), (i + 1) / 10) for i in range(10)]
    text = format_cdf_summary(points, "demo")
    assert "n=10" in text and "p50=" in text
    assert format_cdf_summary([], "empty") == "empty: (no samples)"
