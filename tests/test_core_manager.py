"""Unit tests for the SVM manager (repro.core.manager)."""

import pytest

from repro.core.coherence import CopyPlanner, UnifiedWriteInvalidate
from repro.core.manager import SvmManager
from repro.core.region import HOST_LOCATION, AccessUsage
from repro.core.twin import TwinHypergraphs
from repro.errors import SvmError, UnknownRegionError
from repro.hw import build_machine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog
from repro.units import MIB, UHD_FRAME_BYTES

VDEVS = ("codec", "gpu", "display", "cpu")


@pytest.fixture
def manager_setup():
    sim = Simulator()
    machine = build_machine(sim)
    planner = CopyPlanner(sim, machine)
    twin = TwinHypergraphs(VDEVS, [HOST_LOCATION, "gpu", "guest"])
    trace = TraceLog()
    protocol = UnifiedWriteInvalidate(sim, planner, trace)
    pools = {HOST_LOCATION: machine.host_memory, "gpu": machine.gpu.local_memory,
             "guest": machine.guest_memory}
    manager = SvmManager(sim, twin, protocol, pools, trace, page_map_cost=0.22)
    return sim, machine, manager, trace


def test_alloc_assigns_unique_ids(manager_setup):
    _sim, _m, manager, _t = manager_setup
    ids = {manager.alloc(MIB) for _ in range(100)}
    assert len(ids) == 100
    assert manager.live_regions == 100


def test_free_releases_region(manager_setup):
    _sim, _m, manager, _t = manager_setup
    rid = manager.alloc(MIB)
    manager.free(rid)
    assert manager.live_regions == 0
    with pytest.raises(UnknownRegionError):
        manager.get(rid)


def test_free_with_open_access_rejected(manager_setup):
    sim, _m, manager, _t = manager_setup
    rid = manager.alloc(MIB)

    def proc():
        yield from manager.begin_access("gpu", rid, AccessUsage.READ, "gpu")

    sim.spawn(proc())
    sim.run()
    with pytest.raises(SvmError, match="open accesses"):
        manager.free(rid)


def test_begin_access_pays_page_map_cost(manager_setup):
    sim, _m, manager, _t = manager_setup
    rid = manager.alloc(MIB)

    def proc():
        return (yield from manager.begin_access("cpu", rid, AccessUsage.READ, HOST_LOCATION))

    p = sim.spawn(proc())
    sim.run()
    assert p.value == pytest.approx(0.22)


def test_lazy_backing_allocation(manager_setup):
    """§3.2: memory is allocated at first access, per location."""
    sim, machine, manager, _t = manager_setup
    vram_before = machine.gpu.local_memory.in_use
    rid = manager.alloc(UHD_FRAME_BYTES)
    assert machine.gpu.local_memory.in_use == vram_before  # nothing yet

    def proc():
        yield from manager.begin_access("gpu", rid, AccessUsage.READ, "gpu")
        manager.end_access("gpu", rid)

    sim.spawn(proc())
    sim.run()
    assert machine.gpu.local_memory.in_use == vram_before + UHD_FRAME_BYTES


def test_free_releases_backing(manager_setup):
    sim, machine, manager, _t = manager_setup
    rid = manager.alloc(UHD_FRAME_BYTES)

    def proc():
        yield from manager.begin_access("gpu", rid, AccessUsage.READ, "gpu")
        manager.end_access("gpu", rid)

    sim.spawn(proc())
    sim.run()
    used = machine.gpu.local_memory.in_use
    manager.free(rid)
    assert machine.gpu.local_memory.in_use == used - UHD_FRAME_BYTES


def test_write_retire_invalidates_and_timestamps(manager_setup):
    sim, _m, manager, _t = manager_setup
    rid = manager.alloc(MIB)

    def proc():
        yield from manager.host_write_retired(rid, "codec", HOST_LOCATION, MIB)

    sim.spawn(proc())
    sim.run(until=5.0)
    region = manager.get(rid)
    assert region.valid_locations == {HOST_LOCATION}
    assert region.write_complete_time == 0.0
    assert not region.write_in_flight


def test_slack_traced_on_read_after_write(manager_setup):
    sim, _m, manager, trace = manager_setup
    rid = manager.alloc(MIB)

    def proc():
        yield from manager.host_write_retired(rid, "codec", HOST_LOCATION, MIB)
        from repro.sim import Timeout
        yield Timeout(17.2)
        yield from manager.begin_access("gpu", rid, AccessUsage.READ, "gpu")
        manager.end_access("gpu", rid)

    sim.spawn(proc())
    sim.run()
    slacks = trace.values("svm.slack", "slack")
    assert len(slacks) == 1
    assert slacks[0] == pytest.approx(17.2)


def test_chain_reaction_rounds_to_vsync(manager_setup):
    """A >2 ms block on a render-thread access costs the rest of the frame."""
    sim, _m, manager, trace = manager_setup
    rid = manager.alloc(UHD_FRAME_BYTES)

    def proc():
        yield from manager.host_write_retired(rid, "codec", HOST_LOCATION, UHD_FRAME_BYTES)
        # gpu read triggers a synchronous write-invalidate copy (~2.4 ms > 2 ms)
        return (yield from manager.begin_access("gpu", rid, AccessUsage.READ, "gpu"))

    p = sim.spawn(proc())
    sim.run()
    assert manager.chain_reactions == 1
    # blocked + rounded up to the next 16.67 ms boundary
    assert sim.now == pytest.approx(16.67, abs=0.1)


def test_no_chain_reaction_for_worker_vdevs(manager_setup):
    sim, _m, manager, _t = manager_setup
    rid = manager.alloc(UHD_FRAME_BYTES)

    def proc():
        yield from manager.host_write_retired(rid, "codec", HOST_LOCATION, UHD_FRAME_BYTES)
        # cpu is a pipeline worker: absorbs the block without a deadline miss
        yield from manager.begin_access("cpu", rid, AccessUsage.READ, HOST_LOCATION)

    sim.spawn(proc())
    sim.run()
    assert manager.chain_reactions == 0


def test_memory_overhead_scales_with_regions(manager_setup):
    _sim, _m, manager, _t = manager_setup
    base = manager.memory_overhead_bytes()
    for _ in range(100):
        manager.alloc(MIB)
    assert manager.memory_overhead_bytes() > base
    assert manager.memory_overhead_bytes() < 3.1 * MIB


def test_unknown_region_raises(manager_setup):
    _sim, _m, manager, _t = manager_setup
    with pytest.raises(UnknownRegionError):
        manager.get(12345)
    with pytest.raises(UnknownRegionError):
        manager.free(12345)
