"""Unit tests for the prefetch engine (repro.core.prefetch)."""

import pytest

from repro.core.coherence import CopyPlanner
from repro.core.prefetch import PrefetchEngine
from repro.core.region import HOST_LOCATION, SvmRegion
from repro.core.twin import TwinHypergraphs
from repro.hw import build_machine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog
from repro.units import UHD_FRAME_BYTES

VDEV_LOCATIONS = {"codec": HOST_LOCATION, "gpu": "gpu", "display": "gpu", "cpu": HOST_LOCATION}


@pytest.fixture
def engine_setup():
    sim = Simulator()
    machine = build_machine(sim)
    planner = CopyPlanner(sim, machine)
    twin = TwinHypergraphs(VDEV_LOCATIONS.keys(), [HOST_LOCATION, "gpu", "guest"])
    trace = TraceLog()
    engine = PrefetchEngine(sim, twin, planner, VDEV_LOCATIONS.get, trace)
    return sim, machine, twin, engine, trace


def warm_flow(twin, region_id, cycles=4, slack=12.0):
    """Train a codec(host) → gpu flow."""
    for _ in range(cycles):
        twin.on_write(region_id, "codec", HOST_LOCATION, UHD_FRAME_BYTES)
        twin.on_read(region_id, "gpu", "gpu", slack)


def test_cold_start_launches_nothing(engine_setup):
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    assert engine.stats.cold_starts == 1
    assert engine.stats.launched == 0
    assert region.pending_prefetch is None


def test_warm_flow_launches_prefetch(engine_setup):
    sim, _m, twin, engine, trace = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    assert engine.stats.launched == 1
    assert region.prefetch_targets == {"gpu"}
    sim.run()
    assert region.is_valid_at("gpu")
    records = trace.of_kind("coherence.maintenance")
    assert records and records[0]["path"] == "prefetch"


def test_colocated_readers_need_no_prefetch(engine_setup):
    """The in-GPU zero-copy case: display reads what the GPU wrote."""
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    for _ in range(4):
        twin.on_write(1, "gpu", "gpu", UHD_FRAME_BYTES)
        twin.on_read(1, "display", "gpu", 8.0)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("gpu", "gpu", UHD_FRAME_BYTES)
    engine.launch(region, "gpu", "gpu")
    assert engine.stats.launched == 0
    assert region.pending_prefetch is None


def test_accuracy_scoring(engine_setup):
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    engine.on_read(region, "gpu", "gpu")
    assert engine.stats.hits == 1
    assert engine.stats.accuracy == 1.0
    # second read of the same generation is not re-scored
    engine.on_read(region, "gpu", "gpu")
    assert engine.stats.predictions == 1


def test_misprediction_scored_and_counted(engine_setup):
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    engine.on_read(region, "display", "gpu")  # not the predicted reader
    assert engine.stats.misses == 1


def test_three_failures_suspend_flow(engine_setup):
    """§3.3: three consecutive prediction failures suspend prefetching."""
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1, cycles=6)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    for _ in range(3):
        region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
        engine.launch(region, "codec", HOST_LOCATION)
        engine.on_read(region, "cpu", HOST_LOCATION)  # always wrong
        # keep the flow bound to codec->gpu by re-warming one cycle
        twin.on_write(1, "codec", HOST_LOCATION, UHD_FRAME_BYTES)
        twin.on_read(1, "gpu", "gpu", 12.0)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    assert engine.stats.suspended_skips >= 1


def test_suspension_expires_after_cooldown(engine_setup):
    sim, _m, twin, engine, _t = engine_setup
    engine.suspend_cooldown = 2
    twin.register_region(1)
    warm_flow(twin, 1, cycles=6)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    for _ in range(3):
        region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
        engine.launch(region, "codec", HOST_LOCATION)
        engine.on_read(region, "cpu", HOST_LOCATION)
        twin.on_write(1, "codec", HOST_LOCATION, UHD_FRAME_BYTES)
        twin.on_read(1, "gpu", "gpu", 12.0)
    launched_before = engine.stats.launched
    for _ in range(4):  # cooldown (2 skips) then re-enabled
        region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
        engine.launch(region, "codec", HOST_LOCATION)
    assert engine.stats.launched > launched_before


def test_bandwidth_rule_suspends_prefetch(engine_setup):
    """§3.3: skip prefetch below 50% of the maximum observed bandwidth."""
    sim, machine, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)  # observes full bandwidth
    assert engine.stats.launched == 1
    machine.pcie.set_load(0.6)  # available drops to 40% of max observed
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    assert engine.stats.bandwidth_skips == 1
    assert engine.stats.launched == 1


def test_compensation_covers_short_slack(engine_setup):
    """Figure 8: slack 8 ms, prefetch 10 ms → driver owes ~2 ms."""
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1, cycles=6, slack=1.0)  # slack much shorter than copy
    region = SvmRegion(1, UHD_FRAME_BYTES)
    predicted = twin.predict_readers(1, "codec")
    # teach the physical layer the observed prefetch duration
    twin.note_prefetch_duration(predicted.pedge, 2.4)
    compensation = engine.predicted_compensation(region, "codec", HOST_LOCATION)
    assert compensation == pytest.approx(2.4 - 1.0, abs=0.05)


def test_no_compensation_when_slack_sufficient(engine_setup):
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1, cycles=6, slack=12.0)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    predicted = twin.predict_readers(1, "codec")
    twin.note_prefetch_duration(predicted.pedge, 2.4)
    assert engine.predicted_compensation(region, "codec", HOST_LOCATION) == 0.0


def test_zero_shot_new_region_gets_prefetched(engine_setup):
    """A fresh buffer joining a warm pipeline is prefetched immediately."""
    sim, _m, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1, cycles=5)
    twin.register_region(2)
    region2 = SvmRegion(2, UHD_FRAME_BYTES)
    region2.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region2, "codec", HOST_LOCATION)
    assert engine.stats.launched == 1
    assert region2.prefetch_targets == {"gpu"}


def _suspend_flow(twin, engine, region, slack=12.0):
    """Drive three mispredictions so the codec->gpu flow suspends."""
    for _ in range(3):
        region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
        engine.launch(region, "codec", HOST_LOCATION)
        engine.on_read(region, "cpu", HOST_LOCATION)  # always wrong
        twin.on_write(1, "codec", HOST_LOCATION, UHD_FRAME_BYTES)
        twin.on_read(1, "gpu", "gpu", slack)


@pytest.mark.parametrize("cooldown", [1, 3, 5])
def test_cooldown_skips_exactly_n_writes(engine_setup, cooldown):
    """Regression: a cooldown of N must skip exactly N writes — no more."""
    sim, _m, twin, engine, _t = engine_setup
    engine.suspend_cooldown = cooldown
    twin.register_region(1)
    warm_flow(twin, 1, cycles=6)
    region = SvmRegion(1, UHD_FRAME_BYTES)
    _suspend_flow(twin, engine, region)

    skips_before = engine.stats.suspended_skips
    launched_before = engine.stats.launched
    outcomes = []
    for _ in range(cooldown + 2):
        skips = engine.stats.suspended_skips
        region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
        engine.launch(region, "codec", HOST_LOCATION)
        outcomes.append("skip" if engine.stats.suspended_skips > skips else "launch")
    assert outcomes == ["skip"] * cooldown + ["launch", "launch"]
    assert engine.stats.suspended_skips - skips_before == cooldown
    assert engine.stats.launched - launched_before == 2


def test_driver_and_host_agree_on_suspension(engine_setup):
    """The guest-driver check is read-only: it must not consume cooldown
    credits, and must return 0 compensation exactly while the host-side
    launch would skip the same write."""
    sim, _m, twin, engine, _t = engine_setup
    engine.suspend_cooldown = 1
    twin.register_region(1)
    warm_flow(twin, 1, cycles=6, slack=1.0)  # slack short of the copy time
    region = SvmRegion(1, UHD_FRAME_BYTES)
    predicted = twin.predict_readers(1, "codec")
    twin.note_prefetch_duration(predicted.pedge, 2.4)
    # Not suspended: the driver owes real compensation.
    assert engine.predicted_compensation(region, "codec", HOST_LOCATION) > 0.0

    _suspend_flow(twin, engine, region, slack=1.0)

    # Suspended with one credit left. However often the driver asks, the
    # verdict must not change — the read is side-effect free.
    for _ in range(5):
        assert engine.predicted_compensation(region, "codec", HOST_LOCATION) == 0.0
    # The host-side launch for that same write consumes the single credit.
    skips = engine.stats.suspended_skips
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    assert engine.stats.suspended_skips == skips + 1
    # Cooldown spent: both sides flip back together on the next write.
    assert engine.predicted_compensation(region, "codec", HOST_LOCATION) > 0.0
    launched = engine.stats.launched
    region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
    engine.launch(region, "codec", HOST_LOCATION)
    assert engine.stats.launched == launched + 1


def test_bandwidth_rule_under_bus_load_flapping(engine_setup):
    """§3.3 bandwidth rule driven by an injected flapping PCIe link:
    prefetch suspends on every high-load half-period and resumes on every
    low-load half-period."""
    from repro.faults import FaultInjector, FaultPlan

    sim, machine, twin, engine, _t = engine_setup
    twin.register_region(1)
    warm_flow(twin, 1, cycles=6)
    region = SvmRegion(1, UHD_FRAME_BYTES)

    # Load 0.6 leaves 40% of max observed bandwidth — below the 50% bar.
    plan = FaultPlan().flap_bus(
        "pcie", start_ms=10.0, period_ms=20.0, cycles=2, high_load=0.6
    )
    FaultInjector(sim, plan).install_buses([machine.pcie])

    outcomes = []

    def writer():
        from repro.sim import Timeout

        for _ in range(10):  # writes at t = 2, 7, ..., 47 ms
            yield Timeout(2.0 if not outcomes else 5.0)
            skips = engine.stats.bandwidth_skips
            region.note_write("codec", HOST_LOCATION, UHD_FRAME_BYTES)
            engine.launch(region, "codec", HOST_LOCATION)
            outcomes.append(
                "skip" if engine.stats.bandwidth_skips > skips else "launch"
            )

    sim.spawn(writer(), name="writer")
    sim.run(until=60.0)
    # High-load windows are [10, 20) and [30, 40): exactly the writes at
    # t = 12, 17, 32, 37 get skipped; all others launch.
    assert outcomes == [
        "launch", "launch",          # t=2, 7
        "skip", "skip",              # t=12, 17  (flap high)
        "launch", "launch",          # t=22, 27  (flap low)
        "skip", "skip",              # t=32, 37  (flap high)
        "launch", "launch",          # t=42, 47  (flap low)
    ]
    assert engine.stats.bandwidth_skips == 4
