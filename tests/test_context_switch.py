"""Tests for §3.4's GPU context-switch deferral under fences."""

import random

from repro.emulators import make_gae, make_vsoc
from repro.hw import build_machine
from repro.sim import Simulator
from repro.units import MIB


def timeline(factory, **kwargs):
    sim = Simulator()
    machine = build_machine(sim)
    emulator = factory(sim, machine, rng=random.Random(0), **kwargs)
    done_times = []

    def app():
        rid = emulator.svm_alloc(MIB)
        # alternate GPU-backed virtual devices: every op is a context switch
        for _ in range(10):
            render = yield from emulator.stage("gpu", "present", 0)
            yield render.done
            compose = yield from emulator.stage("display", "present", 0)
            yield compose.done
            done_times.append(sim.now)

    sim.spawn(app(), name="app")
    sim.run(until=5_000.0)
    return done_times, emulator


def test_fences_defer_gpu_context_switches():
    """The same alternating workload finishes faster under fences because
    the context switches ride the asynchronous command stream."""
    fences_times, _ = timeline(make_vsoc)
    atomic_times, _ = timeline(make_vsoc, fences=False)
    assert fences_times[-1] < atomic_times[-1]
    # each atomic round pays ~2 switches x 0.45 ms
    per_round_gap = (atomic_times[-1] - fences_times[-1]) / len(atomic_times)
    assert per_round_gap > 0.5


def test_same_vdev_ops_pay_no_switch():
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0), fences=False)

    def app():
        for _ in range(5):
            result = yield from emulator.stage("gpu", "present", 0)
            yield result.done
        return sim.now

    p = sim.spawn(app(), name="app")
    sim.run()
    # 5 presents at 0.05 ms + dispatch overheads; no 0.45 ms switches
    assert p.value < 2.0


def test_non_gpu_devices_never_switch():
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_gae(sim, machine, rng=random.Random(0))

    def app():
        rid = emulator.svm_alloc(MIB)
        write = yield from emulator.stage("camera", "deliver", MIB, writes=[rid])
        read = yield from emulator.stage("cpu", "memcpy", MIB, reads=[rid])
        return sim.now

    p = sim.spawn(app(), name="app")
    sim.run()
    assert emulator._gpu_context == {}  # only GPU-kind devices tracked
