"""Cross-cutting integration scenarios.

These exercise interactions no single-module test reaches: multiple apps
sharing one emulator, fence-table churn under sustained load, flow-control
back-pressure, region lifecycle churn, and full-run determinism.
"""

import random

import pytest

from repro.apps import CameraApp, PopularApp, UhdVideoApp
from repro.emulators import make_vsoc
from repro.guest.vsync import VSyncSource
from repro.hw import build_machine
from repro.sim import Simulator
from repro.units import MIB, UHD_FRAME_BYTES


def fresh(factory=make_vsoc, seed=0):
    sim = Simulator()
    machine = build_machine(sim)
    return sim, factory(sim, machine, rng=random.Random(seed))


def test_two_apps_share_one_emulator():
    """A video app and a camera app running concurrently on one vSoC
    instance: both pipelines coexist, each flow predicted separately."""
    sim, emulator = fresh()
    video = UhdVideoApp(name="bg-video")
    camera = CameraApp(name="fg-camera")
    vsync = VSyncSource(sim)
    video.build(sim, emulator, vsync)
    camera.build(sim, emulator, vsync)
    sim.run(until=6_000.0)
    assert video.fps.fps(6_000.0, warmup_ms=2_000.0) > 40.0
    assert camera.fps.fps(6_000.0, warmup_ms=2_000.0) > 40.0
    # distinct flows learned: codec->gpu and camera->isp(+...) at least
    assert len(emulator.twin.virtual) >= 2
    assert emulator.engine.stats.accuracy >= 0.98


def test_fence_table_sustains_long_runs():
    """A 60 s video run allocates thousands of fences into a 512-slot
    page: recycling must keep up and never leak indices."""
    from repro.apps import UhdVideoApp
    from repro.experiments.runner import run_app

    run = run_app(UhdVideoApp(), "vSoC", duration_ms=60_000.0)
    table = run.emulator.fence_table
    assert table.allocated_total > 2_000
    assert table.recycled_total > table.allocated_total - table.capacity - 1
    assert table.live_fences <= table.capacity


def test_flow_control_throttles_runaway_guest():
    """A guest dispatching as fast as it can must be paced by MIMD flow
    control rather than growing the host queue without bound."""
    sim, emulator = fresh()
    dispatched = []

    def firehose():
        rid = emulator.svm_alloc(MIB)
        for _ in range(400):
            yield from emulator.stage("gpu", "render", 50 * MIB, writes=[rid])
            dispatched.append(sim.now)

    sim.spawn(firehose(), name="firehose")
    sim.run(until=3_000.0)
    gpu = emulator._vdevs["gpu"]
    assert gpu.flow.throttle_events > 0
    assert len(gpu.queue) <= emulator.config.command_queue_depth


def test_region_churn_allocation_free_cycles():
    """Alloc/use/free churn: no leaks in pools or the twin hashtable."""
    sim, emulator = fresh()
    machine_pool = emulator.machine.host_memory
    base_in_use = machine_pool.in_use

    def churn():
        for round_index in range(50):
            rid = emulator.svm_alloc(UHD_FRAME_BYTES)
            write = yield from emulator.stage(
                "camera", "deliver", UHD_FRAME_BYTES, writes=[rid]
            )
            yield write.done
            read = yield from emulator.stage(
                "gpu", "render", UHD_FRAME_BYTES, reads=[rid]
            )
            yield read.done
            emulator.svm_free(rid)

    sim.spawn(churn(), name="churn")
    sim.run(until=30_000.0)
    assert emulator.manager.live_regions == 0
    assert emulator.twin.tracked_regions == 0
    assert machine_pool.in_use == base_in_use


def test_double_free_rejected_through_emulator():
    _sim, emulator = fresh()
    rid = emulator.svm_alloc(MIB)
    emulator.svm_free(rid)
    with pytest.raises(Exception):
        emulator.svm_free(rid)


def test_stage_rejects_freed_region():
    sim, emulator = fresh()
    rid = emulator.svm_alloc(MIB)
    emulator.svm_free(rid)

    def app():
        yield from emulator.stage("gpu", "render", MIB, reads=[rid])

    sim.spawn(app(), name="bad")
    with pytest.raises(Exception):
        sim.run()


def test_full_app_run_is_bitwise_deterministic():
    """Same seeds → identical traces, down to every access latency."""

    def collect():
        sim, emulator = fresh(seed=11)
        app = PopularApp(name="det-check")
        app.install(sim, emulator)
        sim.run(until=4_000.0)
        return (
            tuple(app.fps.present_times),
            tuple(emulator.trace.values("svm.access_latency", "latency")),
        )

    assert collect() == collect()


def test_emulators_do_not_share_state():
    """Two emulator instances on separate sims are fully independent."""
    sim_a, emu_a = fresh(seed=1)
    sim_b, emu_b = fresh(seed=2)
    rid_a = emu_a.svm_alloc(MIB)
    assert emu_a.manager.live_regions == 1
    assert emu_b.manager.live_regions == 0
    with pytest.raises(Exception):
        emu_b.manager.get(rid_a)
