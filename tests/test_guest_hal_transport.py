"""Unit tests for the shared-memory HAL and virtio transport (repro.guest)."""

import random

import pytest

from repro.core.region import AccessUsage
from repro.emulators import make_vsoc
from repro.errors import ConfigurationError
from repro.guest import SharedMemoryHal, VirtioTransport
from repro.hw import build_machine
from repro.sim import Simulator
from repro.units import MIB


@pytest.fixture
def hal_setup():
    sim = Simulator()
    machine = build_machine(sim)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))
    return sim, emulator, SharedMemoryHal(emulator)


# --- SharedMemoryHal (the Figure 3 interface) --------------------------------

def test_alloc_returns_handle(hal_setup):
    _sim, emulator, hal = hal_setup
    handle = hal.alloc(MIB)
    assert emulator.manager.get(handle).size == MIB
    hal.free(handle)
    assert emulator.manager.live_regions == 0


def test_begin_end_access_bracket(hal_setup):
    sim, emulator, hal = hal_setup
    handle = hal.alloc(MIB)

    def proc():
        latency = yield from hal.begin_access(handle, AccessUsage.READ)
        hal.end_access(handle)
        return latency

    p = sim.spawn(proc())
    sim.run()
    assert p.value >= 0.22  # at least the page-map cost
    assert emulator.manager.get(handle).open_accessors == set()


def test_dirty_window_narrows_access(hal_setup):
    sim, emulator, hal = hal_setup
    handle = hal.alloc(4 * MIB)

    def proc():
        yield from hal.begin_access(handle, AccessUsage.WRITE, nbytes=MIB)
        hal.end_access(handle)

    sim.spawn(proc())
    sim.run()
    records = emulator.trace.of_kind("svm.access_latency")
    assert records[-1]["bytes"] == MIB


def test_api_call_counting(hal_setup):
    sim, _emulator, hal = hal_setup
    handle = hal.alloc(MIB)

    def proc():
        yield from hal.write_cycle(handle)
        yield from hal.read_cycle(handle)

    sim.spawn(proc())
    sim.run()
    # alloc + (begin+end) * 2 cycles = 5
    assert hal.api_calls == 5


def test_write_cycle_makes_data_coherent_at_host(hal_setup):
    sim, emulator, hal = hal_setup
    handle = hal.alloc(MIB)

    def proc():
        yield from hal.write_cycle(handle)

    sim.spawn(proc())
    sim.run()
    region = emulator.manager.get(handle)
    assert region.last_writer_vdev == "cpu"


# --- VirtioTransport ----------------------------------------------------------

def test_transport_batching_amortizes_kick():
    sim = Simulator()
    transport = VirtioTransport(sim, kick_cost=0.02, per_command_cost=0.005)
    single = transport.dispatch_cost(1)
    batched = transport.dispatch_cost(8) / 8
    assert batched < single


def test_transport_kick_advances_clock():
    sim = Simulator()
    transport = VirtioTransport(sim, kick_cost=0.02, per_command_cost=0.005)

    def proc():
        return (yield from transport.kick(4))

    p = sim.spawn(proc())
    sim.run()
    assert p.value == pytest.approx(0.02 + 4 * 0.005)
    assert sim.now == pytest.approx(p.value)
    assert transport.kicks == 1
    assert transport.commands == 4


def test_transport_amortized_cost():
    sim = Simulator()
    transport = VirtioTransport(sim, kick_cost=0.1, per_command_cost=0.0)

    def proc():
        yield from transport.kick(10)

    sim.spawn(proc())
    sim.run()
    assert transport.amortized_cost == pytest.approx(0.01)


def test_transport_invalid_params_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        VirtioTransport(sim, kick_cost=-1.0)
    transport = VirtioTransport(sim)
    with pytest.raises(ConfigurationError):
        transport.dispatch_cost(0)
