"""Fleet flight recorder: causal tracing, event log, replay (ISSUE 7)."""

import json

import pytest

from repro.fleet import (
    FleetService,
    FlightRecorder,
    NULL_RECORDER,
    crash_storm_plan,
    generate_trace,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    EventLog,
    read_event_log,
    validate_fleet_events,
)
from repro.obs.export import chrome_trace, connected_flows, validate_chrome_trace
from repro.obs.flightdeck import replay_aggregate, render_flight_dashboard
from repro.obs.span import Tracer


class _FakeClock:
    def __init__(self):
        self.now = 0.0


# ---------------------------------------------------------------------------
# EventLog basics
# ---------------------------------------------------------------------------

def test_event_log_stamps_schema_seq_and_virtual_time():
    clock = _FakeClock()
    log = EventLog(clock)
    log.emit("run.start", seed=0, sessions=1, horizon_ms=10.0, workers=1)
    clock.now = 250.0
    log.emit("control.tick", live=1, window=4.0, level=0)
    assert [r["seq"] for r in log.records] == [0, 1]
    assert [r["t_ms"] for r in log.records] == [0.0, 250.0]
    assert all(r["schema"] == EVENTS_SCHEMA for r in log.records)
    assert len(log.of_kind("control.tick")) == 1
    assert validate_fleet_events(log.records) == []


def test_event_log_streams_line_atomic_jsonl(tmp_path):
    path = str(tmp_path / "events.jsonl")
    clock = _FakeClock()
    log = EventLog(clock, path=path)
    log.emit("run.start", seed=3, sessions=0, horizon_ms=1.0, workers=2)
    # Visible on disk immediately — mid-run consumers can tail the file.
    assert read_event_log(path) == log.records
    log.emit("control.tick", live=0, window=1.0, level=0)
    log.close()
    assert read_event_log(path) == log.records


def test_event_log_reader_drops_torn_final_line_only(tmp_path):
    path = str(tmp_path / "events.jsonl")
    clock = _FakeClock()
    log = EventLog(clock, path=path)
    for i in range(3):
        log.emit("control.tick", live=i, window=1.0, level=0)
    log.close()
    whole = open(path, encoding="utf-8").read()
    # A crash mid-write tears the final line: reader drops it, keeps the rest.
    open(path, "w", encoding="utf-8").write(whole[: len(whole) - 9])
    records = read_event_log(path)
    assert [r["seq"] for r in records] == [0, 1]
    # Corruption anywhere else is an error, not a truncation.
    lines = whole.splitlines()
    lines[0] = lines[0][:-4]
    open(path, "w", encoding="utf-8").write("\n".join(lines) + "\n")
    with pytest.raises(ValueError):
        read_event_log(path)


def test_event_validator_flags_broken_streams():
    clock = _FakeClock()
    log = EventLog(clock)
    log.emit("run.start", seed=0, sessions=0, horizon_ms=1.0, workers=1)
    log.emit("session.offer", session="s0", app="ar", priority=1, load=2.0)
    good = [dict(r) for r in log.records]

    gap = [dict(r) for r in good]
    gap[1]["seq"] = 5
    assert any("contiguous" in p for p in validate_fleet_events(gap))

    missing = [dict(r) for r in good]
    del missing[1]["app"]
    assert any("missing 'app'" in p for p in validate_fleet_events(missing))

    backwards = [dict(r) for r in good]
    backwards[1]["t_ms"] = -1.0
    assert validate_fleet_events(backwards)

    wrong_first = list(reversed([dict(r) for r in good]))
    for i, r in enumerate(wrong_first):
        r["seq"] = i
    assert any("run.start" in p for p in validate_fleet_events(wrong_first))


# ---------------------------------------------------------------------------
# Tracer span-retention ring (satellite)
# ---------------------------------------------------------------------------

def test_tracer_ring_cap_bounds_spans_and_counts_drops():
    clock = _FakeClock()
    tracer = Tracer(clock, max_spans=4)
    for i in range(10):
        clock.now = float(i)
        span = tracer.begin(f"s{i}", "t")
        tracer.end(span)
        tracer.instant(f"i{i}", "t")
    assert len(tracer.spans) == 4
    assert len(tracer.instants) == 4
    assert tracer.dropped_spans == 12  # 6 from each store
    # The ring keeps the newest spans.
    assert [s.name for s in tracer.spans] == ["s6", "s7", "s8", "s9"]


def test_tracer_ring_cap_validated_and_off_by_default():
    clock = _FakeClock()
    with pytest.raises(ValueError):
        Tracer(clock, max_spans=0)
    unbounded = Tracer(clock)
    for i in range(100):
        unbounded.end(unbounded.begin(f"s{i}", "t"))
    assert len(unbounded.spans) == 100
    assert unbounded.dropped_spans == 0


# ---------------------------------------------------------------------------
# Recorded fleet runs
# ---------------------------------------------------------------------------

def _run_fleet(record=False, events_path=None, seed=7):
    trace = generate_trace(seed=seed, horizon_ms=8_000.0, base_rate_per_s=6.0)
    plan = crash_storm_plan(
        [f"w{i:02d}" for i in range(4)], start_ms=2_000.0, crashes=2,
        seed=seed,
    )
    service = FleetService(n_workers=4, worker_capacity=200.0)
    recorder = None
    if record:
        events = EventLog(service.clock, path=events_path)
        recorder = FlightRecorder(service.clock, events=events)
        service.attach_recorder(recorder)
    service.serve(trace, plan=plan)
    if recorder is not None:
        recorder.close()
    return service, recorder


@pytest.fixture(scope="module")
def recorded_run():
    service, recorder = _run_fleet(record=True)
    return service, recorder


def test_recorder_on_off_runs_are_byte_identical(recorded_run):
    service_on, _rec = recorded_run
    service_off, _none = _run_fleet(record=False)
    on = dict(service_on.report())
    off = service_off.report()
    assert "recorder" in on
    on.pop("recorder")
    # Summary, outcomes, aggregate: all byte-identical — the recorder
    # reads the clock but never schedules, so it cannot perturb the run.
    assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)
    assert on["summary"]["timers_fired"] == off["summary"]["timers_fired"]


def test_fleet_trace_is_valid_with_connected_session_flows(recorded_run):
    service, recorder = recorded_run
    doc = recorder.export_trace()
    assert validate_chrome_trace(doc) == []
    # At least one session's full lifecycle rides one flow id.
    flows = connected_flows(recorder.tracer, [
        "session.offer", "session.place", "session.confirm",
        "session.quantum", "session.complete",
    ])
    assert flows
    # Workers and the control plane land in separate track groups.
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "M"}
    assert "process_name" in names


def test_migration_emits_paired_bind_spans(recorded_run):
    service, recorder = recorded_run
    assert service.stats.migrations >= 1
    doc = recorder.export_trace()
    sends = [e for e in doc["traceEvents"]
             if e.get("name") == "migrate.send" and "bind_id" in e]
    recvs = [e for e in doc["traceEvents"]
             if e.get("name") == "migrate.recv" and "bind_id" in e]
    assert len(sends) == service.stats.migrations
    assert {e["bind_id"] for e in sends} == {e["bind_id"] for e in recvs}
    for send in sends:
        (recv,) = [e for e in recvs if e["bind_id"] == send["bind_id"]]
        assert send["flow_out"] is True
        assert recv["flow_in"] is True
        assert send["tid"] != recv["tid"]  # crosses the worker boundary


def test_event_log_of_real_run_is_schema_valid(recorded_run):
    _service, recorder = recorded_run
    records = recorder.events.records
    assert validate_fleet_events(records) == []
    assert records[0]["kind"] == "run.start"
    assert records[-1]["kind"] == "run.end"
    kinds = {r["kind"] for r in records}
    assert {"session.offer", "session.place", "session.confirm",
            "session.complete", "session.migrate", "worker.fault",
            "worker.dead", "worker.drain", "control.tick"} <= kinds


def test_phase_histograms_accumulate(recorded_run):
    service, recorder = recorded_run
    registry = recorder.registry
    waits = registry.find("fleet.admission_wait_ms")
    assert waits is not None and waits.count == service.stats.confirmed
    assert registry.find("fleet.queue_depth").count > 0
    assert registry.find("fleet.placement_load").count > 0
    wire = registry.find("fleet.migration_wire_bytes")
    assert wire.count == service.stats.migrations
    assert wire.min > 0
    assert registry.find("fleet.drain_ms").count == service.recovery.drains


def test_recorder_summary_rides_the_report(recorded_run):
    service, recorder = recorded_run
    section = service.report()["recorder"]
    assert section["events"] == len(recorder.events)
    assert section["dropped_spans"] == 0
    assert section["flows"] == len(recorder.tracer.flows())
    metric_names = {m["name"] for m in section["metrics"]["metrics"]}
    assert "fleet.admission_wait_ms" in metric_names


# ---------------------------------------------------------------------------
# Replay (flightdeck) and the live dashboard
# ---------------------------------------------------------------------------

def test_replay_rebuilds_the_exact_live_aggregate(recorded_run):
    service, recorder = recorded_run
    live = service.report()["aggregate"]
    replayed = replay_aggregate(recorder.events.records)
    assert json.dumps(replayed, sort_keys=True) == \
        json.dumps(live, sort_keys=True)


def test_replay_from_disk_matches_final_live_render(tmp_path):
    events_path = str(tmp_path / "events.jsonl")
    service, recorder = _run_fleet(record=True, events_path=events_path)
    final_html = render_flight_dashboard(recorder.events.records)
    replayed_html = render_flight_dashboard(read_event_log(events_path))
    assert replayed_html == final_html
    # Self-contained artifact, like the PR 5 dashboard.
    for marker in ("http://", "https://", "src=", "href="):
        assert marker not in final_html


def test_live_renders_mark_refresh_and_final_does_not(recorded_run):
    _service, recorder = recorded_run
    records = recorder.events.records
    partial = [r for r in records if r["kind"] != "run.end"]
    live = render_flight_dashboard(partial, refresh_s=2.0)
    final = render_flight_dashboard(records)
    assert 'http-equiv="refresh"' in live
    assert 'http-equiv="refresh"' not in final
    assert "(live)" in live and "(final)" in final


def test_cadence_callback_fires_on_virtual_time():
    trace = generate_trace(seed=1, horizon_ms=4_000.0, base_rate_per_s=4.0)
    service = FleetService(n_workers=2, worker_capacity=200.0)
    recorder = FlightRecorder(service.clock)
    ticks = []
    recorder.on_cadence = lambda rec: ticks.append(rec._clock.now)
    service.attach_recorder(recorder)
    service.serve(trace)
    assert len(ticks) >= 3
    assert ticks == sorted(ticks)
    # Cadence paces renders: successive fires are >= cadence_ms apart.
    gaps = [b - a for a, b in zip(ticks, ticks[1:])]
    assert min(gaps) >= recorder.cadence_ms


def test_null_recorder_is_inert():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.confirmed("sX")  # all hooks are no-ops
    NULL_RECORDER.control_tick(0, 1.0, 0)
    assert len(NULL_RECORDER.events) == 0
    assert len(NULL_RECORDER.tracer.spans) == 0


# ---------------------------------------------------------------------------
# Reproducer line (satellite)
# ---------------------------------------------------------------------------

def test_reproducer_includes_every_override():
    from repro.experiments.fleetserve import _reproducer

    line = _reproducer(3, True, crashes=2, workers=5, live_dir="out")
    assert line.startswith("REPRODUCE: python -m repro.experiments fleetserve")
    for flag in ("--seed 3", "--quick", "--workers 5", "--crashes 2",
                 "--live out"):
        assert flag in line
    assert "--workers" not in _reproducer(0, False)


def test_cmd_fleetserve_prints_reproducer_on_crash(monkeypatch, capsys):
    import repro.experiments.fleetserve as mod

    def boom(**_kwargs):
        raise RuntimeError("storm took out the control plane")

    monkeypatch.setattr(mod, "run_fleetserve", boom)
    with pytest.raises(RuntimeError):
        mod.cmd_fleetserve(quick=True, seed=9, crashes=4)
    out = capsys.readouterr().out
    assert "REPRODUCE: python -m repro.experiments fleetserve --seed 9 " \
           "--quick --crashes 4" in out
