"""The validation suite itself must pass end to end (artifact check)."""

from repro.experiments.validate import validate


def test_all_claims_validate():
    claims = validate(duration_ms=5_000.0, apps_per_category=1, verbose=False)
    failures = [c for c in claims if not c.passed]
    assert not failures, "\n".join(f"{c.name}: {c.detail}" for c in failures)
    assert len(claims) >= 14
