"""App abstraction: install a workload onto an emulator, collect results.

An :class:`App` owns the guest-side processes of one workload (services,
buffer queues, frame sources). ``install`` spawns them; ``collect`` turns
the collectors into an :class:`AppResult` after the simulator has run.

Capability errors at install time (no camera, no encoder) mark the app as
*not runnable* on that emulator — the mechanism behind the §5.3 counts
("vSoC, GAE, ... can respectively run 48, 47, 42, 43, 44, and 20 of
them").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.emulators.base import Emulator
from repro.errors import CapabilityError
from repro.guest.vsync import VSyncSource
from repro.metrics.collectors import FpsCollector, LatencyCollector
from repro.sim import Simulator
from repro.units import VSYNC_PERIOD_MS


@dataclass
class AppResult:
    """Outcome of one (app, emulator, machine) run."""

    app: str
    category: str
    emulator: str
    duration_ms: float
    ran: bool
    fps: float = 0.0
    presented: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)
    latency_avg: Optional[float] = None
    latency_p95: Optional[float] = None
    fail_reason: Optional[str] = None


class App:
    """Base class: common collectors and the install/collect contract."""

    #: Category label used by the experiment harness (Table 1 types).
    category = "generic"
    #: Whether this workload measures motion-to-photon latency (§5.3:
    #: "motion-to-photon latency is only measured on AR, camera, and
    #: livestream apps").
    measures_latency = False

    def __init__(self, name: str, warmup_ms: float = 2_000.0):
        self.name = name
        self.warmup_ms = warmup_ms
        self.fps = FpsCollector()
        self.latency = LatencyCollector() if self.measures_latency else None
        self._installed = False

    # -- to be provided by subclasses ------------------------------------------
    def check_capabilities(self, emulator: Emulator) -> None:
        """Raise :class:`CapabilityError` when the emulator cannot run us."""

    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        """Create services/buffers and spawn this app's processes."""
        raise NotImplementedError

    #: Small CPU-only IPC regions each app allocates (§2.3: ~1% of
    #: accesses happen exclusively between app processes; ~half of all
    #: *allocations* are small — the sub-1-MiB mass of Figure 4).
    ipc_regions = 7

    #: Display pacing. Experiments may override this per app; the
    #: fast-forward controller uses it as the anchor period, so an app
    #: whose period is off the dyadic grid (the real 1000/60 default)
    #: simply never engages the skip — correct, just not accelerated.
    vsync_period = VSYNC_PERIOD_MS

    # -- harness API --------------------------------------------------------
    def install(self, sim: Simulator, emulator: Emulator) -> bool:
        """Spawn the workload; returns False when the emulator can't run it."""
        try:
            self.check_capabilities(emulator)
        except CapabilityError as err:
            self._fail_reason = str(err)
            return False
        vsync = VSyncSource(sim, period=self.vsync_period)
        self.vsync = vsync
        self.build(sim, emulator, vsync)
        if self.ipc_regions:
            self._spawn_ipc_traffic(sim, emulator)
        self._installed = True
        return True

    def ff_register(self, controller) -> None:
        """Register collector state with a fast-forward controller.

        Subclasses extend this (calling ``super().ff_register``) with
        their services and buffer queues. The base class covers the
        pieces every app owns: the vsync tick counter and the frame /
        latency collectors. A collector with a metrics registry attached
        vetoes fast-forward — registry instruments are not journaled.
        """
        if getattr(self, "vsync", None) is not None:
            self.vsync.ff_register(controller)
        if self.fps._registry is not None:
            controller.sim.veto_fast_forward("metrics-registry-attached")
            return
        controller.track_counter(self.fps, "presented")
        controller.track_list(self.fps.present_times)
        controller.track_counts(self.fps.dropped)
        if self.latency is not None:
            controller.track_list(self.latency.samples)

    def _spawn_ipc_traffic(self, sim: Simulator, emulator: Emulator) -> None:
        """Background CPU-only shared-memory use (binder parcels, ashmem
        metadata, glyph caches): small regions, occasional R/W cycles."""
        import random

        from repro.guest.hal import SharedMemoryHal
        from repro.units import KIB

        rng = random.Random(f"{self.name}:ipc")
        hal = SharedMemoryHal(emulator)
        handles = [
            hal.alloc(rng.choice((16, 64, 128, 256, 512)) * KIB)
            for _ in range(self.ipc_regions)
        ]

        def churn():
            from repro.sim import Timeout

            while True:
                yield Timeout(rng.uniform(30.0, 90.0))
                handle = rng.choice(handles)
                yield from hal.write_cycle(handle)
                yield from hal.read_cycle(handle)

        sim.spawn(churn(), name=f"{self.name}:ipc")

    def collect(self, emulator_name: str, duration_ms: float) -> AppResult:
        """Summarize the run (or the install failure)."""
        if not self._installed:
            return AppResult(
                app=self.name,
                category=self.category,
                emulator=emulator_name,
                duration_ms=duration_ms,
                ran=False,
                fail_reason=getattr(self, "_fail_reason", "install failed"),
            )
        latency_avg = latency_p95 = None
        if self.latency is not None and self.latency.samples:
            # Exclude warmup samples, matching the FPS accounting.
            steady = [
                s
                for s, t in zip(self.latency.samples, self.fps.present_times)
                if t >= self.warmup_ms
            ]
            source = steady if steady else self.latency.samples
            latency_avg = sum(source) / len(source)
            latency_p95 = sorted(source)[int(0.95 * (len(source) - 1))]
        return AppResult(
            app=self.name,
            category=self.category,
            emulator=emulator_name,
            duration_ms=duration_ms,
            ran=True,
            fps=self.fps.fps(duration_ms, warmup_ms=self.warmup_ms),
            presented=self.fps.presented,
            dropped=dict(self.fps.dropped),
            latency_avg=latency_avg,
            latency_p95=latency_p95,
        )
