"""Camera apps (Table 1, row 3): camera → ISP → GPU → display.

The camera service captures UHD frames at the sensor rate, the ISP
converts colorspace (in-GPU on emulators with the YUVConverter path, CPU
libswscale otherwise), and SurfaceFlinger renders the preview. Motion-to-
photon latency anchors at the sensor timestamp, so the physical capture
latency (USB ≫ integrated) shows up exactly as in Figures 13/14.
"""

from __future__ import annotations

from repro.apps.base import App
from repro.emulators.base import Emulator
from repro.errors import CapabilityError
from repro.guest.buffers import BufferQueue
from repro.guest.services import CameraService, SurfaceFlinger
from repro.guest.vsync import VSyncSource
from repro.sim import Simulator
from repro.units import UHD_DISPLAY_BUFFER_BYTES, UHD_FRAME_BYTES


class CameraApp(App):
    """A camera preview/recording app."""

    category = "Camera"
    measures_latency = True

    def __init__(
        self,
        name: str = "camera-app",
        raw_buffers: int = 3,
        out_buffers: int = 3,
        frame_bytes: int = UHD_FRAME_BYTES,
        compose_dirty_fraction: float = 0.5,
        warmup_ms: float = 2_000.0,
    ):
        super().__init__(name, warmup_ms=warmup_ms)
        self.raw_buffers = raw_buffers
        self.out_buffers = out_buffers
        self.frame_bytes = frame_bytes
        self.compose_dirty_fraction = compose_dirty_fraction

    def check_capabilities(self, emulator: Emulator) -> None:
        if not emulator.has_vdev("camera"):
            raise CapabilityError(f"{emulator.name} has no camera device")

    def extra_cpu_op(self):
        return None, 0

    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        raw = BufferQueue(sim, emulator, self.raw_buffers, self.frame_bytes, name=f"{self.name}.raw")
        out = BufferQueue(sim, emulator, self.out_buffers, self.frame_bytes, name=f"{self.name}.out")
        flinger = SurfaceFlinger(
            sim,
            emulator,
            vsync,
            self.fps,
            latency=self.latency,
            display_bytes=UHD_DISPLAY_BUFFER_BYTES,
            compose_dirty_fraction=self.compose_dirty_fraction,
            honor_deadlines=False,  # previews show the freshest frame, late or not
        )
        cpu_op, cpu_bytes = self.extra_cpu_op()
        service = CameraService(
            sim,
            emulator,
            raw,
            out,
            flinger,
            self.fps,
            frame_bytes=self.frame_bytes,
            extra_cpu_op=cpu_op,
            extra_cpu_bytes=cpu_bytes,
        )
        sim.spawn(flinger.run(), name=f"{self.name}:sf")
        sim.spawn(service.run_sensor(), name=f"{self.name}:sensor")
        sim.spawn(service.run_pipeline(), name=f"{self.name}:pipeline")
