"""Top-popular apps (§5.5) and heavy-3D gaming apps (§5.3's Trinity set).

A :class:`PopularApp` is a conventional UI/game app: per frame it performs
a number of small CPU-side shared-memory operations (Skia and friends —
"SVM is also commonly used in other system components of the Android
framework"), renders its window, and submits it to SurfaceFlinger. No
media pipeline — which is why emulator differences are much smaller here
(12-49%, Figure 15) than on the emerging apps.

A :class:`Heavy3dApp` is Trinity's home turf: a GPU-bound 3D game that
barely touches shared memory — §5.3: vSoC improves those by only ~1%.
"""

from __future__ import annotations

from repro.apps.base import App
from repro.emulators.base import Emulator
from repro.guest.buffers import BufferQueue
from repro.guest.hal import SharedMemoryHal
from repro.guest.services import FrameMeta, SurfaceFlinger
from repro.guest.vsync import VSyncSource
from repro.sim import Simulator
from repro.units import MIB, UHD_DISPLAY_BUFFER_BYTES


class PopularApp(App):
    """A conventional popular app: UI rendering + Skia-style SVM traffic."""

    category = "Popular"
    measures_latency = False

    def __init__(
        self,
        name: str = "popular-app",
        render_bytes: int = 8 * MIB,
        svm_calls_per_frame: int = 6,
        svm_call_bytes: int = MIB,
        window_bytes: int = UHD_DISPLAY_BUFFER_BYTES // 2,
        compose_dirty_fraction: float = 0.35,
        atlas_bytes: int = 0,
        warmup_ms: float = 2_000.0,
    ):
        super().__init__(name, warmup_ms=warmup_ms)
        self.render_bytes = render_bytes
        self.svm_calls_per_frame = svm_calls_per_frame
        self.svm_call_bytes = svm_call_bytes
        self.window_bytes = window_bytes
        self.compose_dirty_fraction = compose_dirty_fraction
        # Skia texture/glyph atlas: CPU-written, GPU-read every frame —
        # the cross-device SVM flow "commonly used in other system
        # components of the Android framework" (§5.5). 0 disables.
        self.atlas_bytes = atlas_bytes
        self._stopped = False

    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        windows = BufferQueue(sim, emulator, 3, self.window_bytes, name=f"{self.name}.win")
        flinger = SurfaceFlinger(
            sim,
            emulator,
            vsync,
            self.fps,
            display_bytes=UHD_DISPLAY_BUFFER_BYTES,
            compose_dirty_fraction=self.compose_dirty_fraction,
            honor_deadlines=False,
        )
        sim.spawn(flinger.run(), name=f"{self.name}:sf")
        sim.spawn(self._app_loop(sim, emulator, vsync, windows, flinger), name=f"{self.name}:ui")

    def _app_loop(self, sim, emulator, vsync, windows: BufferQueue, flinger):
        """Process: the app's UI thread, paced by the choreographer.

        Per-frame render work varies ±25% (scene complexity), and the loop
        implements GL double-buffering semantics: it blocks on the
        previous frame's render before issuing the next (swap-buffers
        back-pressure), so an oversubscribed GPU paces the app instead of
        piling up unbounded command backlog.
        """
        import random

        rng = random.Random(f"{self.name}:frames")
        hal = SharedMemoryHal(emulator)
        scratch = [hal.alloc(self.svm_call_bytes) for _ in range(2)]
        atlas = hal.alloc(self.atlas_bytes) if self.atlas_bytes else None
        sequence = 0
        previous_render = None
        while not self._stopped:
            yield vsync.wait_next()
            if previous_render is not None and not previous_render.done.fired:
                yield previous_render.done
            window = windows.try_dequeue_free()
            if window is None:
                self.fps.note_dropped("ui-overrun")
                continue
            # Skia-style CPU shared-memory churn (IPC, glyph caches, ...).
            for call in range(self.svm_calls_per_frame):
                handle = scratch[call % len(scratch)]
                if call % 2 == 0:
                    yield from hal.write_cycle(handle, self.svm_call_bytes)
                else:
                    yield from hal.read_cycle(handle, self.svm_call_bytes)
            reads = []
            if atlas is not None:
                # CPU rasterizes new atlas content; the GPU samples it.
                yield from hal.write_cycle(atlas, self.atlas_bytes)
                reads.append(atlas)
            frame_bytes = int(self.render_bytes * rng.uniform(0.75, 1.25))
            previous_render = yield from emulator.stage(
                "gpu", "render", frame_bytes, reads=reads, writes=[window.region_id]
            )
            flinger.submit(window, windows, FrameMeta(birth=sim.now, sequence=sequence))
            sequence += 1


class Heavy3dApp(PopularApp):
    """A GPU-bound 3D game: large render, negligible shared-memory use.

    Games render straight into their EGL swapchain — no BufferQueue SVM
    round trip — which is §5.3's explanation for why vSoC improves
    Trinity's heavy-3D suite by only ~1%: "those apps rarely involve other
    SoC devices and shared memory". The frame loop here is therefore pure
    GPU work: render, present, repeat, with double-buffering back-pressure.
    """

    category = "Heavy3D"

    def __init__(self, name: str = "heavy-3d", render_bytes: int = 420 * MIB, **kwargs):
        kwargs.setdefault("svm_calls_per_frame", 1)
        kwargs.setdefault("svm_call_bytes", 64 * 1024)
        kwargs.setdefault("compose_dirty_fraction", 1.0)
        super().__init__(name, render_bytes=render_bytes, **kwargs)

    def build(self, sim, emulator, vsync) -> None:
        sim.spawn(self._game_loop(sim, emulator, vsync), name=f"{self.name}:game")

    def _game_loop(self, sim, emulator, vsync):
        import random

        rng = random.Random(f"{self.name}:frames")
        hal = SharedMemoryHal(emulator)
        scratch = hal.alloc(self.svm_call_bytes)
        previous = None
        frame = 0
        while not self._stopped:
            yield vsync.wait_next()
            if previous is not None and not previous.done.fired:
                yield previous.done
            if frame % 30 == 0:  # occasional small IPC traffic
                yield from hal.write_cycle(scratch, self.svm_call_bytes)
            frame_bytes = int(self.render_bytes * rng.uniform(0.75, 1.25))
            yield from emulator.stage("gpu", "render", frame_bytes)
            previous = yield from emulator.stage("display", "present", 0)

            def note(_value, _exc, t=sim):
                self.fps.note_presented(t.now)

            previous.done.add_callback(note)
            frame += 1
