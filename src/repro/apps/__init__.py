"""Workloads: the five emerging-app categories of Table 1 plus popular apps."""

from repro.apps.ar import ArApp
from repro.apps.base import App, AppResult
from repro.apps.camera import CameraApp
from repro.apps.catalog import (
    EMERGING_CATEGORIES,
    emerging_apps,
    popular_apps,
    heavy_3d_apps,
    can_run,
)
from repro.apps.livestream import LivestreamApp
from repro.apps.popular import Heavy3dApp, PopularApp
from repro.apps.video import ShortFormVideoApp, UhdVideoApp, Video360App

__all__ = [
    "App",
    "AppResult",
    "UhdVideoApp",
    "Video360App",
    "ShortFormVideoApp",
    "CameraApp",
    "ArApp",
    "LivestreamApp",
    "PopularApp",
    "Heavy3dApp",
    "EMERGING_CATEGORIES",
    "emerging_apps",
    "popular_apps",
    "heavy_3d_apps",
    "can_run",
]
