"""AR apps (Table 1, row 4): camera → ISP → CPU tracking → GPU → display.

Same front-end as the camera apps plus per-frame pose tracking on the CPU
(reading the converted frame — another cross-device SVM consumer, which is
why AR flows are the natural multi-reader hyperedge example of §3.2) and a
heavier render stage that draws virtual content over the camera feed.
"""

from __future__ import annotations

from repro.apps.camera import CameraApp
from repro.emulators.base import Emulator
from repro.guest.buffers import BufferQueue
from repro.guest.services import CameraService, SurfaceFlinger
from repro.guest.vsync import VSyncSource
from repro.sim import Simulator
from repro.units import UHD_DISPLAY_BUFFER_BYTES


class ArApp(CameraApp):
    """An augmented-reality app (runs without ARCore, per §2.3's selection)."""

    category = "AR"
    measures_latency = True

    def __init__(self, name: str = "ar-app", render_overdraw: float = 1.0, **kwargs):
        kwargs.setdefault("compose_dirty_fraction", 1.0)  # full-frame AR redraw
        super().__init__(name, **kwargs)
        self.render_overdraw = render_overdraw

    def extra_cpu_op(self):
        # Pose tracking reads the converted camera frame on the CPU.
        return "track", self.frame_bytes

    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        raw = BufferQueue(sim, emulator, self.raw_buffers, self.frame_bytes, name=f"{self.name}.raw")
        out = BufferQueue(sim, emulator, self.out_buffers, self.frame_bytes, name=f"{self.name}.out")
        flinger = SurfaceFlinger(
            sim,
            emulator,
            vsync,
            self.fps,
            latency=self.latency,
            display_bytes=UHD_DISPLAY_BUFFER_BYTES,
            compose_dirty_fraction=self.compose_dirty_fraction,
            render_extra_bytes=int(self.render_overdraw * UHD_DISPLAY_BUFFER_BYTES),
            honor_deadlines=False,
        )
        cpu_op, cpu_bytes = self.extra_cpu_op()
        service = CameraService(
            sim,
            emulator,
            raw,
            out,
            flinger,
            self.fps,
            frame_bytes=self.frame_bytes,
            extra_cpu_op=cpu_op,
            extra_cpu_bytes=cpu_bytes,
        )
        sim.spawn(flinger.run(), name=f"{self.name}:sf")
        sim.spawn(service.run_sensor(), name=f"{self.name}:sensor")
        sim.spawn(service.run_pipeline(), name=f"{self.name}:pipeline")
