"""The workload catalog: Table 1's 50 emerging apps + the top-25 popular apps.

Parameters are jittered deterministically per app (seeded by the app name)
so the ten apps of a category behave like ten different real apps rather
than ten clones.

Runnability
-----------
§5.3 reports exactly how many apps each emulator can run (emerging:
48/47/42/43/44/20 of 50; popular: 25/21/17/25/24/24 of 25). Structural
capability gaps (Trinity's missing camera and encoder) are enforced by the
emulators themselves; the remaining failures are app-specific crashes/ANRs
the paper observed, reproduced here as an explicit compatibility table.
QEMU-KVM's popular-app failures concentrate on the heavy games — the
reason its Figure 15 bar (over the apps it *can* run) looks better than
GAE's.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence, Tuple

from repro.apps.ar import ArApp
from repro.apps.base import App
from repro.apps.camera import CameraApp
from repro.apps.livestream import LivestreamApp
from repro.apps.popular import Heavy3dApp, PopularApp
from repro.apps.video import UhdVideoApp, Video360App
from repro.units import MIB

#: (dotted factory path, ctor kwargs) — the declarative form of one app.
#: The experiment engine ships these across process boundaries and hashes
#: them into cache keys, so they must stay plain picklable data.
AppParams = Tuple[str, Dict[str, Any]]

_FACTORY_PATHS = {
    UhdVideoApp: "repro.apps.video:UhdVideoApp",
    Video360App: "repro.apps.video:Video360App",
    CameraApp: "repro.apps.camera:CameraApp",
    ArApp: "repro.apps.ar:ArApp",
    LivestreamApp: "repro.apps.livestream:LivestreamApp",
    PopularApp: "repro.apps.popular:PopularApp",
    Heavy3dApp: "repro.apps.popular:Heavy3dApp",
}


def app_factory_path(cls: type) -> str:
    """The dotted ``"pkg.mod:Name"`` path of a catalog app class."""
    try:
        return _FACTORY_PATHS[cls]
    except KeyError:
        return f"{cls.__module__}:{cls.__qualname__}"


def resolve_app_factory(path: str):
    """``"pkg.mod:Name"`` → the callable (used by the experiment engine)."""
    module_name, _, attr = path.partition(":")
    module = __import__(module_name, fromlist=[attr])
    return getattr(module, attr)


def build_app(params: AppParams) -> App:
    """Instantiate one app from its declarative (factory, kwargs) form."""
    path, kwargs = params
    return resolve_app_factory(path)(**kwargs)

#: Table 1 categories, in the paper's row order.
EMERGING_CATEGORIES = ("UHD Video", "360 Video", "Camera", "AR", "Livestream")

#: Apps each emulator cannot run (crash / ANR within the 5-minute test).
#: Structural gaps (Trinity: all Camera/AR/Livestream apps) are *not*
#: listed — the capability system handles those.
EMERGING_INCOMPATIBLE: Dict[str, Sequence[str]] = {
    "vSoC": ("ar-07", "ar-09"),
    "GAE": ("ar-07", "ar-09", "live-03"),
    "QEMU-KVM": (
        "ar-05", "ar-07", "ar-09", "cam-06", "live-02", "live-03", "360-08", "uhd-09",
    ),
    "LDPlayer": ("ar-07", "ar-09", "cam-04", "live-03", "live-08", "360-05", "uhd-02"),
    "Bluestacks": ("ar-07", "ar-09", "live-03", "cam-02", "360-05", "uhd-06"),
    "Trinity": (),
}

POPULAR_INCOMPATIBLE: Dict[str, Sequence[str]] = {
    "vSoC": (),
    # GAE's four popular-app failures are all light apps, which skews the
    # set it *can* run toward the heavy end — one reason its Figure 15 bar
    # trails even QEMU-KVM's (computed over QEMU's lighter runnable set).
    "GAE": ("pop-02", "pop-04", "pop-06", "pop-08"),
    "QEMU-KVM": (
        # all six heavy games + two medium apps
        "pop-20", "pop-21", "pop-22", "pop-23", "pop-24", "pop-25", "pop-12", "pop-15",
    ),
    "LDPlayer": (),
    "Bluestacks": ("pop-17",),
    "Trinity": ("pop-09",),
}


def can_run(app_name: str, emulator_name: str) -> bool:
    """Compatibility-table check (capability gaps are checked at install)."""
    table = EMERGING_INCOMPATIBLE if not app_name.startswith("pop-") else POPULAR_INCOMPATIBLE
    return app_name not in table.get(emulator_name, ())


def _rng(name: str, seed: int) -> random.Random:
    return random.Random(f"{name}:{seed}")


def emerging_app_params(seed: int = 0, per_category: int = 10) -> List[AppParams]:
    """Declarative parameters for the 50 emerging apps of Table 1.

    The rng draw order per app matches the historical inline construction,
    so the jittered parameters (and therefore every published number) are
    unchanged.
    """
    params: List[AppParams] = []
    for i in range(per_category):
        r = _rng(f"uhd-{i}", seed)
        params.append((_FACTORY_PATHS[UhdVideoApp], dict(
            name=f"uhd-{i + 1:02d}",
            buffers=r.choice((3, 4, 4, 5)),
            compose_dirty_fraction=r.uniform(0.45, 0.6),
            deadline_vsyncs=r.uniform(2.5, 3.5),
        )))
    for i in range(per_category):
        r = _rng(f"360-{i}", seed)
        params.append((_FACTORY_PATHS[Video360App], dict(
            name=f"360-{i + 1:02d}",
            buffers=r.choice((3, 4, 4, 5)),
            deadline_vsyncs=r.uniform(3.0, 4.0),
        )))
    for i in range(per_category):
        r = _rng(f"cam-{i}", seed)
        params.append((_FACTORY_PATHS[CameraApp], dict(
            name=f"cam-{i + 1:02d}",
            raw_buffers=r.choice((3, 3, 4)),
            out_buffers=r.choice((3, 3, 4)),
            # Full-screen viewfinder: nearly the whole frame is damage.
            compose_dirty_fraction=r.uniform(0.85, 1.0),
        )))
    for i in range(per_category):
        r = _rng(f"ar-{i}", seed)
        params.append((_FACTORY_PATHS[ArApp], dict(
            name=f"ar-{i + 1:02d}",
            render_overdraw=r.uniform(0.8, 1.4),
        )))
    for i in range(per_category):
        r = _rng(f"live-{i}", seed)
        params.append((_FACTORY_PATHS[LivestreamApp], dict(
            name=f"live-{i + 1:02d}",
            buffers=r.choice((3, 4, 4, 5)),
            network_latency_ms=r.uniform(0.8, 2.0),
        )))
    return params


def emerging_apps(seed: int = 0, per_category: int = 10) -> List[App]:
    """Instantiate the 50 emerging apps of Table 1 (fresh objects each call)."""
    return [build_app(p) for p in emerging_app_params(seed, per_category)]


#: (tier, count): the top-25 popular mix — mostly light/medium UI apps with
#: a tail of heavy games (the apps QEMU-KVM cannot run).
_POPULAR_TIERS = (
    ("light", 10),
    ("medium", 9),
    ("heavy", 6),
)


def popular_app_params(seed: int = 0) -> List[AppParams]:
    """Declarative parameters for the top-25 popular apps of §5.5."""
    params: List[AppParams] = []
    index = 1
    for tier, count in _POPULAR_TIERS:
        for _ in range(count):
            name = f"pop-{index:02d}"
            r = _rng(name, seed)
            # render_bytes is fill-rate work (pixels x overdraw layers), so
            # realistic UHD figures are far above one framebuffer's size.
            # Window buffers reflect the app's *internal* render resolution
            # (apps upscale; they rarely draw UI at native 4K).
            if tier == "light":
                params.append((_FACTORY_PATHS[PopularApp], dict(
                    name=name,
                    render_bytes=int(r.uniform(30, 80) * MIB),
                    svm_calls_per_frame=r.randint(4, 8),
                    svm_call_bytes=int(r.uniform(0.3, 1.2) * MIB),
                    window_bytes=int(r.uniform(4, 8) * MIB),
                    compose_dirty_fraction=r.uniform(0.2, 0.35),
                    atlas_bytes=int(r.uniform(2, 4) * MIB),
                )))
            elif tier == "medium":
                params.append((_FACTORY_PATHS[PopularApp], dict(
                    name=name,
                    render_bytes=int(r.uniform(180, 360) * MIB),
                    svm_calls_per_frame=r.randint(8, 14),
                    svm_call_bytes=int(r.uniform(0.5, 1.5) * MIB),
                    window_bytes=int(r.uniform(10, 14) * MIB),
                    compose_dirty_fraction=r.uniform(0.35, 0.5),
                    atlas_bytes=int(r.uniform(8, 15) * MIB),
                )))
            else:
                params.append((_FACTORY_PATHS[Heavy3dApp], dict(
                    name=name,
                    render_bytes=int(r.uniform(380, 460) * MIB),
                )))
            index += 1
    return params


def popular_apps(seed: int = 0) -> List[App]:
    """The top-25 popular apps of §5.5 (pop-01 ... pop-25)."""
    return [build_app(p) for p in popular_app_params(seed)]


def heavy_3d_app_params(seed: int = 0, count: int = 5) -> List[AppParams]:
    """Declarative parameters for the Trinity-evaluation gaming set."""
    params: List[AppParams] = []
    for i in range(count):
        name = f"game-{i + 1:02d}"
        r = _rng(name, seed)
        params.append((_FACTORY_PATHS[Heavy3dApp], dict(
            name=name, render_bytes=int(r.uniform(380, 460) * MIB),
        )))
    return params


def heavy_3d_apps(seed: int = 0, count: int = 5) -> List[App]:
    """The Trinity-evaluation gaming set (§5.3's heavy-3D comparison)."""
    return [build_app(p) for p in heavy_3d_app_params(seed, count)]


def apps_of_category(category: str, seed: int = 0) -> List[App]:
    """The ten Table-1 apps of one category."""
    if category not in EMERGING_CATEGORIES:
        raise ValueError(f"unknown category {category!r}")
    return [a for a in emerging_apps(seed) if a.category == category]
