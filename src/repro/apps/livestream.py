"""Livestream apps (Table 1, row 5): NIC → codec → GPU → display.

RTMP playback over the LAN (the nginx server of §2.3): the modem/NIC vdev
receives bitstream chunks, the codec decodes them, SurfaceFlinger renders.
Motion-to-photon anchors at the server-side frame time (the §5.3 screen-
flash methodology), so it includes network latency and receive time.

Livestream apps initialize the encoder for their broadcast path, so an
emulator without any video encoder cannot run them — this is why Trinity's
livestream column in Figure 10 is empty.
"""

from __future__ import annotations

from repro.apps.base import App
from repro.emulators.base import Emulator
from repro.errors import CapabilityError
from repro.guest.buffers import BufferQueue
from repro.guest.services import FrameMeta, SurfaceFlinger
from repro.guest.vsync import VSyncSource
from repro.sim import FifoQueue, Simulator, Timeout
from repro.units import (
    MIB,
    UHD_DISPLAY_BUFFER_BYTES,
    UHD_FRAME_BYTES,
    VSYNC_PERIOD_MS,
)

#: 300 Mbps at 60 FPS → ~0.625 MB of bitstream per frame.
BITSTREAM_BYTES_PER_FRAME = int(0.625 * MIB)


class LivestreamApp(App):
    """An RTMP livestream viewer."""

    category = "Livestream"
    measures_latency = True

    def __init__(
        self,
        name: str = "livestream",
        buffers: int = 4,
        frame_bytes: int = UHD_FRAME_BYTES,
        bitstream_bytes: int = BITSTREAM_BYTES_PER_FRAME,
        network_latency_ms: float = 1.2,
        compose_dirty_fraction: float = 0.5,
        warmup_ms: float = 2_000.0,
    ):
        super().__init__(name, warmup_ms=warmup_ms)
        self.buffers = buffers
        self.frame_bytes = frame_bytes
        self.bitstream_bytes = bitstream_bytes
        self.network_latency_ms = network_latency_ms
        self.compose_dirty_fraction = compose_dirty_fraction
        self._stopped = False

    def check_capabilities(self, emulator: Emulator) -> None:
        if not emulator.supports_encoding():
            raise CapabilityError(
                f"{emulator.name} has no video encoder (RTMP apps require one)"
            )

    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        queue = BufferQueue(sim, emulator, self.buffers, self.frame_bytes, name=f"{self.name}.bq")
        flinger = SurfaceFlinger(
            sim,
            emulator,
            vsync,
            self.fps,
            latency=self.latency,
            display_bytes=UHD_DISPLAY_BUFFER_BYTES,
            compose_dirty_fraction=self.compose_dirty_fraction,
            honor_deadlines=False,  # live viewers show the freshest frame
        )
        # Shallow queues: RTMP players keep buffering minimal for liveness.
        wire: FifoQueue = FifoQueue(sim, capacity=3, name=f"{self.name}.wire")
        bitstream: FifoQueue = FifoQueue(sim, capacity=3, name=f"{self.name}.net")
        sim.spawn(flinger.run(), name=f"{self.name}:sf")
        sim.spawn(self._server(sim, emulator, wire), name=f"{self.name}:server")
        sim.spawn(self._receiver(sim, emulator, wire, bitstream), name=f"{self.name}:recv")
        sim.spawn(
            self._decoder(sim, emulator, bitstream, queue, flinger),
            name=f"{self.name}:decode",
        )

    def _server(self, sim: Simulator, emulator: Emulator, wire: FifoQueue):
        """Process: nginx emits one frame per period, with network jitter.

        The server's clock is not phase-locked to the client's VSync, and
        LAN delivery jitters by fractions of a millisecond to milliseconds.
        Each frame opens a causal-trace flow at the server (the §5.3
        screen-flash anchor), so attribution covers the network leg too.
        """
        import random

        rng = random.Random(f"{self.name}:server")
        sequence = 0
        yield Timeout(rng.uniform(0.0, VSYNC_PERIOD_MS))
        while not self._stopped:
            yield Timeout(VSYNC_PERIOD_MS * (1.0 + rng.uniform(-0.04, 0.04)))
            meta = FrameMeta(
                birth=sim.now,
                sequence=sequence,
                flow=emulator.obs.tracer.new_flow(),
            )
            if not wire.try_put(meta):
                self.fps.note_dropped("network-overrun")
            sequence += 1

    def _receiver(self, sim: Simulator, emulator: Emulator, wire: FifoQueue, bitstream: FifoQueue):
        """Process: NIC receive loop — overlaps with the server's pacing."""
        while not self._stopped:
            meta = yield wire.get()
            yield Timeout(self.network_latency_ms)
            result = yield from emulator.stage("modem", "recv", self.bitstream_bytes)
            yield result.done
            if not bitstream.try_put(meta):
                self.fps.note_dropped("network-overrun")

    def _decoder(self, sim, emulator, bitstream: FifoQueue, queue: BufferQueue, flinger):
        """Process: bitstream → decoded SVM buffer → SurfaceFlinger.

        Submission happens at the decode-complete callback (host
        retirement), matching MediaCodec semantics.
        """
        while not self._stopped:
            meta = yield bitstream.get()
            buffer = yield queue.dequeue_free()
            result = yield from emulator.stage(
                "codec", emulator.decode_op(), self.frame_bytes, writes=[buffer.region_id]
            )
            yield result.done
            flinger.submit(buffer, queue, meta)
