"""UHD and 360-degree video apps (Table 1, rows 1-2).

Pipeline: codec → GPU → display. The source plays a 3840x2160, 60 FPS,
300 Mbps video; decoded frames are 15.8 MiB (YUV420-style packed), and the
compositor's video plane dirties roughly half the UHD RGBA framebuffer per
frame (damage-tracked composition).

360° video differs in the render stage: equirectangular projection samples
the whole decoded sphere texture per output frame, adding significant GPU
work (``projection_extra_bytes``).
"""

from __future__ import annotations

from repro.apps.base import App
from repro.emulators.base import Emulator
from repro.guest.buffers import BufferQueue
from repro.guest.services import MediaService, SurfaceFlinger
from repro.guest.vsync import VSyncSource
from repro.sim import Simulator
from repro.units import UHD_DISPLAY_BUFFER_BYTES, UHD_FRAME_BYTES, VSYNC_PERIOD_MS


class UhdVideoApp(App):
    """A UHD (4K60) video-playback app."""

    category = "UHD Video"
    measures_latency = False

    def __init__(
        self,
        name: str = "uhd-video",
        buffers: int = 4,
        frame_bytes: int = UHD_FRAME_BYTES,
        compose_dirty_fraction: float = 0.5,
        deadline_vsyncs: float = 3.0,
        warmup_ms: float = 2_000.0,
    ):
        super().__init__(name, warmup_ms=warmup_ms)
        self.buffers = buffers
        self.frame_bytes = frame_bytes
        self.compose_dirty_fraction = compose_dirty_fraction
        self.deadline_vsyncs = deadline_vsyncs

    def projection_extra_bytes(self) -> int:
        return 0

    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        queue = BufferQueue(sim, emulator, self.buffers, self.frame_bytes, name=f"{self.name}.bq")
        flinger = SurfaceFlinger(
            sim,
            emulator,
            vsync,
            self.fps,
            latency=self.latency,
            display_bytes=UHD_DISPLAY_BUFFER_BYTES,
            compose_dirty_fraction=self.compose_dirty_fraction,
            render_extra_bytes=self.projection_extra_bytes(),
        )
        media = MediaService(
            sim,
            emulator,
            queue,
            flinger,
            self.fps,
            frame_bytes=self.frame_bytes,
            deadline_ms=self.deadline_vsyncs * VSYNC_PERIOD_MS,
        )
        self._queue = queue
        self._flinger = flinger
        self._media = media
        sim.spawn(flinger.run(), name=f"{self.name}:sf")
        sim.spawn(media.run_source(), name=f"{self.name}:source")
        sim.spawn(media.run_decoder(), name=f"{self.name}:decoder")
        sim.spawn(media.run_callbacks(), name=f"{self.name}:callbacks")

    def ff_register(self, controller) -> None:
        super().ff_register(controller)
        if getattr(self, "_queue", None) is not None:
            self._queue.ff_register(controller)
        if getattr(self, "_flinger", None) is not None:
            self._flinger.ff_register(controller)
        if getattr(self, "_media", None) is not None:
            self._media.ff_register(controller)


class ShortFormVideoApp(UhdVideoApp):
    """A short-form video app: a new clip (and data pipeline) every few
    seconds — the §3.3 stress case for prediction warm-up.

    Each clip switch tears down the previous BufferQueue and allocates a
    fresh one, so every buffer is a *new* SVM region. With flow-level R/W
    history the prefetch engine predicts these regions' readers zero-shot;
    with per-region history it would pay a cold start per buffer per clip.
    """

    category = "UHD Video"

    def __init__(self, name: str = "short-form", clip_ms: float = 2_500.0, **kwargs):
        kwargs.setdefault("buffers", 3)
        super().__init__(name, **kwargs)
        self.clip_ms = clip_ms
        self.clip_switches = 0

    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        flinger = SurfaceFlinger(
            sim,
            emulator,
            vsync,
            self.fps,
            latency=self.latency,
            display_bytes=UHD_DISPLAY_BUFFER_BYTES,
            compose_dirty_fraction=self.compose_dirty_fraction,
        )
        self._flinger = flinger
        sim.spawn(flinger.run(), name=f"{self.name}:sf")
        sim.spawn(self._clip_loop(sim, emulator, flinger), name=f"{self.name}:clips")

    def _clip_loop(self, sim, emulator, flinger):
        from repro.sim import Timeout

        while True:
            queue = BufferQueue(sim, emulator, self.buffers, self.frame_bytes,
                                name=f"{self.name}.clip{self.clip_switches}")
            media = MediaService(
                sim, emulator, queue, flinger, self.fps,
                frame_bytes=self.frame_bytes,
                deadline_ms=self.deadline_vsyncs * VSYNC_PERIOD_MS,
            )
            source = sim.spawn(media.run_source(), name=f"{self.name}:src")
            decoder = sim.spawn(media.run_decoder(), name=f"{self.name}:dec")
            callbacks = sim.spawn(media.run_callbacks(), name=f"{self.name}:cb")
            yield Timeout(self.clip_ms)
            media.stop()
            self.clip_switches += 1
            # the old clip's buffers drain; a fresh pipeline starts next
            # iteration (regions intentionally leak until run end — real
            # apps cache a few clips ahead/behind).


class Video360App(UhdVideoApp):
    """A 360° video app: same decode path, heavier projection rendering."""

    category = "360 Video"

    def __init__(self, name: str = "video-360", **kwargs):
        kwargs.setdefault("compose_dirty_fraction", 1.0)  # full-sphere redraw
        kwargs.setdefault("deadline_vsyncs", 3.5)
        super().__init__(name, **kwargs)

    def projection_extra_bytes(self) -> int:
        # Equirectangular projection is fill-rate hungry: every output
        # pixel is a dependent sphere-texture sample with per-pixel
        # trigonometry — roughly an order of magnitude more GPU work per
        # frame than flat video-plane sampling.
        return 10 * self.frame_bytes
