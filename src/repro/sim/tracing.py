"""Structured trace records.

The §2.3 measurement study and §5.2 microbenchmarks are built on
instrumentation of the shared-memory interface and the emulators' SVM
implementations. :class:`TraceLog` is our equivalent: components append
:class:`TraceRecord` entries (an event kind plus free-form fields) and the
experiment layer filters and aggregates them into the paper's CDFs and
tables.

The log keeps a per-kind index alongside the time-ordered record list, so
the hot analysis paths (:meth:`TraceLog.of_kind`, :meth:`TraceLog.values`,
:meth:`TraceLog.count`) are O(records of that kind) instead of O(all
records), and :meth:`TraceLog.kind_counts` is an O(kinds) dict copy kept
incrementally rather than a re-walk.

For long chaos/density runs a bounded-memory mode caps retention:
``TraceLog(max_records=N)`` keeps the newest N records as a ring buffer
and counts evictions in :attr:`TraceLog.dropped_records`. Queries then see
a trailing window; :attr:`TraceLog.recorded_total` still counts every
record ever accepted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One instrumentation event.

    Attributes
    ----------
    time:
        Simulated timestamp (ms) at which the event was recorded.
    kind:
        Event class, e.g. ``"svm.begin_access"``, ``"coherence.copy"``,
        ``"frame.presented"``, ``"prefetch.start"``.
    fields:
        Free-form payload (sizes, devices, durations, region IDs, ...).
    """

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """Append-only event log with indexed filtering helpers.

    Recording can be disabled wholesale (``enabled=False``) or narrowed to a
    set of kinds, so long benchmark runs don't pay for instrumentation they
    do not read. ``max_records`` bounds memory: the oldest records are
    evicted ring-buffer style and tallied in :attr:`dropped_records`.
    """

    def __init__(
        self,
        enabled: bool = True,
        kinds: Optional[List[str]] = None,
        max_records: Optional[int] = None,
    ):
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self.max_records = max_records
        self._records: Deque[TraceRecord] = deque()
        self._by_kind: Dict[str, Deque[TraceRecord]] = {}
        self._counts: Dict[str, int] = {}
        self.dropped_records = 0
        self.recorded_total = 0

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append one record (no-op when disabled or kind-filtered out)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        record = TraceRecord(time, kind, fields)
        self._records.append(record)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = deque()
        bucket.append(record)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.recorded_total += 1
        if self.max_records is not None and len(self._records) > self.max_records:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        oldest = self._records.popleft()
        # Records enter both structures in the same order, so the evicted
        # record is necessarily at the head of its kind's bucket.
        bucket = self._by_kind[oldest.kind]
        bucket.popleft()
        remaining = self._counts[oldest.kind] - 1
        if remaining:
            self._counts[oldest.kind] = remaining
        else:
            del self._counts[oldest.kind]
            del self._by_kind[oldest.kind]
        self.dropped_records += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All retained records of one kind, in time order. O(k)."""
        return list(self._by_kind.get(kind, ()))

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def values(self, kind: str, field_name: str) -> List[Any]:
        """Extract one payload field from every record of ``kind``. O(k)."""
        return [r.fields[field_name] for r in self._by_kind.get(kind, ())]

    def count(self, kind: str) -> int:
        """Number of retained records of one kind. O(1)."""
        return self._counts.get(kind, 0)

    def kind_counts(self) -> Dict[str, int]:
        """Histogram of record kinds — the summary chaos reports print."""
        return dict(self._counts)

    def clear(self) -> None:
        """Drop every record (keeps enablement and capacity settings)."""
        self._records.clear()
        self._by_kind.clear()
        self._counts.clear()
        self.dropped_records = 0
        self.recorded_total = 0
