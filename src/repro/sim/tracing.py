"""Structured trace records.

The §2.3 measurement study and §5.2 microbenchmarks are built on
instrumentation of the shared-memory interface and the emulators' SVM
implementations. :class:`TraceLog` is our equivalent: components append
:class:`TraceRecord` entries (an event kind plus free-form fields) and the
experiment layer filters and aggregates them into the paper's CDFs and
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One instrumentation event.

    Attributes
    ----------
    time:
        Simulated timestamp (ms) at which the event was recorded.
    kind:
        Event class, e.g. ``"svm.begin_access"``, ``"coherence.copy"``,
        ``"frame.presented"``, ``"prefetch.start"``.
    fields:
        Free-form payload (sizes, devices, durations, region IDs, ...).
    """

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """Append-only event log with simple filtering helpers.

    Recording can be disabled wholesale (``enabled=False``) or narrowed to a
    set of kinds, so long benchmark runs don't pay for instrumentation they
    do not read.
    """

    def __init__(self, enabled: bool = True, kinds: Optional[List[str]] = None):
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self._records: List[TraceRecord] = []

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append one record (no-op when disabled or kind-filtered out)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self._records.append(TraceRecord(time, kind, fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self._records if r.kind == kind]

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def values(self, kind: str, field_name: str) -> List[Any]:
        """Extract one payload field from every record of ``kind``."""
        return [r.fields[field_name] for r in self._records if r.kind == kind]

    def count(self, kind: str) -> int:
        """Number of records of one kind (cheaper than ``len(of_kind(...))``)."""
        return sum(1 for r in self._records if r.kind == kind)

    def kind_counts(self) -> Dict[str, int]:
        """Histogram of record kinds — the summary chaos reports print."""
        counts: Dict[str, int] = {}
        for r in self._records:
            counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop every record (keeps enablement settings)."""
        self._records.clear()
