"""Structured trace records.

The §2.3 measurement study and §5.2 microbenchmarks are built on
instrumentation of the shared-memory interface and the emulators' SVM
implementations. :class:`TraceLog` is our equivalent: components append
:class:`TraceRecord` entries (an event kind plus free-form fields) and the
experiment layer filters and aggregates them into the paper's CDFs and
tables.

The log keeps a per-kind index alongside the time-ordered record list, so
the hot analysis paths (:meth:`TraceLog.of_kind`, :meth:`TraceLog.values`,
:meth:`TraceLog.count`) are O(records of that kind) instead of O(all
records), and :meth:`TraceLog.kind_counts` is an O(kinds) dict copy kept
incrementally rather than a re-walk.

For long chaos/density runs a bounded-memory mode caps retention:
``TraceLog(max_records=N)`` keeps the newest N records as a ring buffer
and counts evictions in :attr:`TraceLog.dropped_records`. Queries then see
a trailing window; :attr:`TraceLog.recorded_total` still counts every
record ever accepted.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


class TraceRecord:
    """One instrumentation event.

    A ``__slots__`` value class rather than a (frozen) dataclass: records
    are allocated on the hottest instrumentation path, and the frozen
    dataclass's ``object.__setattr__``-based init measurably dominated
    :meth:`TraceLog.record`. Value semantics (equality, repr) are kept.

    Attributes
    ----------
    time:
        Simulated timestamp (ms) at which the event was recorded.
    kind:
        Event class, e.g. ``"svm.begin_access"``, ``"coherence.copy"``,
        ``"frame.presented"``, ``"prefetch.start"``.
    fields:
        Free-form payload (sizes, devices, durations, region IDs, ...).
    """

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: Optional[Dict[str, Any]] = None):
        self.time = time
        self.kind = kind
        self.fields = {} if fields is None else fields

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.kind == other.kind
            and self.fields == other.fields
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord(time={self.time!r}, kind={self.kind!r}, fields={self.fields!r})"


_new_record = TraceRecord.__new__


class TraceLog:
    """Append-only event log with indexed filtering helpers.

    Recording can be disabled wholesale (``enabled=False``) or narrowed to a
    set of kinds, so long benchmark runs don't pay for instrumentation they
    do not read. ``max_records`` bounds memory: the oldest records are
    evicted ring-buffer style and tallied in :attr:`dropped_records`.
    """

    def __init__(
        self,
        enabled: bool = True,
        kinds: Optional[List[str]] = None,
        max_records: Optional[int] = None,
    ):
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self.max_records = max_records
        self._records: Deque[TraceRecord] = deque()
        self._by_kind: Dict[str, Deque[TraceRecord]] = {}
        self._counts: Dict[str, int] = {}
        self.dropped_records = 0
        self.recorded_total = 0
        # Fast-forward journal hook: when the fixed-point detector is
        # watching this log it sets ``ff_mirror`` to a list and every
        # accepted record is appended there too (one attribute check per
        # record when inactive). See repro.sim.fastforward.TraceChannel.
        self.ff_mirror: Optional[List[TraceRecord]] = None

    def wants(self, kind: str) -> bool:
        """Whether :meth:`record` would retain a record of ``kind``.

        Hot call sites check this before assembling an expensive payload —
        when recording is disabled or the kind is filtered out, the caller
        skips even the keyword-argument packing.
        """
        if not self.enabled:
            return False
        kinds = self._kinds
        return kinds is None or kind in kinds

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append one record (allocation-light no-op when disabled or
        kind-filtered out — nothing beyond the call's own kwargs dict is
        built before the filter check)."""
        if not self.enabled:
            return
        kinds = self._kinds
        if kinds is not None and kind not in kinds:
            return
        # Allocate without the Python-level __init__ frame: this is the
        # single hottest allocation site in a simulation run.
        record = _new_record(TraceRecord)
        record.time = time
        record.kind = kind
        record.fields = fields
        self._records.append(record)
        # One dict probe in the common (kind already seen) case; the
        # _by_kind/_counts invariant guarantees both hit or both miss.
        try:
            self._by_kind[kind].append(record)
            self._counts[kind] += 1
        except KeyError:
            bucket = self._by_kind[kind] = deque()
            bucket.append(record)
            self._counts[kind] = 1
        self.recorded_total += 1
        mirror = self.ff_mirror
        if mirror is not None:
            mirror.append(record)
        if self.max_records is not None and len(self._records) > self.max_records:
            self._evict_oldest()

    def ff_append(self, time: float, kind: str, fields: Dict[str, Any]) -> None:
        """Append one record during a fast-forward replay.

        Identical bookkeeping to :meth:`record` (per-kind index, counts,
        eviction) except it never consults the enable/kind filters — the
        replayed rows were captured *after* filtering — and never feeds the
        ``ff_mirror``, so a replay cannot journal itself.
        """
        record = _new_record(TraceRecord)
        record.time = time
        record.kind = kind
        record.fields = fields
        self._records.append(record)
        try:
            self._by_kind[kind].append(record)
            self._counts[kind] += 1
        except KeyError:
            bucket = self._by_kind[kind] = deque()
            bucket.append(record)
            self._counts[kind] = 1
        self.recorded_total += 1
        if self.max_records is not None and len(self._records) > self.max_records:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        oldest = self._records.popleft()
        # Records enter both structures in the same order, so the evicted
        # record is necessarily at the head of its kind's bucket.
        bucket = self._by_kind[oldest.kind]
        bucket.popleft()
        remaining = self._counts[oldest.kind] - 1
        if remaining:
            self._counts[oldest.kind] = remaining
        else:
            del self._counts[oldest.kind]
            del self._by_kind[oldest.kind]
        self.dropped_records += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All retained records of one kind, in time order. O(k)."""
        return list(self._by_kind.get(kind, ()))

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def values(self, kind: str, field_name: str) -> List[Any]:
        """Extract one payload field from every record of ``kind``. O(k)."""
        return [r.fields[field_name] for r in self._by_kind.get(kind, ())]

    def count(self, kind: str) -> int:
        """Number of retained records of one kind. O(1)."""
        return self._counts.get(kind, 0)

    def kind_counts(self) -> Dict[str, int]:
        """Histogram of record kinds — the summary chaos reports print."""
        return dict(self._counts)

    def clear(self) -> None:
        """Drop every record (keeps enablement and capacity settings)."""
        self._records.clear()
        self._by_kind.clear()
        self._counts.clear()
        self.dropped_records = 0
        self.recorded_total = 0
