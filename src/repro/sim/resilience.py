"""Resilience primitives: bounded retries with backoff, and watchdogs.

The paper's robustness story (§3.3, §5.3) is reactive — suspend prefetch on
mispredictions, degrade under thermal collapse — but the mechanisms it
reacts *with* are generic: retry an operation a bounded number of times with
exponential backoff, and bound how long any one operation may run. This
module provides those two primitives for simulation processes:

* :class:`RetryPolicy` + :func:`retrying` — re-run a failed process with
  exponentially growing (capped) delays between attempts;
* :class:`Deadline` + :func:`with_deadline` — a watchdog: a waitable that
  fails with :class:`~repro.errors.DeadlineExceededError` after a delay,
  and a process wrapper racing an inner process against one.

Both are fully deterministic: no unseeded randomness, delays are pure
functions of the attempt number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple, Type

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.sim.primitives import Callback, SimEvent, Timeout, Waitable


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for retried operations.

    ``max_attempts`` counts *total* tries (first try included); ``None``
    retries forever — only safe when the failure is known to clear (a
    finite fault window). The delay before retry *n* (n = 1 after the
    first failure) is ``min(max_delay_ms, base_delay_ms * multiplier^(n-1))``.
    """

    max_attempts: Optional[int] = 3
    base_delay_ms: float = 0.05
    multiplier: float = 2.0
    max_delay_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1 or None")
        for label, value in (
            ("base_delay_ms", self.base_delay_ms),
            ("multiplier", self.multiplier),
            ("max_delay_ms", self.max_delay_ms),
        ):
            if not math.isfinite(value) or value < 0:
                raise ConfigurationError(
                    f"{label} must be finite and >= 0, got {value}"
                )
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")

    def delay_before_retry(self, failures: int) -> float:
        """Backoff delay (ms) after the ``failures``-th consecutive failure."""
        if failures < 1:
            raise ConfigurationError("failures must be >= 1")
        return min(self.max_delay_ms, self.base_delay_ms * self.multiplier ** (failures - 1))

    def exhausted(self, failures: int) -> bool:
        """True when ``failures`` consecutive failures end the retry loop."""
        return self.max_attempts is not None and failures >= self.max_attempts


def retrying(
    sim: Any,
    factory: Callable[[], Generator[Any, Any, Any]],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...],
    name: str = "op",
    trace: Any = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> Generator[Any, Any, Any]:
    """Process: run ``factory()`` until success or the policy is exhausted.

    ``factory`` must build a *fresh* generator per attempt. Exceptions not
    listed in ``retry_on`` propagate immediately; the last retryable
    exception re-raises once ``policy.max_attempts`` is reached. Each
    retry appends a ``retry.backoff`` trace record (when ``trace`` is
    given) and calls ``on_retry(failures, exc)`` — the hook the copy
    planner uses to count retries.
    """
    failures = 0
    while True:
        try:
            return (yield from factory())
        except retry_on as err:
            failures += 1
            if policy.exhausted(failures):
                raise
            delay = policy.delay_before_retry(failures)
            if trace is not None:
                trace.record(
                    sim.now,
                    "retry.backoff",
                    op=name,
                    attempt=failures,
                    delay=delay,
                    error=type(err).__name__,
                )
            if on_retry is not None:
                on_retry(failures, err)
            if delay > 0:
                yield Timeout(delay)


class Deadline(Waitable):
    """A watchdog waitable: fails after ``delay`` ms unless cancelled.

    Yielding a live ``Deadline`` raises :class:`DeadlineExceededError` at
    expiry; :meth:`cancel` disarms it (idempotent). Used standalone as a
    per-operation timer, or via :func:`with_deadline` to bound a process.
    """

    def __init__(self, sim: Any, delay: float, label: str = "deadline"):
        if not math.isfinite(delay) or delay <= 0:
            raise ConfigurationError(f"deadline delay must be finite and > 0, got {delay}")
        self._event = SimEvent(sim, name=label)
        self.label = label
        self.delay = delay
        self.expired = False
        self._handle = sim.schedule(delay, self._expire)

    def _expire(self) -> None:
        if not self._event.fired:
            self.expired = True
            self._event.fail(
                DeadlineExceededError(f"{self.label!r} exceeded its {self.delay:.3f} ms deadline")
            )

    def cancel(self) -> None:
        """Disarm the watchdog; a cancelled deadline never fires."""
        self._handle.cancel()

    def add_callback(self, fn: Callback) -> None:
        self._event.add_callback(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "expired" if self.expired else "armed"
        return f"<Deadline {self.label!r} {self.delay:.3f}ms {state}>"


def with_deadline(
    sim: Any,
    gen: Generator[Any, Any, Any],
    deadline_ms: float,
    name: str = "op",
) -> Generator[Any, Any, Any]:
    """Process wrapper: run ``gen``; fail the *waiter* if it overruns.

    Races ``gen`` (spawned as its own process) against a ``deadline_ms``
    watchdog. On expiry the caller sees :class:`DeadlineExceededError`,
    while the inner process keeps running to completion in the background
    — exactly like a timed-out DMA, which still occupies its bus (and
    releases its locks) when it eventually finishes. A late success or
    failure of the orphaned process is deliberately discarded.
    """
    if not math.isfinite(deadline_ms) or deadline_ms <= 0:
        raise ConfigurationError(f"deadline must be finite and > 0, got {deadline_ms}")
    gate = SimEvent(sim, name=f"{name}.gate")
    proc = sim.spawn(gen, name=name)

    def on_done(value: Any, exc: Optional[BaseException]) -> None:
        if gate.fired:
            return  # the deadline won the race; drop the orphan's outcome
        if exc is not None:
            gate.fail(exc)
        else:
            gate.fire(value)

    proc.add_callback(on_done)

    def on_deadline() -> None:
        if not gate.fired:
            gate.fail(
                DeadlineExceededError(f"{name!r} exceeded its {deadline_ms:.3f} ms deadline")
            )

    handle = sim.schedule(deadline_ms, on_deadline)
    try:
        value = yield gate
    finally:
        handle.cancel()
    return value
