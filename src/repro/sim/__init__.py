"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs. The
vSoC paper evaluates on real machines; we replace wall-clock hardware with a
discrete-event simulator so experiments are fast, deterministic, and
instrumentable down to individual memory copies.

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event loop and virtual clock.
* :class:`~repro.sim.kernel.Process` — a generator-based coroutine.
* :mod:`~repro.sim.primitives` — ``Timeout``, ``SimEvent``, ``AllOf``,
  ``Semaphore``, ``Mutex``, ``FifoQueue``.
* :mod:`~repro.sim.tracing` — structured trace records.
"""

from repro.sim.eventq import (
    HeapEventQueue,
    TimingWheelEventQueue,
    make_event_queue,
)
from repro.sim.fastforward import FastForwardController
from repro.sim.kernel import Process, ScheduledCall, Simulator
from repro.sim.primitives import (
    AllOf,
    FifoQueue,
    Mutex,
    Semaphore,
    SimEvent,
    Timeout,
    Waitable,
)
from repro.sim.resilience import Deadline, RetryPolicy, retrying, with_deadline
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "Simulator",
    "Process",
    "ScheduledCall",
    "HeapEventQueue",
    "TimingWheelEventQueue",
    "make_event_queue",
    "FastForwardController",
    "Waitable",
    "Timeout",
    "SimEvent",
    "AllOf",
    "Semaphore",
    "Mutex",
    "FifoQueue",
    "TraceLog",
    "TraceRecord",
    "RetryPolicy",
    "retrying",
    "Deadline",
    "with_deadline",
]
