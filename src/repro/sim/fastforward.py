"""Steady-state cycle fast-forward: detect a periodic fixed point, skip it.

The paper's guest pipeline (§3.3: write → slack → read per frame) settles
into an exactly periodic pattern once the EWMA slack predictors converge:
every vsync interval schedules the same events at the same relative
offsets, produces the same trace records modulo a constant time shift, and
bumps the same counters by the same deltas. Simulating such a cycle
event-by-event for minutes of virtual time is pure waste — this module
detects the fixed point, *proves* it is exactly repeating (bitwise, not
approximately), then advances the clock N cycles analytically: pending
events are shifted, counters and metric lists are extended with the rows
the skipped cycles would have produced, and the run resumes event-by-event
for the tail. A fast-forwarded run is bit-identical to the event-by-event
run — the tests assert frame-for-frame equality of FPS, trace records
(including flow ids) and telemetry.

Soundness
---------
Fast-forward replays state *analytically*: value' = value + n·stride. For
floats this is only bit-identical to n sequential additions when the
arithmetic is exact, so every float consulted by the detector must sit on
a dyadic grid (multiples of 2^-20 ms, magnitude < 2^31): such values and
their strides are exactly representable and IEEE addition on them is
exact. The controller therefore *refuses to engage* — rather than
engaging approximately — whenever:

* any pending event's relative offset or any journaled float is off-grid
  (real vsync periods like 1000/60 ms fail this immediately; the
  controller goes dormant after a bounded number of anchors, so ordinary
  runs pay almost nothing);
* the cycle signature (pending-event pattern + fingerprints + journal
  strides) has not repeated bitwise for ``confirm`` consecutive cycles;
* the simulator carries a fast-forward veto (fault injection, live
  observability, explicit ``--no-fast-forward``).

The detector is cooperative: components register *channels* (journaled
side effects to capture and replay) and *fingerprints* (state that must
be cycle-invariant) via ``ff_register``. Anything not registered must be
a pure function of the pending-event set — the contract every guest
component in this repo follows.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Dyadic grid unit (ms). All engaged timestamps/strides are multiples.
GRID = 2.0 ** -20
GRID_INV = 2.0 ** 20
#: Magnitude bound under which grid multiples (and their n-fold sums up to
#: any horizon we simulate) are exactly representable in a float.
GRID_SPAN = 2.0 ** 31

# -- module-level default (mirrors engine.set_default_jobs / --no-cache) ----

_enabled_default = True


def set_enabled(flag: bool) -> None:
    """Set the process-wide fast-forward default (CLI plumbing)."""
    global _enabled_default
    _enabled_default = bool(flag)


def enabled_default() -> bool:
    return _enabled_default


def on_grid(x: Any) -> bool:
    """Whether a number is fast-forward-exact (int, or dyadic float)."""
    if type(x) is int:
        return -GRID_SPAN < x < GRID_SPAN
    if type(x) is float:
        if not -GRID_SPAN < x < GRID_SPAN:
            return False
        return (x * GRID_INV).is_integer()
    return False


# -- stride algebra ---------------------------------------------------------


class _Same:
    """Stride sentinel: the value is cycle-invariant (carried unchanged)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<same>"


SAME = _Same()


class Delta:
    """Stride: the value advances by a fixed (grid-exact) amount per cycle."""

    __slots__ = ("d",)

    def __init__(self, d: Any):
        self.d = d

    def __eq__(self, other: Any) -> bool:
        return type(other) is Delta and self.d == other.d

    def __hash__(self) -> int:
        return hash(("Delta", self.d))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<+{self.d}>"


def stride_of(a: Any, b: Any) -> Any:
    """The per-cycle stride turning ``a`` into ``b``, or None if unsound.

    Equal values of any type stride as :data:`SAME`; ints and grid-exact
    floats stride as :class:`Delta`; tuples stride elementwise. Anything
    else (unequal strings, off-grid floats, mismatched shapes) yields
    None, which vetoes engagement.
    """
    if type(a) is not type(b):
        return None
    if type(a) is tuple:
        if len(a) != len(b):
            return None
        out = []
        for x, y in zip(a, b):
            s = stride_of(x, y)
            if s is None:
                return None
            out.append(s)
        return tuple(out)
    if a == b:
        return SAME
    if type(a) is int:
        return Delta(b - a)
    if type(a) is float:
        if on_grid(a) and on_grid(b):
            d = b - a  # exact: both are in-span grid multiples
            return Delta(d)
        return None
    return None


def advance(value: Any, stride: Any) -> Any:
    """Apply one cycle's stride to a captured value (exact arithmetic)."""
    if stride is SAME:
        return value
    if type(stride) is Delta:
        return value + stride.d
    return tuple(advance(v, s) for v, s in zip(value, stride))


def advance_n(value: Any, stride: Any, n: int) -> Any:
    """Apply ``n`` cycles of stride in one step.

    Bit-identical to ``n`` sequential :func:`advance` calls: every stride
    delta is an integer or an in-span dyadic float, so ``d*n`` and the sum
    are computed exactly — closed form and iteration agree to the bit.
    """
    if stride is SAME:
        return value
    if type(stride) is Delta:
        return value + stride.d * n
    return tuple(advance_n(v, s, n) for v, s in zip(value, stride))


# -- channels ---------------------------------------------------------------


class Channel:
    """A journaled side effect: captured per anchor, replayed per skipped
    cycle. ``capture`` returns a tuple of rows (tuples of grid-exact
    scalars / strings); ``replay`` applies one cycle's worth of rows."""

    def capture(self) -> Tuple[Any, ...]:
        raise NotImplementedError

    def replay(self, rows: Tuple[Any, ...]) -> None:
        raise NotImplementedError

    def skip(self, rows: Tuple[Any, ...], stride: Any, n: int) -> None:
        """Replay ``n`` stride-advanced cycles. The generic path iterates;
        subclasses override with closed-form or batched equivalents that
        produce bit-identical state."""
        for k in range(1, n + 1):
            self.replay(advance_n(rows, stride, k))

    def close(self) -> None:
        """Detach any hooks (called when the controller shuts down)."""


class TraceChannel(Channel):
    """Journals a :class:`~repro.sim.tracing.TraceLog` via its mirror hook."""

    def __init__(self, trace: Any):
        self._trace = trace
        trace.ff_mirror = []

    def capture(self) -> Tuple[Any, ...]:
        mirror = self._trace.ff_mirror
        rows = tuple(
            (r.time, r.kind, tuple(r.fields.items())) for r in mirror
        )
        mirror.clear()
        return rows

    def replay(self, rows: Tuple[Any, ...]) -> None:
        append = self._trace.ff_append
        for time, kind, items in rows:
            append(time, kind, dict(items))

    def skip(self, rows: Tuple[Any, ...], stride: Any, n: int) -> None:
        # The hot half of a jump: n cycles × len(rows) records. Flatten the
        # stride walk per row once, then emit with closed-form advances
        # (exact arithmetic — bit-identical to cycle-by-cycle replay).
        append = self._trace.ff_append
        plan = []
        for (time, kind, items), (tstride, _kstride, istrides) in zip(rows, stride):
            tdelta = 0.0 if tstride is SAME else tstride.d
            fields = []
            for (key, value), fstride in zip(items, istrides):
                vstride = fstride[1]
                if not (vstride is SAME or type(vstride) is Delta):
                    # Exotic (nested) field value: take the generic path.
                    Channel.skip(self, rows, stride, n)
                    return
                fields.append(
                    (key, value, 0 if vstride is SAME else vstride.d)
                )
            plan.append((time, tdelta, kind, fields))
        for k in range(1, n + 1):
            for time, tdelta, kind, fields in plan:
                append(
                    time + tdelta * k if tdelta else time,
                    kind,
                    {key: value + delta * k if delta else value
                     for key, value, delta in fields},
                )

    def close(self) -> None:
        self._trace.ff_mirror = None


class ListChannel(Channel):
    """Journals an append-only list (FPS present times, latency samples)."""

    def __init__(self, target: List[Any]):
        self._target = target
        self._idx = len(target)

    def capture(self) -> Tuple[Any, ...]:
        target = self._target
        rows = tuple((v,) for v in target[self._idx:])
        self._idx = len(target)
        return rows

    def replay(self, rows: Tuple[Any, ...]) -> None:
        self._target.extend(v for (v,) in rows)
        self._idx = len(self._target)

    def skip(self, rows: Tuple[Any, ...], stride: Any, n: int) -> None:
        out: List[Any] = []
        plan = [(v, s[0]) for (v,), s in zip(rows, stride)]
        if all(vs is SAME or type(vs) is Delta for _, vs in plan):
            flat = [(v, 0 if vs is SAME else vs.d) for v, vs in plan]
            for k in range(1, n + 1):
                out.extend(v + d * k if d else v for v, d in flat)
        else:  # pragma: no cover - nested values in a metrics list
            for k in range(1, n + 1):
                out.extend(advance_n(v, vs, k) for v, vs in plan)
        self._target.extend(out)
        self._idx = len(self._target)


class CounterChannel(Channel):
    """Journals one scalar attribute by absolute value (counters, EWMA
    levels). The absolute value strides per cycle; replay writes it back.

    A cycle spanning m anchors contributes m rows per group — one capture
    per anchor — so the *last* row is the state at the cycle boundary.
    """

    def __init__(self, obj: Any, attr: str):
        self._obj = obj
        self._attr = attr

    def capture(self) -> Tuple[Any, ...]:
        return ((getattr(self._obj, self._attr),),)

    def replay(self, rows: Tuple[Any, ...]) -> None:
        setattr(self._obj, self._attr, rows[-1][0])

    def skip(self, rows: Tuple[Any, ...], stride: Any, n: int) -> None:
        # Absolute value: only the final cycle's state matters.
        setattr(self._obj, self._attr, advance_n(rows[-1][0], stride[-1][0], n))


class DictCountChannel(Channel):
    """Journals a counter dict (e.g. per-reason frame-drop tallies)."""

    def __init__(self, target: Dict[Any, Any]):
        self._target = target

    def capture(self) -> Tuple[Any, ...]:
        return (tuple(self._target.items()),)

    def replay(self, rows: Tuple[Any, ...]) -> None:
        # Keys cannot appear or vanish inside a proven-periodic cycle
        # (the stride structure would mismatch), so update preserves the
        # target's insertion order — dict iteration stays bit-identical.
        # Like CounterChannel: m-anchor cycles carry m absolute snapshots;
        # the last one is the cycle-boundary state.
        self._target.update(rows[-1])

    def skip(self, rows: Tuple[Any, ...], stride: Any, n: int) -> None:
        self._target.update(advance_n(rows[-1], stride[-1], n))


# -- the controller ---------------------------------------------------------


class FastForwardController:
    """Per-run fixed-point detector and analytic skipper.

    Rides the simulator as a periodic *anchor* callback (period = the
    app's frame interval; multi-frame cycles up to ``max_multiple`` frames
    are detected automatically, e.g. double-buffer flip-flop states).
    At each anchor it snapshots:

    * the **signature** — relative offsets and callback identities of every
      pending event, plus every registered fingerprint;
    * the **journal** — each channel's rows since the previous anchor.

    When the signature repeats bitwise and the journal advances by an
    identical (grid-exact) stride for ``confirm`` consecutive cycles, the
    cycle is proven and the controller jumps: it shifts the pending set by
    ``n`` cycles, replays ``n`` stride-advanced journals, and retires. At
    most one jump per run — re-engagement after a jump would need a fresh
    settling proof and the tail is short by construction.
    """

    def __init__(
        self,
        sim: Any,
        period: float,
        horizon: float,
        *,
        confirm: int = 3,
        margin_cycles: int = 2,
        min_skip_cycles: int = 8,
        max_multiple: int = 8,
        max_anchors: int = 512,
    ):
        if confirm < 2:
            raise ValueError("confirm must be >= 2 (one stride match proves nothing)")
        self.sim = sim
        self.period = float(period)
        self.horizon = float(horizon)
        self.confirm = confirm
        self.margin_cycles = margin_cycles
        self.min_skip_cycles = min_skip_cycles
        self.max_multiple = max_multiple
        self.max_anchors = max_anchors
        self._channels: List[Channel] = []
        self._watchers: List[Callable[[], Any]] = []
        self._history: Deque[Tuple[Optional[tuple], tuple]] = deque(
            maxlen=(confirm + 2) * max_multiple
        )
        self._armed = False
        self.anchors_seen = 0
        self.engaged = 0
        self.cycle_multiple: Optional[int] = None
        self.skipped_cycles = 0
        self.skipped_ms = 0.0
        self.jump_at: Optional[float] = None
        self.jump_to: Optional[float] = None
        self.disabled_reason: Optional[str] = None

    # -- registration ------------------------------------------------------
    def add_channel(self, channel: Channel) -> Channel:
        self._channels.append(channel)
        return channel

    def watch(self, fn: Callable[[], Any]) -> None:
        """Register a fingerprint: a callable whose value must be identical
        at matching anchors for the cycle to count as repeating."""
        self._watchers.append(fn)

    def track_counter(self, obj: Any, attr: str) -> None:
        self.add_channel(CounterChannel(obj, attr))

    def track_list(self, target: List[Any]) -> None:
        self.add_channel(ListChannel(target))

    def track_counts(self, target: Dict[Any, Any]) -> None:
        self.add_channel(DictCountChannel(target))

    # -- lifecycle ---------------------------------------------------------
    def install(self) -> "FastForwardController":
        """Arm the anchor. Refuses (with a recorded reason) when globally
        disabled, vetoed, or configured off-grid."""
        if not _enabled_default:
            self._disable("globally-disabled")
            return self
        vetoes = self.sim.fast_forward_vetoes
        if vetoes:
            self._disable(f"vetoed: {vetoes[0]}")
            return self
        if self.period <= 0 or not on_grid(self.period):
            self._disable(f"off-grid anchor period {self.period!r}")
            return self
        if not on_grid(self.horizon):
            self._disable(f"off-grid horizon {self.horizon!r}")
            return self
        self._armed = True
        self.sim.schedule(self.period, self._anchor)
        return self

    def _disable(self, reason: str) -> None:
        self.disabled_reason = reason
        self._armed = False
        for channel in self._channels:
            channel.close()

    # -- the anchor --------------------------------------------------------
    def _anchor(self) -> None:
        if not self._armed:  # pragma: no cover - defensive (anchor not re-armed)
            return
        vetoes = self.sim.fast_forward_vetoes
        if vetoes:
            self._disable(f"vetoed: {vetoes[0]}")
            return
        self.anchors_seen += 1
        sig = self._signature() if on_grid(self.sim._now) else None
        rows = tuple(channel.capture() for channel in self._channels)
        self._history.append((sig, rows))
        if sig is not None:
            found = self._detect()
            if found is not None:
                m, strides, last_group = found
                n = self._cycles_available(m)
                if n >= self.min_skip_cycles:
                    self._jump(m, n, strides, last_group)
                    self._disable("engaged")
                    return
        if self.anchors_seen >= self.max_anchors:
            self._disable(f"no fixed point within {self.max_anchors} anchors")
            return
        self.sim.schedule(self.period, self._anchor)

    def _signature(self) -> Optional[tuple]:
        """Bitwise cycle snapshot: pending-event pattern + fingerprints.

        None (ineligible) when any pending offset is off-grid. Callback
        identity is (qualname, bound-object id): stable within one run,
        which is the only scope signatures are ever compared in.
        """
        now = self.sim._now
        events = []
        for time, _seq, call in self.sim.pending_entries():
            rel = time - now
            if not on_grid(rel):
                return None
            fn = call.fn
            target = getattr(fn, "__self__", None)
            events.append(
                (rel, getattr(fn, "__qualname__", repr(fn)),
                 id(fn) if target is None else id(target))
            )
        return (tuple(events), tuple(fn() for fn in self._watchers))

    def _detect(self) -> Optional[Tuple[int, tuple, tuple]]:
        """Find the smallest cycle multiple whose signature repeats and
        whose journal strides are constant over ``confirm`` comparisons."""
        hist = self._history
        size = len(hist)
        groups_needed = self.confirm + 1
        for m in range(1, self.max_multiple + 1):
            span = groups_needed * m
            if size < span:
                return None
            # Signatures must be m-periodic (and eligible) across the span.
            window = [hist[size - span + i] for i in range(span)]
            if any(snap[0] is None for snap in window):
                continue
            if any(window[i][0] != window[i + m][0] for i in range(span - m)):
                continue
            # Concatenate each group's journal rows per channel.
            nchannels = len(self._channels)
            groups = []
            for j in range(groups_needed):
                anchors = window[j * m:(j + 1) * m]
                groups.append(tuple(
                    tuple(row for snap in anchors for row in snap[1][c])
                    for c in range(nchannels)
                ))
            strides = stride_of(groups[0], groups[1])
            if strides is None:
                continue
            if all(
                stride_of(groups[j - 1], groups[j]) == strides
                for j in range(2, groups_needed)
            ):
                return m, strides, groups[-1]
        return None

    def _cycles_available(self, m: int) -> int:
        """How many whole cycles fit between now and the horizon, minus the
        safety margin — computed in exact grid units."""
        remaining = self.horizon - self.sim._now
        if remaining <= 0:
            return 0
        grid_rem = round(remaining * GRID_INV)
        grid_cycle = round(self.period * GRID_INV) * m
        return grid_rem // grid_cycle - self.margin_cycles

    def _jump(self, m: int, n: int, strides: tuple, last_group: tuple) -> None:
        cycle_ms = self.period * m
        dt = cycle_ms * n  # exact: grid multiple times an int
        self.jump_at = self.sim._now
        self.sim.fast_forward(dt)
        self.jump_to = self.sim._now
        for c, channel in enumerate(self._channels):
            channel.skip(last_group[c], strides[c], n)
        self.engaged += 1
        self.cycle_multiple = m
        self.skipped_cycles += n
        self.skipped_ms += dt

    # -- reporting ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "engaged": self.engaged,
            "cycle_multiple": self.cycle_multiple,
            "anchors_seen": self.anchors_seen,
            "skipped_cycles": self.skipped_cycles,
            "skipped_ms": self.skipped_ms,
            "jump_at": self.jump_at,
            "jump_to": self.jump_to,
            "disabled_reason": self.disabled_reason,
        }
