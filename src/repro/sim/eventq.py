"""Pluggable event queues for the DES kernel: binary heap and timing wheel.

The kernel's original scheduler was a single ``heapq`` — O(log n) per
event, with n the number of *pending* events. That is fine for one app on
one emulator (~hundreds pending) but the fleet plane multiplies event
counts by ~1000x, and at that depth the heap's cache-hostile sift chains
dominate the dispatch loop. This module factors the scheduler behind a
small ``EventQueue`` surface with two interchangeable implementations:

* :class:`HeapEventQueue` — the classic binary heap. Still the best
  structure at shallow depth (C ``heapq`` beats any pure-Python wheel
  below a few thousand pending events), and the reference implementation
  the property tests compare against.
* :class:`TimingWheelEventQueue` — a calendar queue / hierarchical timing
  wheel: a ring of fixed-width buckets covering a sliding time window,
  an *overflow* heap for events beyond the horizon, and a *current* heap
  holding only the events of the bucket being drained. Insertion into an
  in-window bucket is an O(1) list append; dispatch heapifies one bucket
  at a time, so ordering work is O(log b) in the *bucket* population, not
  the total pending count — O(1) amortized per event for workloads whose
  pending set is spread across many buckets.

Both back-ends preserve the kernel's determinism contract exactly: events
with equal timestamps dispatch in push order (a monotonically increasing
sequence number assigned by the queue breaks ties), and cancellation is
lazy (cancelled entries are skipped at pop time), byte-for-byte matching
the old heap semantics. The property tests in ``tests/test_eventq.py``
drive randomized schedule/cancel/timeout interleavings through both
back-ends and assert identical dispatch sequences.

The kernel's default is *adaptive*: it starts on a :class:`HeapEventQueue`
and promotes itself to a wheel (via :func:`wheel_from_heap`, which carries
sequence numbers across so dispatch order is bit-identical) when the
pending population crosses :data:`ADAPTIVE_PROMOTE_AT` — small sims keep
the heap's low constants, fleet-scale sims get the wheel's flat scaling,
and nobody configures anything. The promotion check lives in the kernel's
dispatch loop, not here, so the heap's push path stays free of branches.
``REPRO_SIM_QUEUE=heap|wheel|adaptive`` overrides the default for A/B
runs, as does ``Simulator(queue=...)``.

Queue entries are ``(time, seq, obj)`` tuples where ``obj`` is any object
with ``time`` and ``cancelled`` attributes (the kernel's
``ScheduledCall``, the fleet clock's ``ClockHandle``).
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Iterator, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify

Entry = Tuple[float, int, Any]

#: Pending-event count at which the adaptive default trades the heap's low
#: constants for the wheel's flat scaling. Calibrated on the frozen kernel
#: bench: below ~2k pending the C heap wins, above it the wheel does.
ADAPTIVE_PROMOTE_AT = 2048

#: Default bucket geometry: 4096 buckets of 0.25 ms cover a 1.024 s sliding
#: window — two orders of magnitude wider than a frame, so steady guest
#: pipelines essentially never touch the overflow heap.
DEFAULT_BUCKET_MS = 0.25
DEFAULT_BUCKETS = 4096

#: Buckets per occupancy segment: the cursor scan skips empty regions one
#: segment at a time, bounding the per-advance scan to
#: ``buckets/SEGMENT + SEGMENT`` slots even for sparse timer populations.
SEGMENT = 64


class HeapEventQueue:
    """Binary-heap event queue — the reference back-end."""

    kind = "heap"

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self._seq = 0

    def push(self, time: float, obj: Any) -> None:
        self._seq = seq = self._seq + 1
        _heappush(self._heap, (time, seq, obj))

    def pop_due(self, limit: Optional[float] = None) -> Optional[Entry]:
        """Pop the earliest live entry with ``time <= limit`` (or any, when
        ``limit`` is None). Cancelled entries are discarded in passing."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if limit is not None and entry[0] > limit:
                return None
            _heappop(heap)
            if entry[2].cancelled:
                continue
            return entry
        return None

    def __len__(self) -> int:
        return len(self._heap)

    def iter_pending(self) -> Iterator[Entry]:
        """Yield live entries in arbitrary order (callers sort)."""
        for entry in self._heap:
            if not entry[2].cancelled:
                yield entry

    def shift_all(self, dt: float) -> None:
        """Uniformly translate every pending entry ``dt`` ms into the future
        (fast-forward support). Cancelled entries are compacted away."""
        shifted: List[Entry] = []
        for time, seq, obj in self._heap:
            if obj.cancelled:
                continue
            obj.time = time + dt
            shifted.append((time + dt, seq, obj))
        _heapify(shifted)  # uniform shift preserves order, but compaction may not
        self._heap = shifted


class TimingWheelEventQueue:
    """Calendar-queue / timing-wheel event queue.

    Layout: ``_buckets[i]`` holds unordered entries whose absolute bucket
    index ``ai = int(time / bucket_ms)`` falls in the sliding window
    ``(cursor, cursor + n)``; ``_current`` is a heap of entries at or
    behind the cursor (the bucket being drained, plus any late arrivals);
    ``_overflow`` is a heap of entries beyond the horizon, refiled into
    buckets as the window slides over them. ``_segments`` counts entries
    per ``SEGMENT``-bucket region so the cursor scan skips empty space.
    """

    kind = "wheel"

    __slots__ = (
        "_width",
        "_inv",
        "_n",
        "_buckets",
        "_segments",
        "_cursor",
        "_current",
        "_overflow",
        "_window",
        "_seq",
        "_size",
    )

    def __init__(
        self,
        bucket_ms: float = DEFAULT_BUCKET_MS,
        buckets: int = DEFAULT_BUCKETS,
        start: float = 0.0,
    ):
        if bucket_ms <= 0:
            raise ValueError(f"bucket_ms must be positive, got {bucket_ms}")
        if buckets < SEGMENT or buckets % SEGMENT:
            raise ValueError(f"buckets must be a positive multiple of {SEGMENT}")
        self._width = float(bucket_ms)
        self._inv = 1.0 / self._width
        self._n = buckets
        self._buckets: List[List[Entry]] = [[] for _ in range(buckets)]
        self._segments = [0] * (buckets // SEGMENT)
        self._cursor = int(start * self._inv)
        self._current: List[Entry] = []
        self._overflow: List[Entry] = []
        self._window = 0
        self._seq = 0
        self._size = 0

    def push(self, time: float, obj: Any) -> None:
        self._seq = seq = self._seq + 1
        self._place(time, seq, obj)

    def _place(self, time: float, seq: int, obj: Any) -> None:
        self._size += 1
        ai = int(time * self._inv)
        cursor = self._cursor
        if ai <= cursor:
            # Due now / in the bucket being drained: ordering needs a heap.
            _heappush(self._current, (time, seq, obj))
        elif ai < cursor + self._n:
            slot = ai % self._n
            self._buckets[slot].append((time, seq, obj))
            self._segments[slot // SEGMENT] += 1
            self._window += 1
        else:
            _heappush(self._overflow, (time, seq, obj))

    def pop_due(self, limit: Optional[float] = None) -> Optional[Entry]:
        current = self._current
        while True:
            while current:
                entry = current[0]
                if limit is not None and entry[0] > limit:
                    return None
                _heappop(current)
                self._size -= 1
                if entry[2].cancelled:
                    continue
                return entry
            if not self._advance():
                return None

    def _advance(self) -> bool:
        """Slide the cursor to the next populated bucket and adopt it into
        the (empty) current heap. Returns False when the queue is drained."""
        n = self._n
        if self._window:
            segments = self._segments
            nseg = len(segments)
            cursor = self._cursor
            slot = (cursor + 1) % n
            # Skip empty segments wholesale, then scan within the hit.
            steps = 0
            while True:
                seg = slot // SEGMENT
                if segments[seg] == 0:
                    # Jump to the start of the next segment.
                    skipped = SEGMENT - (slot % SEGMENT)
                    slot = (slot + skipped) % n
                    steps += skipped
                elif self._buckets[slot]:
                    break
                else:
                    slot += 1
                    steps += 1
                    if slot == n:
                        slot = 0
                if steps > n:  # pragma: no cover - defensive, window said non-empty
                    raise RuntimeError("timing wheel occupancy accounting broken")
            cursor += ((slot - cursor) % n) or n
            bucket = self._buckets[slot]
            self._buckets[slot] = []
            self._segments[slot // SEGMENT] -= len(bucket)
            self._window -= len(bucket)
            self._cursor = cursor
            current = self._current
            current.extend(bucket)
            _heapify(current)
            self._refile(cursor)
            return True
        if self._overflow:
            # Window empty: jump the cursor straight to the overflow's head.
            self._cursor = cursor = int(self._overflow[0][0] * self._inv)
            self._refile(cursor)
            return True
        return False

    def _refile(self, cursor: int) -> None:
        """Move overflow entries that slid under the horizon into buckets."""
        overflow = self._overflow
        inv = self._inv
        n = self._n
        horizon = cursor + n
        while overflow:
            time = overflow[0][0]
            ai = int(time * inv)
            if ai >= horizon:
                return
            entry = _heappop(overflow)
            if ai <= cursor:
                _heappush(self._current, entry)
            else:
                slot = ai % n
                self._buckets[slot].append(entry)
                self._segments[slot // SEGMENT] += 1
                self._window += 1

    def __len__(self) -> int:
        return self._size

    def iter_pending(self) -> Iterator[Entry]:
        for entry in self._current:
            if not entry[2].cancelled:
                yield entry
        if self._window:
            for bucket in self._buckets:
                for entry in bucket:
                    if not entry[2].cancelled:
                        yield entry
        for entry in self._overflow:
            if not entry[2].cancelled:
                yield entry

    def shift_all(self, dt: float) -> None:
        """Uniformly translate every pending entry ``dt`` ms forward.

        O(k log k) in the live population — fine for fast-forward jumps,
        which happen at most once per run against a steady-state pending
        set of a few hundred events.
        """
        entries = sorted(self.iter_pending())
        for bucket in self._buckets:
            if bucket:
                bucket.clear()
        self._segments = [0] * (self._n // SEGMENT)
        self._current = []
        self._overflow = []
        self._window = 0
        self._size = 0
        if not entries:
            self._cursor += int(dt * self._inv)
            return
        self._cursor = int((entries[0][0] + dt) * self._inv) - 1
        for time, seq, obj in entries:
            obj.time = time + dt
            self._place(time + dt, seq, obj)


def wheel_from_heap(heap_queue: HeapEventQueue) -> TimingWheelEventQueue:
    """Build a wheel carrying over a heap's live entries and seq counter.

    Entries keep their original sequence numbers, so FIFO tie-breaking is
    bit-identical across the promotion boundary.
    """
    entries = sorted(heap_queue.iter_pending())
    start = entries[0][0] if entries else 0.0
    wheel = TimingWheelEventQueue(start=start)
    wheel._cursor -= 1  # first entry's bucket must still be ahead of the cursor
    wheel._seq = heap_queue._seq
    for time, seq, obj in entries:
        wheel._place(time, seq, obj)
    return wheel


def resolve_queue_spec(spec: Any = None) -> Any:
    """Apply the ``REPRO_SIM_QUEUE`` env override to an unset spec."""
    if spec is None:
        return os.environ.get("REPRO_SIM_QUEUE", "adaptive")
    return spec


def make_event_queue(spec: Any = None) -> Any:
    """Resolve a queue spec (None / name / instance) to an EventQueue.

    ``None`` consults ``REPRO_SIM_QUEUE`` and defaults to ``"adaptive"``
    (which starts as a heap; promotion is the *owner's* job — the kernel
    promotes in its dispatch loop, other owners may simply treat it as a
    heap). An instance passes through unchanged.
    """
    spec = resolve_queue_spec(spec)
    if isinstance(spec, str):
        if spec in ("heap", "adaptive"):
            return HeapEventQueue()
        if spec == "wheel":
            return TimingWheelEventQueue()
        raise ValueError(f"unknown event queue spec {spec!r} (heap|wheel|adaptive)")
    return spec
