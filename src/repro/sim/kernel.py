"""The discrete-event simulation kernel: clock, event heap, and processes.

Design
------
The kernel is a classic event-heap simulator. Time is a ``float`` in
milliseconds (see :mod:`repro.units`). Two execution styles coexist:

* **Callbacks** — :meth:`Simulator.schedule` runs a plain function at a
  future simulated time. Used for one-shot timers (VSync ticks, watchdogs).
* **Processes** — :meth:`Simulator.spawn` drives a generator coroutine.
  A process ``yield``\\ s *waitables* (:class:`~repro.sim.primitives.Timeout`,
  :class:`~repro.sim.primitives.SimEvent`, another :class:`Process`, ...)
  and is resumed when the waitable fires, receiving the waitable's value as
  the result of the ``yield`` expression. This is how device executors,
  guest drivers and app pipelines are written.

Determinism
-----------
Events scheduled for the same timestamp run in scheduling order (a
monotonically increasing sequence number breaks ties). No wall-clock or
unseeded randomness is ever consulted, so a run is a pure function of its
inputs — tests assert trace-for-trace reproducibility.

Error handling
--------------
An exception escaping a process is captured and re-raised from
:meth:`Simulator.run` (fail fast). Processes waiting on a failed process
observe the same exception at their ``yield``.

Observability hooks
-------------------
:meth:`Simulator.add_hook` registers a :class:`SimHook`-shaped observer.
Hooks see every event dispatch (``on_event_dispatch``), every process
resumption (``on_process_resume``) and every process yield
(``on_process_yield`` — including the waitable/timeout yielded, which is
how :class:`repro.obs.profile.SelfProfiler` attributes simulated time to
devices and subsystems). Hooks are pure observers: they must not schedule
or mutate, and with none registered the kernel pays a single attribute
check per dispatch.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.primitives import Timeout, Waitable

ProcessGenerator = Generator[Any, Any, Any]


class SimHook:
    """Observer interface for kernel events (subclass what you need).

    All callbacks receive the simulated time first. They run synchronously
    inside the kernel and must neither block nor mutate simulator state.
    """

    def on_event_dispatch(self, time: float, call: "ScheduledCall") -> None:
        """An event popped off the heap is about to run."""

    def on_process_resume(self, time: float, process: "Process") -> None:
        """A process generator is about to be stepped."""

    def on_process_yield(self, time: float, process: "Process", target: Any) -> None:
        """A process yielded ``target`` (a Waitable or Timeout)."""


class ScheduledCall:
    """Handle for a callback registered with :meth:`Simulator.schedule`.

    Supports cancellation: a cancelled call stays in the heap but is
    skipped when popped (lazy deletion), which keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.3f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Process(Waitable):
    """A generator coroutine driven by the simulator.

    A ``Process`` is itself a :class:`Waitable`: other processes can
    ``yield proc`` to join on its completion and receive its return value.

    Attributes
    ----------
    name:
        Human-readable label used in traces and error messages.
    alive:
        ``True`` until the generator returns or raises.
    value:
        The generator's return value once finished.
    exception:
        The exception that terminated the generator, if any.
    """

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = "process"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.alive = True
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[[Any, Optional[BaseException]], None]] = []

    # -- Waitable protocol -------------------------------------------------
    def add_callback(self, fn: Callable[[Any, Optional[BaseException]], None]) -> None:
        if not self.alive:
            self._sim.schedule(0.0, fn, self.value, self.exception)
        else:
            self._callbacks.append(fn)

    # -- internal ----------------------------------------------------------
    def _start(self) -> None:
        self._step(None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        """Advance the generator by one yield, wiring up the next waitable."""
        hooks = self._sim._hooks
        if hooks:
            for hook in hooks:
                hook.on_process_resume(self._sim.now, self)
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001 - captured and re-raised by run()
            self._finish(None, err)
            return

        if hooks:
            for hook in hooks:
                hook.on_process_yield(self._sim.now, self, target)
        if isinstance(target, Timeout):
            self._sim.schedule(target.delay, self._step, target.value, None)
        elif isinstance(target, Waitable):
            target.add_callback(self._step)
        else:
            bad = SimulationError(
                f"process {self.name!r} yielded {target!r}; expected a Waitable or Timeout"
            )
            self._finish(None, bad)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self.alive = False
        self.value = value
        self.exception = exc
        callbacks, self._callbacks = self._callbacks, []
        if exc is not None and not callbacks:
            # Nobody is joined on this process: the exception would vanish.
            # Surface it from Simulator.run() instead of failing silently.
            self._sim._note_failure(self, exc)
        for fn in callbacks:
            self._sim.schedule(0.0, fn, value, exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Event loop and virtual clock for one simulated experiment.

    Typical usage::

        sim = Simulator()

        def worker():
            yield Timeout(5.0)
            return "done"

        proc = sim.spawn(worker(), name="worker")
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, ScheduledCall]] = []
        self._processes: List[Process] = []
        self._failure: Optional[Tuple[Process, BaseException]] = None
        self._hooks: List[SimHook] = []

    # -- observability hooks -------------------------------------------------
    def add_hook(self, hook: SimHook) -> None:
        """Register a kernel observer (see :class:`SimHook`)."""
        self._hooks.append(hook)

    def remove_hook(self, hook: SimHook) -> None:
        """Unregister a previously added observer. Idempotent."""
        if hook in self._hooks:
            self._hooks.remove(hook)

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        call = ScheduledCall(self._now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (call.time, self._seq, call))
        return call

    def spawn(self, gen: ProcessGenerator, name: str = "process") -> Process:
        """Start a generator coroutine as a simulation process.

        The first step of the process runs via the event heap at the current
        time, not synchronously — so ``spawn`` is safe to call from within
        another process without re-entrancy surprises.
        """
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        self.schedule(0.0, proc._start)
        return proc

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event. Returns False if the heap is empty."""
        while self._heap:
            time, _seq, call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            if time < self._now:
                raise SimulationError("event heap time went backwards")
            self._now = time
            if self._hooks:
                for hook in self._hooks:
                    hook.on_event_dispatch(time, call)
            call.fn(*call.args)
            self._raise_pending_failure()
            return True
        return False

    def run(self, until: Optional[float] = None, check_deadlock: bool = False) -> None:
        """Run events until the heap drains or simulated time passes ``until``.

        With ``until`` set, the clock is advanced to exactly ``until`` even if
        the last event fires earlier, so back-to-back ``run`` calls compose.
        ``check_deadlock=True`` raises :class:`DeadlockError` if the heap
        drains while processes are still alive (useful in unit tests).
        """
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                break
            self.step()
        if until is not None and self._now < until:
            self._now = until
        if check_deadlock and not self._heap:
            stuck = [p.name for p in self._processes if p.alive]
            if stuck:
                raise DeadlockError(f"no events left but processes blocked: {stuck}")

    # -- failure propagation -------------------------------------------------
    def _note_failure(self, proc: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (proc, exc)

    def _raise_pending_failure(self) -> None:
        if self._failure is not None:
            proc, exc = self._failure
            self._failure = None
            raise SimulationError(f"process {proc.name!r} failed") from exc

    # -- introspection ---------------------------------------------------------
    @property
    def live_processes(self) -> Iterable[Process]:
        """Processes that have not yet finished."""
        return [p for p in self._processes if p.alive]

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the heap."""
        return sum(1 for _t, _s, c in self._heap if not c.cancelled)
