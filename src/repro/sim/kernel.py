"""The discrete-event simulation kernel: clock, event queue, and processes.

Design
------
The kernel is a classic event-queue simulator. Time is a ``float`` in
milliseconds (see :mod:`repro.units`). Two execution styles coexist:

* **Callbacks** — :meth:`Simulator.schedule` runs a plain function at a
  future simulated time. Used for one-shot timers (VSync ticks, watchdogs).
* **Processes** — :meth:`Simulator.spawn` drives a generator coroutine.
  A process ``yield``\\ s *waitables* (:class:`~repro.sim.primitives.Timeout`,
  :class:`~repro.sim.primitives.SimEvent`, another :class:`Process`, ...)
  and is resumed when the waitable fires, receiving the waitable's value as
  the result of the ``yield`` expression. This is how device executors,
  guest drivers and app pipelines are written.

Determinism
-----------
Events scheduled for the same timestamp run in scheduling order (a
monotonically increasing sequence number breaks ties). No wall-clock or
unseeded randomness is ever consulted, so a run is a pure function of its
inputs — tests assert trace-for-trace reproducibility.

Error handling
--------------
An exception escaping a process is captured and re-raised from
:meth:`Simulator.run` (fail fast). Processes waiting on a failed process
observe the same exception at their ``yield``.

Observability hooks
-------------------
:meth:`Simulator.add_hook` registers a :class:`SimHook`-shaped observer.
Hooks see every event dispatch (``on_event_dispatch``), every process
resumption (``on_process_resume``) and every process yield
(``on_process_yield`` — including the waitable/timeout yielded, which is
how :class:`repro.obs.profile.SelfProfiler` attributes simulated time to
devices and subsystems). Hooks are pure observers: they must not schedule
or mutate, and with none registered the kernel pays a single attribute
check per dispatch.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.eventq import (
    ADAPTIVE_PROMOTE_AT,
    Entry,
    HeapEventQueue,
    make_event_queue,
    resolve_queue_spec,
    wheel_from_heap,
)
from repro.sim.primitives import Timeout, Waitable

_heappush = heapq.heappush
_heappop = heapq.heappop

ProcessGenerator = Generator[Any, Any, Any]


class SimHook:
    """Observer interface for kernel events (subclass what you need).

    All callbacks receive the simulated time first. They run synchronously
    inside the kernel and must neither block nor mutate simulator state.
    """

    def on_event_dispatch(self, time: float, call: "ScheduledCall") -> None:
        """An event popped off the heap is about to run."""

    def on_process_resume(self, time: float, process: "Process") -> None:
        """A process generator is about to be stepped."""

    def on_process_yield(self, time: float, process: "Process", target: Any) -> None:
        """A process yielded ``target`` (a Waitable or Timeout)."""


class ScheduledCall:
    """Handle for a callback registered with :meth:`Simulator.schedule`.

    Supports cancellation: a cancelled call stays in the heap but is
    skipped when popped (lazy deletion), which keeps ``cancel`` O(1). The
    live-event counter backing :meth:`Simulator.pending_events` is adjusted
    here, at cancel time, so the skip-on-pop needs no bookkeeping.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live_events -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.3f} {getattr(self.fn, '__name__', self.fn)} {state}>"


#: Allocate a ScheduledCall without the Python-level ``__init__`` frame —
#: used on the two hottest construction sites (Timeout resume, schedule).
_new_call = ScheduledCall.__new__


class Process(Waitable):
    """A generator coroutine driven by the simulator.

    A ``Process`` is itself a :class:`Waitable`: other processes can
    ``yield proc`` to join on its completion and receive its return value.

    Attributes
    ----------
    name:
        Human-readable label used in traces and error messages.
    alive:
        ``True`` until the generator returns or raises.
    value:
        The generator's return value once finished.
    exception:
        The exception that terminated the generator, if any.
    """

    __slots__ = (
        "_sim",
        "_gen",
        "_send",
        "_throw",
        "_schedule",
        "name",
        "alive",
        "value",
        "exception",
        "_callbacks",
    )

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = "process"):
        self._sim = sim
        self._gen = gen
        # Pre-bound handles: _step runs once per process resumption, so the
        # attribute chains (gen.send, sim.schedule) are hoisted out of it.
        self._send = gen.send
        self._throw = gen.throw
        self._schedule = sim.schedule
        self.name = name
        self.alive = True
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[[Any, Optional[BaseException]], None]] = []

    # -- Waitable protocol -------------------------------------------------
    def add_callback(self, fn: Callable[[Any, Optional[BaseException]], None]) -> None:
        if not self.alive:
            self._schedule(0.0, fn, self.value, self.exception)
        else:
            self._callbacks.append(fn)

    # -- internal ----------------------------------------------------------
    def _start(self) -> None:
        self._step(None, None)

    def kill(self) -> None:
        """Terminate the process immediately (device-crash recovery).

        ``GeneratorExit`` propagates through the ``yield from`` chain, so
        ``try/finally`` cleanup (e.g. releasing a physical device's
        execution mutex mid-``run_op``) runs exactly as it would on normal
        completion. Joined waiters observe a ``None`` return value, not an
        exception — a killed process is an administrative act, not a
        failure, so it never routes through ``_note_failure``.

        Waitable callbacks the process already registered (a parked queue
        get, a pending timeout) may still fire afterwards; the ``alive``
        guard at the top of :meth:`_step` makes them no-ops. Idempotent.
        """
        if not self.alive:
            return
        try:
            self._gen.close()
        finally:
            self.alive = False
            self.value = None
            self.exception = None
            callbacks, self._callbacks = self._callbacks, []
            for fn in callbacks:
                self._schedule(0.0, fn, None, None)
            self._sim._processes.pop(self, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        """Advance the generator by one yield, wiring up the next waitable."""
        if not self.alive:
            # A stale waitable callback for a killed process: drop it.
            return
        sim = self._sim
        hooks = sim._hooks
        if hooks:
            for hook in hooks:
                hook.on_process_resume(sim._now, self)
        try:
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001 - captured and re-raised by run()
            self._finish(None, err)
            return

        if hooks:
            for hook in hooks:
                hook.on_process_yield(sim._now, self, target)
        # Timeout is by far the most common yield (every modelled latency),
        # so the exact-type fast path runs before the generic isinstance —
        # and pushes onto the queue directly: Timeout's constructor already
        # rejected negative delays, and nobody holds the handle to cancel.
        # ``sim._qpush`` is re-read (not hoisted) so an adaptive heap→wheel
        # promotion mid-run takes effect on the very next push.
        if type(target) is Timeout:
            call = _new_call(ScheduledCall)
            call.time = when = sim._now + target.delay
            call.fn = self._step
            call.args = (target.value, None)
            call.cancelled = False
            call._sim = sim
            queue = sim._queue
            if type(queue) is HeapEventQueue:
                # Inline HeapEventQueue.push: this is the hottest push site
                # and the C heappush beats a Python-level method call.
                queue._seq = seq = queue._seq + 1
                _heappush(queue._heap, (when, seq, call))
            else:
                queue.push(when, call)
            sim._live_events += 1
        elif isinstance(target, Waitable):
            target.add_callback(self._step)
        elif isinstance(target, Timeout):  # pragma: no cover - Timeout subclass
            self._schedule(target.delay, self._step, target.value, None)
        else:
            bad = SimulationError(
                f"process {self.name!r} yielded {target!r}; expected a Waitable or Timeout"
            )
            self._finish(None, bad)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self.alive = False
        self.value = value
        self.exception = exc
        callbacks, self._callbacks = self._callbacks, []
        if exc is not None and not callbacks:
            # Nobody is joined on this process: the exception would vanish.
            # Surface it from Simulator.run() instead of failing silently.
            self._sim._note_failure(self, exc)
        for fn in callbacks:
            self._schedule(0.0, fn, value, exc)
        # Release the finished process so long runs don't accumulate every
        # process ever spawned (the registry only tracks live ones for the
        # deadlock report).
        self._sim._processes.pop(self, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Event loop and virtual clock for one simulated experiment.

    Typical usage::

        sim = Simulator()

        def worker():
            yield Timeout(5.0)
            return "done"

        proc = sim.spawn(worker(), name="worker")
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    def __init__(self, queue: Any = None) -> None:
        self._now = 0.0
        # ``queue`` may be a spec string ("heap" | "wheel" | "adaptive"), a
        # pre-built EventQueue, or None (env override / adaptive default).
        # Adaptive starts on the heap; the dispatch loop promotes it to a
        # timing wheel once the pending population crosses the threshold.
        spec = resolve_queue_spec(queue)
        self._promote_at = ADAPTIVE_PROMOTE_AT if spec == "adaptive" else None
        self._queue = make_event_queue(spec)
        self._qpush = self._queue.push
        # Insertion-ordered registry of *live* processes (finished ones are
        # pruned by Process._finish). A dict-as-ordered-set keeps removal
        # O(1) while the deadlock report still lists names in spawn order.
        self._processes: Dict[Process, None] = {}
        self._failure: Optional[Tuple[Process, BaseException]] = None
        self._hooks: List[SimHook] = []
        self._live_events = 0
        self._ff_vetoes: List[str] = []

    # -- observability hooks -------------------------------------------------
    def add_hook(self, hook: SimHook) -> None:
        """Register a kernel observer (see :class:`SimHook`)."""
        self._hooks.append(hook)

    def remove_hook(self, hook: SimHook) -> None:
        """Unregister a previously added observer. Idempotent."""
        if hook in self._hooks:
            self._hooks.remove(hook)

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """Which EventQueue back-end is currently active ("heap"/"wheel")."""
        return self._queue.kind

    def _promote_queue(self, heap_queue: HeapEventQueue) -> None:
        """Adaptive escalation: swap the heap for a timing wheel in place.

        Called from the dispatch loop once the pending population crosses
        the adaptive threshold. Sequence numbers carry over, so dispatch
        order is unchanged — the property tests assert bit-identical
        traces across the promotion boundary.
        """
        self._promote_at = None
        self._queue = wheel_from_heap(heap_queue)
        self._qpush = self._queue.push

    # -- scheduling ------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        call = ScheduledCall(self._now + delay, fn, args, self)
        self._qpush(call.time, call)
        self._live_events += 1
        return call

    def spawn(self, gen: ProcessGenerator, name: str = "process") -> Process:
        """Start a generator coroutine as a simulation process.

        The first step of the process runs via the event heap at the current
        time, not synchronously — so ``spawn`` is safe to call from within
        another process without re-entrancy surprises.
        """
        proc = Process(self, gen, name=name)
        self._processes[proc] = None
        self.schedule(0.0, proc._start)
        return proc

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event. Returns False if the queue is empty."""
        entry = self._queue.pop_due(None)
        if entry is None:
            return False
        time = entry[0]
        call = entry[2]
        if time < self._now:
            raise SimulationError("event queue time went backwards")
        self._now = time
        self._live_events -= 1
        if self._hooks:
            for hook in self._hooks:
                hook.on_event_dispatch(time, call)
        call.fn(*call.args)
        if self._failure is not None:
            self._raise_pending_failure()
        return True

    def run(self, until: Optional[float] = None, check_deadlock: bool = False) -> None:
        """Run events until the queue drains or simulated time passes ``until``.

        With ``until`` set, the clock is advanced to exactly ``until`` even if
        the last event fires earlier, so back-to-back ``run`` calls compose.
        ``check_deadlock=True`` raises :class:`DeadlockError` if the queue
        drains while processes are still alive (useful in unit tests).

        The dispatch loop is the single hottest path of the whole library
        (every simulated event passes through it), so the heap back-end is
        inlined here rather than delegating to ``pop_due``: locals replace
        attribute lookups and the per-event method call. The inlined loop
        re-validates ``self._queue`` identity after every dispatch, so an
        adaptive heap→wheel promotion or a fast-forward jump from inside a
        dispatched event restarts the loop on the fresh structure.
        """
        now = self._now
        while True:
            queue = self._queue
            if type(queue) is HeapEventQueue:
                heap = queue._heap
                promote_at = self._promote_at
                if promote_at is not None and len(heap) >= promote_at:
                    self._promote_queue(queue)
                    continue
                swapped = False
                while heap:
                    entry = heap[0]
                    if until is not None and entry[0] > until:
                        break
                    _heappop(heap)
                    call = entry[2]
                    if call.cancelled:
                        continue
                    time = entry[0]
                    if time < now:
                        raise SimulationError("event queue time went backwards")
                    self._now = now = time
                    self._live_events -= 1
                    hooks = self._hooks
                    if hooks:
                        for hook in hooks:
                            hook.on_event_dispatch(time, call)
                    call.fn(*call.args)
                    if self._failure is not None:
                        self._raise_pending_failure()
                    if self._queue is not queue or queue._heap is not heap:
                        # Promoted or fast-forwarded from inside the event.
                        swapped = True
                        now = self._now
                        break
                    if promote_at is not None and len(heap) >= promote_at:
                        self._promote_queue(queue)
                        swapped = True
                        break
                if swapped:
                    continue
                break
            entry = queue.pop_due(until)
            if entry is None:
                break
            time = entry[0]
            call = entry[2]
            if time < now:
                raise SimulationError("event queue time went backwards")
            self._now = now = time
            self._live_events -= 1
            hooks = self._hooks
            if hooks:
                for hook in hooks:
                    hook.on_event_dispatch(time, call)
            call.fn(*call.args)
            if self._failure is not None:
                self._raise_pending_failure()
            now = self._now  # a fast-forward jump inside the event moves the clock
        if until is not None and self._now < until:
            self._now = until
        if check_deadlock and not len(self._queue):
            stuck = [p.name for p in self._processes if p.alive]
            if stuck:
                raise DeadlockError(f"no events left but processes blocked: {stuck}")

    # -- fast-forward support ----------------------------------------------
    def fast_forward(self, dt: float) -> None:
        """Jump the clock ``dt`` ms into the future without dispatching.

        Every pending event is shifted by exactly ``dt`` so relative timing
        is untouched; the caller (:class:`repro.sim.fastforward.
        FastForwardController`) is responsible for advancing any state the
        skipped events would have produced. Only sound when the pending set
        is exactly periodic — which the controller proves before calling.
        """
        if dt < 0:
            raise SimulationError(f"cannot fast-forward into the past (dt={dt})")
        if dt == 0.0:
            return
        self._queue.shift_all(dt)
        self._now += dt

    def veto_fast_forward(self, reason: str) -> None:
        """Mark this run as ineligible for fast-forward (chaos, tracing...).

        Irrevocable for the life of the simulator: the fast-forward
        controller checks the veto list at every anchor, so a veto placed
        mid-run (e.g. by a fault injector installing late) still lands
        before any jump.
        """
        self._ff_vetoes.append(reason)

    @property
    def fast_forward_vetoes(self) -> Tuple[str, ...]:
        return tuple(self._ff_vetoes)

    # -- failure propagation -------------------------------------------------
    def _note_failure(self, proc: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (proc, exc)

    def _raise_pending_failure(self) -> None:
        if self._failure is not None:
            proc, exc = self._failure
            self._failure = None
            raise SimulationError(f"process {proc.name!r} failed") from exc

    # -- introspection ---------------------------------------------------------
    @property
    def live_processes(self) -> Iterable[Process]:
        """Processes that have not yet finished (spawn order)."""
        return [p for p in self._processes if p.alive]

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the heap. O(1).

        Maintained as a live counter: incremented by :meth:`schedule`,
        decremented on dispatch and on :meth:`ScheduledCall.cancel` —
        re-walking the queue made this O(events) and showed up in sweeps
        that poll it.
        """
        return self._live_events

    def pending_entries(self) -> List[Entry]:
        """Sorted ``(time, seq, call)`` snapshot of every live event.

        O(n log n) introspection for the fast-forward fixed-point detector;
        not used on any dispatch path.
        """
        return sorted(self._queue.iter_pending())
