"""Synchronization primitives for simulation processes.

Everything a process can ``yield`` is a :class:`Waitable` (except
:class:`Timeout`, which the kernel special-cases for speed). Each primitive
mirrors a construct the real vSoC implementation relies on:

* :class:`Timeout` — modelled latency (a bus transfer, a decode, a VM exit).
* :class:`SimEvent` — one-shot completion notification (an emulated
  interrupt, a fence signal).
* :class:`AllOf` — join on several completions (multi-read hyperedges).
* :class:`Semaphore` / :class:`Mutex` — host-side locks guarding shared
  device state.
* :class:`FifoQueue` — command queues between guest drivers and host device
  executors (§3.4 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Sequence

from repro.errors import SimulationError

Callback = Callable[[Any, Optional[BaseException]], None]


class Waitable:
    """Protocol for objects a process may ``yield``.

    Implementations call the registered callback exactly once with
    ``(value, exception)``. If the waitable has already fired, the callback
    must still be delivered asynchronously (via the event heap) so that
    resume order stays deterministic.
    """

    __slots__ = ()

    def add_callback(self, fn: Callback) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Timeout:
    """Suspend the yielding process for ``delay`` milliseconds.

    ``value`` is returned from the ``yield`` expression on resume, which is
    occasionally handy for pipelining (`result = yield Timeout(cost, result)`).
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay:.6g})"


class SimEvent(Waitable):
    """A one-shot event: fires once with a value, waking all waiters.

    Late waiters (subscribing after :meth:`fire`) are woken immediately
    (next event-loop turn) with the stored value — the semantics of checking
    an already-signalled fence.
    """

    __slots__ = ("_sim", "name", "fired", "value", "_exception", "_callbacks")

    def __init__(self, sim: Any, name: str = "event"):
        self._sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callback] = []

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every waiter with ``value``."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._sim.schedule(0.0, fn, value, None)

    def fail(self, exc: BaseException) -> None:
        """Fire the event with an exception; waiters see it at their yield."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self._exception = exc
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._sim.schedule(0.0, fn, None, exc)

    def add_callback(self, fn: Callback) -> None:
        if self.fired:
            self._sim.schedule(0.0, fn, self.value, self._exception)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class AllOf(Waitable):
    """Fires when every child waitable has fired; value is the list of values.

    The first child exception (if any) is propagated once all children have
    completed, so no completion is lost.
    """

    __slots__ = ("_sim", "_pending", "_values", "_exception", "_callbacks", "_done")

    def __init__(self, sim: Any, children: Sequence[Waitable]):
        self._sim = sim
        self._pending = len(children)
        self._values: List[Any] = [None] * len(children)
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callback] = []
        if not children:
            self._done = True
        else:
            self._done = False
            for index, child in enumerate(children):
                child.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callback:
        def on_child(value: Any, exc: Optional[BaseException]) -> None:
            self._values[index] = value
            if exc is not None and self._exception is None:
                self._exception = exc
            self._pending -= 1
            if self._pending == 0:
                self._done = True
                callbacks, self._callbacks = self._callbacks, []
                for fn in callbacks:
                    self._sim.schedule(0.0, fn, self._values, self._exception)

        return on_child

    def add_callback(self, fn: Callback) -> None:
        if self._done:
            self._sim.schedule(0.0, fn, self._values, self._exception)
        else:
            self._callbacks.append(fn)


class Semaphore:
    """Counting semaphore with FIFO wakeup order.

    ``yield sem.acquire()`` suspends until a permit is available;
    :meth:`release` returns a permit. FIFO ordering keeps device command
    execution deterministic under contention.
    """

    def __init__(self, sim: Any, permits: int, name: str = "semaphore"):
        if permits < 0:
            raise SimulationError("semaphore permits must be >= 0")
        self._sim = sim
        self.name = name
        self._permits = permits
        self._waiters: Deque[SimEvent] = deque()

    @property
    def available(self) -> int:
        """Number of permits currently free."""
        return self._permits

    def acquire(self) -> Waitable:
        """Return a waitable that fires once a permit has been granted."""
        event = SimEvent(self._sim, name=f"{self.name}.acquire")
        if self._permits > 0:
            self._permits -= 1
            event.fire(None)
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Take a permit without waiting; returns False if none are free."""
        if self._permits > 0:
            self._permits -= 1
            return True
        return False

    def release(self) -> None:
        """Return a permit, waking the longest-waiting acquirer if any."""
        if self._waiters:
            self._waiters.popleft().fire(None)
        else:
            self._permits += 1


class Mutex(Semaphore):
    """Binary semaphore — a host-side lock."""

    def __init__(self, sim: Any, name: str = "mutex"):
        super().__init__(sim, permits=1, name=name)


class FifoQueue:
    """A FIFO channel between processes, optionally bounded.

    Models the per-device command queues of §3.4: guest drivers ``put``
    commands, host executor threads ``get`` them. With a capacity set,
    ``put`` blocks when the queue is full (back-pressure — the role the MIMD
    flow-control algorithm plays in vSoC).
    """

    def __init__(self, sim: Any, capacity: Optional[int] = None, name: str = "queue"):
        if capacity is not None and capacity <= 0:
            raise SimulationError("queue capacity must be positive or None")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Waitable:
        """Enqueue ``item``; the returned waitable fires once it is accepted."""
        event = SimEvent(self._sim, name=f"{self.name}.put")
        if self._getters:
            # Hand the item straight to the longest-waiting consumer.
            self._getters.popleft().fire(item)
            event.fire(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.fire(None)
        else:
            event.value = item  # parked until space frees up
            self._putters.append(event)
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the queue is full."""
        if self._getters:
            self._getters.popleft().fire(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Waitable:
        """Dequeue one item; the returned waitable fires with the item."""
        event = SimEvent(self._sim, name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            self._admit_parked_putter()
            event.fire(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self):
        """Non-blocking dequeue; returns the item or ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_parked_putter()
        return item

    def _admit_parked_putter(self) -> None:
        if self._putters and (self.capacity is None or len(self._items) < self.capacity):
            putter = self._putters.popleft()
            self._items.append(putter.value)
            putter.value = None
            putter.fire(None)

    def reset(self) -> List[Any]:
        """Flush the queue for device-crash recovery; returns the lost items.

        Everything pending is returned to the caller so it can be cancelled:
        queued items plus the items of parked (blocked) putters. Parked
        putters are woken — their put "succeeded" into a queue whose contents
        are about to be discarded, which matches a real device dropping its
        ring buffer. Outstanding getter events are dropped without firing:
        they belong to a killed executor, and letting them linger would
        silently swallow the first items put after recovery.
        """
        lost: List[Any] = list(self._items)
        self._items.clear()
        while self._putters:
            putter = self._putters.popleft()
            lost.append(putter.value)
            putter.value = None
            putter.fire(None)
        self._getters.clear()
        return lost
