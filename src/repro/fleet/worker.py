"""Simulation workers and the deterministic per-session state machine.

A :class:`SimWorker` models one sharded simulation-worker process of the
fleet: it hosts up to ``capacity`` load units of sessions, advances them
on a fixed tick, publishes heartbeats the supervisor watches, and hands
completed sessions' telemetry to the service. Workers can *crash* (beats
stop, sessions strand), *hang* (wedged for a while, then a revenant that
must stand down if it was declared dead), and *slow-heartbeat* — the
three fault kinds ``FaultPlan.worker_faults`` describes.

:class:`SessionSim` is the unit of migration, so its evolution is
engineered to be **independent of how advancement is sliced into calls**:
time is processed in whole session-local quanta of
:data:`QUANTUM_MS`, and the per-quantum frame-interval jitter comes from
a counter-based (splitmix64) hash of ``(seed, quantum index)`` rather
than sequential RNG state. Advancing 0→500 ms in one call or in two
250 ms calls therefore performs the *identical* float operations —
which is what makes restore-at-T determinism provable across worker
boundaries: capture, migrate, resume, and every subsequent quantum is
bit-identical to the run that never moved.

Per-session telemetry deliberately excludes placement (which worker, how
often migrated): those are control-plane facts the service accounts for,
and keeping them out of the session's own telemetry is what lets a
migrated and an unmigrated run compare bit-identical.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError, FleetError
from repro.fleet.arrivals import SessionSpec
from repro.fleet.clock import VirtualClock
from repro.fleet.recorder import NULL_RECORDER
from repro.obs.fleet import CounterSample, GaugeSample, TelemetrySnapshot, _labels_key

#: Session-local advancement quantum (ms). One jitter draw per quantum.
QUANTUM_MS = 250.0

#: Fractional spread of the per-quantum frame-interval jitter.
JITTER_SPAN = 0.10

_M64 = (1 << 64) - 1


def _mix64(seed: int, counter: int) -> float:
    """Counter-based uniform in [0, 1): splitmix64 of (seed, counter)."""
    x = (seed * 0x9E3779B97F4A7C15 + counter * 0xBF58476D1CE4E5B9 + 1) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    x = x ^ (x >> 31)
    return x / 2.0 ** 64


class SessionSim:
    """Deterministic frame-pipeline model of one attached user session."""

    __slots__ = (
        "spec", "started_at", "quanta", "progress", "presented",
        "ewma_interval_ms", "done",
    )

    def __init__(self, spec: SessionSpec, started_at: float):
        self.spec = spec
        self.started_at = started_at
        self.quanta = 0          # complete quanta processed
        self.progress = 0.0      # fractional frames
        self.presented = 0
        self.ewma_interval_ms = spec.frame_interval_ms
        self.done = False

    # -- advancement ---------------------------------------------------------
    def _step(self, dt_ms: float, service_factor: float) -> int:
        u = _mix64(self.spec.seed, self.quanta)
        interval = (
            self.spec.frame_interval_ms
            * (1.0 + JITTER_SPAN * (u - 0.5))
            * service_factor
        )
        self.progress += dt_ms / interval
        self.ewma_interval_ms = 0.5 * self.ewma_interval_ms + 0.5 * interval
        before = self.presented
        self.presented = int(self.progress)
        return self.presented - before

    def advance(self, until_ms: float, service_factor: float = 1.0) -> int:
        """Process all whole quanta ending by ``until_ms``; returns new frames.

        The final (partial) quantum is processed exactly once, when
        ``until_ms`` first reaches the session's end — so any sequence of
        calls covering the same span performs the same operations.
        """
        if self.done:
            return 0
        end = self.started_at + self.spec.duration_ms
        horizon = min(until_ms, end)
        newly = 0
        while self.started_at + (self.quanta + 1) * QUANTUM_MS <= horizon:
            newly += self._step(QUANTUM_MS, service_factor)
            self.quanta += 1
        if until_ms >= end:
            tail = end - (self.started_at + self.quanta * QUANTUM_MS)
            if tail > 0:
                newly += self._step(tail, service_factor)
            self.done = True
        return newly

    # -- derived telemetry ---------------------------------------------------
    @property
    def active_ms(self) -> float:
        """Simulated time this session has been advanced through."""
        if self.done:
            return self.spec.duration_ms
        return self.quanta * QUANTUM_MS

    def fps(self) -> float:
        active = self.active_ms
        return self.presented / (active / 1_000.0) if active > 0 else 0.0

    def meets_slo(self, fraction: float = 0.8) -> bool:
        if self.active_ms <= 0:
            return True
        return self.fps() >= fraction * self.spec.target_fps

    def telemetry(
        self,
        worker: str,
        partial: bool = False,
        extra_meta: Optional[Dict[str, str]] = None,
    ) -> TelemetrySnapshot:
        """This session's telemetry contribution, as a fleet snapshot.

        ``meta`` carries placement and identity (grouping key
        ``<worker>/<app>``); counters and gauges carry only
        placement-independent session state, so they bit-match across
        migrations. ``partial=True`` marks a mid-stream reading (the
        worker died or the session was shed before finishing).
        """
        meta: Dict[str, str] = {
            "emulator": worker,
            "app": self.spec.app,
            "session": self.spec.session_id,
            "priority": str(self.spec.priority),
        }
        if partial:
            meta["partial"] = "true"
        if extra_meta:
            meta.update(extra_meta)
        labels = _labels_key({"app": self.spec.app})
        return TelemetrySnapshot(
            meta=_labels_key(meta),
            counters=(
                CounterSample("session.frames", labels, float(self.presented)),
                CounterSample(
                    "session.completed", labels, 0.0 if partial else 1.0
                ),
            ),
            gauges=(
                GaugeSample("session.fps", labels, self.fps()),
                GaugeSample("session.latency_ms", labels, self.ewma_interval_ms),
                GaugeSample("session.load", labels, self.spec.load),
            ),
        )

    # -- checkpointing -------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Deterministic, JSON-able image of the session's dynamic state."""
        return {
            "session_id": self.spec.session_id,
            "started_at": self.started_at,
            "quanta": self.quanta,
            "progress": self.progress,
            "presented": self.presented,
            "ewma_interval_ms": self.ewma_interval_ms,
            "done": self.done,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        missing = [k for k in (
            "session_id", "started_at", "quanta", "progress", "presented",
            "ewma_interval_ms", "done",
        ) if k not in state]
        if missing:
            raise ConfigurationError(f"session state is missing keys: {missing}")
        if state["session_id"] != self.spec.session_id:
            raise ConfigurationError(
                f"state of session {state['session_id']!r} cannot restore "
                f"into {self.spec.session_id!r}"
            )
        for key in ("started_at", "progress", "ewma_interval_ms"):
            value = state[key]
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ConfigurationError(f"session {key} must be finite, got {value!r}")
        self.started_at = float(state["started_at"])
        self.quanta = int(state["quanta"])
        self.progress = float(state["progress"])
        self.presented = int(state["presented"])
        self.ewma_interval_ms = float(state["ewma_interval_ms"])
        self.done = bool(state["done"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SessionSim {self.spec.session_id} app={self.spec.app} "
            f"frames={self.presented} done={self.done}>"
        )


# -- worker states -----------------------------------------------------------
RUNNING = "running"
CRASHED = "crashed"
RETIRED = "retired"

CompletionCallback = Callable[["SimWorker", SessionSim], None]


class SimWorker:
    """One sharded simulation worker: hosts sessions, ticks, heartbeats."""

    def __init__(
        self,
        clock: VirtualClock,
        name: str,
        capacity: float = 100.0,
        tick_ms: float = QUANTUM_MS,
        heartbeat_ms: float = QUANTUM_MS,
        on_complete: Optional[CompletionCallback] = None,
    ):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        if tick_ms <= 0 or heartbeat_ms <= 0:
            raise ConfigurationError("tick and heartbeat intervals must be > 0")
        self.clock = clock
        self.name = name
        self.capacity = capacity
        self.tick_ms = tick_ms
        self.heartbeat_ms = heartbeat_ms
        self.on_complete = on_complete
        self.state = RUNNING
        self.epoch = 0
        self.sessions: Dict[str, SessionSim] = {}
        self.load = 0.0
        self.last_beat = clock.now
        self.beat_factor = 1.0
        self.hang_until = 0.0
        self.ticks = 0
        self.started = 0
        self.completed = 0
        self.crashes = 0
        self.recorder = NULL_RECORDER  # installed by attach_recorder

    # -- capacity ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.state == RUNNING

    @property
    def available(self) -> bool:
        """Placeable: alive and not currently wedged."""
        return self.alive and self.hang_until <= self.clock.now

    def free_capacity(self) -> float:
        return self.capacity - self.load

    def load_factor(self) -> float:
        return self.load / self.capacity

    def service_factor(self) -> float:
        """How much an overloaded worker stretches every frame interval."""
        return max(1.0, self.load / self.capacity)

    # -- session lifecycle ---------------------------------------------------
    def start_session(self, spec: SessionSpec) -> SessionSim:
        if not self.alive:
            raise FleetError(
                f"cannot place session {spec.session_id!r} on "
                f"{self.state} worker {self.name!r}"
            )
        if spec.session_id in self.sessions:
            raise FleetError(f"worker {self.name!r} already hosts {spec.session_id!r}")
        session = SessionSim(spec, started_at=self.clock.now)
        self.sessions[spec.session_id] = session
        self.load += spec.load
        self.started += 1
        return session

    def adopt(self, session: SessionSim) -> None:
        """Take over a migrated-in session (state already restored)."""
        if not self.alive:
            raise FleetError(
                f"cannot migrate {session.spec.session_id!r} onto "
                f"{self.state} worker {self.name!r}"
            )
        if session.spec.session_id in self.sessions:
            raise FleetError(
                f"worker {self.name!r} already hosts {session.spec.session_id!r}"
            )
        self.sessions[session.spec.session_id] = session
        self.load += session.spec.load

    def release(self, session_id: str) -> SessionSim:
        """Give up a session (migration source side)."""
        try:
            session = self.sessions.pop(session_id)
        except KeyError:
            raise FleetError(
                f"worker {self.name!r} does not host {session_id!r}"
            ) from None
        self.load -= session.spec.load
        return session

    # -- fault hooks ---------------------------------------------------------
    def crash(self) -> None:
        """Kill the worker process: beats stop, sessions strand."""
        if self.state == RUNNING:
            self.state = CRASHED
            self.crashes += 1

    def hang(self, duration_ms: float) -> None:
        """Wedge the worker: no ticks, no beats, self-recovers after."""
        self.hang_until = max(self.hang_until, self.clock.now + duration_ms)

    def slow_beats(self, duration_ms: float, factor: float) -> None:
        """Stretch heartbeat cadence by ``factor`` for ``duration_ms``."""
        self.beat_factor = factor
        self.clock.schedule(duration_ms, self._reset_beat_factor)

    def _reset_beat_factor(self) -> None:
        self.beat_factor = 1.0

    def revive(self) -> None:
        """Restart after a crash: fresh epoch, empty accounting kept."""
        self.state = RUNNING
        self.epoch += 1
        self.hang_until = 0.0
        self.beat_factor = 1.0
        self.last_beat = self.clock.now
        self.clock.spawn(self.run(), name=f"worker.{self.name}.e{self.epoch}")

    def retire(self) -> None:
        self.state = RETIRED

    # -- the run loop --------------------------------------------------------
    async def run(self) -> None:
        """Tick loop: advance sessions, complete the done ones, beat."""
        epoch = self.epoch
        while self.state == RUNNING and self.epoch == epoch:
            await self.clock.sleep(self.tick_ms)
            if self.state != RUNNING or self.epoch != epoch:
                return  # killed (or superseded by a revive) while sleeping
            now = self.clock.now
            if self.hang_until > now:
                continue  # wedged: no beats, no progress
            if now - self.last_beat >= self.heartbeat_ms * self.beat_factor:
                self.last_beat = now
            self._tick(now)

    def _tick(self, now: float) -> None:
        self.ticks += 1
        factor = self.service_factor()
        finished: List[SessionSim] = []
        for session in self.sessions.values():
            first = session.quanta
            newly = session.advance(now, factor)
            if session.quanta > first or session.done:
                self.recorder.quantum(self.name, session, first, newly)
            if session.done:
                finished.append(session)
        for session in finished:
            del self.sessions[session.spec.session_id]
            self.load -= session.spec.load
            self.completed += 1
            if self.on_complete is not None:
                self.on_complete(self, session)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimWorker {self.name} {self.state} sessions={len(self.sessions)} "
            f"load={self.load:.1f}/{self.capacity:.0f}>"
        )
