"""Deterministic virtual time for the asyncio control plane.

The fleet service is asyncio code — coroutines for the arrival feeder,
worker run loops, the supervisor, and the control loop — but production
emulator farms are judged on *simulated* time, and CI needs every run to
be reproducible bit for bit. :class:`VirtualClock` squares that circle:
it owns a monotonically advancing virtual clock (milliseconds, matching
:class:`repro.sim.Simulator`) and a timer heap, and it pumps the asyncio
event loop **to quiescence between timer firings**. No coroutine ever
touches the wall clock; ``await clock.sleep(5.0)`` parks the task until
the pump reaches ``now + 5.0``.

Determinism rests on two properties:

* timers fire strictly in ``(time, insertion-seq)`` order, one at a time,
  and the loop is drained (every woken task either finishes or parks
  again) before the next timer fires;
* asyncio's ready queue is FIFO, so a fixed firing order yields a fixed
  task interleaving.

The drain ("settle") protocol needs to know when every task is parked.
The clock therefore tracks a *runnable* count: ``spawn`` increments it,
parking on a clock primitive decrements it, firing a timer that wakes a
task re-increments it, and task completion decrements it. Fleet code must
only block through clock primitives (:meth:`sleep`, :meth:`wait`,
:class:`FleetEvent`); blocking on a foreign awaitable would leave the
runnable count high and trip the settle limit with a loud
:class:`~repro.errors.FleetError` instead of hanging CI.

``schedule(delay, fn, *args)`` mirrors ``Simulator.schedule`` (cancelable
handle, callback at ``now + delay``), which is exactly the surface
:class:`repro.sim.resilience.Deadline` needs — so the supervisor arms its
drain deadlines with the same watchdog class the copy planner uses.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import FleetError
from repro.sim.eventq import make_event_queue

#: Upper bound on settle iterations between two timer firings. A chain of
#: synchronous wake-ups this long means a task is blocked on a non-clock
#: awaitable (or two tasks ping-pong without advancing time) — a bug.
SETTLE_LIMIT = 100_000


class ClockHandle:
    """Cancelable handle for one scheduled callback (``Simulator`` idiom)."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class VirtualClock:
    """Virtual-time timer wheel driving an asyncio loop deterministically."""

    def __init__(self, queue: Any = "wheel") -> None:
        self.now = 0.0
        # The shared EventQueue abstraction from the DES kernel. Fleet runs
        # are the workload the timing wheel exists for (thousands of
        # concurrent session timers), so the wheel is the default; any
        # kernel-compatible spec or instance is accepted.
        self._queue = make_event_queue(queue)
        self._tasks: List["asyncio.Task[Any]"] = []
        self._runnable = 0
        self._parked: set = set()
        self.failures: List[Tuple[str, BaseException]] = []
        self.timers_fired = 0

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ClockHandle:
        """Run ``fn(*args)`` at ``now + delay`` virtual ms; returns a handle."""
        if delay < 0:
            raise FleetError(f"cannot schedule into the past (delay={delay})")
        handle = ClockHandle(self.now + delay, fn, args)
        self._queue.push(handle.time, handle)
        return handle

    def spawn(self, coro: Any, name: str = "task") -> "asyncio.Task[Any]":
        """Track a coroutine as a fleet task (counts toward settle)."""
        task = asyncio.ensure_future(coro)
        try:
            task.set_name(name)
        except AttributeError:  # pragma: no cover - 3.7 compat path
            pass
        self._runnable += 1
        task.add_done_callback(self._on_task_done)
        self._tasks.append(task)
        return task

    def _on_task_done(self, task: "asyncio.Task[Any]") -> None:
        if task in self._parked:
            # Cancelled while parked: it never became runnable again.
            self._parked.discard(task)
        else:
            self._runnable -= 1
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            name = task.get_name() if hasattr(task, "get_name") else "task"
            self.failures.append((name, exc))

    # -- blocking primitives -------------------------------------------------
    async def _park(self, fut: "asyncio.Future[Any]") -> Any:
        task = asyncio.current_task()
        self._runnable -= 1
        self._parked.add(task)
        try:
            return await fut
        finally:
            self._parked.discard(task)

    def _wake(self, fut: "asyncio.Future[Any]", value: Any = None,
              exc: Optional[BaseException] = None) -> None:
        if fut.done():
            return
        self._runnable += 1
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(value)

    async def sleep(self, delay_ms: float) -> None:
        """Park the current task for ``delay_ms`` of virtual time."""
        if delay_ms <= 0:
            await asyncio.sleep(0)
            return
        fut = asyncio.get_event_loop().create_future()
        self.schedule(delay_ms, self._wake, fut)
        await self._park(fut)

    async def wait(self, waitable: Any) -> Any:
        """Await a sim-style waitable (``add_callback(fn(value, exc))``)."""
        fut = asyncio.get_event_loop().create_future()
        waitable.add_callback(lambda value, exc: self._wake(fut, value, exc))
        return await self._park(fut)

    # -- the pump ------------------------------------------------------------
    async def _settle(self) -> None:
        spins = 0
        while self._runnable > 0:
            spins += 1
            if spins > SETTLE_LIMIT:
                raise FleetError(
                    f"virtual clock failed to settle after {SETTLE_LIMIT} "
                    f"iterations at t={self.now:.3f} ms — a task is blocked "
                    "on a non-clock awaitable"
                )
            await asyncio.sleep(0)

    async def run_until(self, t_end: float) -> None:
        """Advance virtual time to ``t_end``, firing due timers in order."""
        await self._settle()
        while True:
            entry = self._queue.pop_due(t_end)
            if entry is None:
                break
            time_ms, _seq, handle = entry
            if time_ms > self.now:
                self.now = time_ms
            self.timers_fired += 1
            handle.fn(*handle.args)
            await self._settle()
        if t_end > self.now:
            self.now = t_end
        await self._settle()

    def pending_timers(self) -> int:
        return sum(1 for _ in self._queue.iter_pending())

    def raise_task_failures(self) -> None:
        """Re-raise the first background-task failure, if any."""
        if self.failures:
            name, exc = self.failures[0]
            raise FleetError(f"fleet task {name!r} crashed: {exc!r}") from exc


class FleetEvent:
    """One-shot clock-aware event (the asyncio face of ``SimEvent``)."""

    __slots__ = ("_clock", "name", "fired", "value", "_waiters")

    def __init__(self, clock: VirtualClock, name: str = "event"):
        self._clock = clock
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: List["asyncio.Future[Any]"] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise FleetError(f"fleet event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            self._clock._wake(fut, value)

    async def wait(self) -> Any:
        if self.fired:
            await asyncio.sleep(0)
            return self.value
        fut = asyncio.get_event_loop().create_future()
        self._waiters.append(fut)
        return await self._clock._park(fut)
