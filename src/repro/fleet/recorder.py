"""The fleet flight recorder: causal session-lifecycle tracing.

PR 2's tracer stopped at the emulator boundary: admission, placement,
migration, drain and supervision decisions left no causal trace. The
:class:`FlightRecorder` extends the same span/flow machinery across the
entire ``repro.fleet`` control plane:

* each session carries **one flow id** from ``session.offer`` through
  ``session.place`` → ``session.confirm`` → ``session.quantum[i]`` →
  (``session.migrate`` | ``session.lost``) → ``session.complete``, so the
  exported Perfetto trace renders one connected arrow chain per session;
* migrations emit a **paired** ``migrate.send`` / ``migrate.recv`` span
  with a shared ``bind_id`` (``flow_out`` on the source worker's track,
  ``flow_in`` on the target's) — the cross-worker-boundary link
  ``validate_chrome_trace`` pairing-checks;
* supervisor incidents (declared-dead, fence, drain, restart, retire)
  and control-loop ticks land as spans on their own tracks in the same
  virtual timeline;
* every lifecycle decision also lands in a streaming
  :class:`~repro.obs.events.EventLog` (JSONL, seq-numbered,
  crash-tolerant) — the artifact the live dashboard and the
  ``flightdeck`` replay CLI fold;
* per-phase latency/queue-depth histograms (admission wait, placement
  load, migration transfer bytes, drain duration, live-session depth)
  accumulate in a :class:`~repro.obs.registry.MetricsRegistry`.

Determinism is non-negotiable: the recorder only ever *reads* the
virtual clock — it never schedules timers, sleeps, or touches the
aggregator — so a recorded run's summary and per-session outcomes are
byte-identical to an unrecorded run's (test-proven, matching PR 2's
tracing-on/off bar).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs.events import EventLog
from repro.obs.export import chrome_trace
from repro.obs.registry import MetricsRegistry
from repro.obs.span import Span, Tracer

#: Default span-retention ring: enough for every lifecycle span of a
#: quick run; long runs wrap and count drops instead of growing.
DEFAULT_SPAN_CAP = 65_536

#: Virtual-time cadence (ms) between live-dashboard re-renders.
DEFAULT_CADENCE_MS = 1_000.0

#: Tracks that belong to the control plane's Chrome process group.
_SERVICE_TRACKS = ("service.admission", "service.placement",
                   "service.control", "supervisor", "faults")


class FlightRecorder:
    """Span + event + histogram sink for one fleet run.

    Construct with the service's :class:`~repro.fleet.clock.VirtualClock`
    and attach via :meth:`FleetService.attach_recorder`. A disabled
    recorder (:data:`NULL_RECORDER`) makes every hook a cheap no-op.
    """

    def __init__(
        self,
        clock=None,
        events: Optional[EventLog] = None,
        max_spans: Optional[int] = DEFAULT_SPAN_CAP,
        enabled: bool = True,
    ):
        if enabled and clock is None:
            raise ValueError("an enabled FlightRecorder needs the fleet clock")
        self.enabled = enabled
        self._clock = clock
        self.tracer = Tracer(clock, max_spans=max_spans) if enabled \
            else Tracer(enabled=False)
        self.events = events if events is not None else EventLog(clock)
        self.registry = MetricsRegistry(enabled=enabled)
        #: Live-dashboard hook: called with this recorder every
        #: ``cadence_ms`` of *virtual* time (from the control tick — the
        #: recorder itself never schedules anything).
        self.on_cadence: Optional[Callable[["FlightRecorder"], None]] = None
        self.cadence_ms = DEFAULT_CADENCE_MS
        self._next_cadence = 0.0
        self._flows: Dict[str, int] = {}
        self._offer_ms: Dict[str, float] = {}
        self._migrations = 0

    # -- run boundary --------------------------------------------------------
    def run_started(self, trace, n_workers: int, until: float) -> None:
        if not self.enabled:
            return
        self.events.emit(
            "run.start",
            seed=trace.seed,
            sessions=len(trace),
            horizon_ms=trace.horizon_ms,
            workers=n_workers,
            until_ms=until,
        )

    def run_ended(self, summary: Mapping[str, Any]) -> None:
        if not self.enabled:
            return
        self.events.emit(
            "run.end",
            stats=dict(summary["stats"]),
            recovery=dict(summary["recovery"]),
            active=summary["active_at_end"],
            window=summary["admission"]["window"],
            level=summary["degradation"]["level"],
            balanced=summary["balanced"],
        )

    # -- admission -----------------------------------------------------------
    def offered(self, spec) -> None:
        if not self.enabled:
            return
        flow = self.tracer.new_flow()
        self._flows[spec.session_id] = flow
        self._offer_ms[spec.session_id] = self._clock.now
        self._point("session.offer", "service.admission", flow=flow,
                    session=spec.session_id, app=spec.app,
                    priority=spec.priority)
        self.events.emit("session.offer", session=spec.session_id,
                         app=spec.app, priority=spec.priority, load=spec.load)

    def shed(self, spec, reason: str) -> None:
        if not self.enabled:
            return
        flow = self._flows.pop(spec.session_id, 0)
        self._offer_ms.pop(spec.session_id, None)
        self.tracer.instant("session.shed", "service.admission", cat="fleet",
                            flow=flow, session=spec.session_id, reason=reason)
        self.events.emit("session.shed", session=spec.session_id,
                         reason=reason)

    def placed(self, spec, worker_name: str, predicted: float,
               load_factor: float) -> None:
        if not self.enabled:
            return
        self._point("session.place", "service.placement",
                    flow=self._flows.get(spec.session_id, 0),
                    session=spec.session_id, worker=worker_name,
                    predicted=predicted)
        self.registry.histogram("fleet.placement_load").observe(load_factor)
        self.events.emit("session.place", session=spec.session_id,
                         worker=worker_name, predicted=predicted)

    def admitted(self, spec, worker_name: str) -> None:
        if not self.enabled:
            return
        self.events.emit("session.admit", session=spec.session_id,
                         worker=worker_name)

    def confirmed(self, session_id: str) -> None:
        if not self.enabled:
            return
        offered_at = self._offer_ms.pop(session_id, None)
        wait = (self._clock.now - offered_at) if offered_at is not None else 0.0
        self._point("session.confirm", "service.admission",
                    flow=self._flows.get(session_id, 0),
                    session=session_id, wait_ms=wait)
        self.registry.histogram("fleet.admission_wait_ms").observe(wait)
        self.events.emit("session.confirm", session=session_id, wait_ms=wait)

    # -- worker progress -----------------------------------------------------
    def quantum(self, worker_name: str, session, first: int, newly: int) -> None:
        """One tick's worth of whole quanta a session just advanced through.

        The span covers the session-local interval the quanta occupy
        (``started_at + first·Q`` → where the advance landed), so the
        worker track shows exactly *when* each session made progress.
        """
        if not self.enabled:
            return
        from repro.fleet.worker import QUANTUM_MS

        start = session.started_at + first * QUANTUM_MS
        end = min(self._clock.now,
                  session.started_at + session.spec.duration_ms) \
            if session.done else session.started_at + session.quanta * QUANTUM_MS
        span = self.tracer.begin(
            "session.quantum", f"worker.{worker_name}", cat="fleet",
            flow=self._flows.get(session.spec.session_id, 0),
            session=session.spec.session_id, first=first,
            last=session.quanta, frames=newly,
        )
        span.start = start
        self.tracer.end(span)
        span.end = max(start, end)

    def completed(self, worker_name: str, session) -> None:
        if not self.enabled:
            return
        sid = session.spec.session_id
        self._point("session.complete", f"worker.{worker_name}",
                    flow=self._flows.pop(sid, 0), session=sid,
                    frames=session.presented)
        self._offer_ms.pop(sid, None)
        self.events.emit(
            "session.complete", session=sid, worker=worker_name,
            app=session.spec.app, priority=session.spec.priority,
            frames=session.presented, fps=session.fps(),
            latency_ms=session.ewma_interval_ms, load=session.spec.load,
        )

    def lost(self, worker_name: str, session) -> None:
        if not self.enabled:
            return
        sid = session.spec.session_id
        self._point("session.lost", "supervisor",
                    flow=self._flows.pop(sid, 0), session=sid,
                    worker=worker_name)
        self._offer_ms.pop(sid, None)
        self.events.emit(
            "session.lost", session=sid, worker=worker_name,
            app=session.spec.app, priority=session.spec.priority,
            frames=session.presented, fps=session.fps(),
            latency_ms=session.ewma_interval_ms, load=session.spec.load,
        )

    # -- migration -----------------------------------------------------------
    def migrated(self, record, wire_bytes: Optional[int] = None) -> None:
        """Paired send/recv spans: one bind_id arrow across the boundary."""
        if not self.enabled:
            return
        if wire_bytes is None:
            wire_bytes = getattr(record, "wire_bytes", 0)
        self._migrations += 1
        bind = f"mig:{record.session_id}:{self._migrations}"
        flow = self._flows.get(record.session_id, 0)
        self._point("migrate.send", f"worker.{record.source}", flow=flow,
                    session=record.session_id, target=record.target,
                    reason=record.reason, bind_id=bind, flow_out=True)
        self._point("migrate.recv", f"worker.{record.target}", flow=flow,
                    session=record.session_id, source=record.source,
                    bytes=wire_bytes, bind_id=bind, flow_in=True)
        self.registry.histogram("fleet.migration_wire_bytes") \
            .observe(float(wire_bytes))
        self.events.emit(
            "session.migrate", session=record.session_id,
            source=record.source, target=record.target,
            reason=record.reason, bytes=wire_bytes, digest=record.digest,
        )

    # -- faults and supervision ----------------------------------------------
    def fault_injected(self, event) -> None:
        if not self.enabled:
            return
        self.tracer.instant("fault." + event.kind, "faults", cat="fleet",
                            worker=event.worker,
                            duration_ms=event.duration_ms)
        self.events.emit("worker.fault", worker=event.worker,
                         fault=event.kind, duration_ms=event.duration_ms)

    def worker_dead(self, worker_name: str, silence_ms: float) -> None:
        if not self.enabled:
            return
        self.tracer.instant("worker.dead", "supervisor", cat="fleet",
                            worker=worker_name, silence_ms=silence_ms)
        self.events.emit("worker.dead", worker=worker_name,
                         silence_ms=silence_ms)

    def worker_fenced(self, worker_name: str) -> None:
        if not self.enabled:
            return
        self.tracer.instant("worker.fence", "supervisor", cat="fleet",
                            worker=worker_name)
        self.events.emit("worker.fence", worker=worker_name)

    def drain_started(self, worker_name: str) -> Optional[Span]:
        if not self.enabled:
            return None
        return self.tracer.begin("worker.drain", "supervisor", cat="fleet",
                                 worker=worker_name)

    def drain_finished(self, worker_name: str, span: Optional[Span],
                       evacuated: int, lost: int, timed_out: bool) -> None:
        if not self.enabled:
            return
        duration = 0.0
        if span is not None:
            self.tracer.end(span, evacuated=evacuated, lost=lost)
            duration = span.duration or 0.0
        self.registry.histogram("fleet.drain_ms").observe(duration)
        self.events.emit("worker.drain", worker=worker_name,
                         evacuated=evacuated, lost=lost,
                         duration_ms=duration, timed_out=timed_out)

    def worker_restarted(self, worker_name: str, attempts: int) -> None:
        if not self.enabled:
            return
        self.tracer.instant("worker.restart", "supervisor", cat="fleet",
                            worker=worker_name, attempts=attempts)
        self.events.emit("worker.restart", worker=worker_name,
                         attempts=attempts)

    def worker_retired(self, worker_name: str, attempts: int) -> None:
        if not self.enabled:
            return
        self.tracer.instant("worker.retire", "supervisor", cat="fleet",
                            worker=worker_name, attempts=attempts)
        self.events.emit("worker.retire", worker=worker_name,
                         attempts=attempts)

    # -- control loop --------------------------------------------------------
    def control_tick(self, live: int, window: float, level: int) -> None:
        if not self.enabled:
            return
        self._point("control.tick", "service.control",
                    live=live, window=window, level=level)
        self.registry.histogram("fleet.queue_depth").observe(float(live))
        self.events.emit("control.tick", live=live, window=window,
                         level=level)
        if self.on_cadence is not None and self._clock.now >= self._next_cadence:
            self._next_cadence = self._clock.now + self.cadence_ms
            self.on_cadence(self)

    # -- export --------------------------------------------------------------
    def track_groups(self) -> Dict[str, str]:
        """Chrome pid grouping: control plane vs the worker pool."""
        groups = {track: "service" for track in _SERVICE_TRACKS}
        for span in list(self.tracer.spans) + list(self.tracer.instants):
            if span.track.startswith("worker."):
                groups.setdefault(span.track, "workers")
        return groups

    def export_trace(self) -> Dict[str, Any]:
        """Chrome/Perfetto trace dict of everything recorded so far."""
        end = self._clock.now if self._clock is not None else None
        return chrome_trace(self.tracer, track_groups=self.track_groups(),
                            end_time=end)

    def summary(self) -> Dict[str, Any]:
        """Recorder bookkeeping for the run report (additive section)."""
        return {
            "events": len(self.events),
            "spans": len(self.tracer.spans),
            "instants": len(self.tracer.instants),
            "dropped_spans": self.tracer.dropped_spans,
            "flows": len(self.tracer.flows()),
            "metrics": self.registry.to_dict(),
        }

    def close(self) -> None:
        self.events.close()

    # -- internals -----------------------------------------------------------
    def _point(self, name: str, track: str, flow: int = 0, **args: Any) -> Span:
        """A zero-duration lifecycle span (flows bind to slices, so these
        are 'X' events rather than instants)."""
        span = self.tracer.begin(name, track, cat="fleet", flow=flow, **args)
        self.tracer.end(span)
        return span


#: Shared disabled recorder — the default on every fleet component.
NULL_RECORDER = FlightRecorder(enabled=False)
