"""Worker supervision: heartbeat health checks, drain-on-crash, restarts.

The supervisor never trusts a worker's word that it is healthy — it
watches heartbeats. A worker that has been silent for more than
``miss_threshold`` heartbeat intervals is *declared dead* regardless of
why (crashed process, wedged event loop, or a hang long enough to be
indistinguishable from death), fenced so a revenant cannot resume, and
**drained**: every stranded session is checkpoint-migrated onto a healthy
worker through the same checksummed snapshot path planned migrations use.
The drain is bounded by a :class:`~repro.sim.resilience.Deadline`;
sessions the deadline strands are counted as lost, never silently
dropped.

Restarts are bounded by a :class:`~repro.sim.resilience.RetryPolicy`:
each attempt backs off exponentially, an attempt inside the fault's
``down_until`` window counts as a failure, and an exhausted policy
retires the worker permanently. All bookkeeping lands in
:class:`FleetRecoveryStats`, the fleet-level extension of the
device-recovery ``RecoveryStats``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.fleet.clock import VirtualClock
from repro.fleet.migration import MigrationRecord, migrate_session
from repro.fleet.recorder import NULL_RECORDER
from repro.fleet.worker import CRASHED, RETIRED, RUNNING, SessionSim, SimWorker
from repro.obs.fleet import TelemetrySnapshot
from repro.recovery.coordinator import RecoveryStats
from repro.sim.resilience import Deadline, RetryPolicy

#: Restart ladder: first attempt after 200 ms, doubling to a 2 s cap,
#: at most six tries before the worker is retired for good.
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=6, base_delay_ms=200.0, multiplier=2.0, max_delay_ms=2_000.0
)


class FleetRecoveryStats(RecoveryStats):
    """Device-recovery stats plus the fleet-level drain/restart ledger."""

    def __init__(self) -> None:
        super().__init__()
        self.drains = 0
        self.drain_timeouts = 0
        self.evacuated_sessions = 0
        self.lost_sessions = 0
        self.worker_restarts = 0
        self.retired_workers = 0

    def as_dict(self) -> Dict[str, int]:
        out = super().as_dict()
        out.update({
            "drains": self.drains,
            "drain_timeouts": self.drain_timeouts,
            "evacuated_sessions": self.evacuated_sessions,
            "lost_sessions": self.lost_sessions,
            "worker_restarts": self.worker_restarts,
            "retired_workers": self.retired_workers,
        })
        return out


# The service wires these in: where to put an evacuee, what to do with a
# session nobody could take, and where migration/telemetry records go.
PlacementFn = Callable[[SessionSim, str], Optional[SimWorker]]
LostFn = Callable[[SessionSim, str], None]
MigratedFn = Callable[[MigrationRecord], None]
TelemetryFn = Callable[[TelemetrySnapshot], None]


class WorkerSupervisor:
    """Watches worker heartbeats; drains and restarts the ones that die."""

    def __init__(
        self,
        clock: VirtualClock,
        stats: Optional[FleetRecoveryStats] = None,
        restart_policy: RetryPolicy = DEFAULT_RESTART_POLICY,
        miss_threshold: int = 4,
        check_ms: float = 250.0,
        drain_timeout_ms: float = 2_000.0,
        drain_batch: int = 512,
        drain_pause_ms: float = 5.0,
    ):
        self.clock = clock
        self.stats = stats if stats is not None else FleetRecoveryStats()
        self.restart_policy = restart_policy
        self.miss_threshold = miss_threshold
        self.check_ms = check_ms
        self.drain_timeout_ms = drain_timeout_ms
        self.drain_batch = drain_batch
        self.drain_pause_ms = drain_pause_ms
        self.workers: Dict[str, SimWorker] = {}
        self.down_until: Dict[str, float] = {}
        self.place_evacuee: Optional[PlacementFn] = None
        self.on_lost: Optional[LostFn] = None
        self.on_migrated: Optional[MigratedFn] = None
        self.on_partial_telemetry: Optional[TelemetryFn] = None
        self.recorder = NULL_RECORDER  # installed by attach_recorder
        self._incidents: Set[str] = set()
        self._stopped = False

    # -- wiring --------------------------------------------------------------
    def register(self, worker: SimWorker) -> None:
        self.workers[worker.name] = worker

    def mark_down(self, name: str, until_ms: float) -> None:
        """Record a fault window: restarts before ``until_ms`` will fail."""
        self.down_until[name] = max(self.down_until.get(name, 0.0), until_ms)

    def stop(self) -> None:
        self._stopped = True

    # -- health checking -----------------------------------------------------
    def declared_dead(self, worker: SimWorker, now: float) -> bool:
        """Silence longer than ``miss_threshold`` heartbeats means dead."""
        if worker.state == RETIRED:
            return False
        return now - worker.last_beat > self.miss_threshold * worker.heartbeat_ms

    async def monitor(self) -> None:
        """The supervision loop: periodic health sweep over all workers."""
        while not self._stopped:
            await self.clock.sleep(self.check_ms)
            if self._stopped:
                return
            self.check(self.clock.now)

    def check(self, now: float) -> None:
        for name in sorted(self.workers):
            if name in self._incidents:
                continue  # already being drained/restarted
            worker = self.workers[name]
            if self.declared_dead(worker, now):
                self._incidents.add(name)
                self.recorder.worker_dead(name, now - worker.last_beat)
                self.clock.spawn(
                    self._handle_failure(name), name=f"supervise.{name}"
                )

    # -- the incident path ---------------------------------------------------
    async def _handle_failure(self, name: str) -> None:
        worker = self.workers[name]
        # Fence first: a hung worker declared dead must never resume as a
        # revenant and double-advance sessions that were migrated away.
        if worker.state == RUNNING:
            worker.crash()
        self.recorder.worker_fenced(name)
        self.stats.crashes += 1
        await self._drain(worker)
        await self._restart(worker)
        self._incidents.discard(name)

    async def _drain(self, worker: SimWorker) -> None:
        """Evacuate every stranded session, bounded by a drain deadline."""
        self.stats.drains += 1
        span = self.recorder.drain_started(worker.name)
        evac_before = self.stats.evacuated_sessions
        lost_before = self.stats.lost_sessions
        deadline = Deadline(
            self.clock, self.drain_timeout_ms, label=f"drain.{worker.name}"
        )
        pending: List[str] = list(worker.sessions)
        try:
            while pending:
                batch, pending = pending[: self.drain_batch], pending[self.drain_batch:]
                for session_id in batch:
                    self._evacuate_one(worker, session_id)
                if pending:
                    if deadline.expired:
                        break
                    await self.clock.sleep(self.drain_pause_ms)
        finally:
            deadline.cancel()
        timed_out = bool(pending)
        if pending:
            self.stats.drain_timeouts += 1
            for session_id in pending:
                self._lose(worker, session_id)
        self.recorder.drain_finished(
            worker.name, span,
            self.stats.evacuated_sessions - evac_before,
            self.stats.lost_sessions - lost_before,
            timed_out,
        )

    def _evacuate_one(self, worker: SimWorker, session_id: str) -> None:
        session = worker.sessions.get(session_id)
        if session is None or session.done:
            return
        target = (
            self.place_evacuee(session, worker.name)
            if self.place_evacuee is not None
            else None
        )
        if target is None or not target.alive:
            self._lose(worker, session_id)
            return
        record = migrate_session(
            session_id, worker, target, reason=f"drain:{worker.name}"
        )
        self.stats.evacuated_sessions += 1
        if self.on_migrated is not None:
            self.on_migrated(record)

    def _lose(self, worker: SimWorker, session_id: str) -> None:
        """A session nobody could take: stream its truncated telemetry."""
        session = worker.release(session_id)
        self.stats.lost_sessions += 1
        if self.on_partial_telemetry is not None:
            self.on_partial_telemetry(
                session.telemetry(worker.name, partial=True)
            )
        if self.on_lost is not None:
            self.on_lost(session, worker.name)

    async def _restart(self, worker: SimWorker) -> None:
        """Bounded-backoff restart; retire the worker when exhausted."""
        attempts = 0
        while True:
            attempts += 1
            await self.clock.sleep(self.restart_policy.delay_before_retry(attempts))
            if worker.state != CRASHED:
                return  # externally retired/revived while we backed off
            if self.clock.now >= self.down_until.get(worker.name, 0.0):
                worker.revive()
                self.stats.recoveries += 1
                self.stats.worker_restarts += 1
                self.recorder.worker_restarted(worker.name, attempts)
                return
            if self.restart_policy.exhausted(attempts):
                worker.retire()
                self.stats.retired_workers += 1
                self.recorder.worker_retired(worker.name, attempts)
                return
