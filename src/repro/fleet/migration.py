"""Live session migration between simulation workers.

A migration moves a running :class:`~repro.fleet.worker.SessionSim` from
one worker to another with provable restore-at-T determinism, riding the
same checksummed :class:`~repro.recovery.Snapshot` machinery the
device-level recovery layer uses:

1. **Capture** — the source serializes the session's dynamic state into a
   ``Snapshot`` whose ``recipe`` is the session's immutable
   :meth:`~repro.fleet.arrivals.SessionSpec.recipe`.
2. **Transfer** — the snapshot crosses the worker boundary as canonical
   JSON bytes; :meth:`Snapshot.from_json` checksum-verifies them, so a
   truncated or bit-flipped transfer raises
   :class:`~repro.errors.SnapshotCorruptError` instead of silently
   corrupting the target.
3. **Restore + verify** — the target rebuilds the session from the
   recipe, applies the state, recaptures and ``verify_against``-checks
   the recapture, proving restore-at-T produced byte-identical state.
4. **Adopt** — the rebuilt session joins the target worker.

Because :class:`SessionSim` advances in whole session-local quanta with
counter-based jitter, the migrated session's every subsequent quantum is
bit-identical to the run that never moved — the property
``tests/test_fleet_service.py`` proves end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FleetError
from repro.fleet.arrivals import SessionSpec
from repro.fleet.worker import SessionSim, SimWorker
from repro.recovery.snapshot import Snapshot

#: ``recipe["kind"]`` stamped on session snapshots, so a fleet snapshot
#: can never be confused with a device-level emulator snapshot.
SESSION_SNAPSHOT_KIND = "fleet-session"


@dataclass(frozen=True)
class MigrationRecord:
    """One completed migration, for the service's audit trail."""

    session_id: str
    source: str
    target: str
    at_ms: float
    reason: str
    digest: str
    #: Size of the canonical-JSON wire image that crossed the boundary.
    wire_bytes: int = 0


def capture_session(session: SessionSim) -> Snapshot:
    """Checkpoint one session: dynamic state + identity recipe."""
    recipe = dict(session.spec.recipe())
    recipe["kind"] = SESSION_SNAPSHOT_KIND
    return Snapshot(session.snapshot_state(), recipe=recipe)


def restore_session(snapshot: Snapshot) -> SessionSim:
    """Rebuild a session from a (verified) snapshot and prove the restore.

    The session is reconstructed from the recipe, the captured state is
    applied, and a recapture is verified against the original — any
    divergence raises :class:`~repro.errors.SnapshotMismatchError` naming
    the first differing key, exactly like device-level replay.
    """
    if snapshot.recipe.get("kind") != SESSION_SNAPSHOT_KIND:
        raise FleetError(
            f"snapshot recipe kind {snapshot.recipe.get('kind')!r} is not a "
            f"fleet session snapshot"
        )
    spec = SessionSpec.from_recipe(snapshot.recipe)
    session = SessionSim(spec, started_at=float(snapshot.state["started_at"]))
    session.restore_state(snapshot.state)
    recapture = Snapshot(session.snapshot_state(), recipe=dict(snapshot.recipe))
    snapshot.verify_against(recapture)
    return session


def migrate_session(
    session_id: str,
    source: SimWorker,
    target: SimWorker,
    reason: str = "rebalance",
    wire: Optional[bytes] = None,
) -> MigrationRecord:
    """Move one live session from ``source`` to ``target``.

    The state crosses the boundary as checksummed canonical-JSON bytes
    (``wire`` lets tests inject corrupted payloads). On any failure the
    session is still owned by exactly one worker: release happens only
    after the wire image is built, and adopt failures put it back.
    """
    if source is target:
        raise FleetError(f"cannot migrate {session_id!r} onto its own worker")
    if not target.alive:
        raise FleetError(
            f"migration target {target.name!r} is {target.state}"
        )
    session = source.sessions.get(session_id)
    if session is None:
        raise FleetError(f"worker {source.name!r} does not host {session_id!r}")
    snapshot = capture_session(session)
    payload = wire if wire is not None else snapshot.to_json().encode("utf-8")
    received = Snapshot.from_json(payload.decode("utf-8"))
    rebuilt = restore_session(received)
    source.release(session_id)
    try:
        target.adopt(rebuilt)
    except FleetError:
        source.adopt(session)  # roll back: the source still has the original
        raise
    return MigrationRecord(
        session_id=session_id,
        source=source.name,
        target=target.name,
        at_ms=source.clock.now,
        reason=reason,
        digest=snapshot.digest(),
        wire_bytes=len(payload),
    )
