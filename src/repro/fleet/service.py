"""The fleet session service: admission → placement → supervision → migration.

:class:`FleetService` is the asyncio control plane tying the fleet layers
together on one deterministic :class:`~repro.fleet.clock.VirtualClock`:

* **Admission** — every arriving :class:`SessionSpec` passes a
  :class:`~repro.core.flowcontrol.MimdFlowControl` window before a worker
  will take it. ``in_flight`` counts admitted-but-unconfirmed sessions;
  the window only grows as workers *confirm* sessions by actually
  advancing them, so admission is paced by real serving capacity, not by
  how fast requests arrive. Saturation feeds a
  :class:`~repro.core.degradation.DegradationController` ladder that
  sheds the lowest-priority classes first and restores itself after
  quiet.
* **Placement** — sessions pack onto the least-loaded worker with
  headroom for their *predicted* load (a per-app EWMA learned from
  completed sessions' telemetry), deterministic name tie-break.
  Priority-0 sessions overload a worker rather than be refused.
* **Supervision** — a :class:`WorkerSupervisor` watches heartbeats,
  drains dead workers through checksummed snapshot migration, and
  restarts them under a bounded retry ladder.
* **Telemetry** — each finished (or lost) session streams one
  :class:`TelemetrySnapshot` incrementally into a
  :class:`FleetAggregator`, so a 10k-session run holds rollups, not 10k
  retained snapshots.

Everything — arrivals, faults, migrations, telemetry — is a pure
function of the trace/plan seeds, so any failing run is replayable.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.core.degradation import (
    DegradationController,
    LEVEL_GUEST_ROUNDTRIP,
    LEVEL_ON_DEMAND,
)
from repro.core.flowcontrol import MimdFlowControl
from repro.errors import FleetError
from repro.faults.plan import FaultPlan, WorkerFaultEvent
from repro.fleet.arrivals import ArrivalTrace, SessionSpec
from repro.fleet.clock import VirtualClock
from repro.fleet.migration import MigrationRecord, migrate_session
from repro.fleet.recorder import NULL_RECORDER, FlightRecorder
from repro.fleet.supervisor import FleetRecoveryStats, WorkerSupervisor
from repro.fleet.worker import SessionSim, SimWorker
from repro.obs.fleet import (
    CounterSample,
    FleetAggregator,
    GaugeSample,
    TelemetrySnapshot,
    _labels_key,
)
from repro.sim.resilience import RetryPolicy

#: Retained (time, concurrency) samples for the fleet dashboard timeline.
CONCURRENCY_TIMELINE_CAP = 4_096


class LoadPredictor:
    """Per-app EWMA of observed session load, learned from telemetry."""

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise FleetError(f"predictor alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma: Dict[str, float] = {}
        self.observations = 0

    def observe(self, app: str, load: float) -> None:
        self.observations += 1
        previous = self._ewma.get(app)
        if previous is None:
            self._ewma[app] = load
        else:
            self._ewma[app] = self.alpha * load + (1.0 - self.alpha) * previous

    def observe_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        app = snapshot.meta_dict.get("app")
        if app is None:
            return
        for gauge in snapshot.gauges:
            if gauge.name == "session.load" and gauge.value is not None:
                self.observe(app, gauge.value)
                return

    def predict(self, app: str, fallback: float) -> float:
        """Expected load of one ``app`` session; declared load until learned."""
        return self._ewma.get(app, fallback)


class FleetStats:
    """The service's admission/serving ledger."""

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.confirmed = 0
        self.completed = 0
        self.shed_flow = 0
        self.shed_capacity = 0
        self.shed_degraded = 0
        self.lost = 0
        self.migrations = 0
        self.rebalances = 0
        self.evacuations = 0
        self.peak_concurrent = 0

    @property
    def shed(self) -> int:
        return self.shed_flow + self.shed_capacity + self.shed_degraded

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "confirmed": self.confirmed,
            "completed": self.completed,
            "shed": self.shed,
            "shed_flow": self.shed_flow,
            "shed_capacity": self.shed_capacity,
            "shed_degraded": self.shed_degraded,
            "lost": self.lost,
            "migrations": self.migrations,
            "rebalances": self.rebalances,
            "evacuations": self.evacuations,
            "peak_concurrent": self.peak_concurrent,
        }


class FleetService:
    """Supervised fleet scheduler serving one arrival trace end to end."""

    def __init__(
        self,
        n_workers: int = 8,
        worker_capacity: float = 400.0,
        tick_ms: float = 250.0,
        control_ms: float = 250.0,
        initial_window: float = 256.0,
        max_window: float = 8_192.0,
        rebalance_gap: float = 0.25,
        restart_policy: Optional[RetryPolicy] = None,
        drain_timeout_ms: float = 2_000.0,
    ):
        if n_workers < 1:
            raise FleetError(f"fleet needs at least one worker, got {n_workers}")
        self.clock = VirtualClock()
        self.stats = FleetStats()
        self.recovery = FleetRecoveryStats()
        self.aggregator = FleetAggregator()
        self.predictor = LoadPredictor()
        self.flow = MimdFlowControl(
            self.clock,
            initial_window=initial_window,
            min_window=1.0,
            max_window=max_window,
            increase=1.05,
            decrease=0.7,
        )
        self.degradation = DegradationController(
            self.clock, failure_threshold=8, reprobe_after_ms=1_000.0,
            name="admission",
        )
        self.control_ms = control_ms
        self.rebalance_gap = rebalance_gap
        self.workers: Dict[str, SimWorker] = {}
        for index in range(n_workers):
            worker = SimWorker(
                self.clock,
                name=f"w{index:02d}",
                capacity=worker_capacity,
                tick_ms=tick_ms,
                heartbeat_ms=tick_ms,
                on_complete=self._on_complete,
            )
            self.workers[worker.name] = worker
        self.supervisor = WorkerSupervisor(
            self.clock,
            stats=self.recovery,
            check_ms=control_ms,
            drain_timeout_ms=drain_timeout_ms,
            **({"restart_policy": restart_policy} if restart_policy else {}),
        )
        for worker in self.workers.values():
            self.supervisor.register(worker)
        self.supervisor.place_evacuee = self._place_evacuee
        self.supervisor.on_lost = self._on_lost
        self.supervisor.on_migrated = self._on_migrated
        self.supervisor.on_partial_telemetry = self.aggregator.stream
        self._owner: Dict[str, str] = {}
        self._unconfirmed: Dict[str, str] = {}
        self._shed_log: List[Tuple[str, str]] = []
        self.migrations: List[MigrationRecord] = []
        self._conc_timeline: List[Tuple[float, float]] = []
        self._summary: Optional[Dict[str, Any]] = None
        self.recorder: FlightRecorder = NULL_RECORDER

    def attach_recorder(self, recorder: FlightRecorder) -> None:
        """Install a flight recorder across the whole control plane.

        The recorder only ever *reads* the virtual clock, so attaching
        one cannot perturb the run: summary and per-session outcomes are
        byte-identical with and without it (test-proven).
        """
        self.recorder = recorder
        self.supervisor.recorder = recorder
        for worker in self.workers.values():
            worker.recorder = recorder

    # -- admission -----------------------------------------------------------
    def _shed_floor(self, level: int) -> int:
        """Lowest priority still admitted at a degradation level."""
        if level >= LEVEL_GUEST_ROUNDTRIP:
            return 0  # only priority 0 survives
        if level >= LEVEL_ON_DEMAND:
            return 1  # shed priority 2
        return 2  # healthy: everyone welcome

    def offer(self, spec: SessionSpec) -> bool:
        """Admit-or-shed one arriving session request."""
        self.stats.offered += 1
        self.recorder.offered(spec)
        level = self.degradation.plan_level()
        if spec.priority > self._shed_floor(level):
            self.stats.shed_degraded += 1
            self._shed_log.append((spec.session_id, "degraded"))
            self.recorder.shed(spec, "degraded")
            return False
        worker = self._place(spec)
        if worker is None:
            self.degradation.note_failure(level, reason="capacity")
            self.stats.shed_capacity += 1
            self._shed_log.append((spec.session_id, "capacity"))
            self.recorder.shed(spec, "capacity")
            return False
        self.recorder.placed(
            spec, worker.name,
            self.predictor.predict(spec.app, spec.load),
            worker.load_factor(),
        )
        if not self.flow.try_dispatch():
            self.degradation.note_failure(level, reason="window")
            self.stats.shed_flow += 1
            self._shed_log.append((spec.session_id, "window"))
            self.recorder.shed(spec, "window")
            return False
        worker.start_session(spec)
        self.stats.admitted += 1
        self._owner[spec.session_id] = worker.name
        self._unconfirmed[spec.session_id] = worker.name
        self.recorder.admitted(spec, worker.name)
        return True

    def _confirm(self, session_id: str) -> None:
        """First healthy progress tick: release the admission slot."""
        self._unconfirmed.pop(session_id, None)
        self.flow.complete()
        self.degradation.note_success(self.degradation.plan_level())
        self.stats.confirmed += 1
        self.recorder.confirmed(session_id)

    # -- placement -----------------------------------------------------------
    def _place(self, spec: SessionSpec) -> Optional[SimWorker]:
        predicted = self.predictor.predict(spec.app, spec.load)
        best: Optional[SimWorker] = None
        for name in sorted(self.workers):
            worker = self.workers[name]
            if not worker.available:
                continue
            if worker.load + predicted > worker.capacity:
                continue
            if best is None or worker.load_factor() < best.load_factor():
                best = worker
        if best is not None:
            return best
        if spec.priority == 0:
            # Platinum sessions overload the least-loaded worker instead
            # of being refused: graceful degradation, not denial.
            alive = [w for n, w in sorted(self.workers.items()) if w.available]
            if alive:
                return min(alive, key=lambda w: (w.load_factor(), w.name))
        return None

    def _place_evacuee(self, session: SessionSim, source: str) -> Optional[SimWorker]:
        """Drain placement ignores capacity: losing a session is worse
        than overloading a healthy worker."""
        alive = [
            w for n, w in sorted(self.workers.items())
            if w.alive and n != source
        ]
        if not alive:
            return None
        return min(alive, key=lambda w: (w.load_factor(), w.name))

    # -- callbacks -----------------------------------------------------------
    def _on_complete(self, worker: SimWorker, session: SessionSim) -> None:
        session_id = session.spec.session_id
        if session_id in self._unconfirmed:
            self._confirm(session_id)
        self._owner.pop(session_id, None)
        self.stats.completed += 1
        self.recorder.completed(worker.name, session)
        snapshot = session.telemetry(worker.name)
        self.predictor.observe_snapshot(snapshot)
        self.aggregator.stream(snapshot)

    def _on_lost(self, session: SessionSim, worker_name: str) -> None:
        session_id = session.spec.session_id
        if session_id in self._unconfirmed:
            # The slot must be returned even though the session died.
            self._unconfirmed.pop(session_id, None)
            self.flow.complete()
        self._owner.pop(session_id, None)
        self.stats.lost += 1
        self.recorder.lost(worker_name, session)

    def _on_migrated(self, record: MigrationRecord) -> None:
        self.migrations.append(record)
        self.stats.migrations += 1
        if record.reason.startswith("drain:"):
            self.stats.evacuations += 1
        self._owner[record.session_id] = record.target
        if record.session_id in self._unconfirmed:
            self._unconfirmed[record.session_id] = record.target
        self.recorder.migrated(record)

    # -- worker faults -------------------------------------------------------
    def apply_plan(self, plan: FaultPlan) -> None:
        """Schedule the plan's worker faults onto the virtual clock."""
        for event in plan.worker_faults:
            delay = event.time_ms - self.clock.now
            if delay < 0:
                raise FleetError(
                    f"worker fault at {event.time_ms} ms is already in the past"
                )
            self.clock.schedule(delay, self._fire_fault, event)

    def _fire_fault(self, event: WorkerFaultEvent) -> None:
        worker = self.workers.get(event.worker)
        if worker is None:
            raise FleetError(f"fault plan names unknown worker {event.worker!r}")
        self.recorder.fault_injected(event)
        if event.kind == "crash":
            worker.crash()
            self.supervisor.mark_down(
                worker.name, event.time_ms + event.duration_ms
            )
        elif event.kind == "hang":
            worker.hang(event.duration_ms)
        else:  # slow-heartbeat
            worker.slow_beats(event.duration_ms, event.factor)

    # -- control loop --------------------------------------------------------
    def _live_sessions(self) -> int:
        return sum(len(w.sessions) for w in self.workers.values())

    def _control_tick(self) -> None:
        now = self.clock.now
        live = self._live_sessions()
        self.stats.peak_concurrent = max(self.stats.peak_concurrent, live)
        if len(self._conc_timeline) < CONCURRENCY_TIMELINE_CAP:
            self._conc_timeline.append((now, float(live)))
        self.recorder.control_tick(
            live, self.flow.window, self.degradation.level
        )
        for session_id in list(self._unconfirmed):
            owner = self._unconfirmed[session_id]
            worker = self.workers.get(owner)
            session = worker.sessions.get(session_id) if worker else None
            if session is not None and session.quanta >= 1:
                self._confirm(session_id)
        self._rebalance()

    def _rebalance(self) -> None:
        """At most one planned migration per tick, hottest → coolest."""
        alive = [w for _n, w in sorted(self.workers.items()) if w.available]
        if len(alive) < 2:
            return
        src = max(alive, key=lambda w: (w.load_factor(), w.name))
        dst = min(alive, key=lambda w: (w.load_factor(), w.name))
        if src is dst or not src.sessions:
            return
        if src.load_factor() < 1.0:
            return  # nobody is actually overloaded
        if src.load_factor() - dst.load_factor() < self.rebalance_gap:
            return
        session_id = next(iter(src.sessions))
        record = migrate_session(session_id, src, dst, reason="rebalance")
        self.stats.rebalances += 1
        self._on_migrated(record)

    async def _control_loop(self) -> None:
        while True:
            await self.clock.sleep(self.control_ms)
            self._control_tick()

    async def _feed(self, trace: ArrivalTrace) -> None:
        for spec in trace.sessions:
            delay = spec.arrival_ms - self.clock.now
            if delay > 0:
                await self.clock.sleep(delay)
            self.offer(spec)

    # -- the run -------------------------------------------------------------
    def serve(
        self,
        trace: ArrivalTrace,
        plan: Optional[FaultPlan] = None,
        until: Optional[float] = None,
        grace_ms: float = 5_000.0,
    ) -> Dict[str, Any]:
        """Serve one trace to completion; returns the run summary."""
        if until is None:
            last = max(
                (s.arrival_ms + s.duration_ms for s in trace.sessions),
                default=trace.horizon_ms,
            )
            until = last + grace_ms
        return asyncio.run(self._serve(trace, plan, until))

    async def _serve(
        self, trace: ArrivalTrace, plan: Optional[FaultPlan], until: float
    ) -> Dict[str, Any]:
        if plan is not None:
            self.apply_plan(plan)
        self.recorder.run_started(trace, len(self.workers), until)
        for name in sorted(self.workers):
            worker = self.workers[name]
            self.clock.spawn(worker.run(), name=f"worker.{name}")
        self.clock.spawn(self.supervisor.monitor(), name="supervisor")
        self.clock.spawn(self._control_loop(), name="control")
        self.clock.spawn(self._feed(trace), name="feeder")
        await self.clock.run_until(until)
        self.supervisor.stop()
        self.clock.raise_task_failures()
        self._summary = self._build_summary(trace, until)
        self.recorder.run_ended(self._summary)
        return self._summary

    # -- reporting -----------------------------------------------------------
    def _fleet_snapshot(self) -> TelemetrySnapshot:
        plain = _labels_key({})
        stats = self.stats
        return TelemetrySnapshot(
            meta=_labels_key({"emulator": "fleet", "app": "control"}),
            counters=tuple(
                CounterSample(f"fleet.{name}", plain, float(value))
                for name, value in sorted(stats.as_dict().items())
            ),
            gauges=(
                GaugeSample(
                    "fleet.concurrent", plain,
                    float(self._live_sessions()),
                    tuple(self._conc_timeline),
                ),
                GaugeSample(
                    "fleet.admission_window", plain, float(self.flow.window)
                ),
                GaugeSample(
                    "fleet.degradation_level", plain,
                    float(self.degradation.level),
                ),
            ),
        )

    def _build_summary(self, trace: ArrivalTrace, until: float) -> Dict[str, Any]:
        self.aggregator.stream(self._fleet_snapshot())
        stats = self.stats
        active = self._live_sessions()
        balanced = (
            stats.offered == stats.admitted + stats.shed
            and stats.admitted == stats.completed + stats.lost + active
        )
        if not balanced:
            raise FleetError(
                "session accounting does not balance: "
                f"offered={stats.offered} admitted={stats.admitted} "
                f"shed={stats.shed} completed={stats.completed} "
                f"lost={stats.lost} active={active}"
            )
        return {
            "schema": "repro-fleetserve-v1",
            "trace": {
                "seed": trace.seed,
                "sessions": len(trace),
                "horizon_ms": trace.horizon_ms,
                "peak_offered_concurrency": trace.peak_concurrency(),
            },
            "until_ms": until,
            "workers": {
                name: {
                    "state": w.state,
                    "sessions": len(w.sessions),
                    "load": w.load,
                    "capacity": w.capacity,
                    "started": w.started,
                    "completed": w.completed,
                    "crashes": w.crashes,
                }
                for name, w in sorted(self.workers.items())
            },
            "stats": stats.as_dict(),
            "recovery": self.recovery.as_dict(),
            "active_at_end": active,
            "admission": self.flow.snapshot_state(),
            "degradation": self.degradation.snapshot_state(),
            "timers_fired": self.clock.timers_fired,
            "balanced": balanced,
        }

    def report(self) -> Dict[str, Any]:
        """Summary + full telemetry aggregate (the JSON artifact surface)."""
        if self._summary is None:
            raise FleetError("report() before serve(): nothing has run yet")
        out: Dict[str, Any] = {
            "summary": self._summary,
            "sheds": [
                {"session": sid, "reason": reason}
                for sid, reason in self._shed_log[:256]
            ],
            "migrations": [
                {
                    "session": r.session_id, "source": r.source,
                    "target": r.target, "at_ms": r.at_ms, "reason": r.reason,
                }
                for r in self.migrations[:256]
            ],
            "aggregate": self.aggregator.aggregate(),
        }
        if self.recorder.enabled:
            # Additive: everything above is byte-identical recorder-off.
            out["recorder"] = self.recorder.summary()
        return out
