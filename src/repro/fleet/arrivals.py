"""Synthetic session-arrival traces: diurnal load, flash crowds, storms.

A production emulator farm serves *sessions* — users attach, run an app
for a while, detach. This module generates deterministic arrival traces
for the fleet service to chew on:

* a **diurnal** base rate (sinusoidal, compressed onto the simulated
  horizon — one "day" per trace by default);
* **flash crowds**: Gaussian bumps multiplying the instantaneous rate,
  the pattern a viral app launch produces;
* **crash storms**: :class:`~repro.faults.plan.FaultPlan` worker faults
  (crash / hang / slow-heartbeat) spread across the worker pool, so the
  chaos that kills workers is described by the same validated, seeded
  plan machinery the device-level chaos runner uses.

Everything is a pure function of the seed: arrival counts per bin come
from a seeded ``random.Random`` (normal approximation of a Poisson draw
above ``POISSON_EXACT_LIMIT`` events/bin, exact Knuth sampling below it),
and session attributes (app mix, duration, priority, per-session seed)
consume the same stream in a fixed order.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan

#: App profiles the fleet serves: (base frame interval ms, load units,
#: target FPS for the SLO check, mix weight). Load units are the proxy
#: for predicted device/bus pressure a session puts on its worker.
APP_PROFILES: Dict[str, Tuple[float, float, float, float]] = {
    "video": (33.4, 1.00, 24.0, 0.30),
    "camera": (33.4, 0.80, 24.0, 0.15),
    "ar": (16.7, 1.40, 45.0, 0.15),
    "game": (16.7, 1.20, 45.0, 0.20),
    "social": (50.0, 0.40, 15.0, 0.20),
}

#: Priority classes: 0 is never shed, 2 goes first under saturation.
PRIORITY_WEIGHTS: Tuple[Tuple[int, float], ...] = ((0, 0.15), (1, 0.55), (2, 0.30))

#: Above this many expected arrivals per bin, use the normal
#: approximation instead of exact (O(λ)) Knuth sampling.
POISSON_EXACT_LIMIT = 30.0


@dataclass(frozen=True)
class SessionSpec:
    """One session request: who arrives when, wanting what, for how long."""

    session_id: str
    app: str
    arrival_ms: float
    duration_ms: float
    priority: int
    frame_interval_ms: float
    load: float
    target_fps: float
    seed: int

    def recipe(self) -> Dict[str, object]:
        """JSON-able identity — the migration snapshot's ``recipe``."""
        return {
            "session_id": self.session_id,
            "app": self.app,
            "arrival_ms": self.arrival_ms,
            "duration_ms": self.duration_ms,
            "priority": self.priority,
            "frame_interval_ms": self.frame_interval_ms,
            "load": self.load,
            "target_fps": self.target_fps,
            "seed": self.seed,
        }

    @classmethod
    def from_recipe(cls, recipe: Dict[str, object]) -> "SessionSpec":
        missing = [k for k in (
            "session_id", "app", "arrival_ms", "duration_ms", "priority",
            "frame_interval_ms", "load", "target_fps", "seed",
        ) if k not in recipe]
        if missing:
            raise ConfigurationError(f"session recipe is missing keys: {missing}")
        return cls(
            session_id=str(recipe["session_id"]),
            app=str(recipe["app"]),
            arrival_ms=float(recipe["arrival_ms"]),  # type: ignore[arg-type]
            duration_ms=float(recipe["duration_ms"]),  # type: ignore[arg-type]
            priority=int(recipe["priority"]),  # type: ignore[arg-type]
            frame_interval_ms=float(recipe["frame_interval_ms"]),  # type: ignore[arg-type]
            load=float(recipe["load"]),  # type: ignore[arg-type]
            target_fps=float(recipe["target_fps"]),  # type: ignore[arg-type]
            seed=int(recipe["seed"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FlashCrowd:
    """A Gaussian rate bump: ×``amplitude`` at ``peak_ms``, width ``sigma_ms``."""

    peak_ms: float
    amplitude: float
    sigma_ms: float


@dataclass(frozen=True)
class ArrivalTrace:
    """A finished trace: sessions sorted by arrival time."""

    sessions: Tuple[SessionSpec, ...]
    horizon_ms: float
    seed: int

    def __len__(self) -> int:
        return len(self.sessions)

    def peak_concurrency(self) -> int:
        """Max sessions simultaneously active if every one were admitted."""
        events: List[Tuple[float, int]] = []
        for spec in self.sessions:
            events.append((spec.arrival_ms, 1))
            events.append((spec.arrival_ms + spec.duration_ms, -1))
        events.sort()
        live = peak = 0
        for _t, delta in events:
            live += delta
            peak = max(peak, live)
        return peak


def _poisson(rng: random.Random, lam: float) -> int:
    if lam <= 0:
        return 0
    if lam > POISSON_EXACT_LIMIT:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    # Knuth: exact for small λ.
    limit = math.exp(-lam)
    count, product = 0, rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def _pick_weighted(rng: random.Random, items: Sequence[Tuple[object, float]]):
    total = sum(weight for _item, weight in items)
    point = rng.random() * total
    for item, weight in items:
        point -= weight
        if point <= 0:
            return item
    return items[-1][0]


def generate_trace(
    seed: int = 0,
    horizon_ms: float = 30_000.0,
    base_rate_per_s: float = 50.0,
    diurnal_amplitude: float = 0.35,
    diurnal_period_ms: Optional[float] = None,
    flash_crowds: Sequence[FlashCrowd] = (),
    mean_session_ms: float = 8_000.0,
    min_session_ms: float = 1_000.0,
    bin_ms: float = 250.0,
    app_weights: Optional[Dict[str, float]] = None,
) -> ArrivalTrace:
    """Deterministic synthetic arrival trace.

    ``base_rate_per_s`` is the diurnal *mean*; instantaneous rate is
    ``base × (1 + A·sin(2πt/period)) × Π flash-crowd bumps``. Sessions
    get exponentially distributed durations (clamped to
    ``[min_session_ms, 4×mean]``), an app drawn from the profile mix, a
    priority class, and an independent per-session seed.
    """
    if horizon_ms <= 0 or base_rate_per_s < 0:
        raise ConfigurationError("horizon must be > 0 and rate >= 0")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ConfigurationError(
            f"diurnal amplitude must be in [0, 1), got {diurnal_amplitude}"
        )
    if mean_session_ms <= 0 or min_session_ms <= 0 or bin_ms <= 0:
        raise ConfigurationError("durations and bin size must be > 0")
    period = diurnal_period_ms if diurnal_period_ms is not None else horizon_ms
    rng = random.Random(seed)
    weights = app_weights or {
        app: profile[3] for app, profile in APP_PROFILES.items()
    }
    app_items: List[Tuple[object, float]] = sorted(weights.items())
    sessions: List[SessionSpec] = []
    serial = 0
    t = 0.0
    while t < horizon_ms:
        mid = t + bin_ms / 2.0
        rate = base_rate_per_s * (
            1.0 + diurnal_amplitude * math.sin(2.0 * math.pi * mid / period)
        )
        for crowd in flash_crowds:
            z = (mid - crowd.peak_ms) / crowd.sigma_ms
            rate *= 1.0 + (crowd.amplitude - 1.0) * math.exp(-0.5 * z * z)
        count = _poisson(rng, rate * bin_ms / 1_000.0)
        offsets = sorted(rng.random() for _ in range(count))
        for offset in offsets:
            app = str(_pick_weighted(rng, app_items))
            interval, load, target_fps, _w = APP_PROFILES[app]
            duration = min(
                4.0 * mean_session_ms,
                max(min_session_ms, rng.expovariate(1.0 / mean_session_ms)),
            )
            priority = int(_pick_weighted(rng, PRIORITY_WEIGHTS))
            sessions.append(SessionSpec(
                session_id=f"s{serial:06d}",
                app=app,
                arrival_ms=t + offset * bin_ms,
                duration_ms=duration,
                priority=priority,
                frame_interval_ms=interval,
                load=load,
                target_fps=target_fps,
                seed=rng.getrandbits(32),
            ))
            serial += 1
        t += bin_ms
    sessions.sort(key=lambda s: (s.arrival_ms, s.session_id))
    return ArrivalTrace(tuple(sessions), horizon_ms, seed)


def crash_storm_plan(
    workers: Sequence[str],
    start_ms: float,
    crashes: int,
    spacing_ms: float = 1_500.0,
    downtime_ms: float = 800.0,
    seed: int = 0,
    include_hang: bool = False,
    include_slow_heartbeat: bool = False,
) -> FaultPlan:
    """A storm of worker faults spread across the pool, as a FaultPlan.

    Crashes land ``spacing_ms`` apart on rotating workers (seeded shuffle
    decides the rotation), honouring the one-fault-at-a-time-per-worker
    validation rule. Optionally layers one hang and one slow-heartbeat
    window on workers not already crashing at that time.
    """
    if not workers:
        raise ConfigurationError("crash storm needs at least one worker")
    if crashes < 0:
        raise ConfigurationError(f"crashes must be >= 0, got {crashes}")
    order = sorted(workers)
    rng = random.Random(seed)
    rng.shuffle(order)
    plan = FaultPlan()
    busy_until: Dict[str, float] = {}
    t = start_ms
    for i in range(crashes):
        name = order[i % len(order)]
        at = max(t, busy_until.get(name, 0.0))
        plan.crash_worker(at, name, downtime_ms)
        busy_until[name] = at + downtime_ms
        t += spacing_ms
    extras = [name for name in order if name not in busy_until]
    if include_hang:
        victim = extras.pop(0) if extras else order[0]
        at = max(start_ms + spacing_ms / 2.0, busy_until.get(victim, 0.0))
        plan.hang_worker(at, victim, duration_ms=downtime_ms / 2.0)
        busy_until[victim] = at + downtime_ms / 2.0
    if include_slow_heartbeat:
        victim = extras.pop(0) if extras else order[-1]
        at = max(start_ms, busy_until.get(victim, 0.0))
        plan.slow_heartbeat(at, victim, duration_ms=downtime_ms, factor=2.5)
    return plan.validate()


#: Stagger between the apps of one scenario cohort, so concurrent-app
#: mixes don't all land on the admission controller in the same tick.
SCENARIO_APP_STAGGER_MS = 50.0


def sessions_from_scenario(
    scenario,
    cohorts: int = 1,
    spacing_ms: float = 2_000.0,
    start_ms: float = 0.0,
) -> List[SessionSpec]:
    """Lower a scenario document's app mix into fleet session requests.

    Each app stanza becomes one :class:`SessionSpec` per cohort: the
    pipeline's fleet profile (declared in the scenario schema) supplies
    the frame interval / load / SLO numbers, the stanza's ``priority``
    carries over, and the session duration is the scenario's
    ``duration_ms``. ``cohorts`` replays the whole mix every
    ``spacing_ms`` — the shape a farm serving many copies of the same
    workload sees. Per-session seeds come from one RNG keyed on the
    scenario's name and seed, so a given (scenario, cohorts) pair always
    produces the same trace.
    """
    # Local import: the scenario package builds on apps/faults and does
    # not know about the fleet; the dependency points this way only.
    from repro.scenario.compiler import CompiledScenario, compile_scenario
    from repro.scenario.schema import PIPELINES

    compiled = (
        scenario
        if isinstance(scenario, CompiledScenario)
        else compile_scenario(scenario)
    )
    if cohorts < 1:
        raise ConfigurationError(f"cohorts must be >= 1, got {cohorts}")
    if spacing_ms <= 0:
        raise ConfigurationError(f"spacing_ms must be > 0, got {spacing_ms}")
    rng = random.Random(f"scenario-fleet:{compiled.name}:{compiled.seed}")
    sessions: List[SessionSpec] = []
    for cohort in range(cohorts):
        cohort_start = start_ms + cohort * spacing_ms
        for index, stanza in enumerate(compiled.document["apps"]):
            profile = PIPELINES[stanza["pipeline"]].fleet_profile
            interval, load, target_fps, _weight = APP_PROFILES[profile]
            sessions.append(SessionSpec(
                session_id=f"{compiled.name}-c{cohort:02d}-{stanza['name']}",
                app=profile,
                arrival_ms=cohort_start + index * SCENARIO_APP_STAGGER_MS,
                duration_ms=compiled.duration_ms,
                priority=compiled.app_priorities[index],
                frame_interval_ms=interval,
                load=load,
                target_fps=target_fps,
                seed=rng.getrandbits(32),
            ))
    return sessions


def trace_from_scenario(
    scenario,
    cohorts: int = 1,
    spacing_ms: float = 2_000.0,
    start_ms: float = 0.0,
) -> ArrivalTrace:
    """An :class:`ArrivalTrace` built from a compiled scenario's app mix.

    The fleet-service counterpart of :func:`generate_trace`: instead of a
    synthetic diurnal rate, arrivals are the scenario's concurrent apps
    (repeated ``cohorts`` times), ready for
    :meth:`~repro.fleet.service.FleetService.serve`.
    """
    from repro.scenario.compiler import CompiledScenario, compile_scenario

    compiled = (
        scenario
        if isinstance(scenario, CompiledScenario)
        else compile_scenario(scenario)
    )
    sessions = sessions_from_scenario(
        compiled, cohorts=cohorts, spacing_ms=spacing_ms, start_ms=start_ms
    )
    sessions.sort(key=lambda s: (s.arrival_ms, s.session_id))
    horizon = max(
        (s.arrival_ms + s.duration_ms for s in sessions),
        default=start_ms,
    )
    return ArrivalTrace(tuple(sessions), horizon, compiled.seed)
