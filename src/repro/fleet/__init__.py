"""Fault-tolerant fleet session service (ISSUE 6 tentpole).

A deterministic asyncio control plane serving synthetic session traffic
across a supervised pool of simulation workers: admission control paced
by a MIMD window, load-predicted placement, heartbeat supervision with
drain-on-crash, and live session migration over checksummed snapshots.
"""

from repro.fleet.arrivals import (
    APP_PROFILES,
    ArrivalTrace,
    FlashCrowd,
    SessionSpec,
    crash_storm_plan,
    generate_trace,
    sessions_from_scenario,
    trace_from_scenario,
)
from repro.fleet.clock import ClockHandle, FleetEvent, VirtualClock
from repro.fleet.migration import (
    MigrationRecord,
    capture_session,
    migrate_session,
    restore_session,
)
from repro.fleet.recorder import NULL_RECORDER, FlightRecorder
from repro.fleet.service import FleetService, FleetStats, LoadPredictor
from repro.fleet.supervisor import FleetRecoveryStats, WorkerSupervisor
from repro.fleet.worker import QUANTUM_MS, SessionSim, SimWorker

__all__ = [
    "APP_PROFILES",
    "ArrivalTrace",
    "ClockHandle",
    "FlashCrowd",
    "FleetEvent",
    "FleetRecoveryStats",
    "FleetService",
    "FleetStats",
    "FlightRecorder",
    "LoadPredictor",
    "MigrationRecord",
    "NULL_RECORDER",
    "QUANTUM_MS",
    "SessionSim",
    "SessionSpec",
    "SimWorker",
    "VirtualClock",
    "WorkerSupervisor",
    "capture_session",
    "crash_storm_plan",
    "generate_trace",
    "migrate_session",
    "restore_session",
    "sessions_from_scenario",
    "trace_from_scenario",
]
