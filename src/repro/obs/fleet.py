"""Fleet telemetry: picklable per-run snapshots and deterministic rollups.

PR 2 gave a single run its registry, tracer and self-profiler; PR 3 fanned
experiment grids across a process pool. This module is where those two
layers meet:

* :class:`TelemetrySnapshot` — a frozen, picklable digest of one run's
  observability state (counter totals, gauge values + timelines, histogram
  moments + reservoirs, the self-profile tables, and a bounded trace
  digest). Engine workers capture one per run and ship it back inside
  their ``RunResult``, so the snapshot rides the run cache and a
  warm-cache rerun replays telemetry bit-for-bit without simulating.
* :class:`FleetAggregator` — merges N snapshots into per-(emulator × app)
  and fleet-level rollups. Every merge is commutative (counter sums,
  exact histogram count/sum/min/max, sorted-then-decimated sample unions)
  and the aggregator sorts its inputs before folding, so the aggregate is
  independent of worker scheduling: a ``--jobs 4`` sweep and the serial
  sweep of the same grid produce byte-identical aggregate JSON.
* :func:`validate_fleet_snapshot` — the schema check CI runs on the
  exported aggregate, mirroring ``validate_chrome_trace``.

Everything here is pure data manipulation: no simulator, no wall clock,
no randomness.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.registry import (
    Counter,
    DEFAULT_RESERVOIR,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Schema identifier stamped into every aggregate export.
FLEET_SCHEMA = "repro-fleet-telemetry-v1"

#: Cap on distinct span names retained in one run's trace digest.
TRACE_DIGEST_CAP = 64

#: Cap on per-group metas retained when snapshots are *streamed* — the
#: fleet service pushes one snapshot per session, and a 10k-session run
#: must not hold 10k meta dicts just to render a dashboard.
STREAM_META_CAP = 16


def snapshot_is_partial(snap: "TelemetrySnapshot") -> bool:
    """True when a snapshot marks itself a truncated/mid-stream reading.

    A worker that dies mid-session leaves its last telemetry reading
    incomplete; the fleet service streams it anyway with
    ``meta["partial"] = "true"`` so the aggregate can flag — rather than
    silently absorb or crash on — contributions that never saw their
    session finish.
    """
    return snap.meta_dict.get("partial") == "true"

LabelKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# ---------------------------------------------------------------------------
# Snapshot leaves
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CounterSample:
    """One counter's final value at capture time."""

    name: str
    labels: LabelKey
    value: float


@dataclass(frozen=True)
class GaugeSample:
    """One gauge's final value plus its retained (time, value) timeline."""

    name: str
    labels: LabelKey
    value: Optional[float]
    timeline: Tuple[Tuple[float, float], ...] = ()


@dataclass(frozen=True)
class HistogramSample:
    """One histogram's exact moments plus its retained reservoir."""

    name: str
    labels: LabelKey
    count: int
    sum: float
    min: Optional[float]
    max: Optional[float]
    samples: Tuple[float, ...] = ()


@dataclass(frozen=True)
class ProfileDigest:
    """The self-profiler's attribution tables, frozen for pickling."""

    events_dispatched: int
    timeouts_attributed: int
    subsystem_ms: Tuple[Tuple[str, float], ...] = ()
    device_ms: Tuple[Tuple[str, float], ...] = ()
    resumes: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class SpanNameStat:
    """Per-span-name aggregate inside a trace digest."""

    name: str
    count: int
    total_ms: float
    max_ms: float


@dataclass(frozen=True)
class TraceDigest:
    """A bounded summary of one run's tracer state.

    Full span lists do not cross the process boundary — only per-name
    aggregates (top :data:`TRACE_DIGEST_CAP` by simulated time, then
    name-sorted) plus the overall counts, so the digest's size is bounded
    no matter how long the run was.
    """

    spans: int
    instants: int
    flows: int
    names: Tuple[SpanNameStat, ...] = ()
    dropped_names: int = 0


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Everything one observed run reports to the fleet.

    ``meta`` is a sorted tuple of string pairs (emulator, app, seed,
    duration, fps, ...) — the identity the aggregator groups on. All
    fields are plain immutable data, so snapshots pickle across the
    engine's process pool and hash/compare structurally.
    """

    meta: LabelKey = ()
    counters: Tuple[CounterSample, ...] = ()
    gauges: Tuple[GaugeSample, ...] = ()
    histograms: Tuple[HistogramSample, ...] = ()
    profile: Optional[ProfileDigest] = None
    trace: Optional[TraceDigest] = None
    #: Optional per-frame latency attribution (a frozen
    #: :class:`~repro.obs.critical.LatencyBudget`).  Rides the run cache
    #: like every other field, so a warm-cache rerun explains its frames
    #: without re-simulating.
    attribution: Optional[Any] = None

    # -- capture -----------------------------------------------------------
    @classmethod
    def capture(
        cls,
        registry: MetricsRegistry,
        profiler=None,
        tracer=None,
        meta: Optional[Mapping[str, Any]] = None,
        attribution: Optional[Any] = None,
    ) -> "TelemetrySnapshot":
        """Freeze the current observability state into a snapshot."""
        counters: List[CounterSample] = []
        gauges: List[GaugeSample] = []
        histograms: List[HistogramSample] = []
        for inst in registry.instruments():
            labels = _labels_key(inst.labels)
            if isinstance(inst, Counter):
                counters.append(CounterSample(inst.name, labels, float(inst.value)))
            elif isinstance(inst, Gauge):
                gauges.append(GaugeSample(
                    inst.name, labels,
                    None if inst.value is None else float(inst.value),
                    tuple((float(t), float(v)) for t, v in inst.timeline()),
                ))
            elif isinstance(inst, Histogram):
                histograms.append(HistogramSample(
                    inst.name, labels, inst.count, float(inst.sum),
                    inst.min, inst.max,
                    tuple(float(v) for v in inst.samples()),
                ))
        profile = None
        if profiler is not None:
            profile = ProfileDigest(
                events_dispatched=profiler.events_dispatched,
                timeouts_attributed=profiler.timeouts_attributed,
                subsystem_ms=tuple(sorted(profiler.subsystem_ms.items())),
                device_ms=tuple(sorted(profiler.device_ms.items())),
                resumes=tuple(sorted(profiler.resumes.items())),
            )
        digest = None
        if tracer is not None and tracer.enabled:
            digest = _digest_tracer(tracer)
        return cls(
            meta=_labels_key(meta or {}),
            counters=tuple(counters),
            gauges=tuple(gauges),
            histograms=tuple(histograms),
            profile=profile,
            trace=digest,
            attribution=attribution,
        )

    # -- identity ----------------------------------------------------------
    @property
    def meta_dict(self) -> Dict[str, str]:
        return dict(self.meta)

    @property
    def group_key(self) -> str:
        """``<emulator>/<app>`` — the rollup bucket this run belongs to."""
        meta = self.meta_dict
        return f"{meta.get('emulator', '?')}/{meta.get('app', '?')}"

    # -- export ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready form of this snapshot."""
        out: Dict[str, Any] = {
            "meta": self.meta_dict,
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self.counters
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value,
                 "timeline": [[t, v] for t, v in g.timeline]}
                for g in self.gauges
            ],
            "histograms": [
                {"name": h.name, "labels": dict(h.labels), "count": h.count,
                 "sum": h.sum, "min": h.min, "max": h.max,
                 "samples": list(h.samples)}
                for h in self.histograms
            ],
        }
        if self.profile is not None:
            out["profile"] = {
                "events_dispatched": self.profile.events_dispatched,
                "timeouts_attributed": self.profile.timeouts_attributed,
                "subsystem_ms": dict(self.profile.subsystem_ms),
                "device_ms": dict(self.profile.device_ms),
                "resumes": dict(self.profile.resumes),
            }
        if self.trace is not None:
            out["trace"] = {
                "spans": self.trace.spans,
                "instants": self.trace.instants,
                "flows": self.trace.flows,
                "dropped_names": self.trace.dropped_names,
                "names": [
                    {"name": n.name, "count": n.count,
                     "total_ms": n.total_ms, "max_ms": n.max_ms}
                    for n in self.trace.names
                ],
            }
        attribution = getattr(self, "attribution", None)
        if attribution is not None:
            out["attribution"] = attribution.to_dict()
        return out


def _digest_tracer(tracer) -> TraceDigest:
    per_name: Dict[str, List[float]] = {}
    for span in tracer.spans:
        duration = span.duration if span.duration is not None else 0.0
        stat = per_name.setdefault(span.name, [0, 0.0, 0.0])
        stat[0] += 1
        stat[1] += duration
        stat[2] = max(stat[2], duration)
    for span in tracer.instants:
        stat = per_name.setdefault(span.name, [0, 0.0, 0.0])
        stat[0] += 1
    kept = sorted(per_name.items(), key=lambda kv: (-kv[1][1], kv[0]))
    dropped = max(0, len(kept) - TRACE_DIGEST_CAP)
    kept = sorted(kept[:TRACE_DIGEST_CAP])
    return TraceDigest(
        spans=len(tracer.spans),
        instants=len(tracer.instants),
        flows=len(tracer.flows()),
        names=tuple(
            SpanNameStat(name, count, total, peak)
            for name, (count, total, peak) in kept
        ),
        dropped_names=dropped,
    )


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _merge_samples(samples: List[float], capacity: int) -> List[float]:
    """Order-independent bounded union: sort, then evenly decimate."""
    samples = sorted(samples)
    n = len(samples)
    if n <= capacity:
        return samples
    return [samples[(i * n) // capacity] for i in range(capacity)]


class _Rollup:
    """Accumulator for one bucket (a group or the whole fleet)."""

    def __init__(self, reservoir: int):
        self.reservoir = reservoir
        self.runs = 0
        self.partial = 0
        self.counters: Dict[Tuple[str, LabelKey], float] = {}
        # (count, sum of values, min, max) over per-run final gauge values.
        self.gauges: Dict[Tuple[str, LabelKey], List[Any]] = {}
        self.gauge_timelines: Dict[Tuple[str, LabelKey], List[Tuple[float, float]]] = {}
        # (count, sum, min, max, samples)
        self.histograms: Dict[Tuple[str, LabelKey], List[Any]] = {}
        self.profile = [0, 0]  # events_dispatched, timeouts_attributed
        self.subsystem_ms: Dict[str, float] = {}
        self.device_ms: Dict[str, float] = {}
        self.resumes: Dict[str, int] = {}
        self.trace = [0, 0, 0, 0]  # spans, instants, flows, dropped_names
        self.trace_names: Dict[str, List[float]] = {}

    def clone(self) -> "_Rollup":
        """Deep copy, so a live (streamed) rollup can be re-aggregated."""
        return copy.deepcopy(self)

    def add(self, snap: TelemetrySnapshot) -> None:
        self.runs += 1
        if snapshot_is_partial(snap):
            self.partial += 1
        for c in snap.counters:
            key = (c.name, c.labels)
            self.counters[key] = self.counters.get(key, 0.0) + c.value
        for g in snap.gauges:
            key = (g.name, g.labels)
            if g.value is not None:
                agg = self.gauges.setdefault(key, [0, 0.0, g.value, g.value])
                agg[0] += 1
                agg[1] += g.value
                agg[2] = min(agg[2], g.value)
                agg[3] = max(agg[3], g.value)
            if g.timeline:
                self.gauge_timelines.setdefault(key, []).extend(g.timeline)
        for h in snap.histograms:
            key = (h.name, h.labels)
            agg = self.histograms.setdefault(key, [0, 0.0, h.min, h.max, []])
            agg[0] += h.count
            agg[1] += h.sum
            if h.min is not None:
                agg[2] = h.min if agg[2] is None else min(agg[2], h.min)
            if h.max is not None:
                agg[3] = h.max if agg[3] is None else max(agg[3], h.max)
            agg[4].extend(h.samples)
        if snap.profile is not None:
            self.profile[0] += snap.profile.events_dispatched
            self.profile[1] += snap.profile.timeouts_attributed
            for name, ms in snap.profile.subsystem_ms:
                self.subsystem_ms[name] = self.subsystem_ms.get(name, 0.0) + ms
            for name, ms in snap.profile.device_ms:
                self.device_ms[name] = self.device_ms.get(name, 0.0) + ms
            for name, n in snap.profile.resumes:
                self.resumes[name] = self.resumes.get(name, 0) + n
        if snap.trace is not None:
            self.trace[0] += snap.trace.spans
            self.trace[1] += snap.trace.instants
            self.trace[2] += snap.trace.flows
            self.trace[3] += snap.trace.dropped_names
            for stat in snap.trace.names:
                agg = self.trace_names.setdefault(stat.name, [0, 0.0, 0.0])
                agg[0] += stat.count
                agg[1] += stat.total_ms
                agg[2] = max(agg[2], stat.max_ms)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "runs": self.runs,
            "partial_runs": self.partial,
            "counters": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self.counters.items())
            ],
            "gauges": [
                {
                    "name": name, "labels": dict(labels),
                    "count": agg[0],
                    "mean": agg[1] / agg[0] if agg[0] else None,
                    "min": agg[2], "max": agg[3],
                    "timeline": sorted(self.gauge_timelines.get((name, labels), [])),
                }
                for (name, labels), agg in sorted(self.gauges.items())
            ],
            "histograms": [
                {
                    "name": name, "labels": dict(labels),
                    "count": agg[0], "sum": agg[1],
                    "min": agg[2], "max": agg[3],
                    "mean": agg[1] / agg[0] if agg[0] else None,
                    "samples": _merge_samples(agg[4], self.reservoir),
                }
                for (name, labels), agg in sorted(self.histograms.items())
            ],
            "profile": {
                "events_dispatched": self.profile[0],
                "timeouts_attributed": self.profile[1],
                "subsystem_ms": {k: self.subsystem_ms[k]
                                 for k in sorted(self.subsystem_ms)},
                "device_ms": {k: self.device_ms[k] for k in sorted(self.device_ms)},
                "resumes": {k: self.resumes[k] for k in sorted(self.resumes)},
            },
            "trace": {
                "spans": self.trace[0],
                "instants": self.trace[1],
                "flows": self.trace[2],
                "dropped_names": self.trace[3],
                "names": [
                    {"name": name, "count": agg[0],
                     "total_ms": agg[1], "max_ms": agg[2]}
                    for name, agg in sorted(self.trace_names.items())
                ],
            },
        }
        return out


@dataclass
class FleetAggregator:
    """Deterministic merge of N run snapshots into fleet rollups.

    ``add`` collects; :meth:`aggregate` sorts all collected snapshots by
    (group key, meta) and folds them, so the output never depends on the
    order snapshots arrived — worker completion order, cache-hit order and
    serial order all aggregate identically.

    :meth:`stream` is the bounded-memory incremental path the live fleet
    service uses: each snapshot folds into persistent rollups the moment a
    session reports, instead of being retained for a merge-at-end. The
    streamed result is deterministic for a fixed arrival order (which the
    virtual-clock service guarantees); the byte-for-byte
    *order-independence* guarantee applies to the ``add`` path, whose
    sorted fold is preserved unchanged. Both paths compose: ``aggregate``
    folds any collected snapshots on top of a clone of the streamed state.
    """

    reservoir: int = DEFAULT_RESERVOIR
    _snapshots: List[TelemetrySnapshot] = field(default_factory=list)
    _live_fleet: Optional[_Rollup] = None
    _live_groups: Dict[str, _Rollup] = field(default_factory=dict)
    _live_meta: Dict[str, List[Dict[str, str]]] = field(default_factory=dict)
    _live_meta_dropped: Dict[str, int] = field(default_factory=dict)
    _streamed: int = 0

    def add(self, snapshot: Optional[TelemetrySnapshot]) -> None:
        """Collect one snapshot (None — an unobserved run — is skipped)."""
        if snapshot is not None:
            self._snapshots.append(snapshot)

    def add_all(self, snapshots) -> None:
        for snapshot in snapshots:
            self.add(snapshot)

    def stream(self, snapshot: Optional[TelemetrySnapshot]) -> None:
        """Fold one snapshot into the live rollups immediately.

        Memory stays bounded by the number of distinct instruments and
        groups, not the number of sessions: only the first
        :data:`STREAM_META_CAP` metas per group are retained (the rest are
        counted in ``meta_dropped``).
        """
        if snapshot is None:
            return
        if self._live_fleet is None:
            self._live_fleet = _Rollup(self.reservoir)
        self._streamed += 1
        self._live_fleet.add(snapshot)
        key = snapshot.group_key
        self._live_groups.setdefault(key, _Rollup(self.reservoir)).add(snapshot)
        metas = self._live_meta.setdefault(key, [])
        if len(metas) < STREAM_META_CAP:
            metas.append(snapshot.meta_dict)
        else:
            self._live_meta_dropped[key] = self._live_meta_dropped.get(key, 0) + 1

    def __len__(self) -> int:
        return len(self._snapshots) + self._streamed

    # -- rollup ------------------------------------------------------------
    def aggregate(self) -> Dict[str, Any]:
        """The fleet aggregate: per-group and fleet-level rollups + matrices."""
        ordered = sorted(self._snapshots, key=lambda s: (s.group_key, s.meta))
        if self._live_fleet is not None:
            fleet = self._live_fleet.clone()
            groups = {key: roll.clone() for key, roll in self._live_groups.items()}
            group_meta = {key: list(metas) for key, metas in self._live_meta.items()}
        else:
            fleet = _Rollup(self.reservoir)
            groups = {}
            group_meta = {}
        for snap in ordered:
            fleet.add(snap)
            groups.setdefault(snap.group_key, _Rollup(self.reservoir)).add(snap)
            group_meta.setdefault(snap.group_key, []).append(snap.meta_dict)
        out: Dict[str, Any] = {
            "schema": FLEET_SCHEMA,
            "runs": self._streamed + len(ordered),
            "partial_runs": fleet.partial,
            "groups": {},
            "fleet": fleet.to_dict(),
        }
        for key in sorted(groups):
            entry = groups[key].to_dict()
            entry["meta"] = sorted(group_meta[key], key=lambda m: sorted(m.items()))
            dropped = self._live_meta_dropped.get(key, 0)
            if dropped:
                entry["meta_dropped"] = dropped
            out["groups"][key] = entry
        out["matrices"] = {
            "bus.utilization": self._matrix(groups, "bus.utilization", "link"),
            "prefetch.mispredict_rate": self._matrix(
                groups, "prefetch.mispredict_rate", None
            ),
        }
        return out

    def aggregate_json(self) -> str:
        """Canonical JSON of :meth:`aggregate` (the byte-identity surface)."""
        return json.dumps(self.aggregate(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def _matrix(
        groups: Dict[str, _Rollup], gauge: str, col_label: Optional[str]
    ) -> Dict[str, Any]:
        """(group × label-value) matrix of mean gauge readings."""
        rows = sorted(groups)
        cols: List[str] = []
        cells: Dict[Tuple[str, str], float] = {}
        for row in rows:
            for (name, labels), agg in groups[row].gauges.items():
                if name != gauge or not agg[0]:
                    continue
                col = dict(labels).get(col_label, "value") if col_label else "value"
                if col not in cols:
                    cols.append(col)
                cells[(row, col)] = agg[1] / agg[0]
        cols = sorted(cols)
        return {
            "rows": rows,
            "cols": cols,
            "values": [[cells.get((row, col)) for col in cols] for row in rows],
        }


def aggregate_results(results, reservoir: int = DEFAULT_RESERVOIR) -> Dict[str, Any]:
    """Convenience: fleet aggregate straight from engine ``RunResult`` s."""
    agg = FleetAggregator(reservoir=reservoir)
    for result in results:
        agg.add(getattr(result, "telemetry", None))
    return agg.aggregate()


# ---------------------------------------------------------------------------
# Schema validation (the CI gate, mirroring validate_chrome_trace)
# ---------------------------------------------------------------------------

def validate_fleet_snapshot(data: Any) -> List[str]:
    """Schema-check a fleet aggregate dict; returns the list of problems."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    if data.get("schema") != FLEET_SCHEMA:
        problems.append(f"schema: expected {FLEET_SCHEMA!r}, got {data.get('schema')!r}")
    runs = data.get("runs")
    if not isinstance(runs, int) or runs < 0:
        problems.append("runs: missing non-negative integer")
    groups = data.get("groups")
    if not isinstance(groups, dict):
        problems.append("groups: missing object")
        groups = {}
    buckets = [("fleet", data.get("fleet"))]
    buckets += [(f"groups.{key}", value) for key, value in sorted(groups.items())]
    for where, bucket in buckets:
        if not isinstance(bucket, dict):
            problems.append(f"{where}: missing rollup object")
            continue
        problems.extend(_validate_rollup(where, bucket))
    matrices = data.get("matrices")
    if matrices is not None:
        if not isinstance(matrices, dict):
            problems.append("matrices: must be an object")
        else:
            for name, matrix in sorted(matrices.items()):
                problems.extend(_validate_matrix(f"matrices.{name}", matrix))
    return problems


def _validate_rollup(where: str, bucket: Dict[str, Any]) -> List[str]:
    problems: List[str] = []
    for kind, required in (
        ("counters", ("name", "labels", "value")),
        ("gauges", ("name", "labels", "count")),
        ("histograms", ("name", "labels", "count", "sum", "samples")),
    ):
        entries = bucket.get(kind)
        if not isinstance(entries, list):
            problems.append(f"{where}.{kind}: missing list")
            continue
        for index, entry in enumerate(entries):
            spot = f"{where}.{kind}[{index}]"
            if not isinstance(entry, dict):
                problems.append(f"{spot}: must be an object")
                continue
            for key in required:
                if key not in entry:
                    problems.append(f"{spot}: missing {key!r}")
            if kind == "histograms":
                count = entry.get("count")
                samples = entry.get("samples")
                if isinstance(count, int) and isinstance(samples, list):
                    if len(samples) > max(count, 0):
                        problems.append(
                            f"{spot}: {len(samples)} samples exceed count {count}"
                        )
    profile = bucket.get("profile")
    if profile is not None and not isinstance(profile, dict):
        problems.append(f"{where}.profile: must be an object")
    return problems


def _validate_matrix(where: str, matrix: Any) -> List[str]:
    problems: List[str] = []
    if not isinstance(matrix, dict):
        return [f"{where}: must be an object"]
    rows = matrix.get("rows")
    cols = matrix.get("cols")
    values = matrix.get("values")
    if not isinstance(rows, list) or not isinstance(cols, list):
        problems.append(f"{where}: missing rows/cols lists")
        return problems
    if not isinstance(values, list) or len(values) != len(rows):
        problems.append(f"{where}: values must have one row per rows entry")
        return problems
    for index, row in enumerate(values):
        if not isinstance(row, list) or len(row) != len(cols):
            problems.append(f"{where}.values[{index}]: must have one cell per col")
    return problems
