"""Differential trace triage: why is run B slower than run A?

:func:`diff_budgets` aligns two runs' :class:`~repro.obs.critical.LatencyBudget`
frame-by-frame (matched on frame sequence number — the stable identity a
frame keeps across emulators and code versions), localizes the latency
delta to **category × device** cells, and grades the shift with a seeded
bootstrap significance test, producing headlines like::

    p99 +3.1 ms, 92% from bus_transfer on gpu

The bootstrap resamples matched frame pairs with a ``random.Random``
seeded from the caller-supplied seed, so the p-value — like everything
else in this stack — is a pure function of its inputs: the same two
budgets and the same seed always triage identically.
"""

from __future__ import annotations

import random
from math import fsum
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.stats import percentile
from repro.obs.critical import BUDGET_CATEGORIES, FrameBudget, LatencyBudget

#: Bootstrap resamples for the significance test.
DEFAULT_RESAMPLES = 200

#: One-sided p-value below which a latency shift is called significant.
SIGNIFICANCE_LEVEL = 0.05


def align_frames(
    base: LatencyBudget, candidate: LatencyBudget
) -> List[Tuple[FrameBudget, FrameBudget]]:
    """Pair frames by sequence number, ascending; unmatched frames drop.

    When a sequence number repeats (multi-app runs number frames per
    producer), occurrences pair up in present order — the k-th frame
    ``n`` of the base against the k-th frame ``n`` of the candidate.
    """
    by_seq: Dict[int, List[FrameBudget]] = {}
    for frame in candidate.frames:
        by_seq.setdefault(frame.sequence, []).append(frame)
    taken: Dict[int, int] = {}
    pairs: List[Tuple[FrameBudget, FrameBudget]] = []
    for frame in base.frames:
        pool = by_seq.get(frame.sequence)
        index = taken.get(frame.sequence, 0)
        if pool is None or index >= len(pool):
            continue
        pairs.append((frame, pool[index]))
        taken[frame.sequence] = index + 1
    return pairs


def _cell_totals(frames: List[FrameBudget]) -> Dict[Tuple[str, str], float]:
    acc: Dict[Tuple[str, str], List[float]] = {}
    for frame in frames:
        for cell in frame.cells:
            acc.setdefault((cell.category, cell.device), []).append(cell.ms)
    return {key: fsum(values) for key, values in acc.items()}


def _bootstrap_p_value(
    deltas: List[float], seed: int, resamples: int
) -> Optional[float]:
    """One-sided bootstrap p-value for "mean per-frame delta > 0".

    Resamples the matched per-frame deltas with replacement and counts
    how often the resampled mean fails to exceed zero; with fewer than
    two pairs there is nothing to resample and the answer is None.
    """
    n = len(deltas)
    if n < 2:
        return None
    rng = random.Random(f"attrdiff:{seed}")
    at_or_below = 0
    for _ in range(resamples):
        mean = fsum(deltas[rng.randrange(n)] for _ in range(n)) / n
        if mean <= 0.0:
            at_or_below += 1
    return at_or_below / resamples


def diff_budgets(
    base: LatencyBudget,
    candidate: LatencyBudget,
    seed: int = 0,
    resamples: int = DEFAULT_RESAMPLES,
) -> Dict[str, Any]:
    """Localize the candidate's latency shift versus the base.

    Returns a JSON-ready dict: per-percentile latency deltas over the
    matched frames, per-cell (category × device) total deltas, the
    dominant regressed cell with its share of the total regression, the
    bootstrap p-value, and a one-line human headline.
    """
    pairs = align_frames(base, candidate)
    base_lat = [a.latency_ms for a, _ in pairs]
    cand_lat = [b.latency_ms for _, b in pairs]
    deltas = [b - a for a, b in zip(base_lat, cand_lat)]

    def _pct(values: List[float], q: float) -> Optional[float]:
        return percentile(values, q, default=None)

    latency: Dict[str, Any] = {}
    for label, q in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0)):
        lo, hi = _pct(base_lat, q), _pct(cand_lat, q)
        latency[label] = {
            "base_ms": lo,
            "candidate_ms": hi,
            "delta_ms": None if lo is None or hi is None else hi - lo,
        }
    latency["mean"] = {
        "base_ms": fsum(base_lat) / len(base_lat) if base_lat else None,
        "candidate_ms": fsum(cand_lat) / len(cand_lat) if cand_lat else None,
        "delta_ms": fsum(deltas) / len(deltas) if deltas else None,
    }

    base_cells = _cell_totals([a for a, _ in pairs])
    cand_cells = _cell_totals([b for _, b in pairs])
    cells = []
    for key in sorted(set(base_cells) | set(cand_cells)):
        category, device = key
        lo = base_cells.get(key, 0.0)
        hi = cand_cells.get(key, 0.0)
        cells.append({
            "category": category,
            "device": device,
            "base_ms": lo,
            "candidate_ms": hi,
            "delta_ms": hi - lo,
        })

    regressed = [c for c in cells if c["delta_ms"] > 0.0]
    regression_total = fsum(c["delta_ms"] for c in regressed)
    dominant = None
    if regressed:
        top = max(regressed, key=lambda c: (c["delta_ms"], c["category"], c["device"]))
        share = top["delta_ms"] / regression_total if regression_total > 0 else 0.0
        dominant = {
            "category": top["category"],
            "device": top["device"],
            "delta_ms": top["delta_ms"],
            "share": share,
        }

    p_value = _bootstrap_p_value(deltas, seed, resamples)
    significant = p_value is not None and p_value < SIGNIFICANCE_LEVEL

    p99_delta = latency["p99"]["delta_ms"]
    if not pairs:
        headline = "no matched frames — runs cannot be compared"
    elif dominant is None:
        headline = (
            f"p99 {p99_delta:+.1f} ms" if p99_delta is not None else "no shift"
        ) + ", no category regressed"
    else:
        shown = p99_delta if p99_delta is not None else dominant["delta_ms"]
        headline = (
            f"p99 {shown:+.1f} ms, {dominant['share']:.0%} from "
            f"{dominant['category']} on {dominant['device']}"
        )
        if p_value is not None:
            verdict = "significant" if significant else "not significant"
            headline += f" (bootstrap p={p_value:.3f}, {verdict})"

    return {
        "frames_matched": len(pairs),
        "frames_base_only": len(base.frames) - len(pairs),
        "frames_candidate_only": len(candidate.frames) - len(pairs),
        "latency": latency,
        "cells": cells,
        "categories": {
            category: {
                "base_ms": fsum(
                    c["base_ms"] for c in cells if c["category"] == category
                ),
                "candidate_ms": fsum(
                    c["candidate_ms"] for c in cells if c["category"] == category
                ),
                "delta_ms": fsum(
                    c["delta_ms"] for c in cells if c["category"] == category
                ),
            }
            for category in BUDGET_CATEGORIES
        },
        "dominant": dominant,
        "bootstrap": {
            "seed": seed,
            "resamples": resamples,
            "p_value": p_value,
            "significant": significant,
        },
        "headline": headline,
    }
