"""Self-contained HTML dashboard for fleet telemetry.

``render_dashboard`` turns one fleet aggregate (see
:mod:`repro.obs.fleet`), the bench history and an optional sentinel
verdict into a **single HTML file with zero external references** — no
CDN scripts, no fonts, no images. Every chart is server-rendered inline
SVG; styling is one embedded stylesheet with light and dark modes; the
raw aggregate JSON is embedded in a ``<script type="application/json">``
block so the artifact doubles as a machine-readable export.

Sections:

* stat tiles — runs, frames presented, mean FPS, kernel events;
* per-(emulator × app) rollup table;
* a simulated-time flamegraph (two-level icicle) from the self-profiler;
* prefetch mispredict-rate and per-link bus-utilization timelines;
* the bus-utilization matrix as a heatmap;
* bench trends with the sentinel's EWMA baseline band (α = 0.5).

Everything is stdlib; the renderer is pure (dict in, string out).
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import percentile

#: Categorical series slots (light, dark) — fixed assignment order.
_SERIES = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
)

#: Sequential blue ramp (light → dark) for the utilization heatmap.
_RAMP = ("#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5",
         "#256abf", "#1c5cab", "#184f95", "#0d366b")

_TOKENS_LIGHT = """  color-scheme: light dark;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --good: #006300; --bad: #d03b3b;
"""
_TOKENS_DARK = """    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --good: #0ca30c; --bad: #e66767;
"""

_LAYOUT = """
* { box-sizing: border-box; }
body { margin: 0; background: var(--page); color: var(--ink);
       font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 1080px; margin: 0 auto; padding: 24px 20px 64px; }
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.card { background: var(--surface); border: 1px solid var(--ring);
        border-radius: 10px; padding: 14px 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile { flex: 1 1 140px; background: var(--surface);
        border: 1px solid var(--ring); border-radius: 10px;
        padding: 10px 14px 12px; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .l { color: var(--ink-2); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th { text-align: left; color: var(--ink-2); font-weight: 500;
     font-size: 12px; border-bottom: 1px solid var(--axis);
     padding: 4px 10px 6px 0; }
td { padding: 5px 10px 5px 0; border-bottom: 1px solid var(--grid);
     font-variant-numeric: tabular-nums; }
svg text { fill: var(--muted); font: 11px system-ui, sans-serif; }
svg .gridline { stroke: var(--grid); stroke-width: 1; }
svg .axisline { stroke: var(--axis); stroke-width: 1; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 14px; margin-top: 6px;
          color: var(--ink-2); font-size: 12px; }
.legend .chip { display: inline-block; width: 10px; height: 10px;
                border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
.flame { margin-top: 4px; }
.flame .row { display: flex; gap: 2px; height: 30px; margin-bottom: 2px; }
.flame .seg { border-radius: 4px; min-width: 2px; overflow: hidden;
              color: #fff; font-size: 11px; line-height: 30px;
              padding: 0 6px; white-space: nowrap; }
.flame .seg.lite { color: #0b0b0b; }
.heat td.cell { text-align: center; border-radius: 4px; padding: 6px 8px;
                border-bottom: none; }
.heat { border-spacing: 2px; border-collapse: separate; }
.verdict-ok { color: var(--good); }
.verdict-bad { color: var(--bad); font-weight: 600; }
.note { color: var(--muted); font-size: 12px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _series_css() -> str:
    light = "".join(f"  --s{i}: {pair[0]};\n" for i, pair in enumerate(_SERIES))
    dark = "".join(f"    --s{i}: {pair[1]};\n" for i, pair in enumerate(_SERIES))
    return (
        ":root {\n" + _TOKENS_LIGHT + light + "}\n"
        + "@media (prefers-color-scheme: dark) {\n  :root {\n"
        + _TOKENS_DARK + dark + "  }\n}\n"
        + _LAYOUT
        + "".join(
            f"svg .s{i} {{ stroke: var(--s{i}); }} "
            f".fill-s{i} {{ background: var(--s{i}); }}\n"
            for i in range(len(_SERIES))
        )
    )


# ---------------------------------------------------------------------------
# SVG primitives
# ---------------------------------------------------------------------------

def _ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / n
    return [lo + i * step for i in range(n + 1)]


def _line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    width: int = 960,
    height: int = 200,
    y_fmt: str = "{:.2f}",
    x_fmt: str = "{:.0f}",
    x_label: str = "simulated ms",
    bands: Sequence[Tuple[str, Sequence[Tuple[float, float, float]]]] = (),
) -> str:
    """Inline-SVG line chart. ``bands`` are (label, [(x, lo, hi)]) areas."""
    pad_l, pad_r, pad_t, pad_b = 52, 12, 8, 26
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    points = [p for _, pts in series for p in pts]
    points += [(x, lo) for _, b in bands for x, lo, _ in b]
    points += [(x, hi) for _, b in bands for x, _, hi in b]
    if not points:
        return ('<p class="note">no samples recorded for this chart</p>')
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + (abs(y_lo) or 1.0) * 0.1
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    def sx(x: float) -> float:
        return pad_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return pad_t + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    out: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'preserveAspectRatio="xMidYMid meet" role="img">'
    ]
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        out.append(f'<line class="gridline" x1="{pad_l}" y1="{y:.1f}" '
                   f'x2="{width - pad_r}" y2="{y:.1f}"/>')
        out.append(f'<text x="{pad_l - 6}" y="{y + 3.5:.1f}" '
                   f'text-anchor="end">{y_fmt.format(tick)}</text>')
    out.append(f'<line class="axisline" x1="{pad_l}" y1="{pad_t + plot_h}" '
               f'x2="{width - pad_r}" y2="{pad_t + plot_h}"/>')
    out.append(f'<text x="{pad_l}" y="{height - 8}">{x_fmt.format(x_lo)}</text>')
    out.append(f'<text x="{width - pad_r}" y="{height - 8}" text-anchor="end">'
               f'{x_fmt.format(x_hi)} {_esc(x_label)}</text>')
    for index, (label, band) in enumerate(bands):
        if len(band) < 2:
            continue
        upper = [f"{sx(x):.1f},{sy(hi):.1f}" for x, _lo, hi in band]
        lower = [f"{sx(x):.1f},{sy(lo):.1f}" for x, lo, _hi in reversed(band)]
        out.append(f'<polygon points="{" ".join(upper + lower)}" '
                   f'fill="var(--s{index % len(_SERIES)})" opacity="0.18" '
                   f'stroke="none"><title>{_esc(label)}</title></polygon>')
    for index, (label, pts) in enumerate(series):
        if not pts:
            continue
        slot = index % len(_SERIES)
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        out.append(f'<polyline class="s{slot}" points="{coords}" fill="none" '
                   f'stroke-width="2" stroke-linejoin="round"/>')
        stride = max(1, len(pts) // 24)
        for x, y in pts[::stride]:
            out.append(
                f'<circle class="s{slot}" cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                f'r="2.5" fill="var(--surface)" stroke-width="1.5">'
                f'<title>{_esc(label)}: {y_fmt.format(y)} at '
                f'{x_fmt.format(x)}</title></circle>'
            )
    out.append("</svg>")
    legend = "".join(
        f'<span><span class="chip fill-s{i % len(_SERIES)}"></span>'
        f'{_esc(label)}</span>'
        for i, (label, _pts) in enumerate(series)
    )
    if len(series) > 1:
        out.append(f'<div class="legend">{legend}</div>')
    return "".join(out)


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------

def _counter_total(rollup: Dict[str, Any], name: str) -> float:
    return sum(c["value"] for c in rollup.get("counters", ())
               if c["name"] == name)


def _tiles(aggregate: Dict[str, Any]) -> str:
    fleet = aggregate.get("fleet", {})
    profile = fleet.get("profile", {})
    groups = aggregate.get("groups", {})
    fps_values: List[float] = []
    for group in groups.values():
        for meta in group.get("meta", ()):  # one meta dict per run
            try:
                fps_values.append(float(meta.get("fps", "")))
            except (TypeError, ValueError):
                pass
    tiles = [
        ("runs", f"{aggregate.get('runs', 0)}"),
        ("emulator × app cells", f"{len(groups)}"),
        ("frames presented", f"{_counter_total(fleet, 'frames.presented'):.0f}"),
        ("mean FPS", f"{sum(fps_values) / len(fps_values):.1f}"
         if fps_values else "–"),
        ("kernel events", f"{profile.get('events_dispatched', 0):,}"),
        ("simulated time attributed",
         f"{sum(profile.get('subsystem_ms', {}).values()):,.0f} ms"),
    ]
    body = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
        for label, v in tiles
    )
    return f'<div class="tiles">{body}</div>'


def _group_table(aggregate: Dict[str, Any]) -> str:
    rows: List[str] = []
    for key, group in sorted(aggregate.get("groups", {}).items()):
        metas = group.get("meta", [])
        fps = [float(m["fps"]) for m in metas if "fps" in m]
        presented = _counter_total(group, "frames.presented")
        dropped = _counter_total(group, "frames.dropped")
        access = [h for h in group.get("histograms", ())
                  if h["name"] == "svm.access_latency_ms"]
        samples = sorted(s for h in access for s in h.get("samples", ()))
        p50 = percentile(samples, 50, default=None)
        p95 = percentile(samples, 95, default=None)
        mispredict = [g for g in group.get("gauges", ())
                      if g["name"] == "prefetch.mispredict_rate"]
        mis = mispredict[0]["mean"] if mispredict and mispredict[0]["count"] else None
        cells = [
            f"<td>{_esc(key)}</td>",
            f"<td>{len(metas)}</td>",
            f"<td>{sum(fps) / len(fps):.1f}</td>" if fps else "<td>–</td>",
            f"<td>{presented:.0f}</td>",
            f"<td>{dropped:.0f}</td>",
            f"<td>{p50:.3f}</td>" if p50 is not None else "<td>–</td>",
            f"<td>{p95:.3f}</td>" if p95 is not None else "<td>–</td>",
            f"<td>{100 * mis:.1f}%</td>" if mis is not None else "<td>–</td>",
        ]
        rows.append(f'<tr>{"".join(cells)}</tr>')
    return (
        '<div class="card"><table><thead><tr>'
        "<th>emulator / app</th><th>runs</th><th>FPS</th>"
        "<th>presented</th><th>dropped</th>"
        "<th>access p50 ms</th><th>access p95 ms</th>"
        "<th>mispredict</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table></div>'
    )


def _flamegraph(aggregate: Dict[str, Any]) -> str:
    """Two-level icicle of simulated time per subsystem (self-profile)."""
    subsystem_ms = aggregate.get("fleet", {}).get("profile", {}) \
                            .get("subsystem_ms", {})
    total = sum(subsystem_ms.values())
    if not total:
        return '<p class="note">no self-profile captured</p>'
    heads: Dict[str, float] = {}
    children: Dict[str, Dict[str, float]] = {}
    for name, ms in subsystem_ms.items():
        head, sep, tail = name.partition(":")
        heads[head] = heads.get(head, 0.0) + ms
        if sep:
            children.setdefault(head, {})[tail] = ms
    ordered = sorted(heads.items(), key=lambda kv: (-kv[1], kv[0]))
    slot_of = {head: i for i, (head, _ms) in enumerate(ordered)}

    def seg(label: str, ms: float, share: float, slot: int) -> str:
        lite = " lite" if slot in (2, 3, 4) else ""  # aqua/yellow/magenta
        return (
            f'<div class="seg fill-s{slot % len(_SERIES)}{lite}" '
            f'style="flex:{share:.6f} 1 0%" '
            f'title="{_esc(label)}: {ms:,.0f} ms ({100 * share:.1f}%)">'
            f"{_esc(label)}</div>"
        )

    top = "".join(
        seg(head, ms, ms / total, slot_of[head]) for head, ms in ordered
    )
    rows = [f'<div class="row">{top}</div>']
    detail_parts: List[str] = []
    for head, ms in ordered:
        kids = children.get(head)
        slot = slot_of[head]
        if kids:
            inner = "".join(
                seg(f"{head}:{tail}", kid_ms, kid_ms / total, slot)
                for tail, kid_ms in sorted(kids.items(),
                                           key=lambda kv: (-kv[1], kv[0]))
            )
        else:
            inner = (f'<div class="seg" style="flex:{ms / total:.6f} 1 0%;'
                     'background:var(--grid);color:var(--muted)"></div>')
        detail_parts.append(
            f'<div style="display:flex;gap:2px;flex:{ms / total:.6f} 1 0%">'
            f"{inner}</div>"
        )
    rows.append(f'<div class="row">{"".join(detail_parts)}</div>')
    return (
        f'<div class="card flame">{"".join(rows)}'
        f'<div class="note">total attributed: {total:,.0f} simulated ms '
        "(top: subsystem; bottom: per-executor detail)</div></div>"
    )


#: Fixed category → color-slot assignment for the budget bars, so the
#: same category is the same color in every session's bar.
_BUDGET_SLOTS = {
    "coherence_copy": 0,
    "prefetch_penalty": 1,
    "bus_transfer": 2,
    "device_compute": 3,
    "recovery_stall": 7,
    "sched_slack": 6,
}


def _budget_bars(aggregate: Dict[str, Any]) -> str:
    """Per-(emulator × app) stacked latency-budget bars.

    Runs executed with attribution mirror their per-(category × device)
    budget totals into ``budget.ms`` counters (see
    :func:`repro.experiments.runner.run_app`), so they arrive here through
    the ordinary fleet rollup — no bespoke plumbing. Sections render only
    when at least one run attributed.
    """
    groups = aggregate.get("groups", {})
    per_group: Dict[str, Dict[str, float]] = {}
    for key, group in sorted(groups.items()):
        by_category: Dict[str, float] = {}
        for counter in group.get("counters", ()):
            if counter.get("name") != "budget.ms":
                continue
            category = counter.get("labels", {}).get("category", "?")
            by_category[category] = by_category.get(category, 0.0) \
                + float(counter.get("value", 0.0))
        if by_category:
            per_group[key] = by_category
    if not per_group:
        return ""
    rows: List[str] = []
    for key, by_category in per_group.items():
        total = sum(by_category.values())
        if total <= 0:
            continue
        segs = []
        for category, ms in sorted(by_category.items(),
                                   key=lambda kv: (-kv[1], kv[0])):
            slot = _BUDGET_SLOTS.get(category, 4)
            lite = " lite" if slot in (2, 3, 4) else ""
            segs.append(
                f'<div class="seg fill-s{slot}{lite}" '
                f'style="flex:{ms / total:.6f} 1 0%" '
                f'title="{_esc(category)}: {ms:,.0f} ms '
                f'({100 * ms / total:.1f}%)">{_esc(category)}</div>'
            )
        rows.append(f'<div class="note">{_esc(key)} '
                    f"({total:,.0f} ms attributed)</div>"
                    f'<div class="row">{"".join(segs)}</div>')
    legend = "".join(
        f'<span><span class="chip fill-s{slot}"></span>{_esc(category)}</span>'
        for category, slot in _BUDGET_SLOTS.items()
    )
    return (
        "<h2>Latency budget per session (attribution)</h2>"
        f'<div class="card flame">{"".join(rows)}'
        f'<div class="legend">{legend}</div>'
        '<div class="note">each bar partitions the cell\'s total frame '
        "latency into attribution categories (conservation: cells sum to "
        "measured latency; see <code>python -m repro.experiments explain"
        "</code>)</div></div>"
    )


def _timelines(aggregate: Dict[str, Any]) -> str:
    groups = aggregate.get("groups", {})
    mis_series = []
    for key, group in sorted(groups.items()):
        for gauge in group.get("gauges", ()):
            if gauge["name"] == "prefetch.mispredict_rate" and gauge["timeline"]:
                mis_series.append((key, [(t, 100 * v)
                                         for t, v in gauge["timeline"]]))
    bus_series = []
    fleet = aggregate.get("fleet", {})
    for gauge in fleet.get("gauges", ()):
        if gauge["name"] == "bus.utilization" and gauge["timeline"]:
            link = gauge["labels"].get("link", "?")
            bus_series.append((link, [(t, 100 * v)
                                      for t, v in gauge["timeline"]]))
    out = ["<h2>Prefetch mispredict rate over simulated time</h2>",
           '<div class="card">',
           _line_chart(mis_series, y_fmt="{:.1f}%"),
           "</div>",
           "<h2>Bus utilization over simulated time (fleet)</h2>",
           '<div class="card">',
           _line_chart(bus_series, y_fmt="{:.1f}%"),
           "</div>"]
    return "".join(out)


def _heatmap(aggregate: Dict[str, Any]) -> str:
    matrix = aggregate.get("matrices", {}).get("bus.utilization", {})
    rows, cols = matrix.get("rows", []), matrix.get("cols", [])
    values = matrix.get("values", [])
    if not rows or not cols:
        return '<p class="note">no bus-utilization matrix</p>'
    flat = [v for row in values for v in row if v is not None]
    peak = max(flat) if flat else 1.0
    body: List[str] = []
    for r, row_key in enumerate(rows):
        cells = [f"<td>{_esc(row_key)}</td>"]
        for c in range(len(cols)):
            v = values[r][c] if r < len(values) and c < len(values[r]) else None
            if v is None:
                cells.append('<td class="cell">–</td>')
                continue
            step = min(len(_RAMP) - 1, int((v / peak) * len(_RAMP))) if peak else 0
            ink = "#ffffff" if step >= 4 else "#0b0b0b"
            cells.append(
                f'<td class="cell" style="background:{_RAMP[step]};color:{ink}" '
                f'title="{_esc(row_key)} × {_esc(cols[c])}">'
                f"{100 * v:.1f}%</td>"
            )
        body.append(f'<tr>{"".join(cells)}</tr>')
    head = "".join(f"<th>{_esc(c)}</th>" for c in cols)
    return (
        '<div class="card"><table class="heat"><thead>'
        f"<tr><th>emulator / app</th>{head}</tr></thead>"
        f'<tbody>{"".join(body)}</tbody></table>'
        '<div class="note">mean per-link utilization; darker = busier '
        "(single-hue scale)</div></div>"
    )


def _ewma_series(values: Sequence[float], alpha: float = 0.5
                 ) -> Tuple[List[float], List[float]]:
    """Replayed EWMA levels + running RMS one-step errors per point."""
    levels: List[float] = []
    stds: List[float] = []
    level: Optional[float] = None
    err_sq_sum, err_n = 0.0, 0
    for value in values:
        if level is None:
            level = value
        else:
            error = value - level
            err_sq_sum += error * error
            err_n += 1
            level = alpha * value + (1.0 - alpha) * level
        levels.append(level)
        stds.append((err_sq_sum / err_n) ** 0.5 if err_n else 0.0)
    return levels, stds


def _bench_trend(history: List[Dict[str, Any]],
                 sentinel: Optional[Dict[str, Any]]) -> str:
    out: List[str] = ["<h2>Bench trend with EWMA baseline (α = 0.5)</h2>"]
    if not history:
        out.append('<div class="card"><p class="note">no bench history yet — '
                   "run <code>python -m repro.experiments bench</code> to start "
                   "the trajectory</p></div>")
    else:
        for metric, fmt in (("kernel.speedup", "{:.2f}x"),
                            ("single_run.wall_s", "{:.3f}s"),
                            ("suites.emerging.serial_s", "{:.2f}s")):
            values = [record["metrics"][metric] for record in history
                      if metric in record.get("metrics", {})]
            if not values:
                continue
            levels, stds = _ewma_series(values)
            pts = list(enumerate(values))
            band = [(i, levels[i] - stds[i], levels[i] + stds[i])
                    for i in range(len(levels))]
            chart = _line_chart(
                [(metric, pts), ("EWMA", list(enumerate(levels)))],
                height=160, y_fmt=fmt, x_fmt="{:.0f}", x_label="run #",
                bands=[("EWMA ± std error", band)],
            )
            out.append(f"<h2>{_esc(metric)}</h2>"
                       f'<div class="card">{chart}</div>')
    if sentinel is not None:
        rows = []
        for verdict in sentinel.get("verdicts", ()):
            status = verdict.get("status", "?")
            css = "verdict-bad" if status == "regression" else "verdict-ok"
            baseline = verdict.get("baseline")
            rel = verdict.get("rel_change")
            rows.append(
                "<tr>"
                f"<td>{_esc(verdict.get('metric'))}</td>"
                f"<td>{verdict.get('value'):.4g}</td>"
                + (f"<td>{baseline:.4g}</td>" if baseline is not None
                   else "<td>–</td>")
                + (f"<td>{100 * rel:+.1f}%</td>" if rel is not None
                   else "<td>–</td>")
                + f'<td class="{css}">{_esc(status)}</td></tr>'
            )
        out.append(
            "<h2>Regression sentinel</h2>"
            '<div class="card"><table><thead><tr><th>metric</th><th>value</th>'
            "<th>EWMA baseline</th><th>Δ</th><th>status</th></tr></thead>"
            f'<tbody>{"".join(rows)}</tbody></table>'
            f'<div class="note">history: {sentinel.get("history_len", 0)} runs; '
            f'tolerance ±{100 * sentinel.get("tolerance", 0):.0f}%</div></div>'
        )
    return "".join(out)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def render_dashboard(
    aggregate: Dict[str, Any],
    history: Optional[List[Dict[str, Any]]] = None,
    sentinel: Optional[Dict[str, Any]] = None,
    title: str = "vSoC fleet telemetry",
    refresh_s: Optional[float] = None,
    extra_html: str = "",
) -> str:
    """One self-contained HTML page from the fleet aggregate.

    ``refresh_s`` adds a ``<meta http-equiv="refresh">`` header — the live
    mid-run dashboard sets it so a browser pointed at the file re-reads
    each incremental render, and the final render drops it. ``extra_html``
    is injected after the stat tiles (the flight recorder's ops section).
    """
    history = history or []
    payload = json.dumps(aggregate, sort_keys=True, separators=(",", ":"))
    refresh = (
        f'<meta http-equiv="refresh" content="{refresh_s:g}">'
        if refresh_s is not None else ""
    )
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        + refresh,
        f"<title>{_esc(title)}</title>",
        f"<style>{_series_css()}</style>",
        "</head><body><main>",
        f"<h1>{_esc(title)}</h1>",
        '<p class="sub">cross-process telemetry rollup — '
        f'{aggregate.get("runs", 0)} runs, '
        f'{len(aggregate.get("groups", {}))} emulator × app cells; '
        "deterministic aggregate (parallel ≡ serial ≡ warm cache)</p>",
        _tiles(aggregate),
        extra_html,
        "<h2>Per-cell rollup</h2>",
        _group_table(aggregate),
        "<h2>Where simulated time goes (self-profile flamegraph)</h2>",
        _flamegraph(aggregate),
        _budget_bars(aggregate),
        _timelines(aggregate),
        "<h2>Bus utilization matrix</h2>",
        _heatmap(aggregate),
        _bench_trend(history, sentinel),
        '<script type="application/json" id="fleet-aggregate">',
        payload.replace("</", "<\\/"),
        "</script>",
        "</main></body></html>",
    ]
    return "\n".join(parts)


def write_dashboard(path: str, html_text: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html_text)
