"""Self-profiling over the sim-kernel hook API.

In a discrete-event simulation, simulated time only passes when a process
yields a :class:`~repro.sim.primitives.Timeout` — device ops, bus
transfers, page-mapping costs, compensation blocks are all timeouts. The
:class:`SelfProfiler` subscribes to the kernel's hooks
(:meth:`~repro.sim.kernel.Simulator.add_hook`) and attributes every
yielded timeout to the process that yielded it, then folds process names
into two tables:

* **per subsystem** — by process-name prefix (``exec:*``, ``prefetch:*``,
  app pipelines, ...), the self-profile of where simulated time is spent;
* **per device** — executor processes (``exec:<vdev>``) are mapped through
  the emulator's virtual→physical binding, yielding the per-physical-
  device busy-time attribution of Table 2's breakdowns.

The profiler is a pure observer: it never schedules, so attaching it
cannot change a run's results.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.kernel import Process, ScheduledCall, SimHook
from repro.sim.primitives import Timeout


class SelfProfiler(SimHook):
    """Attribute simulated time to devices and subsystems via kernel hooks."""

    def __init__(self, vdev_to_device: Optional[Dict[str, str]] = None):
        #: virtual device name -> physical device name (from the emulator).
        self.vdev_to_device = dict(vdev_to_device or {})
        #: subsystem -> accumulated simulated ms of yielded timeouts.
        self.subsystem_ms: Dict[str, float] = {}
        #: physical device -> accumulated executor simulated ms.
        self.device_ms: Dict[str, float] = {}
        #: per-process resume counts (scheduler pressure).
        self.resumes: Dict[str, int] = {}
        self.events_dispatched = 0
        self.timeouts_attributed = 0

    # -- SimHook interface ---------------------------------------------------
    def on_event_dispatch(self, time: float, call: ScheduledCall) -> None:
        self.events_dispatched += 1

    def on_process_resume(self, time: float, process: Process) -> None:
        subsystem = self.classify(process.name)
        self.resumes[subsystem] = self.resumes.get(subsystem, 0) + 1

    def on_process_yield(self, time: float, process: Process, target: Any) -> None:
        if not isinstance(target, Timeout):
            return
        delay = target.delay
        if delay <= 0:
            return
        self.timeouts_attributed += 1
        subsystem = self.classify(process.name)
        self.subsystem_ms[subsystem] = self.subsystem_ms.get(subsystem, 0.0) + delay
        device = self.device_of(process.name)
        if device is not None:
            self.device_ms[device] = self.device_ms.get(device, 0.0) + delay

    # -- attribution rules ---------------------------------------------------
    @staticmethod
    def classify(process_name: str) -> str:
        """Fold a process name into its subsystem bucket.

        Kernel process names are structured ``<subsystem>:<detail>`` (e.g.
        ``exec:gpu``, ``prefetch:r12->gpu``, ``ar-app:pipeline``); the
        executor and prefetch buckets keep their detail coarse-grained,
        app pipelines collapse to one ``guest`` bucket.
        """
        head, sep, _ = process_name.partition(":")
        if not sep:
            return head or "other"
        if head == "exec":
            return process_name  # exec:<vdev> — keep per-executor resolution
        if head in ("prefetch", "broadcast", "dma", "copy"):
            return head
        return "guest"

    def device_of(self, process_name: str) -> Optional[str]:
        """Physical device charged for this process's time, if any."""
        head, sep, tail = process_name.partition(":")
        if sep and head == "exec":
            return self.vdev_to_device.get(tail, tail)
        return None

    # -- export --------------------------------------------------------------
    def table(self) -> Dict[str, Any]:
        """The self-profile table the metrics export embeds."""
        return {
            "events_dispatched": self.events_dispatched,
            "timeouts_attributed": self.timeouts_attributed,
            "subsystem_ms": {k: self.subsystem_ms[k] for k in sorted(self.subsystem_ms)},
            "device_ms": {k: self.device_ms[k] for k in sorted(self.device_ms)},
            "resumes": {k: self.resumes[k] for k in sorted(self.resumes)},
        }
