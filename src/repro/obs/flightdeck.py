"""Flightdeck: rebuild the fleet dashboard from a flight-recorder log.

The flight recorder's event log (:mod:`repro.obs.events`) is the durable
record of a fleet run. This module *folds* that stream back into the
exact telemetry the live service aggregated, which makes two things
possible with one code path:

* the **live dashboard** — ``fleetserve --live`` re-renders the HTML
  from the events emitted so far on a virtual-time cadence, so a browser
  pointed at the file watches the run unfold;
* the **after-the-fact replay** — ``python -m repro.experiments
  flightdeck --events out/events.jsonl`` rebuilds the same dashboard
  from the log alone.

The fold is engineered to be byte-exact: replaying a complete log
produces an aggregate identical to ``FleetService.report()["aggregate"]``
(same snapshots, same stream order), so the final live render and the
replay render are the same bytes — test-proven. That works because every
``session.complete`` / ``session.lost`` event carries exactly the fields
``SessionSim.telemetry()`` derives its snapshot from, events are emitted
in stream order, and JSON round-trips floats exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.dashboard import _line_chart, render_dashboard
from repro.obs.fleet import (
    CounterSample,
    FleetAggregator,
    GaugeSample,
    TelemetrySnapshot,
    _labels_key,
)

#: Mirrors ``FleetService`` — first N control ticks kept on the timeline.
CONCURRENCY_TIMELINE_CAP = 4_096


def _session_snapshot(event: Dict[str, Any], partial: bool) -> TelemetrySnapshot:
    """Rebuild one session's telemetry snapshot from its terminal event.

    Field-for-field the same construction as ``SessionSim.telemetry()``,
    so the folded snapshot is equal (not merely equivalent) to the one
    the live service streamed.
    """
    meta: Dict[str, str] = {
        "emulator": event["worker"],
        "app": event["app"],
        "session": event["session"],
        "priority": str(event["priority"]),
    }
    if partial:
        meta["partial"] = "true"
    labels = _labels_key({"app": event["app"]})
    return TelemetrySnapshot(
        meta=_labels_key(meta),
        counters=(
            CounterSample("session.frames", labels, float(event["frames"])),
            CounterSample("session.completed", labels, 0.0 if partial else 1.0),
        ),
        gauges=(
            GaugeSample("session.fps", labels, event["fps"]),
            GaugeSample("session.latency_ms", labels, event["latency_ms"]),
            GaugeSample("session.load", labels, event["load"]),
        ),
    )


def _fleet_snapshot(
    end: Dict[str, Any], timeline: List[Tuple[float, float]]
) -> TelemetrySnapshot:
    """Rebuild the service's final control-plane snapshot from ``run.end``."""
    plain = _labels_key({})
    return TelemetrySnapshot(
        meta=_labels_key({"emulator": "fleet", "app": "control"}),
        counters=tuple(
            CounterSample(f"fleet.{name}", plain, float(value))
            for name, value in sorted(end["stats"].items())
        ),
        gauges=(
            GaugeSample(
                "fleet.concurrent", plain, float(end["active"]),
                tuple(timeline),
            ),
            GaugeSample("fleet.admission_window", plain, float(end["window"])),
            GaugeSample("fleet.degradation_level", plain, float(end["level"])),
        ),
    )


def replay_aggregator(records: Iterable[Dict[str, Any]]) -> FleetAggregator:
    """Fold an event stream into the aggregator the live run would hold.

    Snapshots are streamed in event order — which *is* the live stream
    order — so a complete log folds to an aggregate byte-identical to the
    one in ``FleetService.report()``.
    """
    aggregator = FleetAggregator()
    timeline: List[Tuple[float, float]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "session.complete":
            aggregator.stream(_session_snapshot(record, partial=False))
        elif kind == "session.lost":
            aggregator.stream(_session_snapshot(record, partial=True))
        elif kind == "control.tick":
            if len(timeline) < CONCURRENCY_TIMELINE_CAP:
                timeline.append((record["t_ms"], float(record["live"])))
        elif kind == "run.end":
            aggregator.stream(_fleet_snapshot(record, timeline))
    return aggregator


def replay_aggregate(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """The fleet aggregate a log folds to (see :func:`replay_aggregator`)."""
    return replay_aggregator(records).aggregate()


# ---------------------------------------------------------------------------
# The ops section (injected into the dashboard above the rollups)
# ---------------------------------------------------------------------------

def _count(records: List[Dict[str, Any]], kind: str) -> int:
    return sum(1 for r in records if r.get("kind") == kind)


def _ops_section(records: List[Dict[str, Any]]) -> str:
    """Control-plane lifecycle rollup, computed purely from the events."""
    sheds: Dict[str, int] = {}
    migrations: Dict[str, int] = {}
    wire_bytes = 0.0
    waits: List[float] = []
    live_series: List[Tuple[float, float]] = []
    window_series: List[Tuple[float, float]] = []
    for r in records:
        kind = r.get("kind")
        if kind == "session.shed":
            sheds[r["reason"]] = sheds.get(r["reason"], 0) + 1
        elif kind == "session.migrate":
            bucket = "drain" if str(r["reason"]).startswith("drain:") else r["reason"]
            migrations[bucket] = migrations.get(bucket, 0) + 1
            wire_bytes += r["bytes"]
        elif kind == "session.confirm":
            waits.append(r["wait_ms"])
        elif kind == "control.tick" and len(live_series) < CONCURRENCY_TIMELINE_CAP:
            live_series.append((r["t_ms"], float(r["live"])))
            window_series.append((r["t_ms"], float(r["window"])))
    rows = [
        ("offered", _count(records, "session.offer")),
        ("admitted", _count(records, "session.admit")),
        ("confirmed", len(waits)),
        ("completed", _count(records, "session.complete")),
        ("lost", _count(records, "session.lost")),
        ("shed", " + ".join(f"{v} {k}" for k, v in sorted(sheds.items())) or 0),
        ("migrations",
         " + ".join(f"{v} {k}" for k, v in sorted(migrations.items())) or 0),
        ("migration wire bytes", f"{int(wire_bytes):,}"),
        ("mean admission wait",
         f"{sum(waits) / len(waits):.1f} ms" if waits else "–"),
        ("workers declared dead", _count(records, "worker.dead")),
        ("drains", _count(records, "worker.drain")),
        ("restarts", _count(records, "worker.restart")),
        ("retired", _count(records, "worker.retire")),
    ]
    cells = "".join(
        f"<tr><td>{label}</td><td>{value}</td></tr>" for label, value in rows
    )
    chart = _line_chart(
        [("live sessions", live_series), ("admission window", window_series)],
        height=180, y_fmt="{:.0f}",
    )
    return (
        "<h2>Control-plane lifecycle (flight recorder)</h2>"
        '<div class="card"><table><thead><tr><th>event</th><th>count</th>'
        f'</tr></thead><tbody>{cells}</tbody></table></div>'
        "<h2>Live sessions and admission window over simulated time</h2>"
        f'<div class="card">{chart}</div>'
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_flight_dashboard(
    records: List[Dict[str, Any]],
    refresh_s: Optional[float] = None,
) -> str:
    """One dashboard HTML page from a (possibly still-growing) event log.

    Pure function of the records and ``refresh_s``: rendering the final
    live state and replaying the complete log give identical bytes.
    """
    seed: Any = "?"
    for record in records:
        if record.get("kind") == "run.start":
            seed = record.get("seed", "?")
            break
    finished = any(r.get("kind") == "run.end" for r in records)
    state = "final" if finished else "live"
    title = f"vSoC fleet flight recorder — seed {seed} ({state})"
    return render_dashboard(
        replay_aggregate(records),
        title=title,
        refresh_s=refresh_s,
        extra_html=_ops_section(records),
    )
