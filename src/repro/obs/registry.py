"""The metrics registry: named instruments with label sets.

Three instrument kinds cover everything the stack reports:

* :class:`Counter` — monotonically increasing totals (bytes moved, frames
  presented, prefetch launches);
* :class:`Gauge` — last-write-wins level readings (mispredict rate, bus
  utilization), optionally with a bounded *timeline* of (time, value)
  samples for plotting;
* :class:`Histogram` — value distributions (slack-estimate error, copy
  durations) with exact count/sum/min/max and a bounded *reservoir* of
  samples for percentiles.

Everything is deterministic: the reservoir is a decimating sampler (when
full it drops every other retained sample and doubles its stride) rather
than a randomized one, so a rerun reproduces its metrics bit-for-bit.

A disabled registry (``MetricsRegistry(enabled=False)``) hands out shared
no-op instruments and registers nothing — the zero-overhead mode the
overhead tests pin down.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.stats import percentile

#: Default cap on retained histogram samples / timeline points.
DEFAULT_RESERVOIR = 512


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Instrument:
    """Base: a named instrument with one fixed label set."""

    kind = "abstract"

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError  # pragma: no cover - interface


class Counter(Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind, "labels": dict(self.labels),
                "value": self.value}


class Gauge(Instrument):
    """A level reading, optionally sampled onto a bounded timeline."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str],
                 timeline_capacity: int = DEFAULT_RESERVOIR):
        super().__init__(name, labels)
        self.value: Optional[float] = None
        self._timeline = _DecimatingSampler(timeline_capacity)

    def set(self, value: float, time: Optional[float] = None) -> None:
        self.value = value
        if time is not None:
            self._timeline.offer((time, value))

    def timeline(self) -> List[Tuple[float, float]]:
        """Retained (time, value) samples, in record order."""
        return list(self._timeline.samples)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "type": self.kind,
                               "labels": dict(self.labels), "value": self.value}
        if self._timeline.samples:
            out["timeline"] = [[t, v] for t, v in self._timeline.samples]
        return out


class Histogram(Instrument):
    """A value distribution with exact moments and a sample reservoir."""

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str],
                 reservoir_capacity: int = DEFAULT_RESERVOIR):
        super().__init__(name, labels)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir = _DecimatingSampler(reservoir_capacity)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._reservoir.offer(value)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Approximate percentile over the retained reservoir."""
        return percentile(self._reservoir.samples, q, default=None)

    def samples(self) -> List[float]:
        return list(self._reservoir.samples)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name, "type": self.kind, "labels": dict(self.labels),
            "count": self.count, "sum": self.sum, "min": self.min,
            "max": self.max, "mean": self.mean,
        }
        if self.count:
            out["p50"] = self.percentile(50)
            out["p95"] = self.percentile(95)
            out["p99"] = self.percentile(99)
        return out


class _DecimatingSampler:
    """Bounded, deterministic sampler.

    Accepts every ``stride``-th offer; when the buffer fills, it drops
    every other retained sample and doubles the stride — a rerun retains
    exactly the same samples, unlike a randomized reservoir.
    """

    __slots__ = ("capacity", "stride", "_offers", "samples")

    def __init__(self, capacity: int):
        if capacity < 2:
            raise ValueError("sampler capacity must be >= 2")
        self.capacity = capacity
        self.stride = 1
        self._offers = 0
        self.samples: List[Any] = []

    def offer(self, value: Any) -> None:
        self._offers += 1
        if (self._offers - 1) % self.stride != 0:
            return
        self.samples.append(value)
        if len(self.samples) >= self.capacity:
            self.samples = self.samples[::2]
            self.stride *= 2


class _NullInstrument(Counter, Gauge, Histogram):
    """Absorbs every update; handed out by a disabled registry."""

    kind = "null"

    def __init__(self) -> None:  # pylint: disable=super-init-not-called
        self.name = "null"
        self.labels: Dict[str, str] = {}
        self.value = 0.0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float, time: Optional[float] = None) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def timeline(self) -> List[Tuple[float, float]]:
        return []

    def samples(self) -> List[float]:
        return []

    def percentile(self, q: float) -> Optional[float]:
        return None

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - never exported
        return {"name": "null", "type": "null"}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Keyed store of instruments; the single sink the stack reports into.

    ``registry.counter("bus.bytes", link="pcie")`` returns the one counter
    for that (name, labels) pair, creating it on first use — call sites
    never coordinate. Instruments of the same name must keep one kind.

    ``reservoir`` sets the default timeline/reservoir capacity for every
    gauge and histogram this registry creates (instead of the shared
    :data:`DEFAULT_RESERVOIR`); the ``reservoir=`` keyword on
    :meth:`gauge` / :meth:`histogram` overrides it per instrument at
    first-creation time.
    """

    def __init__(self, enabled: bool = True, reservoir: Optional[int] = None):
        self.enabled = enabled
        self.reservoir = reservoir if reservoir is not None else DEFAULT_RESERVOIR
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Instrument] = {}

    # -- instrument accessors ----------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, *, reservoir: Optional[int] = None,
              **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels, reservoir)

    def histogram(self, name: str, *, reservoir: Optional[int] = None,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, reservoir)

    def _get(self, cls, name: str, labels: Dict[str, Any],
             reservoir: Optional[int] = None):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            clean = {k: str(v) for k, v in labels.items()}
            capacity = reservoir if reservoir is not None else self.reservoir
            if cls is Gauge:
                instrument = Gauge(name, clean, timeline_capacity=capacity)
            elif cls is Histogram:
                instrument = Histogram(name, clean, reservoir_capacity=capacity)
            else:
                instrument = cls(name, clean)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"instrument {name!r} already registered as {instrument.kind}, "
                f"requested {cls.kind}"
            )
        return instrument

    # -- introspection / export --------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> List[Instrument]:
        """All instruments, sorted by (name, labels) for stable export."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def find(self, name: str, **labels: Any) -> Optional[Instrument]:
        """Look up an instrument without creating it."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Convenience: current value of a counter/gauge, else None."""
        instrument = self.find(name, **labels)
        if isinstance(instrument, (Counter, Gauge)):
            return instrument.value
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready export of every instrument."""
        return {"metrics": [i.to_dict() for i in self.instruments()]}


#: Shared disabled registry for components constructed without observability.
NULL_REGISTRY = MetricsRegistry(enabled=False)
