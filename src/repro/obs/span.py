"""Span-based causal tracing over the deterministic sim clock.

A :class:`Span` is a named interval of simulated time on a *track* (one
virtual device, executor thread, or host subsystem). Spans carry:

* a ``span_id`` / ``parent_id`` pair — intra-track call nesting;
* a ``flow`` id — the cross-device causal thread. One camera frame gets
  one flow id at birth and every span it touches anywhere in the stack
  (guest driver, transport kick, SVM access, coherence copy, prefetch,
  fence, presentation) is stamped with it, so the exported trace shows a
  single connected arrow chain per frame.

The :class:`Tracer` is the factory and sink. It never yields, sleeps, or
consults randomness — opening and closing spans only reads ``sim.now`` —
so instrumentation cannot perturb a run: simulated results are identical
with tracing enabled or disabled (tests assert this bit-for-bit).

A disabled tracer (``Tracer(enabled=False)``, or :data:`NULL_TRACER` when
no simulator is at hand) allocates nothing: every ``begin`` returns the
shared :data:`NULL_SPAN` sentinel and every other method is a no-op, so
un-observed runs pay a single predicate per instrumentation site.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Flow id meaning "not part of any flow" (falsy on purpose).
NO_FLOW = 0


class Span:
    """One named interval of simulated time on one track."""

    __slots__ = ("name", "cat", "track", "start", "end", "span_id", "parent_id",
                 "flow", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        span_id: int,
        parent_id: int = 0,
        flow: int = NO_FLOW,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.span_id = span_id
        self.parent_id = parent_id
        self.flow = flow
        self.args: Dict[str, Any] = args if args is not None else {}

    @property
    def duration(self) -> Optional[float]:
        """Span length in ms, or None while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.duration:.3f}ms" if self.finished else "open"
        return f"<Span {self.name!r} track={self.track} flow={self.flow} {dur}>"


class _NullSpan(Span):
    """The shared sentinel a disabled tracer hands out."""

    def __init__(self) -> None:
        super().__init__("null", "null", "null", 0.0, 0)


#: Singleton no-op span; ``tracer.end(NULL_SPAN)`` is a no-op.
NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory + sink bound to one simulator clock.

    ``sim`` may be ``None`` only for a disabled tracer. Finished *and*
    still-open spans live in :attr:`spans` (exporters clamp open spans to
    the export time); :attr:`instants` holds zero-duration point events.

    ``max_spans`` bounds retention (mirroring ``TraceLog``'s ring mode):
    spans and instants each keep only the newest ``max_spans`` entries,
    evicting the oldest, and :attr:`dropped_spans` counts every eviction —
    so a multi-hour fleet run cannot grow tracer memory without bound.
    The default (``None``) retains everything, unchanged from before.
    """

    def __init__(self, sim=None, enabled: bool = True,
                 max_spans: Optional[int] = None):
        if enabled and sim is None:
            raise ValueError("an enabled Tracer needs a simulator for its clock")
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._sim = sim
        self.enabled = enabled
        self.max_spans = max_spans
        if max_spans is None:
            self.spans: List[Span] = []
            self.instants: List[Span] = []
        else:
            self.spans = deque(maxlen=max_spans)  # type: ignore[assignment]
            self.instants = deque(maxlen=max_spans)  # type: ignore[assignment]
        self.dropped_spans = 0
        self._next_span = 1
        self._next_flow = 1

    def _append(self, store, span: Span) -> None:
        if self.max_spans is not None and len(store) == self.max_spans:
            self.dropped_spans += 1  # deque evicts the oldest on append
        store.append(span)

    # -- flows -------------------------------------------------------------
    def new_flow(self) -> int:
        """Allocate a fresh flow id (one per causal thread, e.g. per frame)."""
        if not self.enabled:
            return NO_FLOW
        flow = self._next_flow
        self._next_flow += 1
        return flow

    # -- spans -------------------------------------------------------------
    def begin(
        self,
        name: str,
        track: str,
        cat: str = "span",
        flow: int = NO_FLOW,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Open a span at ``sim.now``; close it with :meth:`end`."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(
            name,
            cat,
            track,
            self._sim.now,
            self._alloc_id(),
            parent_id=parent.span_id if parent is not None else 0,
            flow=flow,
            args=dict(args) if args else None,
        )
        self._append(self.spans, span)
        return span

    def end(self, span: Span, **args: Any) -> None:
        """Close a span at ``sim.now`` (no-op for :data:`NULL_SPAN`)."""
        if span is NULL_SPAN or not self.enabled:
            return
        span.end = self._sim.now
        if args:
            span.args.update(args)

    @contextmanager
    def span(
        self,
        name: str,
        track: str,
        cat: str = "span",
        flow: int = NO_FLOW,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Iterator[Span]:
        """Context-manager form for non-yielding critical sections.

        Only safe around code that never ``yield``s control back to the
        simulator *if* strict nesting on the track matters; the simulated
        timestamps themselves are always correct either way.
        """
        span = self.begin(name, track, cat=cat, flow=flow, parent=parent, **args)
        try:
            yield span
        finally:
            self.end(span)

    def instant(
        self, name: str, track: str, cat: str = "instant",
        flow: int = NO_FLOW, **args: Any,
    ) -> None:
        """Record a zero-duration point event (fence signals, drops, ...)."""
        if not self.enabled:
            return
        span = Span(
            name, cat, track, self._sim.now, self._alloc_id(),
            flow=flow, args=dict(args) if args else None,
        )
        span.end = span.start
        self._append(self.instants, span)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def spans_of_flow(self, flow: int) -> List[Span]:
        """Every span and instant stamped with ``flow``, in start order."""
        found = [s for s in self.spans if s.flow == flow]
        found += [s for s in self.instants if s.flow == flow]
        found.sort(key=lambda s: (s.start, s.span_id))
        return found

    def flows(self) -> List[int]:
        """Flow ids that stamped at least one span, ascending."""
        seen = {s.flow for s in self.spans if s.flow != NO_FLOW}
        seen |= {s.flow for s in self.instants if s.flow != NO_FLOW}
        return sorted(seen)

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()

    def _alloc_id(self) -> int:
        span_id = self._next_span
        self._next_span += 1
        return span_id


#: Shared disabled tracer for components constructed without observability.
NULL_TRACER = Tracer(enabled=False)
