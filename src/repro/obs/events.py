"""Streaming structured event log for the fleet flight recorder.

Spans (:mod:`repro.obs.span`) answer *where simulated time went*; the
event log answers *what the control plane decided and when*. It is the
durable, incremental artifact of a fleet run:

* **append-only JSONL** — one self-describing JSON object per line, so a
  consumer can tail the file of an in-flight run and fold events as they
  land (the live dashboard does exactly this);
* **seq-numbered** — every record carries a contiguous ``seq`` starting
  at 0, so a reader can detect gaps and prove completeness;
* **crash-tolerant** — writes are line-atomic (one ``write`` of the full
  line, then ``flush``), so a run killed mid-write leaves at most one
  torn final line, which :func:`read_event_log` tolerantly drops;
* **schema-validated** — :func:`validate_fleet_events` is the CI gate,
  mirroring ``validate_chrome_trace`` / ``validate_fleet_snapshot``.

Timestamps are **virtual** milliseconds read from the fleet clock —
recording an event never advances or perturbs the run, so a recorded and
an unrecorded run are bit-identical (test-proven).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Schema identifier stamped on every record.
EVENTS_SCHEMA = "repro-fleet-events-v1"

#: Known event kinds and the payload fields each one must carry.
#: (Validation is closed over *required* fields, open over extras.)
EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    "run.start": ("seed", "sessions", "horizon_ms", "workers"),
    "run.end": ("stats", "recovery", "active", "window", "level"),
    "session.offer": ("session", "app", "priority", "load"),
    "session.shed": ("session", "reason"),
    "session.place": ("session", "worker", "predicted"),
    "session.admit": ("session", "worker"),
    "session.confirm": ("session", "wait_ms"),
    "session.migrate": ("session", "source", "target", "reason", "bytes"),
    "session.complete": ("session", "worker", "app", "priority", "frames",
                         "fps", "latency_ms", "load"),
    "session.lost": ("session", "worker", "app", "priority", "frames",
                     "fps", "latency_ms", "load"),
    "worker.fault": ("worker", "fault"),
    "worker.dead": ("worker", "silence_ms"),
    "worker.fence": ("worker",),
    "worker.drain": ("worker", "evacuated", "lost", "duration_ms",
                     "timed_out"),
    "worker.restart": ("worker", "attempts"),
    "worker.retire": ("worker", "attempts"),
    "control.tick": ("live", "window", "level"),
}


class EventLog:
    """Append-only, seq-numbered sink for fleet lifecycle events.

    Records accumulate in :attr:`records` (always, for in-process replay)
    and — when ``path`` is given — stream to a JSONL file one line-atomic
    write at a time, so an external consumer can watch a run mid-flight
    and a crash can tear at most the final line.
    """

    def __init__(self, clock=None, path: Optional[str] = None):
        self._clock = clock
        self.path = path
        self.records: List[Dict[str, Any]] = []
        self._next_seq = 0
        self._fh = open(path, "w", encoding="utf-8") if path else None

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event at the clock's current virtual time."""
        record: Dict[str, Any] = {
            "schema": EVENTS_SCHEMA,
            "seq": self._next_seq,
            "t_ms": float(self._clock.now) if self._clock is not None else 0.0,
            "kind": kind,
        }
        record.update(fields)
        self._next_seq += 1
        self.records.append(record)
        if self._fh is not None:
            # Line-atomic: one write of the complete line, then flush, so
            # a kill mid-run tears at most the line in flight.
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        return record

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == kind]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_event_log(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL event log, dropping a torn (crash-truncated) last line.

    A malformed line anywhere *except* the end is an error — it means the
    file was corrupted, not merely truncated mid-write.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1:
                break  # torn final line from a mid-write crash
            raise
    return records


def validate_fleet_events(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Schema-check an event stream; returns the list of problems.

    Checks per record: schema stamp, contiguous ``seq`` from 0,
    non-negative monotonic ``t_ms``, a string ``kind``, and — for known
    kinds — the presence of that kind's required payload fields. A
    non-empty stream must open with ``run.start``.
    """
    problems: List[str] = []
    expected_seq = 0
    last_t = 0.0
    first = True
    for record in records:
        where = f"events[{expected_seq}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: record must be an object")
            expected_seq += 1
            continue
        if record.get("schema") != EVENTS_SCHEMA:
            problems.append(
                f"{where}: schema {record.get('schema')!r} != {EVENTS_SCHEMA!r}"
            )
        seq = record.get("seq")
        if seq != expected_seq:
            problems.append(f"{where}: seq {seq!r} breaks the contiguous "
                            f"numbering (expected {expected_seq})")
        t_ms = record.get("t_ms")
        if not isinstance(t_ms, (int, float)) or t_ms < 0:
            problems.append(f"{where}: missing non-negative 't_ms'")
        elif t_ms < last_t:
            problems.append(f"{where}: t_ms {t_ms} moves backwards "
                            f"(previous {last_t})")
        else:
            last_t = float(t_ms)
        kind = record.get("kind")
        if not isinstance(kind, str) or not kind:
            problems.append(f"{where}: missing string 'kind'")
        else:
            if first and kind != "run.start":
                problems.append(
                    f"{where}: stream must open with 'run.start', got {kind!r}"
                )
            required = EVENT_KINDS.get(kind)
            if required is not None:
                for field in required:
                    if field not in record:
                        problems.append(f"{where}: {kind} missing {field!r}")
        first = False
        expected_seq += 1
    return problems
