"""``repro.obs`` — observability for the vSoC stack.

One import point for the three pillars:

* **causal tracing** (:mod:`repro.obs.span`) — spans with parent links and
  a propagated per-frame *flow id*, so one frame's journey across guest
  driver, transport, SVM, coherence, prefetch, fences and presentation is
  a single connected trace;
* **metrics** (:mod:`repro.obs.registry`) — named counters/gauges/
  histograms with label sets and deterministic bounded sampling;
* **self-profiling** (:mod:`repro.obs.profile`) — kernel hooks attributing
  simulated time per device and subsystem;

plus the exporters (:mod:`repro.obs.export`) that turn all of it into a
Chrome ``trace_event`` / Perfetto JSON file and a metrics JSON file.

The :class:`Observability` context bundles one tracer + registry +
profiler so a single ``obs=`` handle threads through emulator factories
and components. The module-level :data:`DISABLED` instance is the default
everywhere: it hands out null tracer/registry, registers no kernel hooks,
and makes every instrumentation site a cheap no-op — results are identical
with observability on or off.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.obs.baseline import RegressionSentinel, SentinelReport
from repro.obs.critical import (
    BUDGET_CATEGORIES,
    BudgetCell,
    FrameBudget,
    LatencyBudget,
    PathStep,
    TruncatedTraceError,
    analyze_tracer,
    budget_from_snapshot,
)
from repro.obs.diff import align_frames, diff_budgets
from repro.obs.events import (
    EVENTS_SCHEMA,
    EventLog,
    read_event_log,
    validate_fleet_events,
)
from repro.obs.export import (
    chrome_trace,
    connected_flows,
    metrics_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.fleet import (
    FleetAggregator,
    TelemetrySnapshot,
    aggregate_results,
    validate_fleet_snapshot,
)
from repro.obs.profile import SelfProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
)
from repro.obs.slo import SloReport, SloSpec, evaluate_frames, fleet_burn
from repro.obs.span import NO_FLOW, NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "BUDGET_CATEGORIES",
    "BudgetCell",
    "EVENTS_SCHEMA",
    "EventLog",
    "FrameBudget",
    "LatencyBudget",
    "NO_FLOW",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "DISABLED",
    "FleetAggregator",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PathStep",
    "RegressionSentinel",
    "SelfProfiler",
    "SentinelReport",
    "SloReport",
    "SloSpec",
    "Span",
    "TelemetrySnapshot",
    "Tracer",
    "TruncatedTraceError",
    "align_frames",
    "analyze_tracer",
    "aggregate_results",
    "budget_from_snapshot",
    "chrome_trace",
    "connected_flows",
    "diff_budgets",
    "evaluate_frames",
    "fleet_burn",
    "metrics_json",
    "read_event_log",
    "validate_chrome_trace",
    "validate_fleet_events",
    "validate_fleet_snapshot",
    "write_chrome_trace",
    "write_metrics",
]


class Observability:
    """Tracer + metrics registry + self-profiler as one handle.

    Construct with a simulator to observe a run::

        obs = Observability(sim)
        emulator = make_vsoc(sim, machine, obs=obs)
        ...
        trace = obs.export_trace(track_groups=emulator.track_groups())

    Construct with no simulator (or use :data:`DISABLED`) for the inert
    variant components default to.
    """

    def __init__(self, sim=None, profile: bool = True,
                 reservoir: Optional[int] = None,
                 max_spans: Optional[int] = None):
        self.sim = sim
        enabled = sim is not None
        self.enabled = enabled
        self.tracer = (
            Tracer(sim, max_spans=max_spans) if enabled else NULL_TRACER
        )
        self.registry = (
            MetricsRegistry(reservoir=reservoir) if enabled else NULL_REGISTRY
        )
        self.profiler: Optional[SelfProfiler] = None
        if enabled and profile:
            self.profiler = SelfProfiler()
            sim.add_hook(self.profiler)

    def map_devices(self, vdev_to_device: Mapping[str, str]) -> None:
        """Teach the profiler the emulator's virtual→physical binding."""
        if self.profiler is not None:
            self.profiler.vdev_to_device.update(vdev_to_device)

    # -- export convenience --------------------------------------------------
    def export_trace(
        self,
        track_groups: Optional[Mapping[str, str]] = None,
        tracelog=None,
        fast_forward: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Chrome/Perfetto trace dict for this run (see :func:`chrome_trace`)."""
        end = self.sim.now if self.sim is not None else None
        return chrome_trace(
            self.tracer, track_groups=track_groups, tracelog=tracelog,
            end_time=end, fast_forward=fast_forward,
        )

    def export_metrics(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Metrics + self-profile dict for this run (see :func:`metrics_json`)."""
        profile = self.profiler.table() if self.profiler is not None else None
        return metrics_json(self.registry, profile=profile, extra=extra)


#: Shared inert instance — the default ``obs`` everywhere.
DISABLED = Observability()
