"""The regression sentinel: EWMA baselines over ``BENCH_history.jsonl``.

Every ``bench`` (and optionally ``observe``) run appends one JSONL record
of its headline metrics. The sentinel replays that history through the
paper's own forecasting algorithm — single exponential smoothing with
α = 0.5 (:mod:`repro.core.smoothing`, §3.3), the same predictor vSoC uses
for slack intervals and bus bandwidth — and flags the current run when a
metric lands beyond a configurable relative tolerance on the *bad* side
of its baseline. ``bench --check`` turns a flag into a nonzero exit code,
which is the CI gate for "did this PR make vSoC slower?".

Design points:

* the history file is append-only JSONL; corrupt or alien lines are
  skipped, never trusted (the run-cache's paranoia, applied to history);
* an empty or too-short history soft-passes — the first run on a fresh
  checkout (or a freshly added metric) can never fail;
* wall-clock metrics are host-dependent, so records carry the host's CPU
  count and the check only consumes records from a matching host shape
  unless told otherwise.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: The paper's smoothing weight (repro.core.smoothing.DEFAULT_ALPHA —
#: imported lazily there to keep repro.obs importable before repro.core).
DEFAULT_ALPHA = 0.5

#: Schema identifier stamped into (and required from) every history line.
HISTORY_SCHEMA = "repro-bench-history-v1"

#: Default history location, next to BENCH_engine.json.
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"

#: Relative deviation from the EWMA baseline that counts as a regression.
DEFAULT_TOLERANCE = 0.25

#: Prior observations required before a metric can flag at all.
DEFAULT_MIN_HISTORY = 3

#: History-metric prefix for latency-budget categories (see
#: :meth:`RegressionSentinel.attribution_diff`).
BUDGET_METRIC_PREFIX = "budget."

#: Schema stamped into the attribution diff the sentinel emits on a
#: gated regression.
SENTINEL_ATTRIBUTION_SCHEMA = "repro-sentinel-attribution-v1"


def report_parallel_mode(report: Any) -> Optional[str]:
    """The engine parallel mode a bench report ran its suites under.

    Wall-clock suite timings measured inline are not comparable to pool
    timings (pool spin-up, fork overhead), so the sentinel records the
    mode with each history entry and refuses to baseline across modes.
    """
    if not isinstance(report, dict):
        return None
    suites = report.get("suites")
    modes = set()
    if isinstance(suites, dict):
        for suite in suites.values():
            if isinstance(suite, dict) and isinstance(suite.get("parallel_mode"), str):
                modes.add(suite["parallel_mode"])
    if modes:
        return sorted(modes)[0]
    mode = report.get("parallel_mode")
    return mode if isinstance(mode, str) else None


def budget_history_metrics(budget: Any) -> Dict[str, float]:
    """Flatten a LatencyBudget's category totals into history metric keys.

    ``budget.<category>_ms`` entries ride each bench history record as
    extra metrics, giving the sentinel an EWMA baseline *per latency
    category* — the raw material for :meth:`RegressionSentinel.attribution_diff`.
    """
    return {
        f"{BUDGET_METRIC_PREFIX}{category}_ms": float(ms)
        for category, ms in budget.category_totals().items()
    }


@dataclass(frozen=True)
class MetricSpec:
    """One tracked metric: where it lives in the report and which way is up."""

    key: str  # dotted path into the bench report, e.g. "kernel.speedup"
    higher_is_better: bool


#: The bench metrics the sentinel baselines (dotted paths into the report).
BENCH_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("kernel.speedup", higher_is_better=True),
    MetricSpec("kernel.optimized_s", higher_is_better=False),
    # The two CI-gated kernel A/B scales (bench schema v2): the aperiodic
    # stress mix and the steady-state fast-forward workload.
    MetricSpec("kernel.scales.stress_50k.speedup", higher_is_better=True),
    MetricSpec("kernel.scales.steady_500k.speedup", higher_is_better=True),
    MetricSpec("kernel.scales.steady_500k.optimized_s", higher_is_better=False),
    MetricSpec("single_run.wall_s", higher_is_better=False),
    MetricSpec("suites.emerging.serial_s", higher_is_better=False),
    MetricSpec("suites.emerging.parallel_s", higher_is_better=False),
    MetricSpec("suites.emerging.warm_s", higher_is_better=False),
    MetricSpec("suites.emerging.warm_cache_hit_rate", higher_is_better=True),
)


def extract_metric(report: Any, dotted: str) -> Optional[float]:
    """Pull ``a.b.c`` out of a nested dict; None when absent or non-numeric.

    A flat dict keyed by the dotted path itself (the shape history records
    store) is accepted too, so a history record round-trips through the
    same accessor as a live report.
    """
    if isinstance(report, dict) and dotted in report:
        node = report[dotted]
        if isinstance(node, bool) or not isinstance(node, (int, float)):
            return None
        return float(node)
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


@dataclass
class MetricVerdict:
    """The sentinel's judgement on one metric of the current run."""

    metric: str
    value: Optional[float]
    baseline: Optional[float]
    std_error: Optional[float]
    rel_change: Optional[float]
    higher_is_better: bool
    status: str  # "ok" | "improved" | "regression" | "insufficient-history"

    def describe(self) -> str:
        arrow = "↑" if self.higher_is_better else "↓"
        if self.status == "insufficient-history":
            return f"{self.metric}: no baseline yet ({arrow} better)"
        change = f"{100 * self.rel_change:+.1f}%" if self.rel_change is not None else "?"
        return (f"{self.metric}: {self.value:.4g} vs EWMA {self.baseline:.4g} "
                f"({change}, {arrow} better) -> {self.status}")


@dataclass
class SentinelReport:
    """Everything one check produced; ``ok`` is the CI gate."""

    verdicts: List[MetricVerdict] = field(default_factory=list)
    history_len: int = 0
    tolerance: float = DEFAULT_TOLERANCE
    #: History entries ignored because their engine parallel_mode differed
    #: from the current run's (inline vs pool timings don't compare).
    skipped_mismatched: int = 0
    parallel_mode: Optional[str] = None

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "history_len": self.history_len,
            "tolerance": self.tolerance,
            "skipped_mismatched": self.skipped_mismatched,
            "parallel_mode": self.parallel_mode,
            "verdicts": [
                {
                    "metric": v.metric, "value": v.value, "baseline": v.baseline,
                    "std_error": v.std_error, "rel_change": v.rel_change,
                    "higher_is_better": v.higher_is_better, "status": v.status,
                }
                for v in self.verdicts
            ],
        }


class RegressionSentinel:
    """Append-only metric history + EWMA baseline check.

    One sentinel wraps one history file. ``append`` records a run;
    ``check`` compares a fresh report against the EWMA of everything
    recorded *before* it. The two are deliberately separate so a CI job
    checks first (against the committed history) and appends after.
    """

    def __init__(
        self,
        path: str = DEFAULT_HISTORY_PATH,
        alpha: float = DEFAULT_ALPHA,
        tolerance: float = DEFAULT_TOLERANCE,
        min_history: int = DEFAULT_MIN_HISTORY,
        metrics: Iterable[MetricSpec] = BENCH_METRICS,
    ):
        self.path = path
        self.alpha = alpha
        self.tolerance = tolerance
        self.min_history = max(1, min_history)
        self.metrics = tuple(metrics)

    # -- history I/O -------------------------------------------------------
    def load(self, kind: Optional[str] = "bench") -> List[Dict[str, Any]]:
        """Parse the history file, skipping corrupt or alien lines."""
        records: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except (FileNotFoundError, OSError):
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or record.get("schema") != HISTORY_SCHEMA:
                continue
            if not isinstance(record.get("metrics"), dict):
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            records.append(record)
        return records

    def append(
        self,
        report: Dict[str, Any],
        kind: str = "bench",
        extra_metrics: Optional[Dict[str, float]] = None,
        note: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append one run's metrics to the history; returns the record."""
        metrics: Dict[str, float] = {}
        for spec in self.metrics:
            value = extract_metric(report, spec.key)
            if value is not None:
                metrics[spec.key] = value
        if extra_metrics:
            metrics.update({k: float(v) for k, v in extra_metrics.items()})
        host: Dict[str, Any] = {"cpu_count": os.cpu_count()}
        report_host = report.get("host") if isinstance(report, dict) else None
        if isinstance(report_host, dict) and "available_cpus" in report_host:
            host["available_cpus"] = report_host["available_cpus"]
        record: Dict[str, Any] = {
            "schema": HISTORY_SCHEMA,
            "kind": kind,
            "metrics": metrics,
            "host": host,
        }
        parallel_mode = report_parallel_mode(report)
        if parallel_mode is not None:
            record["parallel_mode"] = parallel_mode
        if note:
            record["note"] = note
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
        return record

    # -- baselines ---------------------------------------------------------
    def baselines(
        self, history: Optional[List[Dict[str, Any]]] = None
    ) -> Dict[str, Tuple[Optional[float], Optional[float], int]]:
        """Per-metric (EWMA level, std error, observation count)."""
        from repro.core.smoothing import ExponentialSmoothing

        if history is None:
            history = self.load()
        out: Dict[str, Tuple[Optional[float], Optional[float], int]] = {}
        for spec in self.metrics:
            ewma = ExponentialSmoothing(alpha=self.alpha)
            seen = 0
            for record in history:
                value = record["metrics"].get(spec.key)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    ewma.update(float(value))
                    seen += 1
            out[spec.key] = (ewma.predict(), ewma.std_error, seen)
        return out

    def series(
        self, metric: str, history: Optional[List[Dict[str, Any]]] = None
    ) -> List[float]:
        """The raw observation series for one metric, oldest first."""
        if history is None:
            history = self.load()
        values: List[float] = []
        for record in history:
            value = record["metrics"].get(metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
        return values

    # -- the gate ----------------------------------------------------------
    def check(self, report: Dict[str, Any]) -> SentinelReport:
        """Judge ``report`` against the EWMA of the recorded history.

        History entries recorded under a different engine ``parallel_mode``
        than the current report's are skipped (and counted on the result):
        inline and pool wall-clock timings are not comparable baselines.
        """
        history = self.load()
        parallel_mode = report_parallel_mode(report)
        skipped = 0
        if parallel_mode is not None:
            kept = []
            for record in history:
                mode = record.get("parallel_mode")
                if isinstance(mode, str) and mode != parallel_mode:
                    skipped += 1
                else:
                    kept.append(record)
            history = kept
        baselines = self.baselines(history)
        result = SentinelReport(
            history_len=len(history), tolerance=self.tolerance,
            skipped_mismatched=skipped, parallel_mode=parallel_mode,
        )
        for spec in self.metrics:
            value = extract_metric(report, spec.key)
            level, std_error, seen = baselines[spec.key]
            if value is None:
                continue
            if level is None or seen < self.min_history:
                result.verdicts.append(MetricVerdict(
                    metric=spec.key, value=value, baseline=level,
                    std_error=std_error, rel_change=None,
                    higher_is_better=spec.higher_is_better,
                    status="insufficient-history",
                ))
                continue
            if level == 0:
                rel = 0.0 if value == 0 else float("inf") * (1 if value > 0 else -1)
            else:
                rel = (value - level) / abs(level)
            if spec.higher_is_better:
                status = "regression" if rel < -self.tolerance else (
                    "improved" if rel > self.tolerance else "ok")
            else:
                status = "regression" if rel > self.tolerance else (
                    "improved" if rel < -self.tolerance else "ok")
            result.verdicts.append(MetricVerdict(
                metric=spec.key, value=value, baseline=level,
                std_error=std_error, rel_change=rel,
                higher_is_better=spec.higher_is_better, status=status,
            ))
        return result

    # -- regression triage -------------------------------------------------
    def attribution_diff(
        self,
        current: Dict[str, float],
        history: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Localize a gated regression to latency-budget categories.

        ``current`` maps ``budget.<category>_ms`` history keys (see
        :func:`budget_history_metrics`) to this run's totals; each is
        diffed against its own EWMA over the recorded history, and the
        dominant positively-shifted category is named — the sentinel's
        answer to "the bench regressed, *where* did the time go?".
        """
        from repro.core.smoothing import ExponentialSmoothing

        if history is None:
            history = self.load()
        cells: List[Dict[str, Any]] = []
        for key in sorted(current):
            ewma = ExponentialSmoothing(alpha=self.alpha)
            seen = 0
            for record in history:
                value = record["metrics"].get(key)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    ewma.update(float(value))
                    seen += 1
            baseline = ewma.predict()
            value = float(current[key])
            cells.append({
                "metric": key,
                "category": key[len(BUDGET_METRIC_PREFIX):].rsplit("_ms", 1)[0]
                if key.startswith(BUDGET_METRIC_PREFIX) else key,
                "baseline_ms": baseline,
                "value_ms": value,
                "delta_ms": None if baseline is None else value - baseline,
                "observations": seen,
            })
        regressed = [
            c for c in cells
            if c["delta_ms"] is not None and c["delta_ms"] > 0.0
        ]
        total = sum(c["delta_ms"] for c in regressed)
        dominant = None
        headline = "no budget category regressed against its baseline"
        if regressed:
            top = max(regressed, key=lambda c: (c["delta_ms"], c["metric"]))
            share = top["delta_ms"] / total if total > 0 else 0.0
            dominant = {
                "category": top["category"],
                "delta_ms": top["delta_ms"],
                "share": share,
            }
            headline = (
                f"budget +{total:.1f} ms vs EWMA, {share:.0%} from "
                f"{top['category']}"
            )
        return {
            "schema": SENTINEL_ATTRIBUTION_SCHEMA,
            "cells": cells,
            "dominant": dominant,
            "headline": headline,
        }
