"""Frame critical-path analysis and latency attribution over causal spans.

PR 2 gave every frame a *flow*: one causal thread stamped onto every span
the frame touches on its way from guest driver to display
(``stage:<op>`` → ``svm.begin_access`` → ``coherence.copy`` /
``prefetch.copy`` → ``transport.kick`` → ``exec:<op>`` → ``fence.wait`` →
``frame.presented``).  This module is the layer that *explains* those
flows:

* :func:`analyze_tracer` reconstructs each frame's causal DAG from its
  flow, computes the critical path (the maximum-duration chain of
  non-overlapping activities ending at the present), and folds every
  frame into a :class:`LatencyBudget`.
* Each :class:`FrameBudget` partitions the frame's measured latency —
  the ``latency`` argument stamped on its ``frame.presented`` instant —
  into **category × device** cells via an exact interval sweep: the
  window ``[present - latency, present]`` is split at every span
  boundary and each elementary interval is charged to the
  highest-priority span covering it (coherence > prefetch > bus >
  compute > recovery); uncovered time is scheduling/vsync slack.
  Because the sweep partitions the window, the cells sum to the
  measured frame latency by construction — the *conservation
  invariant* (:meth:`FrameBudget.conservation_error`).
* A :class:`LatencyBudget` is plain frozen data (tuples all the way
  down), so it pickles across the engine's process pool, rides the run
  cache inside a ``TelemetrySnapshot``, and round-trips through JSON —
  attribution of a cached run is computed purely from the persisted
  snapshot, never by re-simulating.

Everything here is pure post-hoc data analysis: no simulator access, no
randomness, no mutation of tracer state.  The analyzer cannot perturb a
run because it only ever *reads* spans after the run finished.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import fsum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Budget categories, in sweep-priority order (earlier wins overlaps).
#: ``sched_slack`` is the implicit remainder — time inside the frame
#: window covered by no attributable span (vsync waits, queueing).
BUDGET_CATEGORIES = (
    "coherence_copy",
    "prefetch_penalty",
    "bus_transfer",
    "device_compute",
    "recovery_stall",
    "sched_slack",
)

#: Absolute tolerance (ms) for the conservation invariant.  The sweep
#: partitions the window exactly; only float summation error remains.
CONSERVATION_TOL = 1e-6

#: Device charged for time no device-context span covers (slack, host work).
HOST_DEVICE = "host"

#: Tracks owned by host-side subsystems, never a virtual device.
_HOST_TRACKS = frozenset({"coherence", "prefetch", "transport"})

_EXEC_SUFFIX = "/exec"


class TruncatedTraceError(ReproError):
    """Attribution refused: the tracer's ring cap evicted spans.

    A ring-mode tracer (``Tracer(max_spans=...)``) drops its oldest spans
    on overflow, so any flow may silently be missing its early causality
    — attributing what remains would under-charge categories and break
    conservation.  The analyzer refuses loudly instead of guessing.
    """


# ---------------------------------------------------------------------------
# Frozen result types (picklable, JSON round-trippable)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BudgetCell:
    """Milliseconds charged to one (category, device) pair in one frame."""

    category: str
    device: str
    ms: float


@dataclass(frozen=True)
class PathStep:
    """One activity on a frame's critical path."""

    name: str
    track: str
    start_ms: float
    end_ms: float

    @property
    def ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class FrameBudget:
    """One frame's measured latency, partitioned into budget cells."""

    flow: int
    sequence: int
    present_ms: float
    latency_ms: float
    cells: Tuple[BudgetCell, ...] = ()

    def total_ms(self) -> float:
        """Sum of all cells — equals :attr:`latency_ms` up to float error."""
        return fsum(cell.ms for cell in self.cells)

    def conservation_error(self) -> float:
        """``|sum(cells) - latency|`` in ms; the invariant the tests gate."""
        return abs(self.total_ms() - self.latency_ms)

    def category_ms(self) -> Dict[str, float]:
        out = {category: 0.0 for category in BUDGET_CATEGORIES}
        for cell in self.cells:
            out[cell.category] = out.get(cell.category, 0.0) + cell.ms
        return out


@dataclass(frozen=True)
class LatencyBudget:
    """Every frame of one run folded into a deterministic budget.

    ``skipped_flows`` lists flows that never reached ``frame.presented``
    (frames still in flight at the horizon) — they carry no measured
    latency, so they are reported rather than guessed at.
    ``ff_skipped_frames`` scales the *aggregate* view when the run
    fast-forwarded over proven-periodic steady state: each observed
    frame then stands for ``ff_multiplier`` real frames.  Per-frame
    budgets are never scaled — conservation is a per-frame property.
    """

    frames: Tuple[FrameBudget, ...] = ()
    critical_path: Tuple[PathStep, ...] = ()
    skipped_flows: Tuple[int, ...] = ()
    ff_skipped_frames: int = 0

    # -- aggregate views ---------------------------------------------------
    @property
    def ff_multiplier(self) -> float:
        """How many real frames each observed frame represents (>= 1)."""
        if not self.frames or self.ff_skipped_frames <= 0:
            return 1.0
        observed = len(self.frames)
        return (observed + self.ff_skipped_frames) / observed

    def totals(self, scaled: bool = True) -> Dict[Tuple[str, str], float]:
        """Total ms per (category, device) cell across all frames."""
        factor = self.ff_multiplier if scaled else 1.0
        acc: Dict[Tuple[str, str], List[float]] = {}
        for frame in self.frames:
            for cell in frame.cells:
                acc.setdefault((cell.category, cell.device), []).append(cell.ms)
        return {key: fsum(values) * factor for key, values in sorted(acc.items())}

    def category_totals(self, scaled: bool = True) -> Dict[str, float]:
        out = {category: 0.0 for category in BUDGET_CATEGORIES}
        for (category, _device), ms in self.totals(scaled=scaled).items():
            out[category] = out.get(category, 0.0) + ms
        return out

    def total_latency_ms(self, scaled: bool = True) -> float:
        factor = self.ff_multiplier if scaled else 1.0
        return fsum(frame.latency_ms for frame in self.frames) * factor

    def latencies(self) -> List[float]:
        return [frame.latency_ms for frame in self.frames]

    def dominant_cell(self) -> Optional[Tuple[str, str, float]]:
        """The (category, device, ms) cell holding the most total time."""
        totals = self.totals()
        if not totals:
            return None
        (category, device), ms = max(
            totals.items(), key=lambda kv: (kv[1], kv[0])
        )
        return category, device, ms

    def conservation_errors(self, tol: float = CONSERVATION_TOL) -> List[str]:
        """Frames violating the conservation invariant (empty == healthy)."""
        problems = []
        for frame in self.frames:
            err = frame.conservation_error()
            if err > tol:
                problems.append(
                    f"frame seq={frame.sequence} flow={frame.flow}: cells sum "
                    f"to {frame.total_ms():.9f} ms but measured latency is "
                    f"{frame.latency_ms:.9f} ms (error {err:.3e})"
                )
        return problems

    def scaled_for_fast_forward(
        self, stats: Optional[Mapping[str, Any]]
    ) -> "LatencyBudget":
        """Apply a fast-forward controller's skip stats to the aggregate.

        One skipped cycle spans ``cycle_multiple`` anchor (vsync) periods
        — one frame each — so the observed steady-state frames stand for
        ``skipped_cycles * cycle_multiple`` additional identical frames.
        """
        if not stats:
            return self
        skipped = int(stats.get("skipped_cycles") or 0)
        if skipped <= 0:
            return self
        multiple = int(stats.get("cycle_multiple") or 1)
        return replace(self, ff_skipped_frames=skipped * max(multiple, 1))

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "frames": [
                {
                    "flow": f.flow,
                    "sequence": f.sequence,
                    "present_ms": f.present_ms,
                    "latency_ms": f.latency_ms,
                    "cells": [
                        {"category": c.category, "device": c.device, "ms": c.ms}
                        for c in f.cells
                    ],
                }
                for f in self.frames
            ],
            "critical_path": [
                {"name": s.name, "track": s.track,
                 "start_ms": s.start_ms, "end_ms": s.end_ms}
                for s in self.critical_path
            ],
            "skipped_flows": list(self.skipped_flows),
            "ff_skipped_frames": self.ff_skipped_frames,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencyBudget":
        return cls(
            frames=tuple(
                FrameBudget(
                    flow=int(f["flow"]),
                    sequence=int(f["sequence"]),
                    present_ms=float(f["present_ms"]),
                    latency_ms=float(f["latency_ms"]),
                    cells=tuple(
                        BudgetCell(c["category"], c["device"], float(c["ms"]))
                        for c in f.get("cells", ())
                    ),
                )
                for f in data.get("frames", ())
            ),
            critical_path=tuple(
                PathStep(s["name"], s["track"],
                         float(s["start_ms"]), float(s["end_ms"]))
                for s in data.get("critical_path", ())
            ),
            skipped_flows=tuple(int(x) for x in data.get("skipped_flows", ())),
            ff_skipped_frames=int(data.get("ff_skipped_frames", 0)),
        )


# ---------------------------------------------------------------------------
# Span classification
# ---------------------------------------------------------------------------

def _classify(name: str, cat: str) -> Tuple[Optional[str], int]:
    """Map a span to (budget category, sweep priority); (None, _) = context.

    ``prefetch.*`` is matched before its ``coherence`` cat: prefetch
    traffic inside the frame window is by definition a miss penalty (a
    hit would have moved the bytes *before* the frame was born).
    """
    if name.startswith("prefetch."):
        return "prefetch_penalty", 1
    if name.startswith("coherence."):
        return "coherence_copy", 0
    if name == "transport.kick":
        return "bus_transfer", 2
    if name.startswith("exec:"):
        return "device_compute", 3
    if cat == "recovery" or name.startswith(("recovery.", "crash.", "replay.")):
        return "recovery_stall", 4
    return None, 99  # stage:*, svm.*, fence.* — context, not directly charged


def _span_device(name: str, cat: str, track: str) -> Optional[str]:
    """The virtual device a span ran on, or None for host subsystems."""
    if track in _HOST_TRACKS:
        return None
    if track.endswith(_EXEC_SUFFIX):
        return track[: -len(_EXEC_SUFFIX)] or None
    if cat in ("stage", "svm", "exec", "fence"):
        return track
    return None


#: Device-context preference when charging a host-track span to a device:
#: the device executing (exec) beats the device accessing (svm) beats the
#: device whose stage merely contains the interval.
def _context_rank(name: str, cat: str) -> int:
    if name.startswith("exec:"):
        return 0
    if cat == "svm":
        return 1
    return 2


# ---------------------------------------------------------------------------
# The per-frame sweep
# ---------------------------------------------------------------------------

def _frame_budget(flow: int, spans: Sequence[Any], presented: Any) -> FrameBudget:
    """Partition one frame's latency window via an exact interval sweep."""
    present = float(presented.start)
    latency = float((presented.args or {}).get("latency", 0.0))
    sequence = int((presented.args or {}).get("sequence", 0))
    lo = present - latency

    # (start, end, priority, span_id, category, device) for chargeable
    # spans; (start, end, rank, span_id, device) for device context.
    charge: List[Tuple[float, float, int, int, str, Optional[str]]] = []
    context: List[Tuple[float, float, int, int, str]] = []
    for span in spans:
        if span is presented:
            continue
        end = present if span.end is None else float(span.end)
        a = max(float(span.start), lo)
        b = min(end, present)
        if b <= a:
            continue
        category, priority = _classify(span.name, span.cat)
        device = _span_device(span.name, span.cat, span.track)
        if category is not None:
            charge.append((a, b, priority, span.span_id, category, device))
        if device is not None:
            context.append(
                (a, b, _context_rank(span.name, span.cat), span.span_id, device)
            )

    if latency <= 0.0:
        return FrameBudget(flow, sequence, present, latency)

    default_device = HOST_DEVICE
    if context:
        default_device = min(context, key=lambda c: (c[0], c[2], c[3]))[4]

    bounds = {lo, present}
    for a, b, *_ in charge:
        bounds.add(a)
        bounds.add(b)
    cuts = sorted(bounds)

    cells: Dict[Tuple[str, str], List[float]] = {}
    for left, right in zip(cuts, cuts[1:]):
        if right <= left:
            continue
        active = [iv for iv in charge if iv[0] <= left and iv[1] >= right]
        if active:
            _a, _b, _pri, _sid, category, device = min(
                active, key=lambda iv: (iv[2], iv[3])
            )
            if device is None:
                around = [c for c in context if c[0] <= left and c[1] >= right]
                if around:
                    device = min(around, key=lambda c: (c[2], c[3]))[4]
                else:
                    device = default_device
        else:
            category, device = "sched_slack", HOST_DEVICE
        cells.setdefault((category, device), []).append(right - left)

    return FrameBudget(
        flow=flow,
        sequence=sequence,
        present_ms=present,
        latency_ms=latency,
        cells=tuple(
            BudgetCell(category, device, fsum(lengths))
            for (category, device), lengths in sorted(cells.items())
        ),
    )


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------

def _critical_path(spans: Sequence[Any], presented: Any) -> Tuple[PathStep, ...]:
    """Max-duration chain of non-overlapping activities ending at present.

    Nodes are the frame's clipped spans (container ``stage:*`` spans are
    excluded — they span the whole window and would shadow the real
    chain); an edge j→i exists when j finishes no later than i starts,
    i.e. j *can* causally precede i.  The DP is deterministic: ties
    break toward the smaller span id, so two identical runs produce the
    identical path.
    """
    present = float(presented.start)
    latency = float((presented.args or {}).get("latency", 0.0))
    lo = present - latency

    nodes: List[Tuple[float, float, int, str, str]] = []
    for span in spans:
        if span is presented or span.name.startswith("stage:"):
            continue
        end = present if span.end is None else float(span.end)
        a = max(float(span.start), lo)
        b = min(end, present)
        if b <= a:
            continue
        nodes.append((a, b, span.span_id, span.name, span.track))
    nodes.sort(key=lambda n: (n[0], n[2]))

    n = len(nodes)
    dist = [0.0] * n
    prev = [-1] * n
    for i in range(n):
        a_i, b_i, _sid, _name, _track = nodes[i]
        best, best_j = 0.0, -1
        for j in range(i):
            if nodes[j][1] <= a_i and dist[j] > best:
                best, best_j = dist[j], j
        dist[i] = best + (b_i - a_i)
        prev[i] = best_j

    # Terminal: the presented instant at ``present``; every node that
    # finished by then can feed it.
    best, tail = 0.0, -1
    for i in range(n):
        if nodes[i][1] <= present and dist[i] > best:
            best, tail = dist[i], i

    steps: List[PathStep] = []
    while tail >= 0:
        a, b, _sid, name, track = nodes[tail]
        steps.append(PathStep(name, track, a, b))
        tail = prev[tail]
    steps.reverse()
    steps.append(PathStep("frame.presented", presented.track, present, present))
    return tuple(steps)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_tracer(
    tracer: Any, fast_forward: Optional[Mapping[str, Any]] = None
) -> LatencyBudget:
    """Fold every presented frame in ``tracer`` into a :class:`LatencyBudget`.

    Raises :class:`TruncatedTraceError` when the tracer ran in ring mode
    and evicted spans — a truncated flow cannot be attributed honestly.
    ``fast_forward`` is the controller's ``stats()`` dict (or None); when
    it skipped cycles the aggregate views scale accordingly.
    """
    dropped = getattr(tracer, "dropped_spans", 0)
    if dropped:
        cap = getattr(tracer, "max_spans", None)
        raise TruncatedTraceError(
            f"tracer dropped {dropped} span(s) to its ring cap "
            f"(max_spans={cap}); flows may be missing their early causality, "
            "so latency attribution would be unsound — rerun without "
            "max_spans (or with a larger cap) to attribute this trace"
        )

    frames: List[FrameBudget] = []
    skipped: List[int] = []
    worst: Optional[Tuple[float, int, Sequence[Any], Any]] = None
    for flow in tracer.flows():
        spans = tracer.spans_of_flow(flow)
        presented = None
        for span in spans:
            if span.name == "frame.presented":
                presented = span  # keep the last present of the flow
        if presented is None:
            skipped.append(flow)
            continue
        frame = _frame_budget(flow, spans, presented)
        frames.append(frame)
        key = (frame.latency_ms, -frame.sequence)
        if worst is None or key > (worst[0], -worst[1]):
            worst = (frame.latency_ms, frame.sequence, spans, presented)

    frames.sort(key=lambda f: (f.present_ms, f.sequence, f.flow))
    path = _critical_path(worst[2], worst[3]) if worst is not None else ()
    budget = LatencyBudget(
        frames=tuple(frames),
        critical_path=path,
        skipped_flows=tuple(skipped),
    )
    return budget.scaled_for_fast_forward(fast_forward)


def budget_from_snapshot(snapshot: Any) -> Optional[LatencyBudget]:
    """The persisted attribution of a cached run, or None if unobserved.

    Accepts a ``TelemetrySnapshot`` (attribute access) or its
    ``to_dict()`` form — both carry the budget verbatim, so a warm-cache
    rerun attributes without simulating.
    """
    if snapshot is None:
        return None
    attribution = (
        snapshot.get("attribution")
        if isinstance(snapshot, Mapping)
        else getattr(snapshot, "attribution", None)
    )
    if attribution is None:
        return None
    if isinstance(attribution, LatencyBudget):
        return attribution
    return LatencyBudget.from_dict(attribution)
