"""Frame-deadline SLOs with windowed burn-rate accounting.

An :class:`SloSpec` states the promise ("99% of frames present within
50 ms"); :func:`evaluate_frames` grades one run's per-frame latencies
against it, and :func:`fleet_burn` rolls per-session grades up to a
fleet view.  Burn rate is the SRE convention: the rate at which a window
consumes the error budget, normalized so 1.0 means "exactly on budget" —
a window with miss rate ``m`` against target ``t`` burns ``m / (1 - t)``.
Tumbling (non-overlapping) windows keep the accounting deterministic and
O(frames).

Pure data → data; no clocks, no randomness, nothing to perturb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default present-latency deadline, in ms.  Frame latency is measured
#: birth → present and healthy pipelines take ~2–3 vsync periods, so the
#: default promises three 60 Hz periods.
DEFAULT_DEADLINE_MS = 50.0

#: Default SLO target: fraction of frames that must meet the deadline.
DEFAULT_TARGET = 0.99

#: Default burn-rate window, in frames (~1 s of 60 Hz playback).
DEFAULT_WINDOW_FRAMES = 60


@dataclass(frozen=True)
class SloSpec:
    """One frame-deadline service-level objective."""

    name: str = "frame-deadline"
    deadline_ms: float = DEFAULT_DEADLINE_MS
    target: float = DEFAULT_TARGET
    window_frames: int = DEFAULT_WINDOW_FRAMES

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.window_frames < 1:
            raise ValueError(
                f"window_frames must be >= 1, got {self.window_frames}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "deadline_ms": self.deadline_ms,
            "target": self.target,
            "window_frames": self.window_frames,
        }


@dataclass(frozen=True)
class SloReport:
    """One latency series graded against one :class:`SloSpec`."""

    spec: SloSpec
    frames: int
    misses: int
    #: Per-window burn rates, in frame order (last window may be partial).
    burn_rates: Tuple[float, ...] = ()

    @property
    def miss_rate(self) -> float:
        return self.misses / self.frames if self.frames else 0.0

    @property
    def compliance(self) -> float:
        return 1.0 - self.miss_rate

    @property
    def met(self) -> bool:
        return self.compliance >= self.spec.target

    @property
    def overall_burn(self) -> float:
        """Error budget consumed over the whole run, normalized to 1.0."""
        return self.miss_rate / (1.0 - self.spec.target)

    @property
    def peak_burn(self) -> float:
        return max(self.burn_rates, default=0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "frames": self.frames,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "compliance": self.compliance,
            "met": self.met,
            "overall_burn": self.overall_burn,
            "peak_burn": self.peak_burn,
            "burn_rates": list(self.burn_rates),
        }


def evaluate_frames(
    latencies: Sequence[float], spec: Optional[SloSpec] = None
) -> SloReport:
    """Grade per-frame latencies (ms, frame order) against ``spec``."""
    spec = spec if spec is not None else SloSpec()
    misses = 0
    burns: List[float] = []
    window_frames = 0
    window_misses = 0
    budget = 1.0 - spec.target
    for latency in latencies:
        miss = latency > spec.deadline_ms
        misses += int(miss)
        window_frames += 1
        window_misses += int(miss)
        if window_frames == spec.window_frames:
            burns.append((window_misses / window_frames) / budget)
            window_frames = window_misses = 0
    if window_frames:
        burns.append((window_misses / window_frames) / budget)
    return SloReport(
        spec=spec,
        frames=len(latencies),
        misses=misses,
        burn_rates=tuple(burns),
    )


def fleet_burn(
    sessions: Mapping[str, Sequence[float]], spec: Optional[SloSpec] = None
) -> Dict[str, Any]:
    """Grade many sessions and roll them up into one fleet verdict.

    ``sessions`` maps session/group keys to per-frame latency series.
    The rollup pools every frame (a fleet SLO is a promise about frames,
    not about sessions), and also reports the worst per-session burn so
    a single pathological session cannot hide inside a healthy average.
    """
    spec = spec if spec is not None else SloSpec()
    per_session: Dict[str, SloReport] = {
        key: evaluate_frames(latencies, spec)
        for key, latencies in sessions.items()
    }
    total_frames = sum(r.frames for r in per_session.values())
    total_misses = sum(r.misses for r in per_session.values())
    budget = 1.0 - spec.target
    fleet_miss_rate = total_misses / total_frames if total_frames else 0.0
    worst = max(
        sorted(per_session.items()),
        key=lambda kv: (kv[1].overall_burn, kv[0]),
        default=None,
    )
    return {
        "spec": spec.to_dict(),
        "sessions": {
            key: per_session[key].to_dict() for key in sorted(per_session)
        },
        "fleet": {
            "frames": total_frames,
            "misses": total_misses,
            "miss_rate": fleet_miss_rate,
            "compliance": 1.0 - fleet_miss_rate,
            "met": (1.0 - fleet_miss_rate) >= spec.target,
            "overall_burn": fleet_miss_rate / budget,
            "worst_session": worst[0] if worst else None,
            "worst_session_burn": worst[1].overall_burn if worst else 0.0,
        },
    }
