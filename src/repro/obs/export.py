"""Exporters: Chrome ``trace_event`` / Perfetto JSON and metrics JSON.

The trace exporter follows the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev ingest:

* one **pid** per *physical* device (GPU, CPU, camera, NIC — plus a
  ``host`` pseudo-process for transport/coherence/prefetch subsystems);
* one **tid** per *virtual* device / guest process / subsystem track;
* spans become complete (``"X"``) events, instants become ``"i"`` events;
* each causal flow (one frame's journey) becomes a chain of flow events
  (``"s"``/``"t"``/``"f"``) binding its spans together, which Perfetto
  renders as arrows from ``svm.begin_access`` through the coherence copy
  to ``frame.presented``.

Timestamps convert from simulated milliseconds to the format's
microseconds. :func:`validate_chrome_trace` is the schema check CI runs on
the exported artifact; :func:`tracelog_events` digests a classic
:class:`~repro.sim.tracing.TraceLog` into instant events so pre-span
instrumentation shows up in the same timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.span import NO_FLOW, Span, Tracer
from repro.sim.tracing import TraceLog

#: Track group (= Chrome pid) used when no mapping is provided.
DEFAULT_GROUP = "host"

_MS_TO_US = 1000.0


def _jsonable(value: Any) -> Any:
    """Coerce span/record payloads into JSON-serializable shapes."""
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _TrackTable:
    """Stable track → (pid, tid) assignment plus metadata events."""

    def __init__(self, track_groups: Optional[Mapping[str, str]]):
        self._groups = dict(track_groups or {})
        self._pids: Dict[str, int] = {}
        self._tids: Dict[str, Tuple[int, int]] = {}

    def ids_for(self, track: str) -> Tuple[int, int]:
        known = self._tids.get(track)
        if known is not None:
            return known
        group = self._groups.get(track, DEFAULT_GROUP)
        pid = self._pids.get(group)
        if pid is None:
            pid = self._pids[group] = len(self._pids) + 1
        tid = sum(1 for t, (p, _) in self._tids.items() if p == pid) + 1
        self._tids[track] = (pid, tid)
        return pid, tid

    def metadata_events(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        for group, pid in sorted(self._pids.items(), key=lambda kv: kv[1]):
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": group},
            })
        for track, (pid, tid) in sorted(self._tids.items(), key=lambda kv: kv[1]):
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return events


#: Span-arg keys the exporter lifts to the event top level: a span
#: carrying ``bind_id=...`` plus ``flow_out``/``flow_in`` becomes one end
#: of a v2 flow arrow (the cross-worker migration links use this).
_BIND_KEYS = ("bind_id", "flow_out", "flow_in")


def _span_event(span: Span, pid: int, tid: int, end_time: float) -> Dict[str, Any]:
    end = span.end if span.end is not None else end_time
    args = {k: _jsonable(v) for k, v in span.args.items()
            if k not in _BIND_KEYS}
    if span.flow != NO_FLOW:
        args["flow"] = span.flow
    event = {
        "ph": "X",
        "name": span.name,
        "cat": span.cat,
        "ts": span.start * _MS_TO_US,
        "dur": max(0.0, end - span.start) * _MS_TO_US,
        "pid": pid,
        "tid": tid,
        "args": args,
    }
    if "bind_id" in span.args:
        event["bind_id"] = _jsonable(span.args["bind_id"])
        for key in ("flow_out", "flow_in"):
            if span.args.get(key):
                event[key] = True
    return event


def _instant_event(span: Span, pid: int, tid: int) -> Dict[str, Any]:
    args = {k: _jsonable(v) for k, v in span.args.items()}
    if span.flow != NO_FLOW:
        args["flow"] = span.flow
    return {
        "ph": "i",
        "s": "t",
        "name": span.name,
        "cat": span.cat,
        "ts": span.start * _MS_TO_US,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _flow_events(
    flow: int, spans: List[Span], table: _TrackTable
) -> List[Dict[str, Any]]:
    """The s/t/f chain binding one flow's spans into an arrow sequence."""
    if len(spans) < 2:
        return []  # an arrow needs two ends
    events: List[Dict[str, Any]] = []
    last = len(spans) - 1
    for index, span in enumerate(spans):
        pid, tid = table.ids_for(span.track)
        phase = "s" if index == 0 else ("f" if index == last else "t")
        event: Dict[str, Any] = {
            "ph": phase,
            "cat": "flow",
            "name": "frame-flow",
            "id": flow,
            "ts": span.start * _MS_TO_US,
            "pid": pid,
            "tid": tid,
        }
        if phase == "f":
            event["bp"] = "e"  # bind to the enclosing slice, not the next
        events.append(event)
    return events


def tracelog_events(
    log: TraceLog, table: _TrackTable, track_field: str = "vdev"
) -> List[Dict[str, Any]]:
    """Digest classic TraceLog records into instant events.

    Records carrying a ``vdev`` field land on that virtual device's track;
    everything else goes to a shared ``trace`` track. This keeps legacy
    instrumentation visible in the exported timeline without porting every
    call site to spans.
    """
    events: List[Dict[str, Any]] = []
    for record in log:
        track = str(record.get(track_field) or "trace")
        pid, tid = table.ids_for(track)
        events.append({
            "ph": "i",
            "s": "t",
            "name": record.kind,
            "cat": "tracelog",
            "ts": record.time * _MS_TO_US,
            "pid": pid,
            "tid": tid,
            "args": {k: _jsonable(v) for k, v in record.fields.items()},
        })
    return events


def fastforward_events(
    stats: Mapping[str, Any], table: _TrackTable
) -> List[Dict[str, Any]]:
    """Instant events marking an analytic fast-forward jump.

    A steady-state jump leaves no spans behind — simulated time moves
    without events — so a Perfetto timeline would show a silent gap.
    This marks the jump edge with an ``i`` event carrying the skip
    arithmetic (cycles, multiplicity, skipped ms) so the gap reads as
    "proven periodic, skipped analytically" instead of "nothing ran".
    """
    if not stats or not stats.get("skipped_cycles"):
        return []
    pid, tid = table.ids_for("fastforward")
    events = []
    for name, ts in (("fastforward.jump", stats.get("jump_at")),
                     ("fastforward.land", stats.get("jump_to"))):
        if ts is None:
            continue
        events.append({
            "ph": "i",
            "s": "g",  # global scope: the whole timeline jumped
            "name": name,
            "cat": "fastforward",
            "ts": float(ts) * _MS_TO_US,
            "pid": pid,
            "tid": tid,
            "args": {
                "skipped_cycles": stats.get("skipped_cycles"),
                "skipped_ms": stats.get("skipped_ms"),
                "cycle_multiple": stats.get("cycle_multiple"),
            },
        })
    return events


def chrome_trace(
    tracer: Tracer,
    track_groups: Optional[Mapping[str, str]] = None,
    tracelog: Optional[TraceLog] = None,
    end_time: Optional[float] = None,
    fast_forward: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Export a tracer (and optionally a TraceLog) as a Chrome trace dict.

    ``track_groups`` maps track names to their process group (physical
    device); unmapped tracks join the ``host`` group. ``end_time`` clamps
    spans still open at export time (defaults to the latest span edge).
    ``fast_forward`` is a :meth:`FastForwardController.stats` dict; when
    the run jumped, the skipped region is annotated with instant events.
    """
    table = _TrackTable(track_groups)
    if end_time is None:
        end_time = 0.0
        for span in tracer.spans:
            end_time = max(end_time, span.end if span.end is not None else span.start)
    events: List[Dict[str, Any]] = []
    for span in tracer.spans:
        pid, tid = table.ids_for(span.track)
        events.append(_span_event(span, pid, tid, end_time))
    for span in tracer.instants:
        pid, tid = table.ids_for(span.track)
        events.append(_instant_event(span, pid, tid))
    # Single pass over the spans to group by flow (equivalent to calling
    # spans_of_flow per flow, but O(spans) instead of O(flows × spans) —
    # a fleet trace has one flow per session, so the quadratic walk bites).
    by_flow: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        if span.flow != NO_FLOW:
            by_flow.setdefault(span.flow, []).append(span)
    for span in tracer.instants:
        if span.flow != NO_FLOW:
            by_flow.setdefault(span.flow, []).append(span)
    for flow in sorted(by_flow):
        chain = sorted(by_flow[flow], key=lambda s: (s.start, s.span_id))
        events.extend(_flow_events(flow, chain, table))
    if tracelog is not None:
        events.extend(tracelog_events(tracelog, table))
    if fast_forward is not None:
        events.extend(fastforward_events(fast_forward, table))
    # Stable sort on ts only: flow events are appended in chain order, so
    # s → t → f survives timestamp ties (a (ts, pid, tid) key would not).
    events.sort(key=lambda e: e.get("ts", 0.0))
    other: Dict[str, Any] = {
        "clock": "simulated",
        "time_unit_in": "ms",
        "dropped_spans": tracer.dropped_spans,
        "span_retention": (
            "all" if tracer.max_spans is None
            else f"ring:{tracer.max_spans}"
        ),
    }
    return {
        "traceEvents": table.metadata_events() + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, trace: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)


#: Phases the validator accepts (the subset this exporter emits).
_KNOWN_PHASES = {"X", "i", "M", "s", "t", "f", "b", "e", "B", "E", "C"}


def validate_chrome_trace(trace: Any) -> List[str]:
    """Schema-check a trace-event JSON object; returns a list of problems.

    An empty list means the object is a well-formed Chrome/Perfetto trace
    as far as the JSON schema goes (it does not check semantic nesting).
    CI runs this on the exported artifact.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    flow_ids: Dict[int, List[str]] = {}
    # bind_id → [saw flow_out, saw flow_in] for the v2 flow encoding.
    bind_ids: Dict[Any, List[bool]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: missing non-negative 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs non-negative 'dur'")
        if phase in ("s", "t", "f"):
            flow = event.get("id")
            if not isinstance(flow, int):
                errors.append(f"{where}: flow event needs integer 'id'")
            else:
                flow_ids.setdefault(flow, []).append(phase)
        if phase in ("X", "i", "M") and not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if "bind_id" in event:
            bind_id = event["bind_id"]
            if not isinstance(bind_id, (int, str)):
                errors.append(f"{where}: 'bind_id' must be an int or string")
                continue
            out = bool(event.get("flow_out"))
            into = bool(event.get("flow_in"))
            if not out and not into:
                errors.append(
                    f"{where}: 'bind_id' {bind_id!r} set without "
                    "'flow_out' or 'flow_in' — the binding can never pair"
                )
                continue
            flags = bind_ids.setdefault(bind_id, [False, False])
            flags[0] = flags[0] or out
            flags[1] = flags[1] or into
    for flow, phases in sorted(flow_ids.items()):
        if phases[0] != "s" or phases[-1] != "f":
            errors.append(f"flow {flow}: must start with 's' and end with 'f', got {phases}")
    for bind_id, (out, into) in sorted(bind_ids.items(), key=lambda kv: str(kv[0])):
        if out and not into:
            errors.append(f"bind_id {bind_id!r}: has 'flow_out' events but no "
                          "'flow_in' — the arrow starts and never lands")
        elif into and not out:
            errors.append(f"bind_id {bind_id!r}: has 'flow_in' events but no "
                          "'flow_out' — the arrow lands but never starts")
    return errors


def metrics_json(
    registry: MetricsRegistry,
    profile: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Bundle the registry (plus self-profile table) for the metrics file."""
    out = registry.to_dict()
    if profile is not None:
        out["profile"] = _jsonable(profile)
    if extra:
        out.update(_jsonable(extra))
    return out


def write_metrics(path: str, metrics: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics, fh, indent=1)


def connected_flows(
    tracer: Tracer, required_names: Iterable[str]
) -> List[int]:
    """Flow ids whose span chain touches every name in ``required_names``.

    The acceptance check for end-to-end causality: a frame flow is
    *connected* when one flow id stamps spans for each requested stage
    (e.g. ``svm.begin_access`` → a coherence/prefetch copy →
    ``frame.presented``).
    """
    required = list(required_names)
    found: List[int] = []
    for flow in tracer.flows():
        names = {s.name for s in tracer.spans_of_flow(flow)}
        if all(any(name == r or name.startswith(r) for name in names) for r in required):
            found.append(flow)
    return found
