"""Exception hierarchy for the vSoC reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch the whole family with one clause. Subclasses are deliberately narrow:
each names the subsystem and the contract that was violated.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel detected an inconsistent state."""


class DeadlockError(SimulationError):
    """``run()`` was asked to make progress but every process is blocked."""


class HardwareError(ReproError):
    """A hardware model was misused (unknown device, bad bandwidth, ...)."""


class TransientCopyError(HardwareError):
    """A DMA/bus transfer failed mid-flight; the copy may be retried."""


class TransportDropError(ReproError):
    """A guest→host transport kick was lost before the host observed it."""


class DeadlineExceededError(ReproError):
    """An operation outlived its watchdog deadline."""


class DegradedModeError(ReproError):
    """Coherence maintenance keeps failing at the deepest fallback rung."""


class SvmError(ReproError):
    """Shared-virtual-memory contract violation (bad handle, double free)."""


class UnknownRegionError(SvmError):
    """An SVM region ID was not found in the manager's hashtable."""


class AccessStateError(SvmError):
    """begin_access / end_access were called out of order."""


class FenceError(ReproError):
    """Virtual command fence misuse (double signal, unknown fence index)."""


class FenceTableFullError(FenceError):
    """The one-page virtual fence table ran out of recyclable indices."""


class CapabilityError(ReproError):
    """An app needs a device the emulator does not implement (§5.3)."""


class ConfigurationError(ReproError):
    """An experiment or model was configured with invalid parameters."""


class InvariantViolation(ReproError):
    """The runtime auditor caught a coherence/ordering invariant breach.

    Carries structured context so CI and the ``recover`` report can point at
    the exact region/fence/edge that went wrong rather than a bare message.
    """

    def __init__(self, invariant: str, message: str, **context: object):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.context = context


class RecoveryError(ReproError):
    """Device-crash recovery was asked to do something inconsistent
    (unknown device, overlapping recoveries on one device)."""


class SnapshotError(ReproError):
    """Base class for checkpoint/restore failures."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot failed its checksum / framing check and was rejected."""


class SnapshotMismatchError(SnapshotError):
    """Deterministic replay reached the cut point in a different state
    than the snapshot recorded — the run recipe and the snapshot disagree."""


class FleetError(ReproError):
    """The fleet session service hit an inconsistent control-plane state
    (a wedged virtual clock, a session placed on a dead worker, ...)."""


class AdmissionRejectedError(FleetError):
    """A session request was refused by admission control (window closed,
    no worker capacity, or priority shed under saturation)."""
