"""Property-based scenario fuzzing with automatic shrinking.

:func:`sample_scenario` draws a schema-valid scenario document from a
seeded RNG — app mixes across every pipeline (including generic stage
graphs), environment timelines (bus load, thermal, fault plans built
through the :class:`~repro.faults.plan.FaultPlan` builders so they are
valid by construction), and audit knobs. One seed = one document,
bit for bit.

:func:`run_fuzz` turns seeds into engine :class:`PointSpec`s
(``fn=repro.scenario.runner:scenario_point``), so samples ride the run
cache and ``--jobs`` fan-out like any other experiment. Every non-``ok``
outcome is shrunk in-process (:func:`repro.scenario.shrink.shrink_scenario`)
against a same-signature predicate and written to a reproducer file with
enough context to replay: the minimized scenario, the original finding,
and the content sha256 the REPRODUCE line quotes.

:func:`sample_fault_plan_dict` is the *raw* (unconstrained) plan sampler
the property tests use: it draws arbitrary plan documents that may be
invalid, asserting ``from_dict`` either builds a validated plan or raises
:class:`~repro.errors.ConfigurationError` — never anything else.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.scenario.schema import (
    DEVICE_OPS,
    KNOWN_BUSES,
    MACHINE_DEVICES,
    PIPELINES,
    canonical_json,
    normalize_scenario,
    scenario_digest,
    validate_scenario,
)
from repro.units import KIB, MIB

#: (device, op) pairs sampled for graph stages — every schema-valid pair.
#: Capability misses (a camera stage on a camera-less emulator) are
#: handled: the app reports ``ran=False`` instead of erroring.
_GRAPH_STAGES = tuple(
    (device, op) for device, ops in sorted(DEVICE_OPS.items()) for op in ops
)

#: Pipelines the sampler draws from, weighted toward the cheap ones so a
#: 50-sample smoke run stays fast.
_PIPELINE_WEIGHTS = (
    ("video", 3),
    ("video360", 1),
    ("camera", 3),
    ("ar", 2),
    ("livestream", 1),
    ("heavy3d", 1),
    ("graph", 4),
)

_EMULATOR_WEIGHTS = (
    ("vSoC", 6),
    ("GAE", 2),
    ("QEMU-KVM", 1),
    ("LDPlayer", 1),
    ("Bluestacks", 1),
    ("Trinity", 2),
)


def _weighted(rng: random.Random, table) -> str:
    names = [name for name, _ in table]
    weights = [weight for _, weight in table]
    return rng.choices(names, weights=weights, k=1)[0]


def _sample_app(rng: random.Random, index: int, duration_ms: float) -> Dict[str, Any]:
    pipeline = _weighted(rng, _PIPELINE_WEIGHTS)
    stanza: Dict[str, Any] = {"name": f"app{index}-{pipeline}", "pipeline": pipeline}
    if pipeline == "graph":
        stages = []
        for _ in range(rng.randint(1, 3)):
            device, op = rng.choice(_GRAPH_STAGES)
            stages.append({
                "device": device,
                "op": op,
                "bytes": rng.choice((256 * KIB, MIB, 2 * MIB, 4 * MIB)),
            })
        stanza["stages"] = stages
        stanza["frame_rate"] = rng.choice((24.0, 30.0, 45.0, 60.0))
        if rng.random() < 0.5:
            stanza["burst"] = rng.randint(1, 3)
        if rng.random() < 0.4:
            stanza["buffers"] = rng.randint(2, 6)
        if rng.random() < 0.3:
            stanza["measure_latency"] = True
        stanza["frame_bytes"] = rng.choice((512 * KIB, MIB, 4 * MIB))
    else:
        fields = PIPELINES[pipeline].fields
        # Keep frames modest so a fuzz sweep stays minutes, not hours.
        if "frame_bytes" in fields and rng.random() < 0.6:
            stanza["frame_bytes"] = rng.choice((MIB, 4 * MIB, 8 * MIB))
        if "buffers" in fields and rng.random() < 0.4:
            stanza["buffers"] = rng.randint(2, 8)
        if "compose_dirty_fraction" in fields and rng.random() < 0.3:
            stanza["compose_dirty_fraction"] = round(rng.uniform(0.1, 1.0), 3)
        if "warmup_ms" in fields and rng.random() < 0.2:
            stanza["warmup_ms"] = rng.choice((500.0, 1_000.0, 2_000.0))
    if rng.random() < 0.2:
        stanza["priority"] = rng.randint(0, 2)
    return stanza


def _sample_faults(rng: random.Random, emulator: str,
                   duration_ms: float) -> Dict[str, Any]:
    """A fault plan through the builders — valid by construction."""
    plan = FaultPlan()
    if rng.random() < 0.6:
        bus = rng.choice(KNOWN_BUSES)
        start = rng.uniform(500.0, duration_ms * 0.4)
        if rng.random() < 0.5:
            plan.flap_bus(bus, start_ms=round(start, 1),
                          period_ms=rng.choice((250.0, 500.0)),
                          cycles=rng.randint(2, 4),
                          high_load=round(rng.uniform(0.4, 0.9), 2))
        else:
            plan.set_bus_load(round(start, 1), bus,
                              round(rng.uniform(0.2, 0.8), 2))
            plan.set_bus_load(round(start + rng.uniform(500.0, 1_500.0), 1),
                              bus, 0.0)
    if rng.random() < 0.4:
        # Copy faults stay on the machine buses, where the coherence
        # ladder has a degraded mode to fall back to. The boundary bus
        # has no alternative path — persistent faults there exhaust the
        # retry budget by design, so the sampler leaves it to
        # hand-written scenarios.
        start = rng.uniform(500.0, duration_ms * 0.5)
        plan.copy_faults(round(start, 1),
                         round(start + rng.uniform(300.0, 1_200.0), 1),
                         probability=round(rng.uniform(0.1, 0.6), 2),
                         bus=rng.choice(("pcie", "memctl")))
    if rng.random() < 0.35:
        plan.stall_device(round(rng.uniform(800.0, duration_ms * 0.6), 1),
                          rng.choice(MACHINE_DEVICES),
                          duration_ms=round(rng.uniform(40.0, 200.0), 1))
    if rng.random() < 0.25:
        start = rng.uniform(500.0, duration_ms * 0.5)
        plan.transport_faults(round(start, 1),
                              round(start + rng.uniform(300.0, 1_000.0), 1),
                              drop_probability=round(rng.uniform(0.05, 0.3), 2))
    if emulator == "vSoC" and rng.random() < 0.3:
        # Crash recovery is a vSoC coordinator feature; give the recovery
        # bar room: downtime must clear well before the horizon.
        downtime = round(rng.uniform(150.0, 400.0), 1)
        latest = duration_ms - downtime - 800.0
        if latest > 1_000.0:
            plan.crash_device(round(rng.uniform(1_000.0, latest), 1),
                              rng.choice(("codec", "gpu")), downtime)
    return plan.to_dict()


def sample_scenario(seed: int, quick: bool = False) -> Dict[str, Any]:
    """One schema-valid scenario document, fully determined by ``seed``."""
    rng = random.Random(f"scenario-fuzz:{seed}")
    duration = round(rng.uniform(2_000.0, 3_000.0 if quick else 4_000.0), 1)
    emulator = _weighted(rng, _EMULATOR_WEIGHTS)
    doc: Dict[str, Any] = {
        "name": f"fuzz-{seed}",
        "emulator": emulator,
        "machine": rng.choice(("high-end-desktop", "high-end-desktop",
                               "middle-end-laptop")),
        "duration_ms": duration,
        "seed": rng.randrange(2**16),
        "apps": [
            _sample_app(rng, i, duration)
            for i in range(1 if quick else rng.randint(1, 2))
        ],
    }
    environment: Dict[str, Any] = {}
    if rng.random() < 0.3:
        times = sorted(round(rng.uniform(300.0, duration * 0.8), 1)
                       for _ in range(rng.randint(1, 2)))
        bus = rng.choice(KNOWN_BUSES)
        environment["bus_load"] = [
            {"time_ms": t, "bus": bus, "load": round(rng.uniform(0.0, 0.7), 2)}
            for t in times
        ]
    if rng.random() < 0.25:
        environment["thermal"] = [{
            "time_ms": round(rng.uniform(500.0, duration * 0.7), 1),
            "device": rng.choice(MACHINE_DEVICES),
            "busy_ms": round(rng.uniform(100.0, 800.0), 1),
        }]
    if rng.random() < 0.55:
        faults = _sample_faults(rng, emulator, duration)
        if faults:
            environment["faults"] = faults
    if environment:
        doc["environment"] = environment
    if rng.random() < 0.3:
        doc["audit"] = {"interval_ms": rng.choice((25.0, 50.0, 100.0))}
    return validate_scenario(doc)


def sample_fault_plan_dict(seed: int) -> Dict[str, Any]:
    """A *raw* fault-plan document: arbitrary, frequently invalid.

    Property tests feed these to :meth:`FaultPlan.from_dict` and assert
    the only possible outcomes are a validated plan or a
    :class:`ConfigurationError` — no other exception type, ever.
    """
    rng = random.Random(f"plan-fuzz:{seed}")
    doc: Dict[str, Any] = {}
    if rng.random() < 0.1:
        doc[rng.choice(("bogus_section", "bus_load", "stallz"))] = []
    if rng.random() < 0.7:
        doc["bus_loads"] = [
            {"time_ms": rng.uniform(-100.0, 3_000.0),
             "bus": rng.choice(KNOWN_BUSES + ("warp",)),
             "load": rng.uniform(-0.2, 1.2)}
            for _ in range(rng.randint(1, 3))
        ]
    if rng.random() < 0.5:
        start = rng.uniform(-50.0, 2_000.0)
        doc["copy_windows"] = [
            {"start_ms": start,
             "end_ms": start + rng.uniform(-200.0, 1_000.0),
             "probability": rng.uniform(-0.1, 1.1)}
            for _ in range(rng.randint(1, 2))
        ]
    if rng.random() < 0.4:
        doc["stalls"] = [
            {"time_ms": rng.uniform(0.0, 2_000.0),
             "device": rng.choice(MACHINE_DEVICES),
             "duration_ms": rng.uniform(-10.0, 300.0)}
            for _ in range(rng.randint(1, 3))
        ]
    if rng.random() < 0.3:
        doc["crashes"] = [
            {"time_ms": rng.uniform(0.0, 2_000.0),
             "vdev": rng.choice(("codec", "gpu", "isp")),
             "downtime_ms": rng.uniform(-50.0, 400.0)}
            for _ in range(rng.randint(1, 2))
        ]
    if rng.random() < 0.2:
        entry: Dict[str, Any] = {
            "time_ms": rng.uniform(0.0, 2_000.0),
            "worker": f"worker-{rng.randint(0, 3)}",
            "kind": rng.choice(("crash", "hang", "slow-heartbeat", "vanish")),
            "duration_ms": rng.uniform(-10.0, 500.0),
        }
        if rng.random() < 0.5:
            entry["factor"] = rng.uniform(0.5, 4.0)
        doc["worker_faults"] = [entry]
    if rng.random() < 0.1 and "bus_loads" in doc:
        doc["bus_loads"].append({"time": 1.0})  # wrong keys entirely
    return doc


# ---------------------------------------------------------------------------
# The fuzz campaign
# ---------------------------------------------------------------------------

def _signature(outcome: Dict[str, Any]) -> Tuple[str, Optional[str]]:
    """What makes two failures "the same" for shrinking purposes."""
    return (
        outcome.get("status", "error"),
        outcome.get("invariant") or outcome.get("error"),
    )


def _budget_summary(doc: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Latency-budget summary of one (shrunk) scenario, or None.

    Re-runs the scenario with attribution on but the auditor lenient —
    the point is to annotate the reproducer with *where the frames'
    latency went* at the moment of failure, so the engineer replaying it
    starts with a triage, not a blank trace. Attribution is post-hoc
    span analysis (digest-identical on/off) and the run is deterministic,
    so the summary is a pure function of the document. Any failure here
    degrades to None — annotation must never block a reproducer.
    """
    from repro.scenario.runner import run_scenario

    try:
        result = run_scenario(doc, strict_audit=False, attribution=True)
        budget = result.budget
        if budget is None or not budget.frames:
            return None
        dominant = budget.dominant_cell()
        return {
            "frames": len(budget.frames),
            "total_latency_ms": budget.total_latency_ms(),
            "categories": {
                category: ms
                for category, ms in budget.category_totals().items()
                if ms > 0.0
            },
            "dominant": None if dominant is None else {
                "category": dominant[0],
                "device": dominant[1],
                "ms": dominant[2],
            },
            "conservation_ok": not budget.conservation_errors(),
        }
    except Exception:  # noqa: BLE001 — annotation is best-effort
        return None


def run_fuzz(
    max_samples: int = 50,
    seed: int = 0,
    out_dir: str = "fuzz-reproducers",
    strict_audit: bool = True,
    jobs: Optional[int] = None,
    cache: bool = True,
    quick: bool = False,
    documents: Optional[List[Dict[str, Any]]] = None,
    shrink: bool = True,
    max_shrink_checks: int = 250,
) -> Dict[str, Any]:
    """Sample → run (through the engine) → shrink failures → reproducers.

    ``documents`` bypasses sampling (replay mode). Returns a JSON-able
    report: per-sample outcomes, the findings (with shrunk documents and
    reproducer paths), and engine cache accounting.
    """
    from repro.experiments.engine import PointSpec, run_many
    from repro.scenario.runner import scenario_point
    from repro.scenario.shrink import shrink_scenario

    if documents is not None:
        docs = [validate_scenario(doc) for doc in documents]
        sample_seeds = list(range(len(docs)))
    else:
        sample_seeds = [seed + i for i in range(max_samples)]
        docs = [sample_scenario(s, quick=quick) for s in sample_seeds]

    specs = [
        PointSpec(
            fn="repro.scenario.runner:scenario_point",
            kwargs={"document": canonical_json(doc),
                    "strict_audit": strict_audit},
        )
        for doc in docs
    ]
    report = run_many(specs, jobs=jobs, cache=cache)

    findings: List[Dict[str, Any]] = []
    for sample_seed, doc, outcome in zip(sample_seeds, docs, report.results):
        if outcome.get("status") == "ok":
            continue
        target = _signature(outcome)
        shrunk, checks = doc, 0
        if shrink:
            def still_fails(candidate: Dict[str, Any]) -> bool:
                probe = scenario_point(canonical_json(candidate),
                                       strict_audit=strict_audit)
                return _signature(probe) == target
            shrunk, checks = shrink_scenario(doc, still_fails,
                                             max_checks=max_shrink_checks)
        digest = scenario_digest(shrunk)
        path = Path(out_dir) / f"repro-{digest[:12]}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "scenario": shrunk,
            "finding": outcome,
            "fuzz_seed": sample_seed,
            "scenario_sha256": digest,
        }
        budget = _budget_summary(shrunk)
        if budget is not None:
            envelope["budget"] = budget
        path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
        findings.append({
            "fuzz_seed": sample_seed,
            "outcome": outcome,
            "shrink_checks": checks,
            "scenario_sha256": digest,
            "reproducer": str(path),
        })

    return {
        "samples": len(docs),
        "seed": seed,
        "strict_audit": strict_audit,
        "ok": len(docs) - len(findings),
        "findings": findings,
        "executed": report.executed,
        "cache_hits": report.cache_hits,
        "hit_rate": report.hit_rate,
        "wall_s": report.wall_s,
    }


def load_reproducer(path: str) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Read a reproducer (or plain scenario) file → (document, finding).

    Accepts both the ``{"scenario": ..., "finding": ...}`` envelope
    :func:`run_fuzz` writes and a bare scenario document, so REPRODUCE
    lines work on either.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: not a JSON object")
    if "scenario" in payload and "apps" not in payload:
        return (validate_scenario(payload["scenario"]),
                payload.get("finding"))
    return validate_scenario(payload), None
