"""Declarative scenarios: schema, compiler, runner, fuzzer (ROADMAP item 5).

A *scenario* is a plain JSON-able dict describing everything one run
needs — emulator, machine, a mix of concurrent apps (catalog templates or
generic stage graphs), and an environment timeline (bus load, thermal
events, a full :class:`~repro.faults.plan.FaultPlan`). The pieces:

* :mod:`repro.scenario.schema` — stdlib validation with precise error
  paths, canonical serialization, and content digests;
* :mod:`repro.scenario.compiler` — lowers a document onto the existing
  ``apps``/``guest`` machinery (catalog factories for template pipelines,
  :class:`~repro.scenario.compiled.GraphApp` for generic graphs) plus a
  validated fault plan;
* :mod:`repro.scenario.runner` — executes a compiled scenario in one
  simulator with the fault injector and the invariant auditor installed,
  and exposes :func:`~repro.scenario.runner.scenario_point` so scenario
  runs ride the experiment engine's cache and ``--jobs`` parallelism;
* :mod:`repro.scenario.fuzz` / :mod:`repro.scenario.shrink` — a seeded
  property-based fuzzer over the schema with delta-debugging shrinking to
  minimal reproducer files.
"""

from repro.scenario.compiler import CompiledScenario, compile_scenario, scenario_document
from repro.scenario.fuzz import load_reproducer, run_fuzz, sample_scenario
from repro.scenario.runner import ScenarioResult, run_scenario, scenario_point
from repro.scenario.schema import (
    canonical_json,
    normalize_scenario,
    scenario_digest,
    validate_scenario,
)
from repro.scenario.shrink import shrink_scenario

__all__ = [
    "CompiledScenario",
    "ScenarioResult",
    "canonical_json",
    "compile_scenario",
    "load_reproducer",
    "normalize_scenario",
    "run_fuzz",
    "run_scenario",
    "sample_scenario",
    "scenario_digest",
    "scenario_document",
    "scenario_point",
    "shrink_scenario",
    "validate_scenario",
]
