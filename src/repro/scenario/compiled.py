"""GraphApp: the generic stage-graph workload scenario documents lower to.

Catalog pipelines (``video``, ``ar``, ...) compile straight to their
hand-written app classes; the ``graph`` pipeline compiles to this one. A
GraphApp drives the same guest machinery as any catalog app — a
:class:`~repro.guest.buffers.BufferQueue`, a
:class:`~repro.guest.services.SurfaceFlinger` on a VSync source — but the
per-frame device work is data: an ordered list of ``{device, op, bytes}``
stages. That is exactly the write→slack→read shape the paper's analysis
is built on, with the shape chosen by a scenario file (or the fuzzer)
instead of a Python class.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, List, Mapping, Optional

from repro.apps.base import App
from repro.emulators.base import Emulator
from repro.errors import CapabilityError
from repro.guest.buffers import BufferQueue
from repro.guest.services import FrameMeta, SurfaceFlinger
from repro.guest.vsync import VSyncSource
from repro.sim import FifoQueue, Simulator, Timeout
from repro.units import SECOND, UHD_FRAME_BYTES, VSYNC_PERIOD_MS


class GraphApp(App):
    """A workload defined by data: paced source → device stages → compositor.

    ``stages`` is an ordered list of ``{"device", "op", "bytes"}`` dicts.
    The first stage writes the frame's SVM buffer (the producer); every
    later stage reads it — each hop a cross-device dependency the
    emulator's coherence machinery must get right. Ops ``decode`` /
    ``encode`` / ``convert`` resolve to the emulator's hardware or
    software path at run time, like the catalog services do.
    """

    category = "Scenario"

    def __init__(
        self,
        name: str,
        stages: List[Mapping[str, Any]],
        frame_rate: float = 60.0,
        buffers: int = 4,
        frame_bytes: int = UHD_FRAME_BYTES,
        burst: int = 1,
        source_jitter: float = 0.04,
        compose_dirty_fraction: float = 0.5,
        deadline_vsyncs: Optional[float] = None,
        measure_latency: bool = False,
        warmup_ms: float = 2_000.0,
    ):
        # Must be set before super().__init__ — the base ctor reads it to
        # decide whether to create the latency collector.
        self.measures_latency = bool(measure_latency)
        super().__init__(name, warmup_ms=warmup_ms)
        self.stages = [dict(stage) for stage in stages]
        self.frame_rate = frame_rate
        self.buffers = buffers
        self.frame_bytes = frame_bytes
        self.burst = burst
        self.source_jitter = source_jitter
        self.compose_dirty_fraction = compose_dirty_fraction
        self.deadline_vsyncs = deadline_vsyncs

    # -- install-time checks -------------------------------------------------
    def check_capabilities(self, emulator: Emulator) -> None:
        for stage in self.stages:
            device = stage["device"]
            if not emulator.has_vdev(device):
                raise CapabilityError(
                    f"{self.name}: emulator has no {device!r} virtual device"
                )
            if stage["op"] == "encode" and not emulator.supports_encoding():
                raise CapabilityError(
                    f"{self.name}: emulator cannot encode"
                )

    def _resolve_op(self, emulator: Emulator, op: str) -> str:
        if op == "decode":
            return emulator.decode_op()
        if op == "encode":
            return emulator.encode_op()
        if op == "convert":
            return emulator.convert_op()
        return op

    # -- pipeline ------------------------------------------------------------
    def build(self, sim: Simulator, emulator: Emulator, vsync: VSyncSource) -> None:
        queue = BufferQueue(sim, emulator, self.buffers, self.frame_bytes,
                            name=f"{self.name}.bq")
        flinger = SurfaceFlinger(
            sim,
            emulator,
            vsync,
            self.fps,
            latency=self.latency,
            compose_dirty_fraction=self.compose_dirty_fraction,
            honor_deadlines=self.deadline_vsyncs is not None,
        )
        self._queue = queue
        self._flinger = flinger
        self._pending: FifoQueue = FifoQueue(sim, capacity=4,
                                             name=f"{self.name}.pending")
        self._sequence = 0
        sim.spawn(flinger.run(), name=f"{self.name}:sf")
        sim.spawn(self._run_source(sim, emulator), name=f"{self.name}:source")
        sim.spawn(self._run_worker(sim, emulator), name=f"{self.name}:worker")

    def _run_source(self, sim: Simulator, emulator: Emulator) -> Generator:
        """Paced frame source: ``burst`` frames every burst interval."""
        rng = random.Random(f"{self.name}:scenario-source")
        interval = SECOND / self.frame_rate
        yield Timeout(rng.uniform(0.0, interval * self.burst))  # phase
        while True:
            jitter = 1.0 + rng.uniform(-self.source_jitter, self.source_jitter)
            yield Timeout(interval * self.burst * jitter)
            for _ in range(self.burst):
                meta = FrameMeta(
                    birth=sim.now,
                    sequence=self._sequence,
                    flow=emulator.obs.tracer.new_flow(),
                )
                self._sequence += 1
                if not self._pending.try_put(meta):
                    self.fps.note_dropped("source-overrun")

    def _run_worker(self, sim: Simulator, emulator: Emulator) -> Generator:
        """Per frame: run every stage against the frame's SVM buffer."""
        while True:
            meta = yield self._pending.get()
            buffer = yield self._queue.dequeue_free()
            result = None
            for index, stage in enumerate(self.stages):
                op = self._resolve_op(emulator, stage["op"])
                if index == 0:
                    reads: List[int] = []
                    writes = [buffer.region_id]
                else:
                    reads = [buffer.region_id]
                    writes = []
                result = yield from emulator.stage(
                    stage["device"], op, stage["bytes"],
                    reads=reads, writes=writes, flow=meta.flow,
                )
            if result is not None:
                yield result.done
            if self.deadline_vsyncs is not None:
                meta.deadline = meta.birth + self.deadline_vsyncs * VSYNC_PERIOD_MS
            self._flinger.submit(buffer, self._queue, meta)

    def ff_register(self, controller) -> None:
        super().ff_register(controller)
        controller.track_counter(self, "_sequence")
        if getattr(self, "_queue", None) is not None:
            self._queue.ff_register(controller)
        if getattr(self, "_flinger", None) is not None:
            self._flinger.ff_register(controller)
        pending = getattr(self, "_pending", None)
        if pending is not None:
            controller.watch(lambda: len(pending))
