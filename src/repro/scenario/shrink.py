"""Delta-debugging shrinker: failing scenario → minimal reproducer.

Given a scenario document that fails (an invariant violation, a missed
recovery bar, an engine error) and a predicate that re-runs a candidate
and reports whether it *still fails the same way*, :func:`shrink_scenario`
greedily minimizes the document:

1. **structure passes** — drop whole optional sections (``environment``,
   ``audit``, each fault section), then remove list elements one at a
   time (apps, graph stages, bus-load / thermal events, fault events),
   then drop optional keys from app stanzas;
2. **scalar passes** — move numbers toward their schema defaults: first
   the exact default, then the midpoint between current and default
   (one bisection step per round; the fixpoint loop compounds them).

Every candidate is schema-validated before it is run — an invalid
candidate counts as "does not fail the same way" and is discarded — so
the minimized document is always loadable. The loop repeats to a
fixpoint or until ``max_checks`` predicate calls, whichever first.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.scenario.schema import (
    DEFAULT_AUDIT_INTERVAL_MS,
    DEFAULT_FENCE_DEADLINE_MS,
    PIPELINES,
    validate_scenario,
)

#: Scalar shrink targets for top-level / audit knobs. ``duration_ms``
#: shrinks toward the shortest run that can still express a failure, not
#: the schema default — shorter reproducers replay faster.
_SCALAR_TARGETS = {
    ("duration_ms",): 2_000.0,
    ("seed",): 0,
    ("audit", "interval_ms"): DEFAULT_AUDIT_INTERVAL_MS,
    ("audit", "fence_wait_deadline_ms"): DEFAULT_FENCE_DEADLINE_MS,
}

#: App-stanza keys that can never be dropped.
_APP_REQUIRED = ("name", "pipeline", "stages")


def _get_path(doc: Mapping, path: Tuple[Any, ...]) -> Any:
    node: Any = doc
    for step in path:
        if isinstance(node, Mapping):
            if step not in node:
                return None
            node = node[step]
        else:
            node = node[step]
    return node


def _without_key(doc: Dict, path: Tuple[Any, ...], key: Any) -> Dict:
    out = copy.deepcopy(doc)
    node = _get_path(out, path)
    del node[key]
    return out


def _without_item(doc: Dict, path: Tuple[Any, ...], index: int) -> Dict:
    out = copy.deepcopy(doc)
    node = _get_path(out, path)
    del node[index]
    return out


def _with_value(doc: Dict, path: Tuple[Any, ...], value: Any) -> Dict:
    out = copy.deepcopy(doc)
    node = _get_path(out, path[:-1])
    node[path[-1]] = value
    return out


def _structure_candidates(doc: Dict) -> Iterator[Dict]:
    """Section drops, list-element drops, optional-key drops — in order
    of how much each would remove."""
    # Whole optional sections first (biggest single cuts).
    for key in ("environment", "audit"):
        if key in doc:
            yield _without_key(doc, (), key)
    env = doc.get("environment", {})
    for key in ("faults", "bus_load", "thermal"):
        if key in env:
            yield _without_key(doc, ("environment",), key)
    for section, events in sorted(env.get("faults", {}).items()):
        yield _without_key(doc, ("environment", "faults"), section)
        for index in range(len(events)):
            yield _without_item(doc, ("environment", "faults", section), index)
    for key in ("bus_load", "thermal"):
        for index in range(len(env.get(key, []))):
            yield _without_item(doc, ("environment", key), index)
    # Apps: drop whole stanzas (schema requires at least one).
    apps = doc.get("apps", [])
    if len(apps) > 1:
        for index in range(len(apps)):
            yield _without_item(doc, ("apps",), index)
    # Graph stages and optional app knobs.
    for i, stanza in enumerate(apps):
        stages = stanza.get("stages", [])
        if len(stages) > 1:
            for index in range(len(stages)):
                yield _without_item(doc, ("apps", i, "stages"), index)
        for key in sorted(stanza):
            if key not in _APP_REQUIRED:
                yield _without_key(doc, ("apps", i), key)
    # Audit knobs one at a time.
    for key in sorted(doc.get("audit", {})):
        yield _without_key(doc, ("audit",), key)


def _scalar_candidates(doc: Dict) -> Iterator[Dict]:
    """Move scalars toward defaults: exact default, then one midpoint."""
    targets: List[Tuple[Tuple[Any, ...], Any]] = []
    for path, target in _SCALAR_TARGETS.items():
        current = _get_path(doc, path)
        if current is not None and current != target:
            targets.append((path, target))
    for i, stanza in enumerate(doc.get("apps", [])):
        pipeline = PIPELINES.get(stanza.get("pipeline"))
        if pipeline is None:
            continue
        for key, checker in pipeline.fields.items():
            default = getattr(checker, "default", None)
            if default is None or key not in stanza:
                continue
            if stanza[key] != default:
                targets.append((("apps", i, key), default))
    for path, target in targets:
        current = _get_path(doc, path)
        yield _with_value(doc, path, target)
        if isinstance(current, float) or isinstance(target, float):
            midpoint = (float(current) + float(target)) / 2.0
            if midpoint not in (current, target):
                yield _with_value(doc, path, midpoint)
        elif isinstance(current, int) and isinstance(target, int):
            midpoint = (current + target) // 2
            if midpoint not in (current, target):
                yield _with_value(doc, path, midpoint)


def shrink_scenario(
    doc: Mapping[str, Any],
    still_fails: Callable[[Dict[str, Any]], bool],
    max_checks: int = 250,
) -> Tuple[Dict[str, Any], int]:
    """Minimize ``doc`` while ``still_fails`` holds; returns (doc, checks).

    ``still_fails`` must return True only when the candidate reproduces
    the *same* failure (same status + invariant/error signature) — the
    fuzzer builds that closure around :func:`scenario_point`.
    """
    current = copy.deepcopy(dict(doc))
    checks = 0

    def attempt(candidate: Dict[str, Any]) -> bool:
        nonlocal checks
        try:
            validate_scenario(candidate)
        except ConfigurationError:
            return False  # never run (or keep) an invalid candidate
        if checks >= max_checks:
            return False
        checks += 1
        return still_fails(candidate)

    progress = True
    while progress and checks < max_checks:
        progress = False
        for make_candidates in (_structure_candidates, _scalar_candidates):
            # Regenerate from the *current* doc after every acceptance:
            # accepted cuts shift list indices under later candidates.
            accepted = True
            while accepted and checks < max_checks:
                accepted = False
                for candidate in make_candidates(current):
                    if attempt(candidate):
                        current = candidate
                        progress = True
                        accepted = True
                        break
    return current, checks
