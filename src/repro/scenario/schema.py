"""The scenario schema: stdlib validation with precise error paths.

A scenario document is plain data (dicts/lists/scalars — JSON round-trips
losslessly). :func:`validate_scenario` walks it and raises
:class:`~repro.errors.ConfigurationError` whose message starts with the
dotted path of the offending node (``apps[1].frame_rate: ...``), so a
fuzzer-shrunken reproducer or a hand-written file fails with a pointer,
not a stack trace.

App stanzas are *sparse*: only the knobs the author wrote are validated
and forwarded to the app constructor, so an empty stanza compiles to the
factory's own defaults — the property that makes scenario-expressed
catalog apps bit-identical to their hand-coded counterparts.

Top-level shape::

    {
      "name": "mixed-chaos",              # required
      "emulator": "vSoC",                 # required, an EMULATOR_FACTORIES key
      "machine": "high-end-desktop",      # default
      "duration_ms": 8000.0,              # default 8000
      "seed": 0,                          # default 0
      "apps": [ {"name": ..., "pipeline": ..., <knobs>}, ... ],   # required
      "environment": {                    # optional
        "bus_load": [{"time_ms", "bus", "load"}, ...],
        "thermal":  [{"time_ms", "device", "busy_ms"}, ...],
        "faults":   { <FaultPlan.to_dict() document> }
      },
      "audit": {"interval_ms": 50.0, "fence_wait_deadline_ms": 1000.0}
    }
"""

from __future__ import annotations

import copy
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.emulators import EMULATOR_FACTORIES
from repro.emulators.base import VDEV_NAMES
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.hw.machine import HIGH_END_DESKTOP, MIDDLE_END_LAPTOP
from repro.units import KIB, MIB

#: Machine aliases a scenario may name.
MACHINE_SPECS = {
    "high-end-desktop": HIGH_END_DESKTOP,
    "middle-end-laptop": MIDDLE_END_LAPTOP,
}

#: Buses the injector can reach on every emulator/machine combination.
KNOWN_BUSES = ("memctl", "pcie", "boundary")

#: Physical devices every HostMachine builds (stall/reset/thermal targets).
MACHINE_DEVICES = ("cpu", "gpu", "camera", "nic")

#: Stage ops a graph pipeline may run, per virtual device. The pairs are
#: exactly those valid under every emulator's §3.2 virtual→physical
#: mapping: ``decode``/``encode``/``convert`` are resolved to the hw or
#: sw path at run time (their backing physical device tracks the same
#: config bit), the rest are literal ops of the device that always backs
#: that vdev (gpu/display → the GPU, cpu → the CPU, modem → the NIC).
DEVICE_OPS = {
    "gpu": ("render", "compose", "present"),
    "display": ("render", "compose", "present"),
    "codec": ("decode", "encode"),
    "isp": ("convert",),
    "camera": ("deliver", "capture"),
    "cpu": ("track", "memcpy"),
    "modem": ("send", "recv"),
}

DEFAULT_MACHINE = "high-end-desktop"
DEFAULT_DURATION_MS = 8_000.0
DEFAULT_AUDIT_INTERVAL_MS = 50.0
DEFAULT_FENCE_DEADLINE_MS = 1_000.0

MAX_APPS = 8
MAX_GRAPH_STAGES = 6


# ---------------------------------------------------------------------------
# Field checkers
# ---------------------------------------------------------------------------

def _fail(path: str, message: str) -> None:
    raise ConfigurationError(f"{path}: {message}")


def _require_mapping(path: str, value: Any) -> Mapping:
    if not isinstance(value, Mapping):
        _fail(path, f"expected an object, got {type(value).__name__}")
    return value


def _require_list(path: str, value: Any) -> list:
    if not isinstance(value, (list, tuple)):
        _fail(path, f"expected a list, got {type(value).__name__}")
    return list(value)


def _check_keys(path: str, doc: Mapping, allowed: Tuple[str, ...],
                required: Tuple[str, ...] = ()) -> None:
    unknown = sorted(set(doc) - set(allowed))
    if unknown:
        _fail(path, f"unknown key {unknown[0]!r} (allowed: {sorted(allowed)})")
    missing = [key for key in required if key not in doc]
    if missing:
        _fail(path, f"missing required key {missing[0]!r}")


@dataclass(frozen=True)
class _Num:
    """A numeric field: bounds, integrality, and its factory default.

    ``default`` is the app constructor's own default — recorded so the
    shrinker can run its toward-default scalar passes without importing
    every app class.
    """

    lo: float
    hi: float
    integer: bool = False
    lo_open: bool = False
    default: Optional[float] = None

    def check(self, path: str, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(path, f"expected a number, got {type(value).__name__}")
        if self.integer and not isinstance(value, int):
            _fail(path, f"expected an integer, got {value!r}")
        if not math.isfinite(value):
            _fail(path, f"must be finite, got {value!r}")
        if value < self.lo or (self.lo_open and value == self.lo):
            bound = ">" if self.lo_open else ">="
            _fail(path, f"must be {bound} {self.lo}, got {value!r}")
        if value > self.hi:
            _fail(path, f"must be <= {self.hi}, got {value!r}")


@dataclass(frozen=True)
class _Bool:
    default: bool = False

    def check(self, path: str, value: Any) -> None:
        if not isinstance(value, bool):
            _fail(path, f"expected true/false, got {type(value).__name__}")


_BUFFERS = _Num(1, 16, integer=True, default=4)
_FRAME_BYTES = _Num(4 * KIB, 256 * MIB, integer=True, default=3840 * 2160 * 2)
_DIRTY = _Num(0.0, 1.0, lo_open=True, default=0.5)
_WARMUP = _Num(0.0, 60_000.0, default=2_000.0)
_DEADLINE = _Num(0.0, 20.0, lo_open=True, default=3.0)


@dataclass(frozen=True)
class _Pipeline:
    """One compilable pipeline: target factory + its sparse knob schema."""

    factory: str
    fields: Dict[str, Any] = field(default_factory=dict)
    #: App-profile key used when the scenario feeds the fleet service.
    fleet_profile: str = "video"


PIPELINES: Dict[str, _Pipeline] = {
    "video": _Pipeline(
        "repro.apps.video:UhdVideoApp",
        {
            "buffers": _BUFFERS,
            "frame_bytes": _FRAME_BYTES,
            "compose_dirty_fraction": _DIRTY,
            "deadline_vsyncs": _DEADLINE,
            "warmup_ms": _WARMUP,
        },
        fleet_profile="video",
    ),
    "video360": _Pipeline(
        "repro.apps.video:Video360App",
        {
            "buffers": _BUFFERS,
            "frame_bytes": _FRAME_BYTES,
            "compose_dirty_fraction": _Num(0.0, 1.0, lo_open=True, default=1.0),
            "deadline_vsyncs": _Num(0.0, 20.0, lo_open=True, default=3.5),
            "warmup_ms": _WARMUP,
        },
        fleet_profile="video",
    ),
    "camera": _Pipeline(
        "repro.apps.camera:CameraApp",
        {
            "raw_buffers": _Num(1, 16, integer=True, default=3),
            "out_buffers": _Num(1, 16, integer=True, default=3),
            "frame_bytes": _FRAME_BYTES,
            "compose_dirty_fraction": _DIRTY,
            "warmup_ms": _WARMUP,
        },
        fleet_profile="camera",
    ),
    "ar": _Pipeline(
        "repro.apps.ar:ArApp",
        {
            "raw_buffers": _Num(1, 16, integer=True, default=3),
            "out_buffers": _Num(1, 16, integer=True, default=3),
            "frame_bytes": _FRAME_BYTES,
            "compose_dirty_fraction": _Num(0.0, 1.0, lo_open=True, default=1.0),
            "render_overdraw": _Num(0.0, 4.0, default=1.0),
            "warmup_ms": _WARMUP,
        },
        fleet_profile="ar",
    ),
    "livestream": _Pipeline(
        "repro.apps.livestream:LivestreamApp",
        {
            "buffers": _BUFFERS,
            "frame_bytes": _FRAME_BYTES,
            "bitstream_bytes": _Num(KIB, 64 * MIB, integer=True),
            "network_latency_ms": _Num(0.0, 100.0, default=1.2),
            "compose_dirty_fraction": _DIRTY,
            "warmup_ms": _WARMUP,
        },
        fleet_profile="video",
    ),
    "popular": _Pipeline(
        "repro.apps.popular:PopularApp",
        {
            "render_bytes": _Num(KIB, 2_048 * MIB, integer=True),
            "svm_calls_per_frame": _Num(0, 64, integer=True),
            "svm_call_bytes": _Num(0, 64 * MIB, integer=True),
            "window_bytes": _Num(KIB, 256 * MIB, integer=True),
            "compose_dirty_fraction": _DIRTY,
            "atlas_bytes": _Num(0, 256 * MIB, integer=True),
            "warmup_ms": _WARMUP,
        },
        fleet_profile="social",
    ),
    "heavy3d": _Pipeline(
        "repro.apps.popular:Heavy3dApp",
        {
            "render_bytes": _Num(KIB, 2_048 * MIB, integer=True,
                                 default=420 * MIB),
            "warmup_ms": _WARMUP,
        },
        fleet_profile="game",
    ),
    "graph": _Pipeline(
        "repro.scenario.compiled:GraphApp",
        {
            "frame_rate": _Num(1.0, 240.0, default=60.0),
            "buffers": _BUFFERS,
            "frame_bytes": _FRAME_BYTES,
            "burst": _Num(1, 8, integer=True, default=1),
            "source_jitter": _Num(0.0, 0.5, default=0.04),
            "compose_dirty_fraction": _DIRTY,
            "deadline_vsyncs": _DEADLINE,
            "measure_latency": _Bool(default=False),
            "warmup_ms": _WARMUP,
            # "stages" is required and checked structurally below.
        },
        fleet_profile="game",
    ),
}

_TOP_KEYS = ("name", "emulator", "machine", "duration_ms", "seed", "apps",
             "environment", "audit")
_APP_COMMON = ("name", "pipeline", "priority")
_ENV_KEYS = ("bus_load", "thermal", "faults")
_AUDIT_KEYS = ("interval_ms", "fence_wait_deadline_ms")


def _check_app(path: str, stanza: Any) -> None:
    stanza = _require_mapping(path, stanza)
    _check_keys(path, stanza, (), required=("name", "pipeline"))  # placeholder
    # (re-check with the pipeline's own field set once we know it)


def _validate_app(path: str, stanza: Mapping) -> None:
    pipeline_name = stanza.get("pipeline")
    if pipeline_name not in PIPELINES:
        _fail(f"{path}.pipeline",
              f"unknown pipeline {pipeline_name!r} "
              f"(choices: {sorted(PIPELINES)})")
    pipeline = PIPELINES[pipeline_name]
    allowed = _APP_COMMON + tuple(pipeline.fields)
    required: Tuple[str, ...] = ("name", "pipeline")
    if pipeline_name == "graph":
        allowed = allowed + ("stages",)
        required = required + ("stages",)
    _check_keys(path, stanza, allowed, required=required)
    name = stanza["name"]
    if not isinstance(name, str) or not name:
        _fail(f"{path}.name", "expected a non-empty string")
    if "priority" in stanza:
        _Num(0, 2, integer=True).check(f"{path}.priority", stanza["priority"])
    for key, checker in pipeline.fields.items():
        if key in stanza:
            checker.check(f"{path}.{key}", stanza[key])
    if pipeline_name == "graph":
        stages = _require_list(f"{path}.stages", stanza["stages"])
        if not 1 <= len(stages) <= MAX_GRAPH_STAGES:
            _fail(f"{path}.stages",
                  f"expected 1..{MAX_GRAPH_STAGES} stages, got {len(stages)}")
        for i, stage in enumerate(stages):
            spath = f"{path}.stages[{i}]"
            stage = _require_mapping(spath, stage)
            _check_keys(spath, stage, ("device", "op", "bytes"),
                        required=("device", "op", "bytes"))
            device = stage["device"]
            if device not in DEVICE_OPS:
                _fail(f"{spath}.device",
                      f"unknown virtual device {device!r} "
                      f"(choices: {sorted(DEVICE_OPS)})")
            if stage["op"] not in DEVICE_OPS[device]:
                _fail(f"{spath}.op",
                      f"op {stage['op']!r} is not valid on {device!r} "
                      f"(choices: {list(DEVICE_OPS[device])})")
            _Num(1, 512 * MIB, integer=True).check(f"{spath}.bytes",
                                                   stage["bytes"])


def _validate_environment(path: str, env: Mapping) -> None:
    _check_keys(path, env, _ENV_KEYS)
    for i, event in enumerate(_require_list(f"{path}.bus_load",
                                            env.get("bus_load", []))):
        epath = f"{path}.bus_load[{i}]"
        event = _require_mapping(epath, event)
        _check_keys(epath, event, ("time_ms", "bus", "load"),
                    required=("time_ms", "bus", "load"))
        _Num(0.0, 600_000.0).check(f"{epath}.time_ms", event["time_ms"])
        if event["bus"] not in KNOWN_BUSES:
            _fail(f"{epath}.bus", f"unknown bus {event['bus']!r} "
                                  f"(choices: {list(KNOWN_BUSES)})")
        load = event["load"]
        _Num(0.0, 1.0).check(f"{epath}.load", load)
        if load >= 1.0:
            _fail(f"{epath}.load", f"must be < 1, got {load!r}")
    for i, event in enumerate(_require_list(f"{path}.thermal",
                                            env.get("thermal", []))):
        epath = f"{path}.thermal[{i}]"
        event = _require_mapping(epath, event)
        _check_keys(epath, event, ("time_ms", "device", "busy_ms"),
                    required=("time_ms", "device", "busy_ms"))
        _Num(0.0, 600_000.0).check(f"{epath}.time_ms", event["time_ms"])
        if event["device"] not in MACHINE_DEVICES:
            _fail(f"{epath}.device",
                  f"unknown device {event['device']!r} "
                  f"(choices: {list(MACHINE_DEVICES)})")
        _Num(0.0, 60_000.0, lo_open=True).check(f"{epath}.busy_ms",
                                                event["busy_ms"])
    if "faults" in env:
        faults = _require_mapping(f"{path}.faults", env["faults"])
        try:
            plan = FaultPlan.from_dict(faults)
        except ConfigurationError as err:
            _fail(f"{path}.faults", str(err))
        _cross_check_plan(f"{path}.faults", plan)


def _cross_check_plan(path: str, plan: FaultPlan) -> None:
    """Plan targets must exist on every machine/emulator the schema allows,
    so a fuzzed document never dies inside the injector instead."""
    for i, event in enumerate(plan.bus_loads):
        if event.bus not in KNOWN_BUSES:
            _fail(f"{path}.bus_loads[{i}].bus",
                  f"unknown bus {event.bus!r} (choices: {list(KNOWN_BUSES)})")
    for i, window in enumerate(plan.copy_windows):
        if window.bus is not None and window.bus not in KNOWN_BUSES:
            _fail(f"{path}.copy_windows[{i}].bus",
                  f"unknown bus {window.bus!r} (choices: {list(KNOWN_BUSES)})")
    for i, stall in enumerate(plan.stalls):
        if stall.device not in MACHINE_DEVICES:
            _fail(f"{path}.stalls[{i}].device",
                  f"unknown device {stall.device!r} "
                  f"(choices: {list(MACHINE_DEVICES)})")
    for i, reset in enumerate(plan.resets):
        if reset.device not in MACHINE_DEVICES:
            _fail(f"{path}.resets[{i}].device",
                  f"unknown device {reset.device!r} "
                  f"(choices: {list(MACHINE_DEVICES)})")
    for i, crash in enumerate(plan.crashes):
        if crash.vdev not in VDEV_NAMES:
            _fail(f"{path}.crashes[{i}].vdev",
                  f"unknown virtual device {crash.vdev!r} "
                  f"(choices: {list(VDEV_NAMES)})")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def normalize_scenario(doc: Mapping) -> Dict[str, Any]:
    """Deep-copy with top-level defaults filled; app stanzas stay sparse."""
    out: Dict[str, Any] = copy.deepcopy(dict(doc))
    out.setdefault("machine", DEFAULT_MACHINE)
    out.setdefault("duration_ms", DEFAULT_DURATION_MS)
    out.setdefault("seed", 0)
    return out


def validate_scenario(doc: Mapping) -> Dict[str, Any]:
    """Validate one scenario document; returns the normalized deep copy.

    Raises :class:`~repro.errors.ConfigurationError` whose message begins
    with the dotted path of the offending node.
    """
    doc = _require_mapping("scenario", doc)
    out = normalize_scenario(doc)
    _check_keys("scenario", out, _TOP_KEYS,
                required=("name", "emulator", "apps"))
    if not isinstance(out["name"], str) or not out["name"]:
        _fail("scenario.name", "expected a non-empty string")
    if out["emulator"] not in EMULATOR_FACTORIES:
        _fail("scenario.emulator",
              f"unknown emulator {out['emulator']!r} "
              f"(choices: {sorted(EMULATOR_FACTORIES)})")
    if out["machine"] not in MACHINE_SPECS:
        _fail("scenario.machine",
              f"unknown machine {out['machine']!r} "
              f"(choices: {sorted(MACHINE_SPECS)})")
    _Num(0.0, 600_000.0, lo_open=True).check("scenario.duration_ms",
                                             out["duration_ms"])
    _Num(0, 2**32 - 1, integer=True).check("scenario.seed", out["seed"])

    apps = _require_list("scenario.apps", out["apps"])
    if not 1 <= len(apps) <= MAX_APPS:
        _fail("scenario.apps", f"expected 1..{MAX_APPS} apps, got {len(apps)}")
    names = set()
    for i, stanza in enumerate(apps):
        path = f"scenario.apps[{i}]"
        stanza = _require_mapping(path, stanza)
        _validate_app(path, stanza)
        if stanza["name"] in names:
            _fail(f"{path}.name", f"duplicate app name {stanza['name']!r}")
        names.add(stanza["name"])

    if "environment" in out:
        _validate_environment("scenario.environment",
                              _require_mapping("scenario.environment",
                                               out["environment"]))
    if "audit" in out:
        audit = _require_mapping("scenario.audit", out["audit"])
        _check_keys("scenario.audit", audit, _AUDIT_KEYS)
        if "interval_ms" in audit:
            _Num(0.0, 10_000.0, lo_open=True).check(
                "scenario.audit.interval_ms", audit["interval_ms"])
        if "fence_wait_deadline_ms" in audit:
            _Num(0.0, 60_000.0, lo_open=True).check(
                "scenario.audit.fence_wait_deadline_ms",
                audit["fence_wait_deadline_ms"])
    return out


def canonical_json(doc: Mapping) -> str:
    """The canonical serialized form (stable key order, no whitespace)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def scenario_digest(doc: Mapping) -> str:
    """sha256 of the normalized document — the id REPRODUCE lines carry."""
    return hashlib.sha256(
        canonical_json(normalize_scenario(doc)).encode("utf-8")
    ).hexdigest()
