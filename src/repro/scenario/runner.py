"""Execute a compiled scenario: one simulator, faults + auditor installed.

:func:`run_scenario` is the in-process primitive (the scenario analogue
of :func:`repro.experiments.runner.run_app`): it builds the machine and
emulator, arms the fault injector and the invariant auditor, installs
every app, runs the clock and returns a :class:`ScenarioResult` whose
``digest`` is a stable hash of all per-app FPS/latency numbers — the
value the bit-identity and round-trip tests compare.

:func:`scenario_point` is the engine entry point
(``PointSpec(fn="repro.scenario.runner:scenario_point")``): it takes the
scenario as its canonical JSON string (picklable, hashed into the run
cache key) and *returns* outcome dicts instead of raising, so a strict
audit violation inside a worker process becomes data the fuzzer can
shrink, not a crashed pool.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

import random

from repro.apps.base import AppResult
from repro.apps.catalog import build_app
from repro.emulators import EMULATOR_FACTORIES
from repro.errors import InvariantViolation, ReproError
from repro.faults import FaultInjector
from repro.hw.machine import build_machine
from repro.metrics.collectors import ResilienceStats
from repro.recovery.audit import install_auditor
from repro.scenario.compiler import CompiledScenario, compile_scenario
from repro.scenario.schema import scenario_digest
from repro.sim import Simulator
from repro.sim.tracing import TraceLog

#: In-flight recovery slack: a crash whose downtime ends within this much
#: of the run end is not *expected* to have completed recovery.
RECOVERY_GRACE_MS = 500.0


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    name: str
    emulator: str
    seed: int
    duration_ms: float
    apps: List[AppResult] = field(default_factory=list)
    #: Stable hash over every app's FPS/latency outcome (bit-identity key).
    digest: str = ""
    violations: List[Dict[str, Any]] = field(default_factory=list)
    audits: int = 0
    checks: int = 0
    crashes: int = 0
    recoveries: int = 0
    expected_crashes: int = 0
    last_crash_end_ms: float = 0.0
    injected: Dict[str, int] = field(default_factory=dict)
    thermal_applied: int = 0
    trace: Optional[TraceLog] = None
    #: LatencyBudget when the run was executed with ``attribution=True``
    #: (see :mod:`repro.obs.critical`); None otherwise.
    budget: Optional[Any] = None


def app_digest(results: List[AppResult]) -> str:
    """sha256 over the run-outcome fields of every app, order-sensitive.

    Floats go through ``repr`` (shortest round-trip form), so two runs
    digest equal iff their collected numbers are bit-identical.
    """
    rows = []
    for result in results:
        rows.append([
            result.app,
            result.category,
            result.emulator,
            repr(float(result.duration_ms)),
            result.ran,
            repr(float(result.fps)),
            result.presented,
            sorted(result.dropped.items()),
            None if result.latency_avg is None else repr(float(result.latency_avg)),
            None if result.latency_p95 is None else repr(float(result.latency_p95)),
        ])
    payload = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_scenario(
    scenario: Union[Mapping[str, Any], CompiledScenario],
    strict_audit: bool = False,
    keep_trace: bool = False,
    duration_ms: Optional[float] = None,
    attribution: bool = False,
) -> ScenarioResult:
    """Run one scenario end to end; deterministic per (document, seed).

    ``strict_audit=True`` raises :class:`InvariantViolation` on the first
    violated invariant (the fuzzer's failure signal); otherwise violations
    are collected into the result. ``duration_ms`` overrides the
    document's run length (used by the bit-identity tests).
    ``attribution`` attaches the observability tracer and folds the run's
    causal spans into a :class:`~repro.obs.critical.LatencyBudget` on
    ``result.budget`` — pure post-hoc span analysis, so ``digest`` is
    bit-identical with it on or off (the fuzzer relies on this when it
    annotates reproducers with budget summaries).
    """
    compiled = (
        scenario
        if isinstance(scenario, CompiledScenario)
        else compile_scenario(scenario)
    )
    horizon = float(duration_ms) if duration_ms is not None else compiled.duration_ms

    sim = Simulator()
    machine = build_machine(sim, compiled.machine_spec)
    trace = TraceLog()
    obs = None
    if attribution:
        from repro.obs import Observability

        obs = Observability(sim)
    make = EMULATOR_FACTORIES[compiled.emulator]
    rng = random.Random(compiled.seed)
    if obs is not None:
        try:
            emulator = make(sim, machine, trace=trace, rng=rng, obs=obs)
        except TypeError:
            obs = None  # factory predates the obs= hook; run unobserved
            emulator = make(sim, machine, trace=trace, rng=rng)
    else:
        emulator = make(sim, machine, trace=trace, rng=rng)

    injector = FaultInjector(sim, compiled.plan, seed=compiled.seed, trace=trace)
    if not compiled.plan.is_empty():
        injector.install(emulator)

    # Auditor before app installs, matching the chaos harness order.
    auditor = install_auditor(
        emulator,
        interval_ms=compiled.audit_interval_ms,
        fence_wait_deadline_ms=compiled.fence_deadline_ms,
        raise_on_violation=strict_audit,
    )

    apps = [build_app(params) for params in compiled.app_params]
    installed = [app.install(sim, emulator) for app in apps]

    thermal_applied = 0
    for time_ms, device_name, busy_ms in compiled.thermal:
        device = machine.devices.get(device_name)
        model = getattr(device, "thermal", None)
        if model is None:
            continue  # this device has no thermal model on this machine
        sim.schedule(time_ms, model.note_busy, busy_ms)
        thermal_applied += 1

    # No fast-forward: an armed injector vetoes it anyway, and audited
    # fuzz runs must never skip past a would-be violation.
    sim.run(until=horizon)
    auditor.sweep()  # final sweep at the horizon

    resilience = ResilienceStats(trace)
    results = [app.collect(compiled.emulator, horizon) for app in apps]
    report = auditor.report()
    budget = None
    if obs is not None:
        from repro.obs.critical import analyze_tracer

        budget = analyze_tracer(obs.tracer)
    return ScenarioResult(
        name=compiled.name,
        emulator=compiled.emulator,
        seed=compiled.seed,
        duration_ms=horizon,
        apps=results,
        digest=app_digest(results),
        violations=report["violations"],
        audits=report["audits"],
        checks=report["checks"],
        crashes=resilience.crashes,
        recoveries=resilience.recoveries,
        expected_crashes=len(compiled.plan.crashes),
        last_crash_end_ms=max(
            (c.time_ms + c.downtime_ms for c in compiled.plan.crashes),
            default=0.0,
        ),
        injected=injector.stats.as_dict(),
        thermal_applied=thermal_applied,
        trace=trace if keep_trace else None,
        budget=budget,
    )


def scenario_point(document: str, strict_audit: bool = True) -> Dict[str, Any]:
    """Engine worker entry: canonical-JSON scenario in, outcome dict out.

    Never raises — outcomes are data so they survive worker pools and the
    run cache. ``status`` is one of:

    * ``"ok"`` — ran clean (and, when crashes were planned with room to
      recover, every crash recovered);
    * ``"violation"`` — an invariant fired (``invariant``/``message``);
    * ``"recovery"`` — a planned device crash failed the PR-4 recovery
      bar (downtime ended ≥ ``RECOVERY_GRACE_MS`` before the horizon but
      no recovery completed);
    * ``"error"`` — any other exception (``error`` is the type name).
    """
    doc = json.loads(document)
    digest = scenario_digest(doc)
    base: Dict[str, Any] = {"scenario_sha256": digest}
    try:
        result = run_scenario(doc, strict_audit=strict_audit)
    except InvariantViolation as err:
        return {
            **base,
            "status": "violation",
            "invariant": err.invariant,
            "message": str(err),
        }
    except ReproError as err:
        return {
            **base,
            "status": "error",
            "error": type(err).__name__,
            "message": str(err),
        }
    except Exception as err:  # noqa: BLE001 — workers must not die
        return {
            **base,
            "status": "error",
            "error": type(err).__name__,
            "message": str(err),
        }
    if result.violations:
        first = result.violations[0]
        return {
            **base,
            "status": "violation",
            "invariant": first["invariant"],
            "message": first["message"],
        }
    recovery_due = (
        result.expected_crashes > 0
        and result.last_crash_end_ms + RECOVERY_GRACE_MS <= result.duration_ms
    )
    if recovery_due and result.recoveries < result.expected_crashes:
        return {
            **base,
            "status": "recovery",
            "message": (
                f"{result.recoveries}/{result.expected_crashes} planned "
                "device crashes recovered before the horizon"
            ),
            "crashes": result.crashes,
            "recoveries": result.recoveries,
        }
    return {
        **base,
        "status": "ok",
        "digest": result.digest,
        "apps": [
            {
                "app": r.app,
                "ran": r.ran,
                "fps": r.fps,
                "presented": r.presented,
            }
            for r in result.apps
        ],
        "crashes": result.crashes,
        "recoveries": result.recoveries,
    }
