"""Lowering: scenario document → the existing apps/guest/faults machinery.

``compile_scenario`` turns a validated document into a
:class:`CompiledScenario`: declarative ``AppParams`` for each app stanza
(the same ``(factory-path, kwargs)`` form the experiment engine hashes
into cache keys), a validated :class:`~repro.faults.plan.FaultPlan`
merging the environment's bus-load timeline with its fault plan, the
thermal event schedule, and the audit knobs.

Lowering rules:

* catalog pipelines map 1:1 to their app factories; stanza knobs pass
  through **sparsely** (only keys the author wrote), so an empty stanza
  is byte-for-byte the factory's own defaults — this is what makes
  scenario-expressed catalog apps bit-identical to hand-coded runs;
* the ``graph`` pipeline lowers to
  :class:`~repro.scenario.compiled.GraphApp` with its stage list inline;
* ``environment.bus_load`` events become plan ``set_bus_load`` entries,
  merged and re-sorted with any ``environment.faults.bus_loads`` (then the
  merged plan re-runs ``validate()``);
* ``environment.thermal`` events schedule ``ThermalModel.note_busy``
  calls at run time (devices without a thermal model skip silently).

``scenario_document`` is the inverse — it reconstructs a plain document
from a CompiledScenario and re-validates it, so reproducer files can be
emitted from compiled state and are guaranteed loadable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.apps.catalog import AppParams
from repro.faults.plan import FaultPlan
from repro.scenario.schema import (
    DEFAULT_AUDIT_INTERVAL_MS,
    DEFAULT_FENCE_DEADLINE_MS,
    MACHINE_SPECS,
    PIPELINES,
    validate_scenario,
)

#: Default fleet priority for app stanzas that don't set one.
DEFAULT_PRIORITY = 1

#: factory path -> pipeline name, for re-serialization.
_FACTORY_TO_PIPELINE = {
    pipeline.factory: name for name, pipeline in PIPELINES.items()
}


@dataclass
class CompiledScenario:
    """A scenario lowered onto the run machinery, ready to execute."""

    document: Dict[str, Any]
    name: str
    emulator: str
    machine: str
    duration_ms: float
    seed: int
    #: One ``(factory_path, kwargs)`` per app stanza, in document order.
    app_params: List[AppParams] = field(default_factory=list)
    #: Fleet priority per app, parallel to ``app_params``.
    app_priorities: List[int] = field(default_factory=list)
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: ``(time_ms, device, busy_ms)`` thermal events.
    thermal: List[Tuple[float, str, float]] = field(default_factory=list)
    audit_interval_ms: float = DEFAULT_AUDIT_INTERVAL_MS
    fence_deadline_ms: float = DEFAULT_FENCE_DEADLINE_MS

    @property
    def machine_spec(self):
        return MACHINE_SPECS[self.machine]


def compile_scenario(doc: Mapping[str, Any]) -> CompiledScenario:
    """Validate and lower one scenario document."""
    out = validate_scenario(doc)

    app_params: List[AppParams] = []
    app_priorities: List[int] = []
    for stanza in out["apps"]:
        pipeline = PIPELINES[stanza["pipeline"]]
        kwargs = {
            key: value
            for key, value in stanza.items()
            if key not in ("pipeline", "priority")
        }
        app_params.append((pipeline.factory, kwargs))
        app_priorities.append(int(stanza.get("priority", DEFAULT_PRIORITY)))

    env = out.get("environment", {})
    plan = FaultPlan.from_dict(env.get("faults", {}))
    for event in env.get("bus_load", []):
        plan.set_bus_load(float(event["time_ms"]), str(event["bus"]),
                          float(event["load"]))
    if plan.bus_loads:
        # The merged timeline may interleave two chronologically-ordered
        # sources; re-sort per target so validate()'s order check holds.
        plan.bus_loads.sort(key=lambda e: (e.bus, e.time_ms))
    plan.validate()

    thermal = [
        (float(event["time_ms"]), str(event["device"]), float(event["busy_ms"]))
        for event in env.get("thermal", [])
    ]
    thermal.sort()

    audit = out.get("audit", {})
    return CompiledScenario(
        document=out,
        name=out["name"],
        emulator=out["emulator"],
        machine=out["machine"],
        duration_ms=float(out["duration_ms"]),
        seed=int(out["seed"]),
        app_params=app_params,
        app_priorities=app_priorities,
        plan=plan,
        thermal=thermal,
        audit_interval_ms=float(audit.get("interval_ms",
                                          DEFAULT_AUDIT_INTERVAL_MS)),
        fence_deadline_ms=float(audit.get("fence_wait_deadline_ms",
                                          DEFAULT_FENCE_DEADLINE_MS)),
    )


def scenario_document(compiled: CompiledScenario) -> Dict[str, Any]:
    """Reconstruct a document from compiled state (and re-validate it).

    This is a genuine inverse, not a cached copy: apps are re-derived
    from ``app_params``, the environment from the merged plan. Compiling
    the reconstruction yields the same run configuration — the round-trip
    property the digest tests pin down.
    """
    apps: List[Dict[str, Any]] = []
    for (factory, kwargs), priority in zip(compiled.app_params,
                                           compiled.app_priorities):
        pipeline_name = _FACTORY_TO_PIPELINE.get(factory)
        if pipeline_name is None:
            raise ValueError(f"no pipeline lowers to factory {factory!r}")
        stanza: Dict[str, Any] = dict(kwargs)
        stanza["pipeline"] = pipeline_name
        if priority != DEFAULT_PRIORITY:
            stanza["priority"] = priority
        apps.append(stanza)

    doc: Dict[str, Any] = {
        "name": compiled.name,
        "emulator": compiled.emulator,
        "machine": compiled.machine,
        "duration_ms": compiled.duration_ms,
        "seed": compiled.seed,
        "apps": apps,
    }
    environment: Dict[str, Any] = {}
    if not compiled.plan.is_empty():
        environment["faults"] = compiled.plan.to_dict()
    if compiled.thermal:
        environment["thermal"] = [
            {"time_ms": t, "device": device, "busy_ms": busy}
            for t, device, busy in compiled.thermal
        ]
    if environment:
        doc["environment"] = environment
    doc["audit"] = {
        "interval_ms": compiled.audit_interval_ms,
        "fence_wait_deadline_ms": compiled.fence_deadline_ms,
    }
    return validate_scenario(doc)
