"""Collectors pipelines feed during a run.

* :class:`FpsCollector` — the ``dumpsys``-style frame counter (§5.3):
  counts presented frames and the reasons frames never made it.
* :class:`LatencyCollector` — motion-to-photon samples: presentation time
  minus the frame's birth (capture / arrival) time.
* :class:`SvmStats` — post-hoc digestion of a :class:`TraceLog` into the
  Table 2 metrics (access latency, coherence cost, throughput).
* :class:`ResilienceStats` — fault/retry/degradation accounting from the
  ``fault.*``, ``retry.backoff`` and ``coherence.degrade/restore`` records
  a chaos run leaves behind.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.stats import mean, percentile
from repro.sim.tracing import TraceLog
from repro.units import SECOND


class FpsCollector:
    """Frame accounting for one app run.

    With a :class:`~repro.obs.registry.MetricsRegistry` attached, every
    presentation/drop is mirrored into named ``frames.*`` instruments —
    the ad-hoc dict counters stay authoritative so behaviour (and FPS
    numbers) are identical with and without observability.
    """

    def __init__(self, registry=None) -> None:
        self.presented = 0
        self.present_times: List[float] = []
        self.dropped: Dict[str, int] = {}
        self._registry = registry

    def attach_registry(self, registry) -> None:
        """Mirror future frame accounting into ``registry``."""
        self._registry = registry

    def note_presented(self, now: float) -> None:
        self.presented += 1
        self.present_times.append(now)
        if self._registry is not None:
            self._registry.counter("frames.presented").inc()

    def note_dropped(self, reason: str) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1
        if self._registry is not None:
            self._registry.counter("frames.dropped", reason=reason).inc()

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    def fps(self, duration_ms: float, warmup_ms: float = 0.0) -> float:
        """Average presented frames per second over the run.

        ``warmup_ms`` excludes startup (cold caches, cold hypergraphs) the
        same way a measurement would skip the first seconds of dumpsys.
        """
        window = duration_ms - warmup_ms
        if window <= 0:
            return 0.0
        counted = sum(1 for t in self.present_times if t >= warmup_ms)
        return counted / (window / SECOND)

    def fps_timeline(self, duration_ms: float, bucket_ms: float = SECOND) -> List[float]:
        """Per-bucket FPS — used for the thermal-collapse timeline (§5.3)."""
        buckets = int(duration_ms // bucket_ms)
        counts = [0] * max(buckets, 1)
        for t in self.present_times:
            index = int(t // bucket_ms)
            if index < len(counts):
                counts[index] += 1
        return [c / (bucket_ms / SECOND) for c in counts]


class LatencyCollector:
    """Motion-to-photon latency samples."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def note(self, latency_ms: float) -> None:
        self.samples.append(latency_ms)

    @property
    def average(self) -> Optional[float]:
        return mean(self.samples) if self.samples else None

    def p95(self) -> Optional[float]:
        return percentile(self.samples, 95) if self.samples else None


class SvmStats:
    """Table 2 metrics distilled from a trace log."""

    def __init__(self, trace: TraceLog, duration_ms: float):
        self.trace = trace
        self.duration_ms = duration_ms

    def access_latencies(self) -> List[float]:
        return [float(v) for v in self.trace.values("svm.access_latency", "latency")]

    def coherence_durations(self) -> List[float]:
        return [float(v) for v in self.trace.values("coherence.maintenance", "duration")]

    def slack_intervals(self) -> List[float]:
        return [float(v) for v in self.trace.values("svm.slack", "slack")]

    def average_access_latency(self) -> Optional[float]:
        values = self.access_latencies()
        return mean(values) if values else None

    def average_coherence_cost(self) -> Optional[float]:
        values = self.coherence_durations()
        return mean(values) if values else None

    def throughput_bytes_per_ms(self) -> float:
        """Total SVM bytes accessed / duration (§5.2's definition, minus
        data wasted by prefetch failures — wasted copies are traced as
        maintenances, not accesses, so they are excluded by construction)."""
        total = sum(int(v) for v in self.trace.values("svm.access_latency", "bytes"))
        if self.duration_ms <= 0:
            return 0.0
        return total / self.duration_ms


class ResilienceStats:
    """Fault, retry, and degradation accounting distilled from a trace."""

    def __init__(self, trace: TraceLog):
        self.trace = trace

    # -- injected faults -----------------------------------------------------
    def fault_counts(self) -> Dict[str, int]:
        """Histogram of every ``fault.*`` record kind in the trace."""
        return {
            kind: count
            for kind, count in self.trace.kind_counts().items()
            if kind.startswith("fault.")
        }

    @property
    def faults_injected(self) -> int:
        return sum(self.fault_counts().values())

    # -- recovery machinery --------------------------------------------------
    @property
    def retries(self) -> int:
        return self.trace.count("retry.backoff")

    @property
    def prefetch_failures(self) -> int:
        return self.trace.count("prefetch.failed")

    @property
    def crashes(self) -> int:
        """Virtual-device crashes the recovery coordinator handled."""
        return self.trace.count("recovery.crash")

    @property
    def recoveries(self) -> int:
        """Crashed devices successfully re-admitted (``recovery.readmit``)."""
        return self.trace.count("recovery.readmit")

    @property
    def replayed_copies(self) -> int:
        return self.trace.count("recovery.replay_copy")

    @property
    def audit_violations(self) -> int:
        return self.trace.count("audit.violation")

    @property
    def degrades(self) -> int:
        return self.trace.count("coherence.degrade")

    @property
    def restores(self) -> int:
        return self.trace.count("coherence.restore")

    def degrade_events(self) -> List[tuple]:
        """(time, level) for each escalation, in time order."""
        return [(r.time, r["level"]) for r in self.trace.of_kind("coherence.degrade")]

    def restore_events(self) -> List[tuple]:
        """(time, level) for each restoration, in time order."""
        return [(r.time, r["level"]) for r in self.trace.of_kind("coherence.restore")]

    def time_in_degraded_mode(self, end_ms: float) -> float:
        """Total ms the coherence ladder sat above level 0.

        Walks the interleaved degrade/restore records; a run still degraded
        at ``end_ms`` accrues until then.
        """
        events = sorted(
            [(r.time, r["level"]) for r in self.trace.of_kind("coherence.degrade")]
            + [(r.time, r["level"]) for r in self.trace.of_kind("coherence.restore")]
        )
        total = 0.0
        entered: Optional[float] = None
        for time, level in events:
            if level > 0 and entered is None:
                entered = time
            elif level == 0 and entered is not None:
                total += time - entered
                entered = None
        if entered is not None:
            total += max(0.0, end_ms - entered)
        return total

    def summary(self) -> Dict[str, object]:
        return {
            "faults_injected": self.faults_injected,
            "fault_counts": self.fault_counts(),
            "retries": self.retries,
            "prefetch_failures": self.prefetch_failures,
            "degrades": self.degrades,
            "restores": self.restores,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "replayed_copies": self.replayed_copies,
            "audit_violations": self.audit_violations,
        }

    def to_registry(self, registry) -> None:
        """Publish the resilience accounting as named instruments."""
        for kind, count in sorted(self.fault_counts().items()):
            registry.counter("resilience.faults", kind=kind).inc(count)
        registry.counter("resilience.retries").inc(self.retries)
        registry.counter("resilience.prefetch_failures").inc(self.prefetch_failures)
        registry.counter("resilience.degrades").inc(self.degrades)
        registry.counter("resilience.restores").inc(self.restores)
        registry.counter("resilience.crashes").inc(self.crashes)
        registry.counter("resilience.recoveries").inc(self.recoveries)
        registry.counter("resilience.replayed_copies").inc(self.replayed_copies)
        registry.counter("audit.violations_total").inc(self.audit_violations)
