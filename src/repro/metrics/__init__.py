"""Measurement machinery: collectors fed by pipelines and trace analysis."""

from repro.metrics.collectors import (
    FpsCollector,
    LatencyCollector,
    ResilienceStats,
    SvmStats,
)
from repro.metrics.stats import cdf_points, mean, percentile, summarize

__all__ = [
    "FpsCollector",
    "LatencyCollector",
    "ResilienceStats",
    "SvmStats",
    "mean",
    "percentile",
    "cdf_points",
    "summarize",
]
