"""Trace-driven breakdowns: where a frame's time goes.

Digests an emulator's trace into per-operation and per-subsystem summaries:
device op times, queueing delay, coherence copies, access blocking,
compensation. The complement to the end-to-end FPS/latency collectors —
this is what the paper's authors would have read when their instrumented
emulators told them coherence was eating the frame budget (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.stats import summarize
from repro.sim.tracing import TraceLog


@dataclass
class OpBreakdown:
    """One device operation's aggregate timing."""

    vdev: str
    op: str
    count: int
    mean_queue_delay_ms: float


@dataclass
class FrameBudgetReport:
    """Where the per-frame time budget went, across one run."""

    duration_ms: float
    ops: List[OpBreakdown] = field(default_factory=list)
    coherence_summary: Optional[Dict[str, float]] = None
    access_latency_summary: Optional[Dict[str, float]] = None
    slack_summary: Optional[Dict[str, float]] = None
    compensation_total_ms: float = 0.0
    chain_reaction_equivalent_ms: float = 0.0
    coherence_by_path: Dict[str, int] = field(default_factory=dict)

    def busiest_ops(self, top: int = 5) -> List[OpBreakdown]:
        return sorted(self.ops, key=lambda o: -o.count)[:top]


def frame_budget_report(trace: TraceLog, duration_ms: float) -> FrameBudgetReport:
    """Build a :class:`FrameBudgetReport` from an emulator trace."""
    report = FrameBudgetReport(duration_ms=duration_ms)

    per_op: Dict[tuple, List[float]] = {}
    for record in trace.of_kind("host.op_retired"):
        key = (record["vdev"], record["op"])
        per_op.setdefault(key, []).append(float(record["queue_delay"]))
    for (vdev, op), delays in sorted(per_op.items()):
        report.ops.append(OpBreakdown(
            vdev=vdev,
            op=op,
            count=len(delays),
            mean_queue_delay_ms=sum(delays) / len(delays),
        ))

    coherence = [float(v) for v in trace.values("coherence.maintenance", "duration")]
    if coherence:
        report.coherence_summary = summarize(coherence)
    for record in trace.of_kind("coherence.maintenance"):
        path = record.get("path", "unknown")
        report.coherence_by_path[path] = report.coherence_by_path.get(path, 0) + 1

    access = [float(v) for v in trace.values("svm.access_latency", "latency")]
    if access:
        report.access_latency_summary = summarize(access)

    slack = [float(v) for v in trace.values("svm.slack", "slack")]
    if slack:
        report.slack_summary = summarize(slack)

    report.compensation_total_ms = sum(
        float(v) for v in trace.values("svm.compensation", "compensation")
    )
    return report


def format_report(report: FrameBudgetReport) -> str:
    """Human-readable rendering (used by examples and the CLI)."""
    lines = [f"Frame-budget report over {report.duration_ms:.0f} ms simulated:"]
    lines.append("  device ops (count, mean queue delay):")
    for op in report.busiest_ops():
        lines.append(
            f"    {op.vdev:8s} {op.op:12s} x{op.count:<6d} "
            f"queue {op.mean_queue_delay_ms:6.2f} ms"
        )
    if report.coherence_summary:
        s = report.coherence_summary
        paths = ", ".join(f"{k}={v}" for k, v in sorted(report.coherence_by_path.items()))
        lines.append(
            f"  coherence: n={s['n']:.0f} mean={s['mean']:.2f} ms "
            f"p99={s['p99']:.2f} ms ({paths})"
        )
    if report.access_latency_summary:
        s = report.access_latency_summary
        lines.append(
            f"  access latency: mean={s['mean']:.2f} ms p99={s['p99']:.2f} ms"
        )
    if report.slack_summary:
        s = report.slack_summary
        lines.append(f"  slack intervals: mean={s['mean']:.2f} ms p99={s['p99']:.2f} ms")
    lines.append(f"  compensation injected: {report.compensation_total_ms:.1f} ms total")
    return "\n".join(lines)
