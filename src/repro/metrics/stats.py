"""Small statistics helpers (means, percentiles, CDFs).

Kept dependency-free on purpose: everything the experiments report reduces
to means, percentiles and empirical CDFs over trace-derived samples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (silent zeros hide bugs)."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative probability) pairs."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """The summary block experiment reports print per metric."""
    return {
        "n": float(len(values)),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "min": min(values),
        "max": max(values),
    }
