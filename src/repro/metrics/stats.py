"""Small statistics helpers (means, percentiles, CDFs).

Kept dependency-free on purpose: everything the experiments report reduces
to means, percentiles and empirical CDFs over trace-derived samples.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Sentinel distinguishing "no default supplied" from ``default=None``.
_RAISE = object()


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (silent zeros hide bugs)."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(
    values: Sequence[float], q: float, default: Optional[float] = _RAISE
) -> Optional[float]:
    """Linear-interpolated percentile, q in [0, 100].

    Edge cases are explicit: an empty input raises (or returns ``default``
    when one is supplied — histogram instruments lean on that); a single
    sample is every percentile of itself; q=0 / q=100 return the exact
    min / max with no interpolation rounding; a NaN or out-of-range q is
    rejected rather than silently indexing somewhere.
    """
    if not 0.0 <= q <= 100.0:  # NaN fails this comparison too
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        if default is _RAISE:
            raise ConfigurationError("percentile of empty sequence")
        return default
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    if q == 0.0:
        return ordered[0]
    if q == 100.0:
        return ordered[-1]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = min(int(math.floor(rank)), len(ordered) - 2)
    high = low + 1
    fraction = rank - low
    result = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # The two-product form is stable for huge magnitudes but can round
    # outside the bracket for denormals (5e-324 * 0.5 rounds to 0);
    # clamp so the result always lands between its neighbors.
    return min(max(result, ordered[low]), ordered[high])


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative probability) pairs."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """The summary block experiment reports print per metric."""
    return {
        "n": float(len(values)),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "min": min(values),
        "max": max(values),
    }
