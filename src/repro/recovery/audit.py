"""Runtime coherence-invariant auditor (ISSUE 4 tentpole, part 3).

The :class:`InvariantAuditor` is a :class:`~repro.sim.kernel.SimHook` that
periodically sweeps the live emulator and asserts the invariants the whole
design rests on:

* **single-writer** — no two different virtual devices hold open *write*
  brackets on one SVM region at the same time;
* **writer-visibility** — once a write has retired, the writer's location
  holds a valid copy (an invalidation that forgot its own writer);
* **fence-liveness** — no fence is waited on longer than the watchdog
  deadline without being signalled or poisoned (the "no fence waited
  before signalled-or-poisoned" property, observed rather than assumed);
* **hashtable-bijection** — the SVM manager's region hashtable and the twin
  hypergraphs' region hashtable hold exactly the same region IDs;
* **monotonic-stats** — hyperedge observation counts and slack sample
  counts never decrease between audits (prediction history only grows,
  except through an announced crash reset), and slack estimates stay
  finite and non-negative;
* **stale-read** (inline, not in the sweep) — a read the coherence protocol
  just admitted must observe an up-to-date copy at the reader's location.

Violations become structured :class:`~repro.errors.InvariantViolation`
records: appended to :attr:`violations`, traced as ``audit.violation``,
counted into the ``repro.obs`` metrics registry, and — in CI strict mode
(``raise_on_violation=True``) — raised, failing the run on the spot.

Hooks must not mutate simulator state; the auditor only reads the emulator
and appends to its own buffers, so observing a run with it leaves the run's
trace bit-identical.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvariantViolation
from repro.sim.kernel import SimHook

#: Default sweep cadence: ~3 VSync periods — frequent enough to catch a
#: broken state before it propagates, cheap enough to leave on everywhere.
DEFAULT_AUDIT_INTERVAL_MS = 50.0
#: A fence waited on longer than this without signalling or poisoning is a
#: liveness violation (matches the order of the copy watchdog deadlines).
DEFAULT_FENCE_WAIT_DEADLINE_MS = 1_000.0


class InvariantAuditor(SimHook):
    """Periodic + inline assertion of the emulator's coherence invariants."""

    def __init__(
        self,
        emulator: Any,
        interval_ms: float = DEFAULT_AUDIT_INTERVAL_MS,
        fence_wait_deadline_ms: float = DEFAULT_FENCE_WAIT_DEADLINE_MS,
        raise_on_violation: bool = False,
    ):
        self._emulator = emulator
        self._sim = emulator.sim
        self.interval_ms = interval_ms
        self.fence_wait_deadline_ms = fence_wait_deadline_ms
        self.raise_on_violation = raise_on_violation
        #: Inline read-visibility checks only make sense for the unified
        #: SVM architecture; the guest-memory baseline tracks validity
        #: through the guest copy, which is not location-resolved.
        self.check_visibility = bool(emulator.config.unified_svm)
        self.audits = 0
        self.checks = 0
        self.violations: List[Dict[str, Any]] = []
        self._last_sweep = self._sim.now
        #: serialized edge key -> (observations, slack sample count)
        self._edge_watermarks: Dict[str, Tuple[int, int]] = {}

    # -- SimHook ----------------------------------------------------------------
    def on_event_dispatch(self, time: float, call: Any) -> None:
        if time - self._last_sweep >= self.interval_ms:
            self._last_sweep = time
            self.sweep()

    # -- the periodic sweep -----------------------------------------------------
    def sweep(self) -> int:
        """Run every invariant check once; returns violations found now."""
        before = len(self.violations)
        self.audits += 1
        self._check_single_writer()
        self._check_writer_visibility()
        self._check_fence_liveness()
        self._check_hashtable_bijection()
        self._check_monotonic_stats()
        return len(self.violations) - before

    def _check_single_writer(self) -> None:
        for region_id in sorted(self._emulator.manager._regions):
            region = self._emulator.manager._regions[region_id]
            self.checks += 1
            writers = sorted(
                acc.vdev for acc in region._open.values() if acc.usage.writes
            )
            if len(writers) > 1:
                self._violation(
                    "single-writer",
                    f"region #{region_id} has concurrent open write brackets "
                    f"from {writers}",
                    region=region_id,
                    writers=writers,
                )

    def _check_writer_visibility(self) -> None:
        for region_id in sorted(self._emulator.manager._regions):
            region = self._emulator.manager._regions[region_id]
            self.checks += 1
            if (
                not region.write_in_flight
                and region.last_writer_location is not None
                and region.valid_locations
                and region.last_writer_location not in region.valid_locations
            ):
                self._violation(
                    "writer-visibility",
                    f"region #{region_id}'s last writer location "
                    f"{region.last_writer_location!r} is not in its valid set "
                    f"{sorted(region.valid_locations)}",
                    region=region_id,
                    writer_location=region.last_writer_location,
                    valid=sorted(region.valid_locations),
                )

    def _check_fence_liveness(self) -> None:
        table = self._emulator.fence_table
        now = self._sim.now
        for index in sorted(table._slots):
            fence = table._slots[index]
            self.checks += 1
            if (
                fence.state.value == "pending"
                and fence.waiters > 0
                and fence.first_wait_at is not None
                and now - fence.first_wait_at > self.fence_wait_deadline_ms
            ):
                self._violation(
                    "fence-liveness",
                    f"fence #{index} (owner {fence.owner!r}) has had waiters "
                    f"for {now - fence.first_wait_at:.1f}ms without being "
                    "signalled or poisoned",
                    fence=index,
                    owner=fence.owner,
                    waited_ms=now - fence.first_wait_at,
                )

    def _check_hashtable_bijection(self) -> None:
        self.checks += 1
        manager_ids = set(self._emulator.manager._regions)
        twin_ids = self._emulator.twin.region_ids()
        if manager_ids != twin_ids:
            self._violation(
                "hashtable-bijection",
                "SVM manager and twin hypergraphs disagree on live regions: "
                f"manager-only={sorted(manager_ids - twin_ids)} "
                f"twin-only={sorted(twin_ids - manager_ids)}",
                manager_only=sorted(manager_ids - twin_ids),
                twin_only=sorted(twin_ids - manager_ids),
            )

    def _check_monotonic_stats(self) -> None:
        from repro.core.hypergraph import serialize_edge_key

        seen: Dict[str, Tuple[int, int]] = {}
        for edge in self._emulator.twin.virtual:
            self.checks += 1
            key = repr(serialize_edge_key(edge.key))
            slack = edge.stats.get("slack")
            samples = slack.n if slack is not None else 0
            seen[key] = (edge.observations, samples)
            previous = self._edge_watermarks.get(key)
            if previous is not None and (
                edge.observations < previous[0] or samples < previous[1]
            ):
                self._violation(
                    "monotonic-stats",
                    f"flow {key} went backwards: observations "
                    f"{previous[0]}→{edge.observations}, slack samples "
                    f"{previous[1]}→{samples} (no crash reset was announced)",
                    edge=key,
                )
            level = slack.predict() if slack is not None else None
            if level is not None and (not math.isfinite(level) or level < 0):
                self._violation(
                    "monotonic-stats",
                    f"flow {key} has an invalid slack estimate {level!r}",
                    edge=key,
                    level=level,
                )
        # Edges can legitimately disappear (region churn, crash resets);
        # keeping their watermarks would flag any later re-learning of the
        # same flow as a regression.
        self._edge_watermarks = seen

    # -- inline check (called by the SVM manager) ---------------------------------
    def check_read_visibility(self, region: Any, vdev: str, location: str) -> None:
        """A protocol-admitted read must not observe stale bytes."""
        if not self.check_visibility:
            return
        self.checks += 1
        if not region.is_valid_at(location):
            self._violation(
                "stale-read",
                f"vdev {vdev!r} admitted to read region #{region.region_id} at "
                f"{location!r}, but valid copies are only at "
                f"{sorted(region.valid_locations)}",
                region=region.region_id,
                vdev=vdev,
                location=location,
                valid=sorted(region.valid_locations),
            )

    # -- crash-reset coordination --------------------------------------------------
    def note_history_reset(self, vdev: str) -> None:
        """Recovery wiped flows touching ``vdev``: forget their watermarks."""
        import ast

        def touches(key_repr: str) -> bool:
            sources, destinations = ast.literal_eval(key_repr)
            return vdev in sources or vdev in destinations

        self._edge_watermarks = {
            key: mark
            for key, mark in self._edge_watermarks.items()
            if not touches(key)
        }

    # -- reporting ------------------------------------------------------------------
    def _violation(self, invariant: str, message: str, **context: Any) -> None:
        record = {
            "time": self._sim.now,
            "invariant": invariant,
            "message": message,
            **context,
        }
        self.violations.append(record)
        self._emulator.trace.record(
            self._sim.now, "audit.violation", invariant=invariant
        )
        self._emulator.obs.registry.counter(
            "audit.violations", invariant=invariant
        ).inc()
        if self.raise_on_violation:
            raise InvariantViolation(invariant, message, **context)

    def report(self) -> Dict[str, Any]:
        """JSON-able audit summary (the CI artifact)."""
        by_invariant: Dict[str, int] = {}
        for violation in self.violations:
            name = violation["invariant"]
            by_invariant[name] = by_invariant.get(name, 0) + 1
        return {
            "audits": self.audits,
            "checks": self.checks,
            "violations": list(self.violations),
            "violations_by_invariant": dict(sorted(by_invariant.items())),
            "clean": not self.violations,
        }


def install_auditor(
    emulator: Any,
    interval_ms: float = DEFAULT_AUDIT_INTERVAL_MS,
    fence_wait_deadline_ms: float = DEFAULT_FENCE_WAIT_DEADLINE_MS,
    raise_on_violation: bool = False,
) -> InvariantAuditor:
    """Wire an auditor into an emulator: sim hook + inline manager check."""
    auditor = InvariantAuditor(
        emulator,
        interval_ms=interval_ms,
        fence_wait_deadline_ms=fence_wait_deadline_ms,
        raise_on_violation=raise_on_violation,
    )
    emulator.sim.add_hook(auditor)
    emulator.manager.auditor = auditor
    return auditor
