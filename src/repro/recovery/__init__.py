"""Crash-consistent checkpoint/restore, crash recovery, and invariants.

Three cooperating pieces (ISSUE 4):

* :mod:`repro.recovery.snapshot` — versioned, checksummed, deterministic
  :class:`Snapshot` of full emulator state, with a replay-based restore
  that guarantees bit-identical continuation;
* :mod:`repro.recovery.coordinator` — the :class:`RecoveryCoordinator`
  that quarantines and re-admits virtual devices killed mid-frame by a
  :class:`~repro.faults.plan.DeviceCrashEvent`;
* :mod:`repro.recovery.audit` — the :class:`InvariantAuditor` sim hook
  asserting coherence/ordering invariants at runtime.
"""

from repro.recovery.audit import (
    DEFAULT_AUDIT_INTERVAL_MS,
    InvariantAuditor,
    install_auditor,
)
from repro.recovery.coordinator import RecoveryCoordinator, RecoveryStats
from repro.recovery.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    canonical_json,
    state_digest,
)

__all__ = [
    "Snapshot",
    "SNAPSHOT_FORMAT_VERSION",
    "canonical_json",
    "state_digest",
    "RecoveryCoordinator",
    "RecoveryStats",
    "InvariantAuditor",
    "install_auditor",
    "DEFAULT_AUDIT_INTERVAL_MS",
]
