"""Crash-consistent checkpointing of a full emulator (ISSUE 4 tentpole).

A :class:`Snapshot` is a *declarative* image of every piece of emulator
state that determines future behaviour: the SVM region hashtable with its
coherence ownership, the virtual fence table, both twin-hypergraph layers
and their region hashtable, the prefetch engine's learned histories and
smoothing state, the degradation ladder, the guest transport counters, the
per-device flow-control windows, and the simulated clock.

What a snapshot deliberately does **not** contain is live continuations —
the generator frames of in-flight processes are not picklable and any
"best effort" serialization of them would break the bit-identity contract.
Instead, restore is *deterministic replay*: the driver rebuilds a fresh
emulator, re-runs the (deterministic) workload to the capture time ``T``,
recaptures, and verifies the recaptured digest against the snapshot.
Because every run is a pure function of its inputs, the replayed state at
``T`` is byte-identical to the crashed run's state at ``T`` — so running on
to ``T+Δ`` bit-matches an uninterrupted run. The checksum turns silent
snapshot corruption (truncation, bit flips, hand editing) into a loud
:class:`~repro.errors.SnapshotCorruptError`.

Format
------
One canonical-JSON document::

    {"version": 1, "recipe": {...}, "state": {...}, "checksum": "sha256..."}

* ``version`` — :data:`SNAPSHOT_FORMAT_VERSION`; readers reject newer
  versions (forward compatibility is impossible to promise for state
  layouts that do not exist yet).
* ``recipe`` — opaque, caller-provided description of how to re-run the
  workload (emulator name, app, seed, capture time). The replay layer
  round-trips it; this module never interprets it.
* ``state`` — the component states, captured via each component's
  ``snapshot_state()``.
* ``checksum`` — SHA-256 over the canonical JSON of
  ``{"recipe", "state", "version"}``.

Canonical JSON (sorted keys, no whitespace) makes the checksum — and the
digest comparison underpinning the replay guarantee — independent of dict
iteration order.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    SnapshotCorruptError,
    SnapshotError,
    SnapshotMismatchError,
)

#: Bump on any change to the layout of ``state`` — old snapshots stay
#: readable only through explicit migration, never through guessing.
SNAPSHOT_FORMAT_VERSION = 1


def canonical_json(obj: Any) -> str:
    """Serialize deterministically: sorted keys, minimal separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def state_digest(state: Dict[str, Any]) -> str:
    """SHA-256 hex digest of a state dict's canonical JSON."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def _first_divergence(
    a: Any, b: Any, path: str = ""
) -> Optional[Tuple[str, Any, Any]]:
    """Depth-first search for the first differing leaf between two states.

    Returns ``(path, ours, theirs)`` or ``None`` when equal. Keys are
    explored in sorted order so the reported divergence is deterministic.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            where = f"{path}.{key}" if path else str(key)
            if key not in a:
                return (where, "<missing>", b[key])
            if key not in b:
                return (where, a[key], "<missing>")
            found = _first_divergence(a[key], b[key], where)
            if found is not None:
                return found
        return None
    if isinstance(a, list) and isinstance(b, list):
        for i in range(max(len(a), len(b))):
            where = f"{path}[{i}]"
            if i >= len(a):
                return (where, "<missing>", b[i])
            if i >= len(b):
                return (where, a[i], "<missing>")
            found = _first_divergence(a[i], b[i], where)
            if found is not None:
                return found
        return None
    if a != b:
        return (path or "<root>", a, b)
    return None


class Snapshot:
    """One checksummed checkpoint of a full emulator."""

    def __init__(
        self,
        state: Dict[str, Any],
        recipe: Optional[Dict[str, Any]] = None,
        version: int = SNAPSHOT_FORMAT_VERSION,
        checksum: Optional[str] = None,
    ):
        self.version = version
        self.recipe = recipe if recipe is not None else {}
        self.state = state
        self.checksum = checksum if checksum is not None else self._compute_checksum()

    # -- capture ------------------------------------------------------------
    @classmethod
    def capture(cls, emulator: Any, recipe: Optional[Dict[str, Any]] = None) -> "Snapshot":
        """Checkpoint a live emulator.

        Legal at any simulated time; crash consistency comes from the
        replay-based restore, not from quiescing the emulator first.
        """
        state: Dict[str, Any] = {
            "emulator": emulator.config.name,
            "sim_now": emulator.sim.now,
            "manager": emulator.manager.snapshot_state(),
            "fences": emulator.fence_table.snapshot_state(),
            "twin": emulator.twin.snapshot_state(),
            "transport": emulator.transport.snapshot_state(),
            "flows": {
                name: emulator._vdevs[name].flow.snapshot_state()
                for name in sorted(emulator.vdev_names())
            },
            "engine": (
                None if emulator.engine is None else emulator.engine.snapshot_state()
            ),
            "degradation": (
                None
                if emulator.degradation is None
                else emulator.degradation.snapshot_state()
            ),
        }
        return cls(state, recipe=recipe)

    # -- integrity ----------------------------------------------------------
    def _compute_checksum(self) -> str:
        return state_digest(
            {"recipe": self.recipe, "state": self.state, "version": self.version}
        )

    def digest(self) -> str:
        """Digest of the *state* alone — what replay equivalence compares."""
        return state_digest(self.state)

    def verify_against(self, other: "Snapshot") -> None:
        """Assert another snapshot captured the exact same state.

        Raises :class:`SnapshotMismatchError` naming the first diverging
        key path — the error message is the debugging entry point when a
        replay fails to reconverge (i.e. determinism was broken somewhere).
        """
        if self.digest() == other.digest():
            return
        found = _first_divergence(self.state, other.state)
        if found is None:  # pragma: no cover - digest collision is impossible here
            raise SnapshotMismatchError("digests differ but states compare equal")
        path, ours, theirs = found
        raise SnapshotMismatchError(
            f"replayed state diverges from snapshot at {path!r}: "
            f"snapshot={ours!r} replay={theirs!r}"
        )

    # -- serialization -------------------------------------------------------
    def to_json(self) -> str:
        return canonical_json(
            {
                "version": self.version,
                "recipe": self.recipe,
                "state": self.state,
                "checksum": self.checksum,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        """Parse + integrity-check a serialized snapshot.

        Truncated or bit-flipped documents raise
        :class:`SnapshotCorruptError` — never a half-restored emulator.
        """
        try:
            doc = json.loads(text)
        except ValueError as err:
            raise SnapshotCorruptError(f"snapshot is not valid JSON: {err}") from None
        if not isinstance(doc, dict):
            raise SnapshotCorruptError(f"snapshot root must be an object, got {type(doc).__name__}")
        missing = [k for k in ("version", "recipe", "state", "checksum") if k not in doc]
        if missing:
            raise SnapshotCorruptError(f"snapshot is missing keys: {missing}")
        if doc["version"] > SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format v{doc['version']} is newer than supported "
                f"v{SNAPSHOT_FORMAT_VERSION}"
            )
        snapshot = cls(
            doc["state"], recipe=doc["recipe"], version=doc["version"],
            checksum=doc["checksum"],
        )
        expected = snapshot._compute_checksum()
        if doc["checksum"] != expected:
            raise SnapshotCorruptError(
                f"snapshot checksum mismatch: stored {doc['checksum'][:16]}…, "
                f"computed {expected[:16]}… — the file is corrupt or was edited"
            )
        return snapshot

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- direct restore -------------------------------------------------------
    def restore_into(self, emulator: Any) -> None:
        """Reinstate the captured component state into a fresh emulator.

        The emulator must be newly built (same config/machine) with its
        clock not yet past the capture time; the clock is run forward to
        exactly ``sim_now`` (draining executor start-up events), then each
        component's ``restore_state`` is applied — fences first, because
        regions re-link their write fences through the restored table.

        This rebuilds all *declarative* state. In-flight continuations
        (blocked guest stages, mid-copy DMA processes) are not resurrected;
        the deterministic-replay driver in ``repro.experiments.recover`` is
        the restore path that reconstructs those, using this method's
        component restores only for verification round-trips.
        """
        state = self.state
        if state["emulator"] != emulator.config.name:
            raise SnapshotError(
                f"snapshot of emulator {state['emulator']!r} cannot restore "
                f"into {emulator.config.name!r}"
            )
        sim = emulator.sim
        if sim.now > state["sim_now"]:
            raise SnapshotError(
                f"emulator clock {sim.now:.3f}ms already past capture time "
                f"{state['sim_now']:.3f}ms — restore needs a fresh emulator"
            )
        sim.run(until=state["sim_now"])
        emulator.fence_table.restore_state(state["fences"])
        emulator.manager.restore_state(state["manager"], fence_table=emulator.fence_table)
        emulator.twin.restore_state(state["twin"])
        emulator.transport.restore_state(state["transport"])
        for name, flow_state in state["flows"].items():
            if emulator.has_vdev(name):
                emulator._vdevs[name].flow.restore_state(flow_state)
        if state["engine"] is not None and emulator.engine is not None:
            emulator.engine.restore_state(state["engine"])
        if state["degradation"] is not None and emulator.degradation is not None:
            emulator.degradation.restore_state(state["degradation"])
