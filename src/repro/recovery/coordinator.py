"""Live device-crash recovery (ISSUE 4 tentpole, part 2).

When a virtual device dies mid-frame — its host executor thread killed with
commands in flight — three failure classes threaten the rest of the
emulator:

1. **Deadlock**: fences the dead device would have signalled never fire, so
   every executor that queued a ``WaitFenceCommand`` on them blocks forever.
2. **Corruption**: a write the device was retiring when it died left torn
   bytes at its location; the single-writer invariant says that location
   was the *only* valid copy-in-the-making.
3. **Poisoned accounting**: its flow-control window holds slots for
   commands that will never retire, and its prediction history describes a
   pipeline that no longer exists.

The :class:`RecoveryCoordinator` runs the recovery state machine
(documented in DESIGN.md §9)::

    CRASH → DRAIN (kill executor, reset queue, abort outstanding commands)
          → POISON (orphan fences release waiters with POISONED status)
          → QUARANTINE (roll back torn writes, drop the torn copy)
          → REPLAY (re-copy lost replicas from the last consistent source)
          → DOWNTIME (the device is simply gone for ``downtime_ms``)
          → READMIT (fresh executor, reset prediction history, poison acks)

Everything is deterministic: no RNG is consumed, and iteration orders are
sorted, so crash-chaos runs are reproducible trace-for-trace.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.coherence import RECOVERABLE_COPY_ERRORS
from repro.errors import RecoveryError
from repro.sim import Timeout
from repro.sim.tracing import TraceLog


class RecoveryStats:
    """What recovery actually did, for metrics and assertions."""

    def __init__(self) -> None:
        self.crashes = 0
        self.recoveries = 0
        self.aborted_commands = 0
        self.poisoned_fences = 0
        self.quarantined_regions = 0
        self.replayed_copies = 0
        self.replay_failures = 0
        self.data_loss_regions = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "aborted_commands": self.aborted_commands,
            "poisoned_fences": self.poisoned_fences,
            "quarantined_regions": self.quarantined_regions,
            "replayed_copies": self.replayed_copies,
            "replay_failures": self.replay_failures,
            "data_loss_regions": self.data_loss_regions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<RecoveryStats {parts}>"


class RecoveryCoordinator:
    """Quarantines and re-admits crashed virtual devices of one emulator."""

    def __init__(self, emulator: Any, trace: Optional[TraceLog] = None):
        self._emulator = emulator
        self._sim = emulator.sim
        self.trace = trace if trace is not None else emulator.trace
        self.stats = RecoveryStats()
        #: Devices currently between CRASH and READMIT.
        self.in_recovery: Set[str] = set()

    # -- entry point ---------------------------------------------------------
    def crash(self, vdev_name: str, downtime_ms: float) -> Any:
        """Kill ``vdev_name`` now; returns the recovery process (joinable)."""
        if not self._emulator.has_vdev(vdev_name):
            raise RecoveryError(
                f"emulator {self._emulator.name!r} has no virtual device {vdev_name!r}"
            )
        if vdev_name in self.in_recovery:
            raise RecoveryError(
                f"virtual device {vdev_name!r} is already in recovery — "
                "overlapping crashes on one device are rejected at plan build time"
            )
        self.in_recovery.add(vdev_name)
        return self._sim.spawn(
            self._recover(vdev_name, downtime_ms), name=f"recover:{vdev_name}"
        )

    # -- the recovery state machine -------------------------------------------
    def _recover(self, vdev_name: str, downtime_ms: float):
        emulator = self._emulator
        sim = self._sim
        vdev = emulator._vdev(vdev_name)
        vdev.crashes += 1
        self.stats.crashes += 1
        self.trace.record(sim.now, "recovery.crash", vdev=vdev_name, downtime=downtime_ms)

        # DRAIN — the executor dies mid-whatever-it-was-doing. GeneratorExit
        # releases the physical device's execution mutex on the way out, and
        # the queue reset unblocks producers parked on a full queue.
        if vdev.executor is not None:
            vdev.executor.kill()
        vdev.queue.reset()
        aborted = 0
        for command in list(vdev.outstanding):
            if not command.done.fired:
                # The guest observes retirement *now*; the frame is charged
                # as presented at crash time. One flow-control completion
                # per abort keeps the MIMD accounting exactly balanced.
                command.done.fire(sim.now)
                vdev.flow.complete()
            vdev.outstanding.pop(command, None)
            aborted += 1
        self.stats.aborted_commands += aborted

        # POISON — orphan fences release their waiters with POISONED status
        # instead of deadlocking them; the coherence protocols re-validate
        # after the wake-up and fall back to synchronous maintenance.
        poisoned = emulator.fence_table.poison_owned(vdev_name)
        self.stats.poisoned_fences += len(poisoned)
        if poisoned:
            self.trace.record(
                sim.now,
                "recovery.fences_poisoned",
                vdev=vdev_name,
                indices=sorted(f.index for f in poisoned),
            )

        # QUARANTINE + REPLAY — roll back torn writes and re-copy replicas
        # the crash destroyed, from the last consistent source.
        location = emulator.vdev_location(vdev_name)
        replays: List[Any] = []
        poisoned_fences = set(poisoned)
        for region_id in sorted(emulator.manager._regions):
            region = emulator.manager._regions[region_id]
            if not self._write_torn_by(region, vdev_name, location, poisoned_fences):
                continue
            self.stats.quarantined_regions += 1
            region.write_in_flight = False
            region.pending_writer_location = None
            region.write_fence = None
            # The torn bytes live at the crashed device's location.
            region.valid_locations.discard(location)
            if not region.valid_locations:
                # Nothing consistent survives: the region reverts to
                # zero-fill semantics (empty set = trivially coherent), and
                # its provenance is wiped so no reader trusts the dead write.
                self.stats.data_loss_regions += 1
                region.last_writer_vdev = None
                region.last_writer_location = None
                region.write_complete_time = None
                self.trace.record(
                    sim.now, "recovery.data_loss", vdev=vdev_name, region=region_id
                )
            else:
                src = region.last_writer_location
                if src is None or src not in region.valid_locations:
                    src = sorted(region.valid_locations)[0]
                replays.append(
                    sim.spawn(
                        self._replay_copy(region, src, location),
                        name=f"recovery:replay:r{region_id}",
                    )
                )
            self.trace.record(
                sim.now, "recovery.quarantine", vdev=vdev_name, region=region_id
            )

        # Forget what prediction learned about the dead device's pipelines:
        # the re-admitted device starts with a clean R/W history (and its
        # pre-crash mispredictions must not keep flows suspended).
        emulator.twin.reset_vdev_history(vdev_name)
        if emulator.engine is not None:
            emulator.engine.reset_vdev_history(vdev_name)
        auditor = getattr(emulator.manager, "auditor", None)
        if auditor is not None:
            auditor.note_history_reset(vdev_name)

        # DOWNTIME — replicas are replayed while the device is down, and
        # re-admission waits for both the downtime and every replay.
        yield Timeout(downtime_ms)
        for proc in replays:
            yield proc

        # READMIT — fresh executor, then (and only then) acknowledge the
        # poisons so the fence table may recycle those indices.
        emulator.respawn_executor(vdev_name)
        for fence in sorted(poisoned, key=lambda f: f.index):
            emulator.fence_table.acknowledge_poison(fence.index)
        self.in_recovery.discard(vdev_name)
        self.stats.recoveries += 1
        self.trace.record(
            sim.now,
            "recovery.readmit",
            vdev=vdev_name,
            aborted=aborted,
            poisoned=len(poisoned),
        )

    @staticmethod
    def _write_torn_by(
        region: Any, vdev_name: str, location: str, poisoned_fences: Set[Any]
    ) -> bool:
        """Did the crash interrupt this region's in-flight write?

        Two detection paths: under FENCES ordering the region's write fence
        belongs to the set we just poisoned (the signal will never come);
        under ATOMIC ordering the crashed device holds an open write bracket
        with the write still in flight.
        """
        if region.write_fence is not None and region.write_fence in poisoned_fences:
            return True
        acc = region._open.get(vdev_name)
        return acc is not None and acc.usage.writes and region.write_in_flight

    def _replay_copy(self, region: Any, src: str, dst: str):
        """Process: restore the lost replica at ``dst`` from ``src``."""
        try:
            duration = yield from self._emulator.planner.copy_unified_resilient(
                src, dst, region.dirty_bytes
            )
        except RECOVERABLE_COPY_ERRORS as err:
            # The copy path itself is under chaos; readers at dst will fall
            # back to on-demand synchronous maintenance, so this is a lost
            # optimization, not lost data.
            self.stats.replay_failures += 1
            self.trace.record(
                self._sim.now,
                "recovery.replay_failed",
                region=region.region_id,
                src=src,
                dst=dst,
                error=type(err).__name__,
            )
            return
        region.note_copy(dst)
        self.stats.replayed_copies += 1
        self.trace.record(
            self._sim.now,
            "recovery.replay_copy",
            region=region.region_id,
            src=src,
            dst=dst,
            bytes=region.dirty_bytes,
            duration=duration,
        )
