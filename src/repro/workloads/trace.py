"""SVM usage traces: record, serialize, replay.

A :class:`WorkloadTrace` is the sequence of shared-memory events an app
produced: allocations, frees, and device accesses with their timestamps
and dirty sizes. Traces come from a live run (:func:`record_workload`) or
from JSON (:meth:`WorkloadTrace.load`), and replay open-loop against any
emulator (:func:`replay_workload`): each write/read is re-issued at its
recorded time, whatever the target emulator's coherence costs.

Open-loop replay answers a question the closed-loop app benchmarks cannot:
*with the access pattern held exactly constant*, how much time does each
memory architecture spend on coherence? (In closed loop, a slow emulator
slows the app down, which reduces its access rate, which hides cost.)
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.emulators.base import Emulator
from repro.errors import ConfigurationError
from repro.metrics.collectors import SvmStats
from repro.sim import Simulator, Timeout
from repro.sim.tracing import TraceLog

#: Default device op used when replaying a write/read on each vdev.
_REPLAY_OPS = {
    "codec": ("decode", "read_back"),
    "gpu": ("render", "render"),
    "display": ("compose", "compose"),
    "camera": ("deliver", "deliver"),
    "isp": ("convert", "convert"),
    "modem": ("recv", "recv"),
    "cpu": ("memcpy", "memcpy"),
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded shared-memory event."""

    time: float
    kind: str  # "alloc" | "free" | "write" | "read"
    region: int
    vdev: str = ""
    nbytes: int = 0

    def validate(self) -> None:
        if self.kind not in ("alloc", "free", "write", "read"):
            raise ConfigurationError(f"unknown trace event kind {self.kind!r}")
        if self.time < 0:
            raise ConfigurationError("event time must be >= 0")
        if self.kind in ("alloc", "write", "read") and self.nbytes <= 0:
            raise ConfigurationError(f"{self.kind} event needs nbytes > 0")


@dataclass
class WorkloadTrace:
    """An ordered sequence of :class:`TraceEvent`."""

    name: str
    events: List[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            event.validate()
        times = [e.time for e in self.events]
        if times != sorted(times):
            raise ConfigurationError("trace events must be time-ordered")

    @property
    def duration_ms(self) -> float:
        return self.events[-1].time if self.events else 0.0

    @property
    def regions(self) -> int:
        return sum(1 for e in self.events if e.kind == "alloc")

    # -- serialization ----------------------------------------------------------
    def dump(self, path: str) -> None:
        with open(path, "w") as stream:
            json.dump(
                {"name": self.name, "events": [asdict(e) for e in self.events]},
                stream,
            )

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        with open(path) as stream:
            data = json.load(stream)
        return cls(
            name=data["name"],
            events=[TraceEvent(**event) for event in data["events"]],
        )


def record_workload(trace_log: TraceLog, name: str = "recorded") -> WorkloadTrace:
    """Distill an emulator's instrumentation log into a replayable trace.

    Uses the ``svm.alloc`` / ``svm.free`` records plus write retirements
    and read accesses — the same events the paper's instrumentation of the
    shared-memory interface captured.
    """
    events: List[TraceEvent] = []
    sizes: Dict[int, int] = {}
    for record in trace_log:
        if record.kind == "svm.alloc":
            sizes[record["region"]] = int(record["size"])
            events.append(TraceEvent(record.time, "alloc", record["region"],
                                     nbytes=int(record["size"])))
        elif record.kind == "svm.free":
            events.append(TraceEvent(record.time, "free", record["region"]))
        elif record.kind == "svm.write_retired":
            events.append(TraceEvent(record.time, "write", record["region"],
                                     vdev=record["vdev"], nbytes=int(record["bytes"])))
        elif record.kind == "svm.access_latency" and record["usage"] == "ro":
            events.append(TraceEvent(record.time, "read", record["region"],
                                     vdev=record["vdev"], nbytes=int(record["bytes"])))
    events.sort(key=lambda e: e.time)
    return WorkloadTrace(name=name, events=events)


@dataclass
class ReplayResult:
    """What the target emulator did under the replayed access pattern."""

    trace_name: str
    emulator: str
    events_replayed: int
    total_coherence_ms: float
    mean_coherence_ms: Optional[float]
    mean_access_latency_ms: Optional[float]
    bytes_copied: int


def _replay_driver(sim: Simulator, emulator: Emulator,
                   trace: WorkloadTrace) -> Generator[Any, Any, int]:
    handles: Dict[int, int] = {}
    replayed = 0
    for event in trace.events:
        if event.time > sim.now:
            yield Timeout(event.time - sim.now)
        if event.kind == "alloc":
            handles[event.region] = emulator.svm_alloc(event.nbytes)
        elif event.kind == "free":
            handle = handles.pop(event.region, None)
            if handle is not None:
                emulator.svm_free(handle)
        elif event.kind in ("write", "read"):
            handle = handles.get(event.region)
            if handle is None:
                continue  # accesses before the alloc record: skip
            vdev = event.vdev if emulator.has_vdev(event.vdev) else "cpu"
            write_op, read_op = _REPLAY_OPS.get(vdev, ("memcpy", "memcpy"))
            op = write_op if event.kind == "write" else read_op
            if not emulator.physical_for(vdev).supports(op):
                op = emulator.decode_op() if vdev == "codec" else "memcpy"
                if not emulator.physical_for(vdev).supports(op):
                    vdev, op = "cpu", "memcpy"
            if event.kind == "write":
                result = yield from emulator.stage(
                    vdev, op, event.nbytes, writes=[handle]
                )
            else:
                result = yield from emulator.stage(
                    vdev, op, event.nbytes, reads=[handle]
                )
            yield result.done
        replayed += 1
    return replayed


def replay_workload(
    trace: WorkloadTrace,
    emulator_name: str,
    machine_spec=None,
    seed: int = 0,
) -> ReplayResult:
    """Replay a trace against one emulator; returns its coherence bill."""
    import random

    from repro.emulators import EMULATOR_FACTORIES
    from repro.hw.machine import HIGH_END_DESKTOP, build_machine

    spec = machine_spec if machine_spec is not None else HIGH_END_DESKTOP
    sim = Simulator()
    machine = build_machine(sim, spec)
    log = TraceLog()
    emulator = EMULATOR_FACTORIES[emulator_name](
        sim, machine, trace=log, rng=random.Random(seed)
    )
    driver = sim.spawn(_replay_driver(sim, emulator, trace), name="replay")
    sim.run(until=trace.duration_ms + 1_000.0)

    stats = SvmStats(log, trace.duration_ms or 1.0)
    coherence = stats.coherence_durations()
    copied = sum(int(r["bytes"]) for r in log.of_kind("coherence.maintenance"))
    return ReplayResult(
        trace_name=trace.name,
        emulator=emulator_name,
        events_replayed=driver.value if driver.value is not None else 0,
        total_coherence_ms=sum(coherence),
        mean_coherence_ms=stats.average_coherence_cost(),
        mean_access_latency_ms=stats.average_access_latency(),
        bytes_copied=copied,
    )
