"""Trace-driven workloads: record SVM usage once, replay it anywhere.

The §2.3 measurement methodology as a reusable artifact: capture the
shared-memory access pattern an app produced on one emulator, then replay
that exact pattern (open loop) against any other emulator — isolating the
memory architecture's cost from app-side feedback effects.
"""

from repro.workloads.trace import (
    ReplayResult,
    TraceEvent,
    WorkloadTrace,
    record_workload,
    replay_workload,
)

__all__ = [
    "TraceEvent",
    "WorkloadTrace",
    "ReplayResult",
    "record_workload",
    "replay_workload",
]
