"""Guest (mobile OS) substrate.

Models the pieces of Android/OpenHarmony the SVM framework observes: the
shared-memory HAL of Figure 3, BufferQueue-style producer/consumer chains,
the VSync choreographer, the virtio transport, and the system services
(media service, SurfaceFlinger, camera service) that §2.3 identifies as
the top shared-memory users.
"""

from repro.guest.buffers import BufferQueue, GuestBuffer
from repro.guest.hal import SharedMemoryHal
from repro.guest.transport import VirtioTransport
from repro.guest.vsync import VSyncSource

__all__ = [
    "SharedMemoryHal",
    "BufferQueue",
    "GuestBuffer",
    "VSyncSource",
    "VirtioTransport",
]
