"""The shared-memory HAL: the Figure 3 interface, verbatim.

``SharedMemoryHal`` is the guest-side veneer apps and system services call:
``alloc`` / ``free`` / ``begin_access`` / ``end_access``, handle-based,
with RO/WO/RW usage and a dirty window. It forwards to the emulator's SVM
manager, attributing CPU-side accesses to the ``"cpu"`` virtual device —
the path the §2.3 measurement sees for pure inter-process communication
(the 1% of regions only touched by app processes).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.region import AccessUsage
from repro.emulators.base import Emulator


class SharedMemoryHal:
    """Guest implementation of the mobile shared-memory interface."""

    def __init__(self, emulator: Emulator):
        self._emulator = emulator
        self.api_calls = 0

    def alloc(self, size: int) -> int:
        """Allocate a shared memory region; returns its handle (Figure 3)."""
        self.api_calls += 1
        return self._emulator.svm_alloc(size)

    def free(self, handle: int) -> None:
        """Free a shared memory region."""
        self.api_calls += 1
        self._emulator.svm_free(handle)

    def begin_access(
        self,
        handle: int,
        usage: AccessUsage,
        nbytes: Optional[int] = None,
        caller: str = "cpu",
    ) -> Generator[Any, Any, float]:
        """Process: begin an access; returns the call's blocking latency.

        ``usage`` selects RO/WO/RW; ``nbytes`` narrows the access to a
        dirty window ("only the region specified by size will be
        accessed"); ``caller`` names the virtual device on whose behalf
        the access happens (defaults to the guest CPU).
        """
        self.api_calls += 1
        location = self._emulator.vdev_location(caller)
        latency = yield from self._emulator.manager.begin_access(
            caller, handle, usage, location, nbytes=nbytes
        )
        return latency

    def end_access(self, handle: int, caller: str = "cpu") -> None:
        """End the access to the shared memory."""
        self.api_calls += 1
        self._emulator.manager.end_access(caller, handle)

    def write_cycle(
        self, handle: int, nbytes: Optional[int] = None, caller: str = "cpu"
    ) -> Generator[Any, Any, float]:
        """Process: a full CPU-side write bracket (begin WO + retire + end).

        Convenience for IPC-style usage: the CPU "device" writes directly
        into the region's host-visible mapping, so retirement is immediate.
        """
        latency = yield from self.begin_access(handle, AccessUsage.WRITE, nbytes, caller)
        region = self._emulator.manager.get(handle)
        yield from self._emulator.manager.host_write_retired(
            handle, caller, self._emulator.vdev_location(caller),
            nbytes if nbytes is not None else region.size,
        )
        self.end_access(handle, caller)
        return latency

    def read_cycle(
        self, handle: int, nbytes: Optional[int] = None, caller: str = "cpu"
    ) -> Generator[Any, Any, float]:
        """Process: a full CPU-side read bracket (begin RO + end)."""
        latency = yield from self.begin_access(handle, AccessUsage.READ, nbytes, caller)
        self.end_access(handle, caller)
        return latency
