"""System services: the guest processes that drive data pipelines.

§2.3 finds the top shared-memory users are the media service (28%, codec),
SurfaceFlinger (23%, GPU) and the camera service (19%, camera+ISP). These
classes are their reusable models; app categories in :mod:`repro.apps`
compose them into the Table 1 pipelines.

Each service is one simulation process, so the threading structure matches
the real system: with atomic ordering, a slow stage blocks *its* service
thread; with fences, stages dispatch and the pipeline stays deep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.emulators.base import Emulator
from repro.guest.buffers import BufferQueue, GuestBuffer
from repro.guest.vsync import VSyncSource
from repro.metrics.collectors import FpsCollector, LatencyCollector
from repro.sim import FifoQueue, Simulator, Timeout
from repro.units import UHD_DISPLAY_BUFFER_BYTES, VSYNC_PERIOD_MS


@dataclass
class FrameMeta:
    """Per-frame bookkeeping travelling with a buffer through a pipeline."""

    birth: float  # capture / arrival time (motion-to-photon anchor)
    sequence: int
    deadline: Optional[float] = None  # MediaCodec-style discard deadline
    flow: int = 0  # causal-trace flow id (0 = untraced)


class _Submission:
    """One buffer handed to SurfaceFlinger, with its home queue."""

    __slots__ = ("buffer", "queue", "meta")

    def __init__(self, buffer: GuestBuffer, queue: BufferQueue, meta: FrameMeta):
        self.buffer = buffer
        self.queue = queue
        self.meta = meta


class SurfaceFlinger:
    """The compositor: renders submitted buffers on VSync and presents.

    Per frame it runs two stages on the emulator:

    1. ``render`` on the GPU vdev — reads the submitted buffer, writes the
       framebuffer (this is the cross-device SVM read the prefetch engine
       targets);
    2. ``compose`` + ``present`` on the display vdev — reads the
       framebuffer. On PCs the display is GPU-managed, so for vSoC this
       handoff is the zero-copy special case; for guest-memory emulators
       it costs two more boundary crossings.

    ``compose_dirty_fraction`` scales the framebuffer dirty window (damage
    tracking: partial UI updates vs full-screen video).
    """

    def __init__(
        self,
        sim: Simulator,
        emulator: Emulator,
        vsync: VSyncSource,
        fps: FpsCollector,
        latency: Optional[LatencyCollector] = None,
        display_bytes: int = UHD_DISPLAY_BUFFER_BYTES,
        compose_dirty_fraction: float = 1.0,
        render_extra_bytes: int = 0,
        honor_deadlines: bool = True,
    ):
        self._sim = sim
        self._emulator = emulator
        self._vsync = vsync
        self._fps = fps
        self._latency = latency
        self.display_bytes = display_bytes
        self.compose_dirty_fraction = compose_dirty_fraction
        self.render_extra_bytes = render_extra_bytes
        self.honor_deadlines = honor_deadlines
        self._inbox: FifoQueue = FifoQueue(sim, name="sf.inbox")
        # Double-buffered framebuffers, rotated per frame.
        self._framebuffers = [emulator.svm_alloc(display_bytes) for _ in range(2)]
        self._fb_index = 0
        self.frames_rendered = 0
        self._stopped = False

    def submit(self, buffer: GuestBuffer, queue: BufferQueue, meta: FrameMeta) -> None:
        """Producer side: queue a filled buffer for composition."""
        self._inbox.put(_Submission(buffer, queue, meta))

    def ff_register(self, controller: Any) -> None:
        """Expose compositor state to the fast-forward fixed-point detector.

        ``frames_rendered`` is journaled (it strides by one per frame);
        the inbox depth and the framebuffer flip state are fingerprints —
        a cycle only counts as repeating when both return to the same
        value, which is what makes double-buffer flip-flop runs engage at
        a cycle multiple of two.
        """
        controller.track_counter(self, "frames_rendered")
        inbox = self._inbox
        controller.watch(lambda: (len(inbox), self._fb_index, self._stopped))

    @property
    def backlog(self) -> int:
        return len(self._inbox)

    def stop(self) -> None:
        self._stopped = True

    def run(self) -> Generator[Any, Any, None]:
        """Process: the compositor loop.

        Catch-up semantics: when several submissions are pending at a
        tick, only the newest is composed; the superseded ones are
        released (and counted as deadline misses when their MediaCodec
        deadline has passed — the §5.4 discard behaviour). A lone late
        frame still shows: players prefer late content over black frames.
        """
        while not self._stopped:
            yield self._vsync.wait_next()
            submission = self._inbox.try_get()
            if submission is None:
                continue
            while True:
                newer = self._inbox.try_get()
                if newer is None:
                    break
                deadline = submission.meta.deadline
                late = deadline is not None and self._sim.now > deadline
                reason = "missed-deadline" if self.honor_deadlines and late else "superseded"
                self._fps.note_dropped(reason)
                submission.queue.release(submission.buffer)
                submission = newer
            yield from self._compose_and_present(submission)

    def _compose_and_present(self, submission: _Submission) -> Generator[Any, Any, None]:
        framebuffer = self._framebuffers[self._fb_index]
        self._fb_index = 1 - self._fb_index
        dirty = max(1, int(self.display_bytes * self.compose_dirty_fraction))

        yield from self._emulator.stage(
            "gpu",
            "render",
            self.display_bytes + self.render_extra_bytes,
            reads=[submission.buffer.region_id],
            writes=[framebuffer],
            dirty_bytes=dirty,
            flow=submission.meta.flow,
        )
        present = yield from self._emulator.stage(
            "display", "compose", dirty, reads=[framebuffer],
            flow=submission.meta.flow,
        )
        meta = submission.meta
        done_at = yield present.done
        self.frames_rendered += 1
        self._emulator.obs.tracer.instant(
            "frame.presented", "display", cat="frame", flow=meta.flow,
            sequence=meta.sequence, latency=done_at - meta.birth,
        )
        self._fps.note_presented(done_at)
        if self._latency is not None:
            self._latency.note(done_at - meta.birth)
        submission.queue.release(submission.buffer)


class MediaService:
    """The media service: paced source + decoder front-end of a video pipeline.

    The source delivers encoded frames in real time (the video's native
    frame rate); a bounded jitter queue models the demuxer buffer. When the
    pipeline is backed up (no free buffer / full jitter queue), source
    frames drop — the stutter the §5.3 bar plots measure.
    """

    def __init__(
        self,
        sim: Simulator,
        emulator: Emulator,
        buffers: BufferQueue,
        flinger: SurfaceFlinger,
        fps: FpsCollector,
        frame_bytes: int,
        frame_interval: float = VSYNC_PERIOD_MS,
        jitter_capacity: int = 4,
        deadline_ms: Optional[float] = 3 * VSYNC_PERIOD_MS,
        source_latency: float = 0.0,
        pacing_jitter: float = 0.04,
        rng: Optional["random.Random"] = None,
    ):
        self._sim = sim
        self._emulator = emulator
        self._buffers = buffers
        self._flinger = flinger
        self._fps = fps
        self.frame_bytes = frame_bytes
        self.frame_interval = frame_interval
        self.deadline_ms = deadline_ms
        self.source_latency = source_latency
        # Real sources are not phase-locked to the client's VSync: demuxer
        # scheduling and I/O add milliseconds of jitter. Without it the
        # simulation can resonate with the tick grid in ways no real
        # system does.
        self.pacing_jitter = pacing_jitter
        self._rng = rng if rng is not None else random.Random("media-service")
        self._jitter: FifoQueue = FifoQueue(sim, capacity=jitter_capacity, name="media.jitter")
        self._decoded: FifoQueue = FifoQueue(sim, name="media.decoded")
        self._sequence = 0
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    def ff_register(self, controller: Any) -> None:
        """Journal the frame sequence counter; fingerprint the queue depths."""
        controller.track_counter(self, "_sequence")
        jitter, decoded = self._jitter, self._decoded
        controller.watch(
            lambda: (len(jitter), len(decoded), self._stopped)
        )

    def run_source(self) -> Generator[Any, Any, None]:
        """Process: deliver encoded frames at the native rate (± jitter)."""
        yield Timeout(self._rng.uniform(0.0, self.frame_interval))  # phase
        while not self._stopped:
            jitter = 1.0 + self._rng.uniform(-self.pacing_jitter, self.pacing_jitter)
            yield Timeout(self.frame_interval * jitter)
            meta = FrameMeta(
                birth=self._sim.now - self.source_latency,
                sequence=self._sequence,
                flow=self._emulator.obs.tracer.new_flow(),
            )
            self._sequence += 1
            if not self._jitter.try_put(meta):
                self._fps.note_dropped("source-overrun")

    def run_decoder(self) -> Generator[Any, Any, None]:
        """Process: decode loop — jitter queue → SVM buffer → decoded queue.

        The dispatch is asynchronous under fences; the *callback* loop
        (:meth:`run_callbacks`) forwards each buffer to SurfaceFlinger only
        once its decode has retired on the host — the
        ``onOutputBufferAvailable`` semantics of MediaCodec.
        """
        emulator = self._emulator
        while not self._stopped:
            meta = yield self._jitter.get()
            buffer = yield self._buffers.dequeue_free()
            result = yield from emulator.stage(
                "codec",
                emulator.decode_op(),
                self.frame_bytes,
                writes=[buffer.region_id],
                flow=meta.flow,
            )
            yield self._decoded.put((buffer, meta, result.done))

    def run_callbacks(self) -> Generator[Any, Any, None]:
        """Process: forward decode completions to SurfaceFlinger, in order."""
        while not self._stopped:
            buffer, meta, done = yield self._decoded.get()
            yield done
            if self.deadline_ms is not None:
                meta.deadline = meta.birth + self.deadline_ms
            self._flinger.submit(buffer, self._buffers, meta)


class CameraService:
    """The camera service: capture + ISP conversion front-end (§2.3).

    Per frame: the camera vdev delivers a raw frame into an SVM buffer, the
    ISP converts it into a second buffer (colorspace conversion — in-GPU or
    libswscale depending on the emulator), which goes to SurfaceFlinger.
    Motion-to-photon latency anchors at the sensor time: frame birth =
    delivery time − capture latency.
    """

    def __init__(
        self,
        sim: Simulator,
        emulator: Emulator,
        raw_buffers: BufferQueue,
        out_buffers: BufferQueue,
        flinger: SurfaceFlinger,
        fps: FpsCollector,
        frame_bytes: int,
        extra_cpu_op: Optional[str] = None,
        extra_cpu_bytes: int = 0,
    ):
        self._sim = sim
        self._emulator = emulator
        self._raw = raw_buffers
        self._out = out_buffers
        self._flinger = flinger
        self._fps = fps
        self.frame_bytes = frame_bytes
        self.extra_cpu_op = extra_cpu_op
        self.extra_cpu_bytes = extra_cpu_bytes
        self._pending: FifoQueue = FifoQueue(sim, name="camera.pending")
        self._sequence = 0
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    def ff_register(self, controller: Any) -> None:
        """Camera runs never actually engage (the sensor clock is jittered
        and skewed off any dyadic grid), but registering keeps the detector
        honest if a test pins the sensor to a grid-exact cadence."""
        controller.track_counter(self, "_sequence")
        pending = self._pending
        controller.watch(lambda: (len(pending), self._stopped))

    def run_sensor(self) -> Generator[Any, Any, None]:
        """Process: the sensor ticks at its native rate, never pausing.

        A tick with no free raw buffer drops the frame (camera-overrun) —
        pipelines that cannot keep up lose frames at the source, exactly
        like a saturated real camera HAL. The sensor clock free-runs: it
        is not phase-locked to the display's VSync, so frame arrival
        phases sweep across the tick window like on real hardware.
        """
        rng = random.Random("camera-sensor")
        camera = self._emulator.physical_for("camera")
        # The sensor and display clocks are independent oscillators (think
        # a true-60 Hz sensor against a 59.94 Hz panel): a fixed ~0.4%
        # skew makes the arrival phase sweep the whole VSync window, so
        # tick-wait averages out instead of freezing at one lucky (or
        # unlucky) phase.
        skew = 1.004
        yield Timeout(rng.uniform(0.0, camera.frame_interval))
        while not self._stopped:
            yield Timeout(camera.frame_interval * skew * (1.0 + rng.uniform(-0.003, 0.003)))
            raw = self._raw.try_dequeue_free()
            if raw is None:
                self._fps.note_dropped("camera-overrun")
                continue
            meta = FrameMeta(
                birth=self._sim.now,
                sequence=self._sequence,
                flow=self._emulator.obs.tracer.new_flow(),
            )
            self._sequence += 1
            # The frame's bytes land in host memory capture_latency later.
            self._pending.put((raw, meta, self._sim.now + camera.capture_latency))

    def run_pipeline(self) -> Generator[Any, Any, None]:
        """Process: deliver → ISP convert → (optional CPU work) → submit."""
        emulator = self._emulator
        while not self._stopped:
            raw, meta, ready_at = yield self._pending.get()
            if ready_at > self._sim.now:
                yield Timeout(ready_at - self._sim.now)
            yield from emulator.stage(
                "camera", "deliver", self.frame_bytes, writes=[raw.region_id],
                flow=meta.flow,
            )
            out = yield self._out.dequeue_free()
            convert = yield from emulator.stage(
                "isp",
                emulator.convert_op(),
                self.frame_bytes,
                reads=[raw.region_id],
                writes=[out.region_id],
                flow=meta.flow,
            )
            yield convert.done  # ISP completion callback
            self._raw.release(raw)
            if self.extra_cpu_op is not None:
                yield from emulator.stage(
                    "cpu", self.extra_cpu_op, self.extra_cpu_bytes,
                    reads=[out.region_id], flow=meta.flow,
                )
            self._flinger.submit(out, self._out, meta)
