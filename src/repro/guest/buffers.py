"""BufferQueue: the producer/consumer buffer chains of mobile graphics.

A :class:`BufferQueue` owns N SVM regions of equal size and rotates them
between a *free* pool (producer side) and a *filled* queue (consumer
side) — the structure behind ``Surface``/``BufferQueue`` in Android and
the reason one data flow maps onto several SVM regions (§3.2). Buffering
is also the second source of slack intervals (§2.3): latency-insensitive
pipelines run several buffers deep.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.emulators.base import Emulator
from repro.errors import ConfigurationError
from repro.sim import FifoQueue, Simulator


class GuestBuffer:
    """One buffer slot: an SVM region plus frame bookkeeping."""

    __slots__ = ("region_id", "index", "pts", "payload")

    def __init__(self, region_id: int, index: int):
        self.region_id = region_id
        self.index = index
        self.pts: Optional[float] = None
        self.payload: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GuestBuffer #{self.index} region={self.region_id} pts={self.pts}>"


class BufferQueue:
    """N-deep rotation of SVM-backed buffers between producer and consumer."""

    def __init__(self, sim: Simulator, emulator: Emulator, count: int, size: int,
                 name: str = "bufferqueue"):
        if count <= 0:
            raise ConfigurationError("buffer count must be positive")
        if size <= 0:
            raise ConfigurationError("buffer size must be positive")
        self._sim = sim
        self._emulator = emulator
        self.name = name
        self.count = count
        self.size = size
        self._buffers: List[GuestBuffer] = []
        self._free: FifoQueue = FifoQueue(sim, name=f"{name}.free")
        self._filled: FifoQueue = FifoQueue(sim, name=f"{name}.filled")
        for index in range(count):
            buffer = GuestBuffer(emulator.svm_alloc(size), index)
            self._buffers.append(buffer)
            self._free.put(buffer)

    # -- producer side --------------------------------------------------------
    def dequeue_free(self):
        """Waitable: obtain an empty buffer to fill (blocks when none free)."""
        return self._free.get()

    def try_dequeue_free(self) -> Optional[GuestBuffer]:
        """Non-blocking dequeue; ``None`` when every buffer is in flight."""
        return self._free.try_get()

    def try_acquire_filled(self) -> Optional[GuestBuffer]:
        """Non-blocking acquire; ``None`` when nothing is queued."""
        return self._filled.try_get()

    def queue_filled(self, buffer: GuestBuffer, pts: Optional[float] = None):
        """Producer hands a filled buffer to the consumer side."""
        buffer.pts = pts
        return self._filled.put(buffer)

    # -- consumer side ------------------------------------------------------
    def acquire_filled(self):
        """Waitable: obtain the oldest filled buffer (blocks when empty)."""
        return self._filled.get()

    def release(self, buffer: GuestBuffer) -> None:
        """Consumer returns a buffer to the free pool."""
        buffer.pts = None
        buffer.payload = None
        self._free.put(buffer)

    @property
    def filled_depth(self) -> int:
        return len(self._filled)

    @property
    def free_depth(self) -> int:
        return len(self._free)

    def ff_register(self, controller) -> None:
        """Fingerprint the rotation state for the fast-forward detector.

        Buffer *identities* matter, not just depths: with N buffers
        rotating strictly, the pattern of which region is where repeats
        with period N frames — including indices makes the detector find
        that multiple instead of engaging on a false one-frame cycle.
        """
        free, filled = self._free, self._filled
        controller.watch(lambda: (
            tuple(b.index for b in free._items),
            tuple(b.index for b in filled._items),
        ))

    def destroy(self) -> None:
        """Free every SVM region owned by the queue."""
        for buffer in self._buffers:
            self._emulator.svm_free(buffer.region_id)
        self._buffers.clear()
