"""Virtio-style guest↔host transport cost model.

Host-guest data transport in vSoC is based on virtio (§4): guest drivers
place commands in shared rings and *kick* the host with a write that causes
a VM exit. Batching several commands per kick amortizes the exit cost —
the reason §3.4's command queues accept asynchronous commands "in batch to
reduce transport overhead across the virtualization boundary".

:class:`VirtioTransport` turns (batch size → dispatch delay) into one
place, and counts kicks/commands for the experiments.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigurationError
from repro.sim import Simulator, Timeout


class VirtioTransport:
    """Cost model for command dispatch across the virtualization boundary."""

    def __init__(
        self,
        sim: Simulator,
        kick_cost: float = 0.02,
        per_command_cost: float = 0.005,
    ):
        if kick_cost < 0 or per_command_cost < 0:
            raise ConfigurationError("transport costs must be >= 0")
        self._sim = sim
        self.kick_cost = kick_cost
        self.per_command_cost = per_command_cost
        self.kicks = 0
        self.commands = 0

    def dispatch_cost(self, batch_size: int) -> float:
        """Driver-side delay for one kick carrying ``batch_size`` commands."""
        if batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        return self.kick_cost + batch_size * self.per_command_cost

    def kick(self, batch_size: int = 1) -> Generator[Any, Any, float]:
        """Process: pay the dispatch cost for a batch; returns the delay."""
        cost = self.dispatch_cost(batch_size)
        self.kicks += 1
        self.commands += batch_size
        if cost > 0:
            yield Timeout(cost)
        return cost

    @property
    def amortized_cost(self) -> float:
        """Average per-command transport cost so far."""
        if self.commands == 0:
            return 0.0
        total = self.kicks * self.kick_cost + self.commands * self.per_command_cost
        return total / self.commands
