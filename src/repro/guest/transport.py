"""Virtio-style guest↔host transport cost model.

Host-guest data transport in vSoC is based on virtio (§4): guest drivers
place commands in shared rings and *kick* the host with a write that causes
a VM exit. Batching several commands per kick amortizes the exit cost —
the reason §3.4's command queues accept asynchronous commands "in batch to
reduce transport overhead across the virtualization boundary".

:class:`VirtioTransport` turns (batch size → dispatch delay) into one
place, and counts kicks/commands for the experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from repro.errors import ConfigurationError, TransportDropError
from repro.obs.span import NO_FLOW
from repro.sim import RetryPolicy, Simulator, Timeout, retrying

#: Optional fault hook: called once per kick with ``(transport, batch_size)``.
#: Return ``None`` for a clean kick, ``("drop",)`` to lose the kick after its
#: cost is paid (raises :class:`TransportDropError`), or ``("delay", ms)`` to
#: stretch the dispatch by ``ms`` — a stalled VM exit.
TransportFaultHook = Callable[["VirtioTransport", int], Optional[Tuple[Any, ...]]]

#: Dropped kicks clear when the fault window closes, so the reliable path
#: retries forever with a capped backoff rather than giving up mid-window.
KICK_RETRY_POLICY = RetryPolicy(
    max_attempts=None, base_delay_ms=0.02, multiplier=2.0, max_delay_ms=1.0
)


class VirtioTransport:
    """Cost model for command dispatch across the virtualization boundary."""

    def __init__(
        self,
        sim: Simulator,
        kick_cost: float = 0.02,
        per_command_cost: float = 0.005,
        obs=None,
    ):
        if kick_cost < 0 or per_command_cost < 0:
            raise ConfigurationError("transport costs must be >= 0")
        if obs is None:
            from repro.obs import DISABLED  # local: keeps import cost off hot path

            obs = DISABLED
        self._obs = obs
        self._sim = sim
        self.kick_cost = kick_cost
        self.per_command_cost = per_command_cost
        self.kicks = 0
        self.commands = 0
        self.kick_attempts = 0
        self.kicks_dropped = 0
        self.kicks_delayed = 0
        self.delay_total_ms = 0.0
        self.fault_hook: Optional[TransportFaultHook] = None

    def dispatch_cost(self, batch_size: int) -> float:
        """Driver-side delay for one kick carrying ``batch_size`` commands."""
        if batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        return self.kick_cost + batch_size * self.per_command_cost

    def kick(self, batch_size: int = 1, flow: int = NO_FLOW) -> Generator[Any, Any, float]:
        """Process: pay the dispatch cost for a batch; returns the delay.

        With a fault hook installed, a kick may be delayed (dispatch takes
        longer) or dropped — the cost is paid, then :class:`TransportDropError`
        is raised, because a lost doorbell burns the VM exit regardless.
        ``kicks``/``commands`` count only *successful* kicks so
        :attr:`amortized_cost` keeps its meaning under fault injection.
        ``flow`` stamps the kick's trace span with the frame it carries.
        """
        tracer = self._obs.tracer
        span = tracer.begin("transport.kick", "transport", cat="transport",
                            flow=flow, batch=batch_size)
        cost = self.dispatch_cost(batch_size)
        self.kick_attempts += 1
        verdict = self.fault_hook(self, batch_size) if self.fault_hook is not None else None
        if verdict is not None and verdict[0] == "delay":
            extra = float(verdict[1])
            self.kicks_delayed += 1
            self.delay_total_ms += extra
            cost += extra
        if cost > 0:
            yield Timeout(cost)
        if verdict is not None and verdict[0] == "drop":
            self.kicks_dropped += 1
            tracer.end(span, dropped=True)
            raise TransportDropError(
                f"kick of {batch_size} command(s) lost across the boundary"
            )
        self.kicks += 1
        self.commands += batch_size
        tracer.end(span)
        registry = self._obs.registry
        registry.counter("transport.kicks").inc()
        registry.counter("transport.commands").inc(batch_size)
        return cost

    def kick_reliable(
        self, batch_size: int = 1, flow: int = NO_FLOW
    ) -> Generator[Any, Any, float]:
        """Process: :meth:`kick`, retried with backoff until it lands."""
        return (
            yield from retrying(
                self._sim,
                lambda: self.kick(batch_size, flow=flow),
                KICK_RETRY_POLICY,
                retry_on=(TransportDropError,),
                name="transport.kick",
            )
        )

    @property
    def amortized_cost(self) -> float:
        """Average per-command transport cost so far."""
        if self.commands == 0:
            return 0.0
        total = self.kicks * self.kick_cost + self.commands * self.per_command_cost
        return total / self.commands

    # -- checkpointing -------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Deterministic, JSON-able image of the transport counters."""
        return {
            "kicks": self.kicks,
            "commands": self.commands,
            "kick_attempts": self.kick_attempts,
            "kicks_dropped": self.kicks_dropped,
            "kicks_delayed": self.kicks_delayed,
            "delay_total_ms": self.delay_total_ms,
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate counters captured by :meth:`snapshot_state`."""
        self.kicks = state["kicks"]
        self.commands = state["commands"]
        self.kick_attempts = state["kick_attempts"]
        self.kicks_dropped = state["kicks_dropped"]
        self.kicks_delayed = state["kicks_delayed"]
        self.delay_total_ms = state["delay_total_ms"]
