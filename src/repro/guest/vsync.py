"""The VSync choreographer (§2.3's access-synchronization mechanism).

Mobile systems pace display work on VSync ticks; it is one of the two
OS-level mechanisms (with buffering) that create the slack intervals the
prefetch engine exploits. :class:`VSyncSource` fires a tick every period
and hands out per-tick waitables.
"""

from __future__ import annotations



from repro.errors import ConfigurationError
from repro.sim import SimEvent, Simulator
from repro.sim.primitives import Waitable
from repro.units import VSYNC_PERIOD_MS


class VSyncSource:
    """A 60 Hz (by default) tick generator.

    ``wait_next()`` returns a waitable for the *next* tick — a process that
    waits immediately after a tick fires sleeps one full period, just like
    a real choreographer callback.
    """

    def __init__(self, sim: Simulator, period: float = VSYNC_PERIOD_MS, offset: float = 0.0):
        if period <= 0:
            raise ConfigurationError("vsync period must be positive")
        self._sim = sim
        self.period = period
        self.ticks = 0
        self._next_event = SimEvent(sim, name="vsync")
        sim.schedule(offset + period, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        event, self._next_event = self._next_event, SimEvent(self._sim, name="vsync")
        event.fire(self._sim.now)
        self._sim.schedule(self.period, self._tick)

    def ff_register(self, controller) -> None:
        """Journal the tick counter; fingerprint the waiter population."""
        controller.track_counter(self, "ticks")
        controller.watch(lambda: len(self._next_event._callbacks))

    def wait_next(self) -> Waitable:
        """Waitable firing at the next tick, with the tick time as value."""
        return self._next_event

    def next_tick_time(self) -> float:
        """When the next tick will fire (for deadline math)."""
        elapsed = self._sim.now
        periods = int(elapsed / self.period) + 1
        return periods * self.period
