"""Thermal throttling model.

§5.3 of the paper observes that on the middle-end laptop, video apps on the
Google Android Emulator start near 30 FPS and collapse to ~10 FPS within a
minute due to CPU thermal throttling of its software video decoder. We model
this with a leaky-bucket heat account: busy time adds heat, idle time drains
it, and crossing a threshold multiplies device speed by a throttle factor
(with hysteresis, so the device does not oscillate every event).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sim import Simulator


class ThermalModel:
    """Leaky-bucket heat accounting with hysteresis throttling.

    Parameters
    ----------
    heat_per_busy_ms:
        Heat units accumulated per ms of full-speed busy work.
    cool_per_ms:
        Heat units drained per ms of wall-clock (always active).
    throttle_at:
        Heat level at which the device enters the throttled state.
    recover_at:
        Heat level at which it leaves the throttled state (< throttle_at).
    throttled_factor:
        Speed multiplier while throttled (e.g. 0.35 → ops take ~3x longer).
    """

    def __init__(
        self,
        sim: Simulator,
        heat_per_busy_ms: float = 1.0,
        cool_per_ms: float = 0.35,
        throttle_at: float = 20_000.0,
        recover_at: float = 12_000.0,
        throttled_factor: float = 0.35,
    ):
        for label, value in (
            ("heat_per_busy_ms", heat_per_busy_ms),
            ("cool_per_ms", cool_per_ms),
            ("throttle_at", throttle_at),
            ("recover_at", recover_at),
            ("throttled_factor", throttled_factor),
        ):
            if not math.isfinite(value) or value < 0:
                raise ConfigurationError(
                    f"thermal parameter {label} must be finite and >= 0, got {value}"
                )
        if not 0 < throttled_factor <= 1.0:
            raise ConfigurationError(
                f"throttled_factor must be in (0, 1], got {throttled_factor}"
            )
        if recover_at >= throttle_at:
            raise ConfigurationError("recover_at must be below throttle_at")
        if cool_per_ms >= heat_per_busy_ms:
            raise ConfigurationError(
                "cooling must be slower than heating or throttling never occurs"
            )
        self._sim = sim
        self.heat_per_busy_ms = heat_per_busy_ms
        self.cool_per_ms = cool_per_ms
        self.throttle_at = throttle_at
        self.recover_at = recover_at
        self.throttled_factor = throttled_factor
        self._heat = 0.0
        self._last_update = 0.0
        self._throttled = False
        self.throttle_events = 0

    def _settle(self) -> None:
        """Apply cooling for the wall-clock time since the last update."""
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._heat = max(0.0, self._heat - elapsed * self.cool_per_ms)
            self._last_update = now
        self._refresh_state()

    def _refresh_state(self) -> None:
        if self._throttled:
            if self._heat <= self.recover_at:
                self._throttled = False
        elif self._heat >= self.throttle_at:
            self._throttled = True
            self.throttle_events += 1

    # -- public API ---------------------------------------------------------
    def note_busy(self, busy_ms: float) -> None:
        """Record ``busy_ms`` of full-speed-equivalent device work."""
        if not math.isfinite(busy_ms) or busy_ms < 0:
            raise ConfigurationError(f"busy time must be finite and >= 0, got {busy_ms}")
        self._settle()
        self._heat += busy_ms * self.heat_per_busy_ms
        self._refresh_state()

    def reset(self) -> None:
        """Drop all accumulated heat — models a device reset / power cycle."""
        self._heat = 0.0
        self._last_update = self._sim.now
        self._throttled = False

    def speed_factor(self) -> float:
        """Current speed multiplier: 1.0 normally, throttled_factor when hot."""
        self._settle()
        return self.throttled_factor if self._throttled else 1.0

    @property
    def heat(self) -> float:
        """Current heat level (after settling cooling)."""
        self._settle()
        return self._heat

    @property
    def throttled(self) -> bool:
        self._settle()
        return self._throttled
