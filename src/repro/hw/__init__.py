"""Host hardware substrate.

Models the PC/server side of the architecture gap described in §2 of the
vSoC paper: modular devices with dedicated local memory, connected to main
memory by buses. The two machines from §5.1 (high-end desktop, middle-end
laptop) are available as presets.
"""

from repro.hw.bus import Bus, DmaEngine
from repro.hw.device import (
    Camera,
    Cpu,
    DeviceKind,
    Display,
    Gpu,
    HwCodec,
    IspEngine,
    Nic,
    PhysicalDevice,
)
from repro.hw.machine import (
    HIGH_END_DESKTOP,
    MIDDLE_END_LAPTOP,
    HostMachine,
    MachineSpec,
    build_machine,
)
from repro.hw.memory import MemoryPool, MemoryRegion
from repro.hw.thermal import ThermalModel

__all__ = [
    "MemoryPool",
    "MemoryRegion",
    "Bus",
    "DmaEngine",
    "DeviceKind",
    "PhysicalDevice",
    "Cpu",
    "Gpu",
    "HwCodec",
    "IspEngine",
    "Camera",
    "Display",
    "Nic",
    "ThermalModel",
    "HostMachine",
    "MachineSpec",
    "HIGH_END_DESKTOP",
    "MIDDLE_END_LAPTOP",
    "build_machine",
]
