"""Buses and DMA: the links over which coherence maintenance copies move.

A :class:`Bus` models one interconnect (PCIe link to the GPU, the memory
controller used by CPU memcpy, the virtio path across the virtualization
boundary). Transfers are serialized FIFO — the dominant effect the paper
measures is transfer *time* (size / bandwidth) plus fixed latency, with
contention appearing as queueing delay.

A :class:`DmaEngine` runs transfers on behalf of a device without occupying
the (simulated) CPU, matching §4: "the prefetch engine uses the DMA
capabilities of supported devices to help reduce CPU load."
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Optional

from repro.errors import HardwareError, TransientCopyError
from repro.sim import Mutex, Simulator, Timeout
from repro.sim.kernel import Process
from repro.units import to_gb_per_s

#: Optional fault hook: called once per transfer (inside the bus lock) with
#: ``(bus, nbytes)``. Return ``None`` for a clean transfer, or a fraction in
#: [0, 1] — the transfer burns that fraction of its duration on the wire and
#: then fails with :class:`TransientCopyError`.
FaultHook = Callable[["Bus", int], Optional[float]]


class Bus:
    """One interconnect with fixed latency and finite bandwidth.

    Parameters
    ----------
    bandwidth:
        Bytes per millisecond (use :func:`repro.units.gb_per_s`).
    latency:
        Fixed per-transfer setup time in ms (arbitration, doorbells).

    The bus records total bytes moved and busy time, from which
    :meth:`observed_bandwidth` derives the figure the prefetch engine's
    physical hypergraph layer tracks (§3.2). ``set_load`` injects external
    contention: a load of 0.5 halves the bandwidth available to transfers,
    which is how experiments exercise the paper's "suspend prefetch below
    50% of maximum observed bandwidth" policy.
    """

    def __init__(self, sim: Simulator, name: str, bandwidth: float, latency: float = 0.0):
        if not math.isfinite(bandwidth) or bandwidth <= 0:
            raise HardwareError(
                f"bus {name!r} bandwidth must be finite and positive, got {bandwidth}"
            )
        if not math.isfinite(latency) or latency < 0:
            raise HardwareError(
                f"bus {name!r} latency must be finite and >= 0, got {latency}"
            )
        self._sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self._load = 0.0
        self._lock = Mutex(sim, name=f"bus:{name}")
        self.bytes_moved = 0
        self.busy_time = 0.0
        self.transfer_count = 0
        self.transfer_failures = 0
        self.fault_hook: Optional[FaultHook] = None
        self._registry = None  # optional MetricsRegistry (attach_metrics)

    # -- observability -------------------------------------------------------
    def attach_metrics(self, registry) -> None:
        """Report live per-link instruments into a metrics registry.

        Per completed transfer the bus updates ``bus.bytes_moved`` and
        ``bus.transfers`` counters plus a ``bus.utilization`` gauge
        (busy time / elapsed time, labelled by link name). Attaching a
        registry never alters transfer timing.
        """
        self._registry = registry

    def _report_metrics(self) -> None:
        registry = self._registry
        if registry is None or not registry.enabled:
            return
        registry.counter("bus.bytes_moved", link=self.name).value = float(self.bytes_moved)
        registry.counter("bus.transfers", link=self.name).value = float(self.transfer_count)
        now = self._sim.now
        utilization = self.busy_time / now if now > 0 else 0.0
        registry.gauge("bus.utilization", link=self.name).set(utilization, time=now)

    # -- contention injection ------------------------------------------------
    def set_load(self, load: float) -> None:
        """Set external contention in [0, 1); available bw = bw * (1-load)."""
        if not math.isfinite(load) or not 0.0 <= load < 1.0:
            raise HardwareError(
                f"bus {self.name!r} load must be finite and in [0, 1), got {load}"
            )
        self._load = load

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth available to new transfers, after external load."""
        return self.bandwidth * (1.0 - self._load)

    # -- transfers --------------------------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Time one transfer would take right now (no queueing)."""
        if nbytes < 0:
            raise HardwareError("transfer size must be >= 0")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.effective_bandwidth

    def transfer(self, nbytes: int) -> Generator[Any, Any, float]:
        """Process: move ``nbytes`` over the bus; returns the elapsed time.

        Serialized FIFO with other transfers on the same bus, so concurrent
        coherence maintenance and prefetch traffic queue behind each other
        exactly as on a real link.
        """
        start = self._sim.now
        yield self._lock.acquire()
        try:
            duration = self.transfer_time(nbytes)
            fraction = self.fault_hook(self, nbytes) if self.fault_hook is not None else None
            if fraction is not None:
                # The wire is held for part of the transfer before the fault
                # surfaces, so failed copies still contend like real ones.
                wasted = duration * min(max(fraction, 0.0), 1.0)
                if wasted > 0:
                    yield Timeout(wasted)
                self.busy_time += wasted
                self.transfer_failures += 1
                raise TransientCopyError(
                    f"transfer of {nbytes} bytes on bus {self.name!r} failed "
                    f"after {wasted:.3f} ms"
                )
            if duration > 0:
                yield Timeout(duration)
            self.bytes_moved += nbytes
            self.busy_time += duration
            self.transfer_count += 1
            if self._registry is not None:
                self._report_metrics()
        finally:
            self._lock.release()
        return self._sim.now - start

    # -- statistics ---------------------------------------------------------
    def observed_bandwidth(self) -> float:
        """Average achieved bytes/ms over all completed transfers."""
        if self.busy_time <= 0:
            return self.effective_bandwidth
        return self.bytes_moved / self.busy_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Bus {self.name!r} {to_gb_per_s(self.bandwidth):.2f} GB/s "
            f"lat={self.latency:.3f}ms load={self._load:.2f}>"
        )


class DmaEngine:
    """Asynchronous transfer launcher for a device's bus.

    ``start(nbytes)`` spawns the transfer as its own process and returns the
    :class:`~repro.sim.kernel.Process`, which callers may join (``yield``)
    or leave running in the background — the two halves of the paper's
    synchronous-compensation + asynchronous-remainder prefetch (§3.3).
    """

    def __init__(self, sim: Simulator, bus: Bus, name: str = "dma"):
        self._sim = sim
        self.bus = bus
        self.name = name
        self.transfers_started = 0

    def start(self, nbytes: int, label: Optional[str] = None) -> Process:
        """Begin an async transfer; returns its process handle."""
        self.transfers_started += 1
        name = label or f"{self.name}.xfer{self.transfers_started}"
        return self._sim.spawn(self.bus.transfer(nbytes), name=name)
