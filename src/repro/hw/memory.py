"""Memory pools and regions: byte accounting for host and device memory.

The simulator never stores actual payload bytes — what matters to the paper's
results is *where copies happen and how long they take*. A
:class:`MemoryPool` therefore tracks allocation sizes (for the §5.2 memory
overhead numbers and for catching leaks in tests), and a
:class:`MemoryRegion` is a handle naming an allocation inside a pool.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.errors import HardwareError


class MemoryRegion:
    """A live allocation inside a :class:`MemoryPool`."""

    __slots__ = ("pool", "region_id", "nbytes", "tag", "freed")

    def __init__(self, pool: "MemoryPool", region_id: int, nbytes: int, tag: str):
        self.pool = pool
        self.region_id = region_id
        self.nbytes = nbytes
        self.tag = tag
        self.freed = False

    def free(self) -> None:
        """Release the allocation back to its pool. Idempotent errors raise."""
        self.pool.free(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self.freed else "live"
        return f"<MemoryRegion #{self.region_id} {self.nbytes}B tag={self.tag!r} {state}>"


class MemoryPool:
    """A fixed-capacity byte pool (host RAM, GPU VRAM, guest RAM, ...).

    Tracks in-use and peak bytes. Allocation beyond capacity raises —
    emulator models size their working sets to fit, and the tests use this
    to prove the SVM framework's bounded memory overhead (§5.2: ≤3.1 MiB).
    """

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise HardwareError(f"pool {name!r} capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self.peak = 0
        self._ids = itertools.count(1)
        self._live: Dict[int, MemoryRegion] = {}

    def allocate(self, nbytes: int, tag: str = "") -> MemoryRegion:
        """Allocate ``nbytes``; raises :class:`HardwareError` on exhaustion."""
        if nbytes <= 0:
            raise HardwareError(f"allocation size must be positive, got {nbytes}")
        if self.in_use + nbytes > self.capacity:
            raise HardwareError(
                f"pool {self.name!r} exhausted: {self.in_use}+{nbytes} > {self.capacity}"
            )
        region = MemoryRegion(self, next(self._ids), nbytes, tag)
        self._live[region.region_id] = region
        self.in_use += nbytes
        self.peak = max(self.peak, self.in_use)
        return region

    def free(self, region: MemoryRegion) -> None:
        """Release a region allocated from this pool."""
        if region.pool is not self:
            raise HardwareError(
                f"region #{region.region_id} belongs to pool {region.pool.name!r}, "
                f"not {self.name!r}"
            )
        if region.freed:
            raise HardwareError(f"double free of region #{region.region_id}")
        region.freed = True
        del self._live[region.region_id]
        self.in_use -= region.nbytes

    @property
    def live_regions(self) -> int:
        """Number of outstanding allocations."""
        return len(self._live)

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.in_use

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryPool {self.name!r} {self.in_use}/{self.capacity}B peak={self.peak}>"
