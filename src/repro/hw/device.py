"""Physical device models.

These are the PC/server devices of §2.2: modular, connected to main memory
via buses, many with dedicated local memory. A device executes named
operations ("decode", "render", "convert", ...) whose durations come from a
per-device cost table: ``time = fixed + nbytes / bandwidth``, optionally
scaled by a :class:`~repro.hw.thermal.ThermalModel`.

Note the mapping the paper emphasizes (§3.2): virtual devices do **not**
correspond one-to-one to physical devices. On a PC, the display is managed
by the GPU, hardware video decode (NVDEC) is an engine *on* the GPU, and ISP
colorspace conversion runs either in-GPU (YUVConverter) or on the CPU
(libswscale). The machine presets therefore expose only CPU, GPU, camera and
NIC as physical devices, while :class:`HwCodec` and :class:`IspEngine`
remain available for custom machines with discrete engines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.errors import HardwareError
from repro.hw.bus import Bus
from repro.hw.memory import MemoryPool
from repro.hw.thermal import ThermalModel
from repro.sim import Mutex, Simulator, Timeout


class DeviceKind(enum.Enum):
    """Physical device categories appearing in the physical hypergraph layer."""

    CPU = "cpu"
    GPU = "gpu"
    CODEC = "codec"
    ISP = "isp"
    CAMERA = "camera"
    DISPLAY = "display"
    NIC = "nic"


@dataclass(frozen=True)
class OpCost:
    """Cost model for one operation: ``fixed + nbytes / bandwidth``.

    ``bandwidth`` is bytes/ms; ``None`` means the op is size-independent.
    """

    fixed: float = 0.0
    bandwidth: Optional[float] = None

    def time(self, nbytes: int = 0) -> float:
        total = self.fixed
        if self.bandwidth is not None and nbytes > 0:
            total += nbytes / self.bandwidth
        return total


class PhysicalDevice:
    """One host device: an op executor with optional local memory and link.

    Operations on a device are serialized (one engine), which is how
    head-of-line effects emerge in the ordering experiments. ``local_memory``
    being ``None`` means the device operates directly on host main memory
    (software devices, CPU) — the copy-path planner in
    :mod:`repro.core.coherence` uses this to decide whether a bus transfer
    is needed at all.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        kind: DeviceKind,
        local_memory: Optional[MemoryPool] = None,
        link: Optional[Bus] = None,
        op_costs: Optional[Dict[str, OpCost]] = None,
        thermal: Optional[ThermalModel] = None,
    ):
        self._sim = sim
        self.name = name
        self.kind = kind
        self.local_memory = local_memory
        self.link = link
        self.op_costs = dict(op_costs or {})
        self.thermal = thermal
        self._exec_lock = Mutex(sim, name=f"dev:{name}")
        self.busy_time = 0.0
        self.ops_executed = 0
        self.stalls_injected = 0
        self.resets = 0

    # -- cost queries ------------------------------------------------------
    def supports(self, op: str) -> bool:
        return op in self.op_costs

    def op_time(self, op: str, nbytes: int = 0, scale: float = 1.0) -> float:
        """Duration ``op`` would take now, including thermal slowdown.

        ``scale`` multiplies the base cost — emulator models use it to
        express per-implementation inefficiency (e.g. a paravirtual GPU
        stack that renders 2x slower than native).
        """
        try:
            cost = self.op_costs[op]
        except KeyError:
            raise HardwareError(f"device {self.name!r} does not support op {op!r}") from None
        base = cost.time(nbytes) * scale
        if self.thermal is not None:
            base /= self.thermal.speed_factor()
        return base

    # -- execution ----------------------------------------------------------
    def run_op(self, op: str, nbytes: int = 0, scale: float = 1.0) -> Generator[Any, Any, float]:
        """Process: execute ``op``, serialized with this device's other ops.

        Returns the execution time (excluding queueing). Thermal heat is
        charged in full-speed-equivalent ms so a throttled device keeps
        itself hot while loaded.
        """
        duration = self.op_time(op, nbytes, scale)
        yield self._exec_lock.acquire()
        try:
            if duration > 0:
                yield Timeout(duration)
            self.busy_time += duration
            self.ops_executed += 1
            if self.thermal is not None:
                speed = self.thermal.speed_factor()
                self.thermal.note_busy(duration * speed)
        finally:
            self._exec_lock.release()
        return duration

    # -- fault injection ----------------------------------------------------
    def inject_stall(self, duration_ms: float) -> None:
        """Freeze the device: hold its engine lock for ``duration_ms``.

        Queued and newly submitted ops wait behind the stall exactly like
        they would behind a wedged firmware command — no exception surfaces,
        work just stops flowing until the stall ends.
        """
        if duration_ms <= 0:
            raise HardwareError(f"stall duration must be positive, got {duration_ms}")
        self.stalls_injected += 1

        def _stall() -> Generator[Any, Any, None]:
            yield self._exec_lock.acquire()
            try:
                yield Timeout(duration_ms)
                self.busy_time += duration_ms
            finally:
                self._exec_lock.release()

        self._sim.spawn(_stall(), name=f"{self.name}.stall{self.stalls_injected}")

    def inject_reset(self, downtime_ms: float) -> None:
        """Reset the device: a stall plus clearing any thermal throttle state."""
        if downtime_ms <= 0:
            raise HardwareError(f"reset downtime must be positive, got {downtime_ms}")
        self.resets += 1
        if self.thermal is not None:
            self.thermal.reset()

        def _reset() -> Generator[Any, Any, None]:
            yield self._exec_lock.acquire()
            try:
                yield Timeout(downtime_ms)
            finally:
                self._exec_lock.release()

        self._sim.spawn(_reset(), name=f"{self.name}.reset{self.resets}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} kind={self.kind.value}>"


class Cpu(PhysicalDevice):
    """Host CPU: memcpy engine, software decode/encode/scale fallbacks.

    ``sw_decode`` bandwidth is in *output* bytes/ms: decoding one 15.8 MiB
    UHD frame at 1.4 GB/s takes ~11.3 ms — tight against the 16.7 ms frame
    budget, which is why software decode collapses on the throttled laptop.
    """

    def __init__(
        self,
        sim: Simulator,
        cores: int,
        memcpy_bandwidth: float,
        sw_decode_bandwidth: float,
        sw_encode_bandwidth: float,
        sw_convert_bandwidth: float,
        thermal: Optional[ThermalModel] = None,
        name: str = "cpu",
    ):
        if cores <= 0:
            raise HardwareError("cpu must have at least one core")
        super().__init__(
            sim,
            name,
            DeviceKind.CPU,
            local_memory=None,  # the CPU *is* host memory's owner
            link=None,
            op_costs={
                "memcpy": OpCost(fixed=0.005, bandwidth=memcpy_bandwidth),
                "sw_decode": OpCost(fixed=0.4, bandwidth=sw_decode_bandwidth),
                "sw_encode": OpCost(fixed=0.5, bandwidth=sw_encode_bandwidth),
                "sw_convert": OpCost(fixed=0.1, bandwidth=sw_convert_bandwidth),
                "track": OpCost(fixed=2.2),  # AR pose tracking per frame
            },
            thermal=thermal,
        )
        self.cores = cores
        self.memcpy_bandwidth = memcpy_bandwidth


class Gpu(PhysicalDevice):
    """Discrete GPU with device memory, PCIe link, and on-die engines.

    Ops cover the roles virtual devices map onto it (§3.2): 3D render,
    display scan-out/compose, hardware video decode/encode (NVDEC/NVENC),
    and in-GPU YUV conversion (the ISP path).
    """

    def __init__(
        self,
        sim: Simulator,
        vram: MemoryPool,
        pcie: Bus,
        render_fixed: float,
        render_bandwidth: float,
        hw_decode_fixed: float,
        hw_decode_bandwidth: float,
        hw_encode_fixed: float,
        hw_encode_bandwidth: float,
        convert_bandwidth: float,
        name: str = "gpu",
    ):
        super().__init__(
            sim,
            name,
            DeviceKind.GPU,
            local_memory=vram,
            link=pcie,
            op_costs={
                "render": OpCost(fixed=render_fixed, bandwidth=render_bandwidth),
                "compose": OpCost(fixed=0.15, bandwidth=render_bandwidth * 4),
                "present": OpCost(fixed=0.05),
                "hw_decode": OpCost(fixed=hw_decode_fixed, bandwidth=hw_decode_bandwidth),
                "hw_encode": OpCost(fixed=hw_encode_fixed, bandwidth=hw_encode_bandwidth),
                "convert": OpCost(fixed=0.05, bandwidth=convert_bandwidth),
                "local_copy": OpCost(fixed=0.01, bandwidth=render_bandwidth * 8),
            },
        )


class HwCodec(PhysicalDevice):
    """A discrete hardware codec engine (for custom machine topologies)."""

    def __init__(
        self,
        sim: Simulator,
        link: Bus,
        decode_fixed: float,
        decode_bandwidth: float,
        encode_fixed: float,
        encode_bandwidth: float,
        local_memory: Optional[MemoryPool] = None,
        name: str = "hwcodec",
    ):
        super().__init__(
            sim,
            name,
            DeviceKind.CODEC,
            local_memory=local_memory,
            link=link,
            op_costs={
                "hw_decode": OpCost(fixed=decode_fixed, bandwidth=decode_bandwidth),
                "hw_encode": OpCost(fixed=encode_fixed, bandwidth=encode_bandwidth),
            },
        )


class IspEngine(PhysicalDevice):
    """A discrete image-signal-processor engine (for custom topologies)."""

    def __init__(
        self,
        sim: Simulator,
        link: Bus,
        convert_bandwidth: float,
        local_memory: Optional[MemoryPool] = None,
        name: str = "isp",
    ):
        super().__init__(
            sim,
            name,
            DeviceKind.ISP,
            local_memory=local_memory,
            link=link,
            op_costs={"convert": OpCost(fixed=0.05, bandwidth=convert_bandwidth)},
        )


class Camera(PhysicalDevice):
    """Host camera (USB or integrated).

    ``capture_latency`` is the sensor+transport delay between the photons
    arriving and the frame being available in host memory — the component
    that makes the laptop's integrated camera ~10 ms faster end-to-end than
    the desktop's USB camera (§5.3).
    """

    def __init__(
        self,
        sim: Simulator,
        capture_latency: float,
        frame_interval: float,
        name: str = "camera",
    ):
        if frame_interval <= 0:
            raise HardwareError("camera frame interval must be positive")
        super().__init__(
            sim,
            name,
            DeviceKind.CAMERA,
            local_memory=None,
            link=None,
            op_costs={
                # "capture" models the sensor->host latency (timestamp math);
                # "deliver" is the cheap DMA that lands a frame in host memory
                # and is what occupies the device engine per frame.
                "capture": OpCost(fixed=capture_latency),
                "deliver": OpCost(fixed=0.4),
            },
        )
        self.capture_latency = capture_latency
        self.frame_interval = frame_interval


class Display(PhysicalDevice):
    """Host display window (GLFW in the real system). Present is cheap."""

    def __init__(self, sim: Simulator, present_cost: float = 0.05, name: str = "display"):
        super().__init__(
            sim,
            name,
            DeviceKind.DISPLAY,
            local_memory=None,
            link=None,
            op_costs={"present": OpCost(fixed=present_cost)},
        )


class Nic(PhysicalDevice):
    """Host network interface; bandwidth models the Gigabit LAN of §2.3."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float,
        name: str = "nic",
    ):
        if bandwidth <= 0:
            raise HardwareError("nic bandwidth must be positive")
        super().__init__(
            sim,
            name,
            DeviceKind.NIC,
            local_memory=None,
            link=None,
            op_costs={"recv": OpCost(fixed=latency, bandwidth=bandwidth),
                      "send": OpCost(fixed=latency, bandwidth=bandwidth)},
        )
        self.bandwidth = bandwidth
        self.latency = latency
