"""Host machine assembly and the two evaluation machines of §5.1.

A :class:`MachineSpec` is a plain bag of calibration numbers; a
:class:`HostMachine` binds one spec to a simulator, instantiating memory
pools, buses and physical devices.

Calibration
-----------
The bandwidth figures below are *effective copy bandwidths* chosen so the
model lands near the paper's measured costs (Table 2) for 15.8 MiB UHD
frames:

* vSoC coherence = one host→GPU DMA: 15.8 MiB / 7.0 GB/s ≈ 2.4 ms
  (paper: 2.38 ms high-end); 15.8 / 4.8 ≈ 3.4 ms (paper: 3.45 ms laptop).
* GAE coherence = two crossings of the virtualization boundary:
  2 x 15.8 MiB / 4.6 GB/s ≈ 7.2 ms (paper: 7.05 ms); laptop
  2 x 15.8 / 2.9 ≈ 11.4 ms (paper: 11.27 ms).
* QEMU-KVM coherence = two host-side memcpys with software-device overhead:
  ≈ 6.2 ms (paper: 6.15 ms); laptop ≈ 9.3 ms (paper: 9.28 ms).

These are *not* datasheet numbers; they are the effective rates the paper's
instrumentation would have observed, inclusive of scatter-gather walking and
cache effects. They are the model's only fitted constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import HardwareError
from repro.hw.bus import Bus, DmaEngine
from repro.hw.device import Camera, Cpu, Gpu, Nic, PhysicalDevice
from repro.hw.memory import MemoryPool
from repro.hw.thermal import ThermalModel
from repro.sim import Simulator
from repro.units import GIB, gb_per_s


@dataclass(frozen=True)
class ThermalSpec:
    """Thermal model parameters (laptops only; desktops stay cool)."""

    heat_per_busy_ms: float = 1.0
    cool_per_ms: float = 0.25
    throttle_at: float = 20_000.0
    recover_at: float = 12_000.0
    throttled_factor: float = 0.35


@dataclass(frozen=True)
class MachineSpec:
    """All calibration constants for one host machine."""

    name: str
    # memory + buses (GB/s unless stated)
    host_memory_gib: float
    host_memcpy_gbps: float
    pcie_gbps: float
    pcie_latency_ms: float
    # virtualization boundary (virtio / VM-exit path)
    boundary_copy_gbps: float
    vm_exit_cost_ms: float
    page_map_cost_ms: float
    # CPU
    cpu_cores: int
    sw_decode_gbps: float
    sw_encode_gbps: float
    sw_convert_gbps: float
    thermal: Optional[ThermalSpec] = None
    # GPU
    gpu_vram_gib: float = 8.0
    render_fixed_ms: float = 0.5
    render_gbps: float = 40.0
    hw_decode_fixed_ms: float = 1.2
    hw_decode_gbps: float = 10.0
    hw_encode_fixed_ms: float = 2.0
    hw_encode_gbps: float = 8.0
    convert_gbps: float = 25.0
    # peripherals
    camera_capture_latency_ms: float = 25.0
    camera_frame_interval_ms: float = 1000.0 / 60.0
    nic_gbps: float = 0.125  # Gigabit Ethernet
    nic_latency_ms: float = 0.3
    extra: Dict[str, float] = field(default_factory=dict)


#: The 24-core i9-13900K + RTX 3060 desktop of §2.3 / §5.1.
HIGH_END_DESKTOP = MachineSpec(
    name="high-end-desktop",
    host_memory_gib=64.0,
    host_memcpy_gbps=11.0,
    pcie_gbps=7.0,
    pcie_latency_ms=0.01,
    boundary_copy_gbps=4.6,
    vm_exit_cost_ms=0.02,
    page_map_cost_ms=0.22,
    cpu_cores=24,
    # 300 Mbps UHD HEVC in software: ~26.5 ms/frame on the i9 (realistic
    # for a tuned multithreaded decoder; this is what pins GAE near 30 FPS).
    sw_decode_gbps=0.62,
    sw_encode_gbps=0.45,
    sw_convert_gbps=2.8,
    thermal=None,
    gpu_vram_gib=12.0,
    render_fixed_ms=0.5,
    render_gbps=40.0,
    # NVDEC-class hardware decode: ~9.2 ms per UHD frame (4K60 capable
    # with headroom, not instantaneous).
    hw_decode_fixed_ms=2.0,
    hw_decode_gbps=2.2,
    hw_encode_fixed_ms=3.0,
    hw_encode_gbps=1.8,
    convert_gbps=25.0,
    camera_capture_latency_ms=25.0,  # HIKVISION V148 USB camera
)

#: The 6-core i7-10750H + GTX 1660 Ti laptop of §5.1.
MIDDLE_END_LAPTOP = MachineSpec(
    name="middle-end-laptop",
    host_memory_gib=16.0,
    host_memcpy_gbps=7.0,
    pcie_gbps=4.8,
    pcie_latency_ms=0.012,
    boundary_copy_gbps=2.9,
    vm_exit_cost_ms=0.03,
    page_map_cost_ms=0.25,
    cpu_cores=6,
    # ~30 ms/frame software UHD decode pre-throttle: GAE starts near 30 FPS
    # on the laptop and collapses once the ThermalSpec throttles (§5.3).
    sw_decode_gbps=0.55,
    sw_encode_gbps=0.30,
    sw_convert_gbps=1.6,
    thermal=ThermalSpec(),
    gpu_vram_gib=6.0,
    render_fixed_ms=0.7,
    render_gbps=28.0,
    # GTX 1660 Ti NVDEC: ~12.9 ms per UHD frame.
    hw_decode_fixed_ms=2.6,
    hw_decode_gbps=1.6,
    hw_encode_fixed_ms=4.0,
    hw_encode_gbps=1.3,
    convert_gbps=17.0,
    camera_capture_latency_ms=15.0,  # integrated webcam: ~10 ms faster path
)


class HostMachine:
    """One simulated host: memory pools, buses, and physical devices.

    Attributes
    ----------
    host_memory / guest_memory:
        The host's RAM and the slice of it handed to the guest VM. Guest
        memory is what baseline emulators route SVM coherence through.
    memctl / pcie / boundary:
        Buses: host memcpy path, host↔GPU DMA path, and the virtio
        guest↔host copy path (two of which make a GAE-style coherence
        maintenance).
    """

    def __init__(self, sim: Simulator, spec: MachineSpec):
        self._sim = sim
        self.spec = spec

        self.host_memory = MemoryPool("host-ram", int(spec.host_memory_gib * GIB))
        self.guest_memory = MemoryPool("guest-ram", 8 * GIB)
        vram = MemoryPool("vram", int(spec.gpu_vram_gib * GIB))

        self.memctl = Bus(sim, "memctl", gb_per_s(spec.host_memcpy_gbps), latency=0.002)
        self.pcie = Bus(sim, "pcie", gb_per_s(spec.pcie_gbps), latency=spec.pcie_latency_ms)
        self.boundary = Bus(
            sim, "boundary", gb_per_s(spec.boundary_copy_gbps), latency=spec.vm_exit_cost_ms
        )
        self.dma = DmaEngine(sim, self.pcie, name="gpu-dma")

        thermal = None
        if spec.thermal is not None:
            thermal = ThermalModel(
                sim,
                heat_per_busy_ms=spec.thermal.heat_per_busy_ms,
                cool_per_ms=spec.thermal.cool_per_ms,
                throttle_at=spec.thermal.throttle_at,
                recover_at=spec.thermal.recover_at,
                throttled_factor=spec.thermal.throttled_factor,
            )
        self.cpu = Cpu(
            sim,
            cores=spec.cpu_cores,
            memcpy_bandwidth=gb_per_s(spec.host_memcpy_gbps),
            sw_decode_bandwidth=gb_per_s(spec.sw_decode_gbps),
            sw_encode_bandwidth=gb_per_s(spec.sw_encode_gbps),
            sw_convert_bandwidth=gb_per_s(spec.sw_convert_gbps),
            thermal=thermal,
        )
        self.gpu = Gpu(
            sim,
            vram=vram,
            pcie=self.pcie,
            render_fixed=spec.render_fixed_ms,
            render_bandwidth=gb_per_s(spec.render_gbps),
            hw_decode_fixed=spec.hw_decode_fixed_ms,
            hw_decode_bandwidth=gb_per_s(spec.hw_decode_gbps),
            hw_encode_fixed=spec.hw_encode_fixed_ms,
            hw_encode_bandwidth=gb_per_s(spec.hw_encode_gbps),
            convert_bandwidth=gb_per_s(spec.convert_gbps),
        )
        self.camera = Camera(
            sim,
            capture_latency=spec.camera_capture_latency_ms,
            frame_interval=spec.camera_frame_interval_ms,
        )
        self.nic = Nic(sim, bandwidth=gb_per_s(spec.nic_gbps), latency=spec.nic_latency_ms)

        self._devices: Dict[str, PhysicalDevice] = {
            dev.name: dev for dev in (self.cpu, self.gpu, self.camera, self.nic)
        }

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def devices(self) -> Dict[str, PhysicalDevice]:
        """All physical devices by name."""
        return dict(self._devices)

    def device(self, name: str) -> PhysicalDevice:
        try:
            return self._devices[name]
        except KeyError:
            raise HardwareError(f"machine {self.spec.name!r} has no device {name!r}") from None

    def add_device(self, device: PhysicalDevice) -> None:
        """Register a custom physical device (discrete codec/ISP topologies)."""
        if device.name in self._devices:
            raise HardwareError(f"duplicate device name {device.name!r}")
        self._devices[device.name] = device

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostMachine {self.spec.name!r} devices={sorted(self._devices)}>"


def build_machine(sim: Simulator, spec: MachineSpec = HIGH_END_DESKTOP) -> HostMachine:
    """Convenience constructor: bind ``spec`` to ``sim``."""
    return HostMachine(sim, spec)
