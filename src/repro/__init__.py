"""Reproduction of "vSoC: Efficient Virtual System-on-Chip on Heterogeneous
Hardware" (Qiu et al., SOSP 2024).

Package map:

* :mod:`repro.sim` — deterministic discrete-event kernel (substrate).
* :mod:`repro.hw` — host machines: devices, buses, memory, thermal.
* :mod:`repro.guest` — mobile-OS substrate: shared-memory HAL, BufferQueue,
  VSync, virtio transport, system services.
* :mod:`repro.core` — the paper's contribution: SVM manager, twin
  hypergraphs, prefetch engine, coherence protocols, virtual command
  fences, MIMD flow control.
* :mod:`repro.emulators` — vSoC and the five comparison emulators.
* :mod:`repro.apps` — the Table-1 emerging apps, popular apps, heavy-3D
  games, short-form video.
* :mod:`repro.metrics` — FPS / latency / SVM statistics and trace analysis.
* :mod:`repro.workloads` — SVM trace record/replay.
* :mod:`repro.experiments` — one module per table and figure, plus the
  extension experiments; CLI via ``python -m repro.experiments``.

Quick start::

    import random
    from repro.sim import Simulator
    from repro.hw import build_machine
    from repro.emulators import make_vsoc

    sim = Simulator()
    emulator = make_vsoc(sim, build_machine(sim), rng=random.Random(0))

See README.md for the full tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"
__paper__ = (
    "vSoC: Efficient Virtual System-on-Chip on Heterogeneous Hardware, "
    "SOSP 2024, doi:10.1145/3694715.3695946"
)
