"""Machine-readable export of experiment results.

Every experiment's result object can be rendered to plain JSON-compatible
dicts, so downstream users can plot the figures with their own tooling
(the library itself deliberately has no plotting dependencies).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, IO, Mapping, Optional, Union

from repro.experiments.appbench import AppBenchResult
from repro.experiments.breakdown import (
    AccessLatencyResult,
    BreakdownResult,
    PopularBreakdownResult,
)
from repro.experiments.measurement import MeasurementResult
from repro.experiments.microbench import SvmMicrobenchResult
from repro.experiments.popular import PopularResult


def to_plain(result: Any) -> Any:
    """Best-effort conversion of a result object into JSON-compatible data."""
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {k: to_plain(v) for k, v in dataclasses.asdict(result).items()}
    if isinstance(result, Mapping):
        return {str(k): to_plain(v) for k, v in result.items()}
    if isinstance(result, (list, tuple)):
        return [to_plain(v) for v in result]
    if isinstance(result, (int, float, str, bool)) or result is None:
        return result
    if isinstance(result, MeasurementResult):
        return measurement_to_dict(result)
    if isinstance(result, PopularBreakdownResult):
        return popular_breakdown_to_dict(result)
    # objects with a __dict__ of plain fields (PopularResult, ...)
    if hasattr(result, "__dict__"):
        return {k: to_plain(v) for k, v in vars(result).items()
                if not k.startswith("_")}
    return str(result)


def measurement_to_dict(result: MeasurementResult) -> Dict[str, Any]:
    """Figures 4-6 series: sizes, coherence and slack CDFs."""
    return {
        "platform": result.platform,
        "region_size_cdf": result.size_cdf(),
        "coherence_cdf": result.coherence_cdf(),
        "slack_cdf": result.slack_cdf(),
        "mean_coherence_ms": result.mean_coherence,
        "mean_slack_ms": result.mean_slack,
        "api_calls_per_second": result.api_calls_per_second,
    }


def microbench_to_dict(result: SvmMicrobenchResult) -> Dict[str, Any]:
    """A Table 2 row."""
    return to_plain(result)


def appbench_to_dict(result: AppBenchResult) -> Dict[str, Any]:
    """A Figures 10/11/13/14 bar group."""
    return {
        "emulator": result.emulator,
        "machine": result.machine,
        "category_fps": dict(result.category_fps),
        "category_latency_ms": dict(result.category_latency),
        "mean_fps": result.mean_fps,
        "mean_latency_ms": result.mean_latency,
        "runnable": result.runnable,
        "per_app_fps": dict(result.per_app),
    }


def breakdown_to_dict(result: BreakdownResult) -> Dict[str, Any]:
    """Figure 12 series."""
    return {
        "machine": result.machine,
        "category_fps": {c: dict(v) for c, v in result.category_fps.items()},
        "no_prefetch_drop_pct": result.drop_percent("no-prefetch"),
        "no_fence_drop_pct": result.drop_percent("no-fence"),
    }


def access_latency_to_dict(result: AccessLatencyResult) -> Dict[str, Any]:
    """Figure 16 CDF."""
    return {
        "cdf": result.cdf(),
        "mean_ms": result.mean,
        "max_ms": result.maximum,
        "samples": len(result.samples),
    }


def popular_to_dict(result: PopularResult) -> Dict[str, Any]:
    """A Figure 15 bar."""
    return {
        "emulator": result.emulator,
        "mean_fps": result.mean_fps,
        "runnable": result.runnable,
        "per_app_fps": dict(result.per_app),
    }


def popular_breakdown_to_dict(result: PopularBreakdownResult) -> Dict[str, Any]:
    """One §5.5 ablation row."""
    return {
        "variant": result.variant,
        "apps_with_drops": result.apps_with_drops,
        "average_drop_percent": result.average_drop_percent,
        "per_app_fps": dict(result.per_app_fps),
    }


def dump_json(result: Any, destination: Union[str, IO[str]],
              indent: Optional[int] = 2) -> None:
    """Serialize any experiment result to a file path or open stream."""
    data = to_plain(result)
    if isinstance(destination, str):
        with open(destination, "w") as stream:
            json.dump(data, stream, indent=indent)
    else:
        json.dump(data, destination, indent=indent)
