"""Table 2 — SVM microbenchmarks (+ the §5.2 prediction statistics).

The microbenchmark drives cross-device SVM pipelines directly (producer
device writes a UHD frame, consumer device reads it on the next VSync),
mirroring how the paper characterizes SVM performance independent of app
logic. Metrics follow §5.2's definitions:

* **access latency** — mean blocking time of ``begin_access`` calls;
* **coherence cost** — mean duration of one coherence maintenance;
* **throughput** — total bytes accessed through the SVM interface divided
  by test duration (prefetch-wasted copies excluded — they are traced as
  maintenances, not accesses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.emulators import EMULATOR_FACTORIES
from repro.guest.vsync import VSyncSource
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec, build_machine
from repro.metrics.collectors import SvmStats
from repro.sim import FifoQueue, Simulator, Timeout
from repro.sim.tracing import TraceLog
from repro.units import UHD_FRAME_BYTES, VSYNC_PERIOD_MS, to_gb_per_s


@dataclass
class SvmMicrobenchResult:
    """One emulator's Table 2 row (for one machine)."""

    emulator: str
    machine: str
    access_latency_ms: float
    coherence_cost_ms: float
    throughput_gbps: float
    # §5.2 prediction statistics (None for emulators without an engine)
    prediction_accuracy: Optional[float] = None
    slack_std_error_ms: Optional[float] = None
    prefetch_std_error_ms: Optional[float] = None
    framework_overhead_bytes: int = 0
    cpu_overhead_fraction: float = 0.0


def _producer(sim, emulator, regions, frame_bytes, handoff, free, rng) -> Generator[Any, Any, None]:
    """Writer side of one pipeline: a codec-style producer at ~60 FPS.

    Double-buffered, like every real pipeline (§2.3): the producer writes
    into the next free buffer while the consumer reads the previous one —
    the buffering that creates the slack intervals prefetch hides under.
    """
    for region_id in regions:
        free.try_put(region_id)
    yield Timeout(rng.uniform(0.0, VSYNC_PERIOD_MS))
    while True:
        yield Timeout(VSYNC_PERIOD_MS * (1.0 + rng.uniform(-0.015, 0.015)))
        region_id = yield free.get()
        result = yield from emulator.stage(
            "codec", emulator.decode_op(), frame_bytes, writes=[region_id]
        )
        yield result.done
        handoff.try_put(region_id)


def _consumer(sim, emulator, frame_bytes, handoff, free, vsync) -> Generator[Any, Any, None]:
    """Reader side: a GPU-style consumer, one read per write, VSync-paced."""
    while True:
        region_id = yield handoff.get()
        yield vsync.wait_next()
        result = yield from emulator.stage(
            "gpu", "render", frame_bytes, reads=[region_id]
        )
        yield result.done
        free.try_put(region_id)


def run_svm_microbench(
    emulator_name: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 10_000.0,
    pipelines: int = 3,
    frame_bytes: int = UHD_FRAME_BYTES,
    seed: int = 0,
) -> SvmMicrobenchResult:
    """Run the SVM microbenchmark for one emulator on one machine."""
    sim = Simulator()
    machine = build_machine(sim, machine_spec)
    trace = TraceLog()
    emulator = EMULATOR_FACTORIES[emulator_name](
        sim, machine, trace=trace, rng=random.Random(seed)
    )
    vsync = VSyncSource(sim)
    rng = random.Random(seed + 1)
    for index in range(pipelines):
        regions = [emulator.svm_alloc(frame_bytes) for _ in range(2)]
        handoff = FifoQueue(sim, capacity=2, name=f"handoff-{index}")
        free = FifoQueue(sim, capacity=2, name=f"free-{index}")
        sim.spawn(
            _producer(sim, emulator, regions, frame_bytes, handoff, free, rng),
            name=f"producer-{index}",
        )
        sim.spawn(
            _consumer(sim, emulator, frame_bytes, handoff, free, vsync),
            name=f"consumer-{index}",
        )
    sim.run(until=duration_ms)

    stats = SvmStats(trace, duration_ms)
    accuracy = slack_err = prefetch_err = None
    cpu_fraction = 0.0
    overhead = emulator.manager.memory_overhead_bytes()
    if emulator.engine is not None:
        accuracy = emulator.engine.stats.accuracy
        slack_err, prefetch_err = _prediction_errors(emulator)
        cpu_fraction = emulator.engine.stats.cpu_overhead_fraction(duration_ms)
    return SvmMicrobenchResult(
        emulator=emulator_name,
        machine=machine_spec.name,
        access_latency_ms=stats.average_access_latency() or 0.0,
        coherence_cost_ms=stats.average_coherence_cost() or 0.0,
        throughput_gbps=to_gb_per_s(stats.throughput_bytes_per_ms()),
        prediction_accuracy=accuracy,
        slack_std_error_ms=slack_err,
        prefetch_std_error_ms=prefetch_err,
        framework_overhead_bytes=overhead,
        cpu_overhead_fraction=cpu_fraction,
    )


def _prediction_errors(emulator) -> tuple:
    """RMS forecast errors of the slack/prefetch-time predictors (§5.2)."""
    slack_errors = []
    prefetch_errors = []
    for edge in emulator.twin.virtual:
        stat = edge.stats.get("slack")
        if stat is not None and stat.std_error is not None:
            slack_errors.append(stat.std_error)
    for edge in emulator.twin.physical:
        stat = edge.stats.get("prefetch_time")
        if stat is not None and stat.std_error is not None:
            prefetch_errors.append(stat.std_error)
    slack = sum(slack_errors) / len(slack_errors) if slack_errors else None
    prefetch = sum(prefetch_errors) / len(prefetch_errors) if prefetch_errors else None
    return slack, prefetch


def run_table2(
    machine_specs=None,
    duration_ms: float = 10_000.0,
    seed: int = 0,
) -> Dict[str, Dict[str, SvmMicrobenchResult]]:
    """Table 2: {emulator: {machine: result}} for vSoC / GAE / QEMU-KVM."""
    from repro.hw.machine import MIDDLE_END_LAPTOP

    if machine_specs is None:
        machine_specs = (HIGH_END_DESKTOP, MIDDLE_END_LAPTOP)
    table: Dict[str, Dict[str, SvmMicrobenchResult]] = {}
    for name in ("vSoC", "GAE", "QEMU-KVM"):
        table[name] = {
            spec.name: run_svm_microbench(name, spec, duration_ms, seed=seed)
            for spec in machine_specs
        }
    return table
